//! Structural netlist IR: gates, buses, evaluation, fault injection.

use scdp_arith::Word;
use std::fmt;

/// Identifier of a net (the output of the gate with the same index).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The dense index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Primitive gate kinds (at most two inputs; wider functions are built as
/// trees by [`NetlistBuilder`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input bit.
    Input,
    /// Constant driver.
    Const(bool),
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XNOR.
    Xnor,
    /// Inverter.
    Not,
    /// Buffer (used to materialise fanout stems where useful).
    Buf,
    /// D flip-flop (register bit). Its output is the *state* captured at
    /// the end of the previous cycle; the single input pin is the D line
    /// sampled at the end of the current cycle. State resets to 0. The
    /// D input may be connected *after* creation
    /// ([`NetlistBuilder::connect_dff`]) — registers are exactly where
    /// combinational feedback is legal.
    Dff,
}

impl GateKind {
    /// Number of input pins.
    #[must_use]
    pub fn pins(self) -> u8 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Not | GateKind::Buf | GateKind::Dff => 1,
            _ => 2,
        }
    }
}

/// One gate instance; drives the net with its own index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The gate's function.
    pub kind: GateKind,
    /// First input, if any.
    pub a: Option<NetId>,
    /// Second input, if any.
    pub b: Option<NetId>,
}

/// A stuck-at fault site: a gate output (stem) or one of its input pins
/// (fanout branch).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StuckSite {
    /// The gate the fault is attached to.
    pub gate: usize,
    /// `None` = output stem; `Some(0)`/`Some(1)` = input pin.
    pub pin: Option<u8>,
}

/// A stuck-at fault: `site` stuck at `value`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StuckAtLine {
    /// Where the fault sits.
    pub site: StuckSite,
    /// The forced logic value.
    pub value: bool,
}

impl StuckAtLine {
    /// Creates a stuck-at fault.
    #[must_use]
    pub fn new(site: StuckSite, value: bool) -> Self {
        Self { site, value }
    }
}

/// How long a fault is active during a sequential (multi-cycle)
/// evaluation.
///
/// Combinational campaigns only know permanent faults; the cycle axis of
/// sequential simulation adds single-cycle transients (an SEU-style
/// upset that corrupts the datapath for exactly one control step).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultDuration {
    /// Active in every cycle (a structural defect).
    Permanent,
    /// Active only during `cycle` (0-based).
    Transient {
        /// The single cycle the fault is active in.
        cycle: u32,
    },
}

impl FaultDuration {
    /// `true` if the fault is active during `cycle`.
    #[must_use]
    pub fn active_at(self, cycle: u32) -> bool {
        match self {
            FaultDuration::Permanent => true,
            FaultDuration::Transient { cycle: c } => c == cycle,
        }
    }
}

impl fmt::Display for FaultDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultDuration::Permanent => f.write_str("permanent"),
            FaultDuration::Transient { cycle } => write!(f, "transient@{cycle}"),
        }
    }
}

/// A stuck-at fault with a duration, for sequential evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SeqStuckAt {
    /// The stuck line.
    pub line: StuckAtLine,
    /// When the line is forced.
    pub duration: FaultDuration,
}

impl SeqStuckAt {
    /// A permanently stuck line.
    #[must_use]
    pub fn permanent(line: StuckAtLine) -> Self {
        Self {
            line,
            duration: FaultDuration::Permanent,
        }
    }

    /// A line stuck only during `cycle`.
    #[must_use]
    pub fn transient(line: StuckAtLine, cycle: u32) -> Self {
        Self {
            line,
            duration: FaultDuration::Transient { cycle },
        }
    }
}

/// A gate-level netlist with named input/output buses.
///
/// Combinational gates are stored in topological order (the builder only
/// references already-created nets), so evaluation is a single forward
/// pass. [`GateKind::Dff`] cells are the one exception: their D input
/// may reference a later net (sequential feedback), which is harmless
/// because a register's *output* during a cycle never depends on its
/// input during that cycle — the forward pass reads state, and state
/// updates happen after the pass ([`Netlist::eval_seq_nets`]).
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl Netlist {
    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including input/constant drivers).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of logic gates (excluding inputs and constants).
    #[must_use]
    pub fn logic_gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Const(_)))
            .count()
    }

    /// Number of [`GateKind::Dff`] state cells.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::Dff)
            .count()
    }

    /// `true` if the netlist holds state (at least one Dff cell) and
    /// therefore needs cycle-accurate evaluation.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.gates.iter().any(|g| g.kind == GateKind::Dff)
    }

    /// Named input buses, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Named output buses, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Total primary input bit count.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.inputs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Per-net reader table: `readers()[n]` lists every `(gate, pin)`
    /// that reads net `n`. A gate reading the same net on both pins
    /// contributes two entries, so the list length is the net's exact
    /// structural fanout. Dff D-pin reads (including forward
    /// references) appear like any other read.
    #[must_use]
    pub fn readers(&self) -> Vec<Vec<(usize, u8)>> {
        let mut readers = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if let Some(a) = g.a {
                readers[a.0].push((i, 0));
            }
            if let Some(b) = g.b {
                readers[b.0].push((i, 1));
            }
        }
        readers
    }

    /// `true` if net `n` belongs to any declared output bus.
    #[must_use]
    pub fn is_output_net(&self, n: usize) -> bool {
        self.outputs
            .iter()
            .any(|(_, bus)| bus.iter().any(|net| net.0 == n))
    }

    /// Enumerates the full single-stuck-at line universe: every site
    /// from [`Netlist::fault_sites`] at both polarities, stuck-at-0
    /// first.
    #[must_use]
    pub fn fault_lines(&self) -> Vec<StuckAtLine> {
        self.fault_sites()
            .into_iter()
            .flat_map(|site| [StuckAtLine::new(site, false), StuckAtLine::new(site, true)])
            .collect()
    }

    /// Enumerates every stuck-at fault site: one stem per logic gate plus
    /// one per input pin.
    #[must_use]
    pub fn fault_sites(&self) -> Vec<StuckSite> {
        let mut sites = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if matches!(g.kind, GateKind::Input | GateKind::Const(_)) {
                // Primary-input stems are still valid sites.
                sites.push(StuckSite { gate: i, pin: None });
                continue;
            }
            sites.push(StuckSite { gate: i, pin: None });
            for pin in 0..g.kind.pins() {
                sites.push(StuckSite {
                    gate: i,
                    pin: Some(pin),
                });
            }
        }
        sites
    }

    /// Evaluates the netlist for flattened input bits (concatenation of
    /// all input buses in declaration order, LSB first within each bus),
    /// under zero or more stuck-at faults. Returns all net values.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not match the total input width, or if the
    /// netlist is sequential (use [`Netlist::eval_seq_nets`]).
    #[must_use]
    pub fn eval_nets(&self, bits: &[bool], faults: &[StuckAtLine]) -> Vec<bool> {
        assert_eq!(bits.len(), self.input_bits(), "input bit count mismatch");
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0usize;
        for (i, gate) in self.gates.iter().enumerate() {
            let read = |pin: u8, net: NetId, values: &[bool]| -> bool {
                let mut v = values[net.0];
                for f in faults {
                    if f.site.gate == i && f.site.pin == Some(pin) {
                        v = f.value;
                    }
                }
                v
            };
            let mut out = match gate.kind {
                GateKind::Input => {
                    let v = bits[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const(c) => c,
                GateKind::Dff => {
                    panic!("combinational evaluation of a sequential netlist; use eval_seq_nets")
                }
                GateKind::Not => !read(0, gate.a.expect("not input"), &values),
                GateKind::Buf => read(0, gate.a.expect("buf input"), &values),
                kind => {
                    let a = read(0, gate.a.expect("gate input a"), &values);
                    let b = read(1, gate.b.expect("gate input b"), &values);
                    match kind {
                        GateKind::And => a & b,
                        GateKind::Or => a | b,
                        GateKind::Xor => a ^ b,
                        GateKind::Nand => !(a & b),
                        GateKind::Nor => !(a | b),
                        GateKind::Xnor => !(a ^ b),
                        _ => unreachable!("two-input kinds handled"),
                    }
                }
            };
            for f in faults {
                if f.site.gate == i && f.site.pin.is_none() {
                    out = f.value;
                }
            }
            values[i] = out;
        }
        values
    }

    /// Evaluates with [`Word`] operands (one per input bus, widths must
    /// match) and returns one `Word` per output bus.
    ///
    /// # Panics
    ///
    /// Panics if the number or widths of `words` do not match the input
    /// buses, or if an output bus is wider than 64 bits.
    #[must_use]
    pub fn eval_words(&self, words: &[Word], faults: &[StuckAtLine]) -> Vec<Word> {
        assert_eq!(words.len(), self.inputs.len(), "input bus count mismatch");
        let mut bits = Vec::with_capacity(self.input_bits());
        for (w, (name, bus)) in words.iter().zip(&self.inputs) {
            assert_eq!(
                w.width() as usize,
                bus.len(),
                "width mismatch on input bus {name}"
            );
            for i in 0..w.width() {
                bits.push(w.bit(i));
            }
        }
        let nets = self.eval_nets(&bits, faults);
        self.outputs
            .iter()
            .map(|(_, bus)| {
                let mut v = 0u64;
                for (i, net) in bus.iter().enumerate() {
                    if nets[net.0] {
                        v |= 1 << i;
                    }
                }
                Word::new(bus.len() as u32, v)
            })
            .collect()
    }

    /// Cycle-accurate scalar evaluation: runs the netlist for `cycles`
    /// clock cycles with primary inputs held constant, under zero or
    /// more duration-qualified stuck-at faults. Dff cells start at 0,
    /// output their state during the pass and capture their D net at the
    /// end of each cycle. Returns the net values of **every** cycle
    /// (`cycles` vectors), the reference for the packed sequential
    /// engine.
    ///
    /// Fault semantics per cycle: a fault is applied only in cycles its
    /// [`FaultDuration`] is active in. A stem fault on a Dff forces its
    /// output (Q); a pin-0 fault on a Dff forces the value *captured*
    /// at the end of an active cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not match the total input width.
    #[must_use]
    pub fn eval_seq_nets(
        &self,
        bits: &[bool],
        cycles: u32,
        faults: &[SeqStuckAt],
    ) -> Vec<Vec<bool>> {
        assert_eq!(bits.len(), self.input_bits(), "input bit count mismatch");
        let mut state = vec![false; self.gates.len()];
        let mut trace = Vec::with_capacity(cycles as usize);
        for cycle in 0..cycles {
            let active: Vec<StuckAtLine> = faults
                .iter()
                .filter(|f| f.duration.active_at(cycle))
                .map(|f| f.line)
                .collect();
            let mut values = vec![false; self.gates.len()];
            let mut next_input = 0usize;
            for (i, gate) in self.gates.iter().enumerate() {
                let read = |pin: u8, net: NetId, values: &[bool]| -> bool {
                    let mut v = values[net.0];
                    for f in &active {
                        if f.site.gate == i && f.site.pin == Some(pin) {
                            v = f.value;
                        }
                    }
                    v
                };
                let mut out = match gate.kind {
                    GateKind::Input => {
                        let v = bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => c,
                    GateKind::Dff => state[i],
                    GateKind::Not => !read(0, gate.a.expect("not input"), &values),
                    GateKind::Buf => read(0, gate.a.expect("buf input"), &values),
                    kind => {
                        let a = read(0, gate.a.expect("gate input a"), &values);
                        let b = read(1, gate.b.expect("gate input b"), &values);
                        match kind {
                            GateKind::And => a & b,
                            GateKind::Or => a | b,
                            GateKind::Xor => a ^ b,
                            GateKind::Nand => !(a & b),
                            GateKind::Nor => !(a | b),
                            GateKind::Xnor => !(a ^ b),
                            _ => unreachable!("two-input kinds handled"),
                        }
                    }
                };
                for f in &active {
                    if f.site.gate == i && f.site.pin.is_none() {
                        out = f.value;
                    }
                }
                values[i] = out;
            }
            // Capture: state <- D, with pin-0 overrides on active faults.
            for (i, gate) in self.gates.iter().enumerate() {
                if gate.kind != GateKind::Dff {
                    continue;
                }
                let d = gate.a.expect("dff D input connected");
                let mut v = values[d.0];
                for f in &active {
                    if f.site.gate == i && f.site.pin == Some(0) {
                        v = f.value;
                    }
                }
                state[i] = v;
            }
            trace.push(values);
        }
        trace
    }

    /// Cycle-accurate evaluation with [`Word`] operands: runs `cycles`
    /// clock cycles and returns one `Word` per output bus read at the
    /// **final** cycle.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is 0, or on the same conditions as
    /// [`Netlist::eval_words`].
    #[must_use]
    pub fn eval_seq_words(&self, words: &[Word], cycles: u32, faults: &[SeqStuckAt]) -> Vec<Word> {
        assert!(cycles > 0, "at least one cycle required");
        assert_eq!(words.len(), self.inputs.len(), "input bus count mismatch");
        let mut bits = Vec::with_capacity(self.input_bits());
        for (w, (name, bus)) in words.iter().zip(&self.inputs) {
            assert_eq!(
                w.width() as usize,
                bus.len(),
                "width mismatch on input bus {name}"
            );
            for i in 0..w.width() {
                bits.push(w.bit(i));
            }
        }
        let trace = self.eval_seq_nets(&bits, cycles, faults);
        let last = trace.last().expect("cycles > 0");
        self.outputs
            .iter()
            .map(|(_, bus)| {
                let mut v = 0u64;
                for (i, net) in bus.iter().enumerate() {
                    if last[net.0] {
                        v |= 1 << i;
                    }
                }
                Word::new(bus.len() as u32, v)
            })
            .collect()
    }
}

/// Incremental netlist constructor.
///
/// All gate-creating methods return the [`NetId`] of the new net; inputs
/// must already exist, which guarantees topological order.
///
/// # Example
///
/// ```
/// use scdp_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("maj3");
/// let x = b.input_bus("x", 3);
/// let ab = b.and(x[0], x[1]);
/// let ac = b.and(x[0], x[2]);
/// let bc = b.and(x[1], x[2]);
/// let o1 = b.or(ab, ac);
/// let maj = b.or(o1, bc);
/// b.output("maj", &[maj]);
/// let nl = b.finish();
/// assert_eq!(nl.outputs().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
}

impl NetlistBuilder {
    /// Starts an empty netlist named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn push(&mut self, kind: GateKind, a: Option<NetId>, b: Option<NetId>) -> NetId {
        if let Some(a) = a {
            assert!(a.0 < self.gates.len(), "input net {a} does not exist");
        }
        if let Some(b) = b {
            assert!(b.0 < self.gates.len(), "input net {b} does not exist");
        }
        self.gates.push(Gate { kind, a, b });
        NetId(self.gates.len() - 1)
    }

    /// Declares a named input bus of `width` bits (LSB first).
    pub fn input_bus(&mut self, name: impl Into<String>, width: u32) -> Vec<NetId> {
        let bus: Vec<NetId> = (0..width)
            .map(|_| self.push(GateKind::Input, None, None))
            .collect();
        self.inputs.push((name.into(), bus.clone()));
        bus
    }

    /// Declares a named output bus.
    ///
    /// # Panics
    ///
    /// Panics if any net does not exist yet.
    pub fn output(&mut self, name: impl Into<String>, bus: &[NetId]) {
        for n in bus {
            assert!(n.0 < self.gates.len(), "output net {n} does not exist");
        }
        self.outputs.push((name.into(), bus.to_vec()));
    }

    /// A constant-driver net.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(GateKind::Const(value), None, None)
    }

    /// 2-input AND gate.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And, Some(a), Some(b))
    }

    /// 2-input OR gate.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or, Some(a), Some(b))
    }

    /// 2-input XOR gate.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor, Some(a), Some(b))
    }

    /// 2-input NAND gate.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nand, Some(a), Some(b))
    }

    /// 2-input NOR gate.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Nor, Some(a), Some(b))
    }

    /// 2-input XNOR gate.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xnor, Some(a), Some(b))
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Not, Some(a), None)
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Buf, Some(a), None)
    }

    /// A D flip-flop with its D input left unconnected, so registers can
    /// be created *before* the logic computing their next-state value
    /// (the only legal feedback in the IR). Connect it with
    /// [`NetlistBuilder::connect_dff`] before [`NetlistBuilder::finish`].
    pub fn dff(&mut self) -> NetId {
        self.push(GateKind::Dff, None, None)
    }

    /// Connects the D input of the flip-flop driving net `q` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a Dff, is already connected, or `d` does
    /// not exist.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        assert!(d.0 < self.gates.len(), "D input net {d} does not exist");
        let gate = &mut self.gates[q.0];
        assert_eq!(gate.kind, GateKind::Dff, "net {q} is not a Dff");
        assert!(gate.a.is_none(), "Dff {q} already connected");
        gate.a = Some(d);
    }

    /// 2-to-1 multiplexer: `sel ? b : a` (three gates).
    pub fn mux(&mut self, a: NetId, b: NetId, sel: NetId) -> NetId {
        let ns = self.not(sel);
        let pa = self.and(a, ns);
        let pb = self.and(b, sel);
        self.or(pa, pb)
    }

    /// Balanced OR tree over `nets` (false constant when empty).
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, |b, x, y| b.or(x, y), false)
    }

    /// Balanced AND tree over `nets` (true constant when empty).
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, |b, x, y| b.and(x, y), true)
    }

    fn tree(
        &mut self,
        nets: &[NetId],
        mut op: impl FnMut(&mut Self, NetId, NetId) -> NetId,
        empty: bool,
    ) -> NetId {
        match nets.len() {
            0 => self.constant(empty),
            1 => nets[0],
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        if pair.len() == 2 {
                            next.push(op(self, pair[0], pair[1]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// The number of gates created so far (used to record instance
    /// ranges for correlated fault injection).
    #[must_use]
    pub fn mark(&self) -> usize {
        self.gates.len()
    }

    /// Finalises the netlist.
    ///
    /// # Panics
    ///
    /// Panics if any Dff was left with its D input unconnected.
    #[must_use]
    pub fn finish(self) -> Netlist {
        for (i, g) in self.gates.iter().enumerate() {
            assert!(
                g.kind != GateKind::Dff || g.a.is_some(),
                "Dff n{i} has no D input; call connect_dff before finish"
            );
        }
        Netlist {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("xor");
        let x = b.input_bus("x", 2);
        let y = b.xor(x[0], x[1]);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn eval_simple_gates() {
        let nl = xor_netlist();
        for (a, b, expect) in [
            (false, false, false),
            (true, false, true),
            (true, true, false),
        ] {
            let nets = nl.eval_nets(&[a, b], &[]);
            assert_eq!(nets[2], expect);
        }
    }

    #[test]
    fn stuck_at_output_stem() {
        let nl = xor_netlist();
        let fault = StuckAtLine::new(StuckSite { gate: 2, pin: None }, true);
        let nets = nl.eval_nets(&[false, false], &[fault]);
        assert!(nets[2]);
    }

    #[test]
    fn stuck_at_input_pin_is_local() {
        let mut b = NetlistBuilder::new("fanout");
        let x = b.input_bus("x", 1);
        let n1 = b.not(x[0]); // gate 1
        let n2 = b.not(x[0]); // gate 2
        b.output("y", &[n1, n2]);
        let nl = b.finish();
        // Pin fault on gate 1 only: gate 2 unaffected.
        let fault = StuckAtLine::new(
            StuckSite {
                gate: 1,
                pin: Some(0),
            },
            true,
        );
        let nets = nl.eval_nets(&[false], &[fault]);
        assert!(!nets[1], "gate1 sees forced 1, outputs 0");
        assert!(nets[2], "gate2 unaffected");
    }

    #[test]
    fn stem_fault_affects_all_fanout() {
        let mut b = NetlistBuilder::new("stem");
        let x = b.input_bus("x", 1);
        let n1 = b.not(x[0]);
        let n2 = b.not(x[0]);
        b.output("y", &[n1, n2]);
        let nl = b.finish();
        // Stem fault on the input driver (gate 0).
        let fault = StuckAtLine::new(StuckSite { gate: 0, pin: None }, true);
        let nets = nl.eval_nets(&[false], &[fault]);
        assert!(!nets[1]);
        assert!(!nets[2]);
    }

    #[test]
    fn fault_sites_enumeration() {
        let nl = xor_netlist();
        let sites = nl.fault_sites();
        // 2 input stems + xor stem + 2 xor pins.
        assert_eq!(sites.len(), 5);
    }

    #[test]
    fn words_round_trip() {
        let mut b = NetlistBuilder::new("pass");
        let x = b.input_bus("x", 4);
        b.output("y", &x);
        let nl = b.finish();
        let out = nl.eval_words(&[Word::from_i64(4, -3)], &[]);
        assert_eq!(out[0].to_i64(), -3);
    }

    #[test]
    fn mux_and_trees() {
        let mut b = NetlistBuilder::new("m");
        let x = b.input_bus("x", 3);
        let m = b.mux(x[0], x[1], x[2]);
        let ot = b.or_tree(&[x[0], x[1], x[2]]);
        let at = b.and_tree(&[x[0], x[1], x[2]]);
        b.output("o", &[m, ot, at]);
        let nl = b.finish();
        let nets = nl.eval_nets(&[true, false, false], &[]);
        let (m, ot, at) = (m.index(), ot.index(), at.index());
        assert!(nets[m], "sel=0 -> a=1");
        assert!(nets[ot]);
        assert!(!nets[at]);
        let nets = nl.eval_nets(&[true, false, true], &[]);
        assert!(!nets[m], "sel=1 -> b=0");
    }

    #[test]
    #[should_panic(expected = "input bit count mismatch")]
    fn wrong_input_width_panics() {
        let nl = xor_netlist();
        let _ = nl.eval_nets(&[true], &[]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_reference_panics() {
        let mut b = NetlistBuilder::new("bad");
        let _ = b.input_bus("x", 1);
        b.output("y", &[NetId(99)]);
    }

    /// A 1-bit toggle: q' = !q.
    fn toggle_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("toggle");
        let q = b.dff();
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", &[q]);
        b.finish()
    }

    #[test]
    fn dff_toggles_across_cycles() {
        let nl = toggle_netlist();
        assert!(nl.is_sequential());
        assert_eq!(nl.dff_count(), 1);
        let trace = nl.eval_seq_nets(&[], 4, &[]);
        // Q starts 0 and flips each cycle.
        let q: Vec<bool> = trace.iter().map(|c| c[0]).collect();
        assert_eq!(q, vec![false, true, false, true]);
    }

    #[test]
    fn sticky_accumulator_holds_captured_value() {
        // q' = q | x: once x pulses (here: constant 1), q stays set.
        let mut b = NetlistBuilder::new("sticky");
        let x = b.input_bus("x", 1);
        let q = b.dff();
        let d = b.or(q, x[0]);
        b.connect_dff(q, d);
        b.output("q", &[q]);
        let nl = b.finish();
        let trace = nl.eval_seq_nets(&[true], 3, &[]);
        assert!(!trace[0][q.index()], "state visible one cycle later");
        assert!(trace[1][q.index()]);
        assert!(trace[2][q.index()]);
    }

    #[test]
    fn transient_fault_is_active_for_one_cycle() {
        // Sticky accumulator with x = 0; a transient stuck-at-1 on the
        // OR output during cycle 1 latches into the register forever.
        let mut b = NetlistBuilder::new("seu");
        let x = b.input_bus("x", 1);
        let q = b.dff();
        let d = b.or(q, x[0]);
        b.connect_dff(q, d);
        b.output("q", &[q]);
        let nl = b.finish();
        let or_gate = d.index();
        let upset = SeqStuckAt::transient(
            StuckAtLine::new(
                StuckSite {
                    gate: or_gate,
                    pin: None,
                },
                true,
            ),
            1,
        );
        let trace = nl.eval_seq_nets(&[false], 4, &[upset]);
        let q_trace: Vec<bool> = trace.iter().map(|c| c[q.index()]).collect();
        assert_eq!(q_trace, vec![false, false, true, true], "latched upset");
        // Fault-free: never sets.
        let clean = nl.eval_seq_nets(&[false], 4, &[]);
        assert!(clean.iter().all(|c| !c[q.index()]));
    }

    #[test]
    fn dff_pin_fault_forces_the_captured_value() {
        let nl = toggle_netlist();
        let pin = SeqStuckAt::permanent(StuckAtLine::new(
            StuckSite {
                gate: 0,
                pin: Some(0),
            },
            false,
        ));
        let trace = nl.eval_seq_nets(&[], 4, &[pin]);
        assert!(trace.iter().all(|c| !c[0]), "D forced 0 keeps Q at 0");
    }

    #[test]
    fn duration_predicates() {
        assert!(FaultDuration::Permanent.active_at(0));
        assert!(FaultDuration::Permanent.active_at(7));
        let t = FaultDuration::Transient { cycle: 2 };
        assert!(t.active_at(2));
        assert!(!t.active_at(1) && !t.active_at(3));
        assert_eq!(t.to_string(), "transient@2");
        assert_eq!(FaultDuration::Permanent.to_string(), "permanent");
    }

    #[test]
    fn seq_words_read_the_final_cycle() {
        // 2-bit shift register: out = in delayed by two cycles.
        let mut b = NetlistBuilder::new("shift2");
        let x = b.input_bus("x", 1);
        let s0 = b.dff();
        let s1 = b.dff();
        b.connect_dff(s0, x[0]);
        b.connect_dff(s1, s0);
        b.output("y", &[s1]);
        let nl = b.finish();
        let one = Word::new(1, 1);
        assert_eq!(nl.eval_seq_words(&[one], 1, &[])[0].bits(), 0);
        assert_eq!(nl.eval_seq_words(&[one], 2, &[])[0].bits(), 0);
        assert_eq!(nl.eval_seq_words(&[one], 3, &[])[0].bits(), 1);
    }

    #[test]
    #[should_panic(expected = "use eval_seq_nets")]
    fn combinational_eval_rejects_sequential_netlists() {
        let nl = toggle_netlist();
        let _ = nl.eval_nets(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "no D input")]
    fn unconnected_dff_is_rejected_at_finish() {
        let mut b = NetlistBuilder::new("bad");
        let _ = b.dff();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_is_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let c = b.constant(true);
        let q = b.dff();
        b.connect_dff(q, c);
        b.connect_dff(q, c);
    }
}
