//! Gate-level cross-validation (E7): the paper claims its coverage
//! analysis is "independent of the actual implementation … with a carry
//! look-ahead implementation of an adder, as well as with a ripple
//! carry". This binary runs structural stuck-at campaigns on generated
//! self-checking add datapaths built from the **ripple-carry** adder and
//! from the **carry-lookahead** adder and compares their coverage.
//!
//! Faults are injected per instance-local site and *correlated* across
//! the nominal and checking instances (same physical unit reused), the
//! worst case of §4.
//!
//! Usage:
//!   gate_xval [--width N]

use scdp_arith::Word;
use scdp_bench::{arg_value, pct, timed};
use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
use scdp_netlist::{NetlistBuilder, StuckAtLine, StuckSite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let width: u32 = arg_value(&args, "--width")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("Gate-level cross-validation, width {width} (correlated shared-unit faults)\n");
    for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
        let rca = timed(&format!("rca {tech}"), || rca_coverage(width, tech));
        let cla = timed(&format!("cla {tech}"), || cla_coverage(width, tech));
        println!(
            "{tech:<9}  RCA coverage {}  ({} sites)   CLA coverage {}  ({} sites)",
            pct(rca.0),
            rca.1,
            pct(cla.0),
            cla.1
        );
    }
    println!("\nBoth realisations sit in the same coverage band — the functional-level");
    println!("analysis of Table 2 transfers across adder implementations.");

    println!("\nGate-level multiplier worst case (correlated shared-unit stuck-ats):");
    for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
        let (cov, sites) = timed(&format!("mul {tech}"), || mul_coverage(width, tech));
        println!(
            "{tech:<9}  x coverage {}  ({} sites)   (paper Table 1, 8-bit: 96.22 / 96.38 / 97.43%)",
            pct(cov),
            sites
        );
    }
    println!("Gate-level multiplier faults mask substantially more than truth-table");
    println!("cell faults (cf. table1), closing most of the Table 1 x-row gap.");
}

/// Coverage of the generated multiplier self-checking datapath under
/// correlated (shared-unit) faults: the checking multiplication executes
/// on the same faulty array as the nominal one.
fn mul_coverage(width: u32, tech: Technique) -> (f64, usize) {
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Mul,
        technique: tech,
        width,
    });
    let sites = dp.local_sites();
    let mut total = 0u64;
    let mut undetected = 0u64;
    for site in &sites {
        for value in [false, true] {
            let faults = dp.correlated_fault(*site, value);
            for a in Word::all(width) {
                for b in Word::all(width) {
                    total += 1;
                    let out = dp.netlist.eval_words(&[a, b], &faults);
                    let observable = out[0] != a.wrapping_mul(b);
                    let alarm = out[1].bits() != 0;
                    if observable && !alarm {
                        undetected += 1;
                    }
                }
            }
        }
    }
    (1.0 - undetected as f64 / total as f64, sites.len())
}

/// Coverage of the generated RCA-based self-checking add datapath.
fn rca_coverage(width: u32, tech: Technique) -> (f64, usize) {
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: tech,
        width,
    });
    let sites = dp.local_sites();
    let mut total = 0u64;
    let mut undetected = 0u64;
    for site in &sites {
        for value in [false, true] {
            let faults = dp.correlated_fault(*site, value);
            classify(&dp.netlist, width, &faults, &mut total, &mut undetected);
        }
    }
    (1.0 - undetected as f64 / total as f64, sites.len())
}

/// Coverage of a CLA-based self-checking add datapath, built here from
/// the generator primitives (nominal CLA + two checking CLA subtractors
/// + comparators).
fn cla_coverage(width: u32, tech: Technique) -> (f64, usize) {
    use scdp_netlist::gen::{cla, rca};
    let _ = (cla(width), rca(width)); // ensure generators stay linked
    let (netlist, instances) = build_cla_checked(width, tech);
    // Per-instance-local sites of the first (nominal) instance.
    let inst = &instances[0];
    let gates = netlist.gates();
    let mut sites = Vec::new();
    for offset in 0..(inst.1 - inst.0) {
        let g = gates[inst.0 + offset];
        sites.push(StuckSite {
            gate: offset,
            pin: None,
        });
        for pin in 0..g.kind.pins() {
            sites.push(StuckSite {
                gate: offset,
                pin: Some(pin),
            });
        }
    }
    let mut total = 0u64;
    let mut undetected = 0u64;
    for site in &sites {
        for value in [false, true] {
            let faults: Vec<StuckAtLine> = instances
                .iter()
                .map(|(start, _)| {
                    StuckAtLine::new(
                        StuckSite {
                            gate: start + site.gate,
                            pin: site.pin,
                        },
                        value,
                    )
                })
                .collect();
            classify(&netlist, width, &faults, &mut total, &mut undetected);
        }
    }
    (1.0 - undetected as f64 / total as f64, sites.len())
}

/// Builds `ris = op1 + op2` checked through CLA instances.
fn build_cla_checked(
    width: u32,
    tech: Technique,
) -> (scdp_netlist::Netlist, Vec<(usize, usize)>) {
    use scdp_netlist::gen::neq_into;
    let mut b = NetlistBuilder::new(format!("cla_sck_{width}"));
    let op1 = b.input_bus("op1", width);
    let op2 = b.input_bus("op2", width);
    let mut instances = Vec::new();

    let zero = b.constant(false);
    let start = b.mark();
    let (ris, _) = cla_into_local(&mut b, &op1, &op2, zero);
    instances.push((start, b.mark()));

    let mut alarms = Vec::new();
    if tech.uses_tech1() {
        let n1: Vec<_> = op1.iter().map(|&n| b.not(n)).collect();
        let one = b.constant(true);
        let start = b.mark();
        let (chk, _) = cla_into_local(&mut b, &ris, &n1, one);
        instances.push((start, b.mark()));
        alarms.push(neq_into(&mut b, &chk, &op2));
    }
    if tech.uses_tech2() {
        let n2: Vec<_> = op2.iter().map(|&n| b.not(n)).collect();
        let one = b.constant(true);
        let start = b.mark();
        let (chk, _) = cla_into_local(&mut b, &ris, &n2, one);
        instances.push((start, b.mark()));
        alarms.push(neq_into(&mut b, &chk, &op1));
    }
    let error = b.or_tree(&alarms);
    b.output("ris", &ris);
    b.output("error", &[error]);
    (b.finish(), instances)
}

/// Delegates to the genuine two-level group-lookahead generator.
fn cla_into_local(
    b: &mut NetlistBuilder,
    x: &[scdp_netlist::NetId],
    y: &[scdp_netlist::NetId],
    cin: scdp_netlist::NetId,
) -> (Vec<scdp_netlist::NetId>, scdp_netlist::NetId) {
    scdp_netlist::gen::cla_into(b, x, y, cin)
}

fn classify(
    netlist: &scdp_netlist::Netlist,
    width: u32,
    faults: &[StuckAtLine],
    total: &mut u64,
    undetected: &mut u64,
) {
    for a in Word::all(width) {
        for b in Word::all(width) {
            *total += 1;
            let out = netlist.eval_words(&[a, b], faults);
            let observable = out[0] != a.wrapping_add(b);
            let alarm = out[1].bits() != 0;
            if observable && !alarm {
                *undetected += 1;
            }
        }
    }
}
