//! Sequential restoring divider with a reused faultable subtractor array.

use crate::adder::full_adder;
use crate::{FaultableUnit, Word};
use scdp_fault::{CellKind, FaultUniverse, UnitFault};

/// Quotient and remainder produced by [`RestoringDivider::div_rem`].
///
/// Semantics follow truncating signed division (Rust/C): the quotient
/// rounds toward zero and the remainder takes the dividend's sign, so that
/// `op1 == quotient · op2 + remainder` holds — the identity the paper's
/// `/` checking techniques rely on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DivOutcome {
    /// The (possibly fault-corrupted) quotient.
    pub quotient: Word,
    /// The (possibly fault-corrupted) remainder.
    pub remainder: Word,
}

/// An n-bit sequential restoring divider.
///
/// The datapath consists of an `(n+1)`-bit subtractor (full-adder chain
/// evaluating `R − D` as `R + !D + 1`) and an `(n+1)`-bit restore
/// multiplexer row. Both are **reused across all n iterations**, so a
/// single cell fault perturbs every step of the division — the worst-case
/// single-functional-unit failure of the paper's fault model.
///
/// The restore decision is the subtractor's carry-out (no borrow ⇒ the
/// trial difference is kept and the quotient bit is 1); a fault on the top
/// cell's carry output therefore corrupts quotient *decisions*, which is
/// the classic mechanism that lets a wrong `(quotient, remainder)` pair
/// still satisfy `op1 == q·op2 + r` (with an out-of-range remainder) and
/// escape the paper's Tech1 check — reproducing why division coverage in
/// Table 1 is the lowest of the four operators.
///
/// Signs are handled by fault-free operand conditioning (magnitude
/// extraction and result sign correction), mirroring the paper's
/// fault-free *g*-function convention.
///
/// # Cell map
///
/// Positions `0 ..= n`: full-adder cells of the subtractor (LSB first).
/// Positions `n+1 ..= 2n+1`: restore multiplexer cells (LSB first).
///
/// # Example
///
/// ```
/// use scdp_arith::{RestoringDivider, Word};
///
/// let div = RestoringDivider::new(8);
/// let out = div
///     .div_rem(Word::from_i64(8, -77), Word::from_i64(8, 10), None)
///     .expect("divisor is non-zero");
/// assert_eq!(out.quotient.to_i64(), -7);
/// assert_eq!(out.remainder.to_i64(), -7);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RestoringDivider {
    width: u32,
}

impl RestoringDivider {
    /// Creates a divider for `width`-bit operands.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63 (one extra bit is needed
    /// for the partial remainder).
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=63).contains(&width), "width {width} out of range");
        Self { width }
    }

    /// Divides `a / b`, returning `None` when `b` is zero.
    ///
    /// The optional cell fault is applied to the shared subtractor /
    /// restore-mux array on **every** iteration.
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ from the unit width.
    #[must_use]
    pub fn div_rem(&self, a: Word, b: Word, fault: Option<UnitFault>) -> Option<DivOutcome> {
        assert_eq!(a.width(), self.width, "operand width mismatch");
        assert_eq!(b.width(), self.width, "operand width mismatch");
        if b.bits() == 0 {
            return None;
        }
        let n = self.width;
        // Fault-free operand conditioning: extract magnitudes.
        let a_neg = a.sign();
        let b_neg = b.sign();
        let a_mag = (a.to_i64().unsigned_abs()) & Word::new(n + 1, u64::MAX).bits();
        let b_mag = b.to_i64().unsigned_abs();

        let (fault_pos, cell_fault) = match &fault {
            Some(uf) => (uf.position(), Some(uf.fault())),
            None => (usize::MAX, None),
        };
        let rbits = n + 1; // partial remainder width
        let mux_base = rbits as usize;

        let mut r: u64 = 0;
        let mut q: u64 = 0;
        for step in (0..n).rev() {
            r = ((r << 1) | ((a_mag >> step) & 1)) & ((1u64 << rbits) - 1);
            // Trial subtraction T = R - D on the shared FA chain.
            let mut carry = true;
            let mut t: u64 = 0;
            for i in 0..rbits {
                let ra = (r >> i) & 1 != 0;
                let db = (b_mag >> i) & 1 != 0;
                let cf = if i as usize == fault_pos {
                    cell_fault
                } else {
                    None
                };
                let (s, c) = full_adder(ra, !db, carry, cf.as_ref());
                if s {
                    t |= 1 << i;
                }
                carry = c;
            }
            // Decision: carry-out 1 means no borrow (R >= D).
            let keep = carry;
            q = (q << 1) | u64::from(keep);
            // Restore row: R <- keep ? T : R through mux cells.
            let mut next_r: u64 = 0;
            for i in 0..rbits {
                let old = (r >> i) & 1 != 0;
                let new = (t >> i) & 1 != 0;
                let golden = if keep { new } else { old };
                let pos = mux_base + i as usize;
                let value = if pos == fault_pos {
                    let f = cell_fault.as_ref().expect("fault position matched");
                    let row = u8::from(old) | (u8::from(new) << 1) | (u8::from(keep) << 2);
                    f.apply(row, 0, golden)
                } else {
                    golden
                };
                if value {
                    next_r |= 1 << i;
                }
            }
            r = next_r;
        }

        // Fault-free sign correction.
        let q_word = Word::new(n, q & Word::new(n, u64::MAX).bits());
        let r_word = Word::new(n, r & Word::new(n, u64::MAX).bits());
        let quotient = if a_neg ^ b_neg {
            q_word.wrapping_neg()
        } else {
            q_word
        };
        let remainder = if a_neg { r_word.wrapping_neg() } else { r_word };
        Some(DivOutcome {
            quotient,
            remainder,
        })
    }
}

impl FaultableUnit for RestoringDivider {
    fn width(&self) -> u32 {
        self.width
    }

    fn universe(&self) -> FaultUniverse {
        let rbits = (self.width + 1) as usize;
        let mut sites = Vec::with_capacity(2 * rbits);
        sites.extend(std::iter::repeat_n(CellKind::FullAdder, rbits));
        sites.extend(std::iter::repeat_n(CellKind::Mux2, rbits));
        FaultUniverse::new(sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_matches_golden_exhaustively() {
        for w in [2u32, 3, 4, 5] {
            let div = RestoringDivider::new(w);
            for a in Word::all(w) {
                for b in Word::all(w) {
                    if b.bits() == 0 {
                        assert!(div.div_rem(a, b, None).is_none());
                        continue;
                    }
                    let (gq, gr) = a.wrapping_div_rem(b);
                    let out = div.div_rem(a, b, None).unwrap();
                    assert_eq!(out.quotient, gq, "w={w} {a:?}/{b:?}");
                    assert_eq!(out.remainder, gr, "w={w} {a:?}%{b:?}");
                }
            }
        }
    }

    #[test]
    fn div_matches_golden_sampled_8bit() {
        let div = RestoringDivider::new(8);
        for a in -128i64..128 {
            for b in [-128i64, -17, -3, -1, 1, 2, 9, 127] {
                let aw = Word::from_i64(8, a);
                let bw = Word::from_i64(8, b);
                let (gq, gr) = aw.wrapping_div_rem(bw);
                let out = div.div_rem(aw, bw, None).unwrap();
                assert_eq!(out.quotient, gq, "{a}/{b}");
                assert_eq!(out.remainder, gr, "{a}%{b}");
            }
        }
    }

    #[test]
    fn identity_holds_fault_free() {
        // op1 == q*op2 + r (wrapping), for all non-zero divisors.
        let div = RestoringDivider::new(6);
        for a in Word::all(6) {
            for b in Word::all(6) {
                if b.bits() == 0 {
                    continue;
                }
                let out = div.div_rem(a, b, None).unwrap();
                let recomposed = out.quotient.wrapping_mul(b).wrapping_add(out.remainder);
                assert_eq!(recomposed, a, "{a:?}/{b:?}");
            }
        }
    }

    #[test]
    fn universe_covers_subtractor_and_mux_rows() {
        let div = RestoringDivider::new(8);
        let u = div.universe();
        assert_eq!(u.site_count(), 18); // 9 FA + 9 MUX
        assert_eq!(u.fault_count(), 9 * 32 + 9 * 16);
    }

    #[test]
    fn latent_faults_never_corrupt() {
        let div = RestoringDivider::new(3);
        for uf in div.universe().iter().filter(|f| f.fault().is_latent()) {
            for a in Word::all(3) {
                for b in Word::all(3) {
                    if b.bits() == 0 {
                        continue;
                    }
                    let golden = div.div_rem(a, b, None).unwrap();
                    let faulty = div.div_rem(a, b, Some(uf)).unwrap();
                    assert_eq!(golden, faulty, "{uf}");
                }
            }
        }
    }

    #[test]
    fn some_fault_produces_consistent_wrong_pair() {
        // The masking mechanism behind the paper's <100% division
        // coverage: a wrong (q, r) that still satisfies op1 == q*op2 + r.
        let div = RestoringDivider::new(4);
        let mut found = false;
        'outer: for uf in div.universe().iter() {
            for a in Word::all(4) {
                for b in Word::all(4) {
                    if b.bits() == 0 {
                        continue;
                    }
                    let golden = div.div_rem(a, b, None).unwrap();
                    let faulty = div.div_rem(a, b, Some(uf)).unwrap();
                    if faulty != golden {
                        let recomposed = faulty
                            .quotient
                            .wrapping_mul(b)
                            .wrapping_add(faulty.remainder);
                        if recomposed == a {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(found, "expected at least one consistent-but-wrong division");
    }
}
