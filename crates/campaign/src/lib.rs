//! `scdp-campaign` — the one scenario/campaign surface over both
//! reliability-analysis engines of the reproduction.
//!
//! The paper's central claim is that a single specification-level
//! description (the `Sck<T>` data type plus a technique selection)
//! should drive *every* downstream analysis. Before this crate the repo
//! had two rival campaign APIs: `scdp_coverage::CampaignBuilder`
//! (functional cell-level classification, Table 2) and
//! `scdp_sim::EngineCampaign` (bit-parallel gate-level PPSFP
//! simulation, §4's validation). This crate unifies them:
//!
//! * [`Scenario`] — *what* is analysed: operator, width, check policy
//!   (Table 1 technique), checker allocation, structural realisation.
//! * [`CampaignSpec`] — *how*: backend selection, fault model, input
//!   space (exhaustive / seeded Monte-Carlo), and one [`ExecPolicy`]
//!   value bundling the execution knobs — worker threads, SIMD lane
//!   width, drop policy, equivalence collapsing, telemetry — shared
//!   verbatim by the datapath and sequential spec shapes.
//! * [`CampaignReport`] — one result type for both engines: four-way
//!   situation tallies, per-fault outcomes, detection/safe rates,
//!   simulated-situation counts, wall-clock, and a stable hand-written
//!   JSON serialisation (`scdp.campaign.report/v1`…`v4`) with a full
//!   parser for round-tripping.
//! * [`CampaignError`] — typed validation errors replacing the
//!   engine-room constructors' `assert!`s.
//! * [`ShardPlan`] / [`CampaignRunner`] — deterministic fault-universe
//!   partitioning with per-shard v4 checkpoints, interrupt/resume, and
//!   a [`CampaignReport::merge`] that reproduces the unsharded report
//!   bit for bit.
//!
//! # Bit-comparable backends
//!
//! With [`FaultModel::FaGate`] the gate-level backend replays the
//! functional model's `32·n` full-adder stuck-at universe as equivalent
//! multiple-stuck-at groups on the generated ripple-carry netlist
//! (via `SelfCheckingDatapath::fa_gate_fault_groups`), in the same
//! enumeration order. The same [`Scenario`] run through both backends
//! over the same exhaustive input space then yields **bit-identical**
//! four-way tallies — the paper's §4 "functional campaign, then
//! gate-level validation" flow becomes a machine-checked equality:
//!
//! ```
//! use scdp_campaign::{Backend, FaultModel, Scenario};
//! use scdp_core::{Operator, Technique};
//!
//! let scenario = Scenario::new(Operator::Add, 3).technique(Technique::Tech1);
//! let spec = scenario.campaign().fault_model(FaultModel::FaGate);
//! let functional = spec.clone().run().expect("functional");
//! let gate = spec.backend(Backend::GateLevel).run().expect("gate level");
//! assert_eq!(functional.four_way(), gate.four_way());
//! assert!(functional.same_results(&gate));
//! ```
//!
//! # Migration
//!
//! The deprecated shim constructors (`CampaignBuilder::new`,
//! `EngineCampaign::new`) are removed; the engine-room entries below
//! this surface are `CampaignBuilder::over` and `EngineCampaign::over`.
//! `docs/CAMPAIGN_API.md` has the old-call → new-call table for every
//! rewired bench binary.

#![warn(missing_docs)]

mod collapse;
mod datapath;
mod error;
pub mod json;
mod obs;
mod prune;
mod report;
mod runner;
mod scenario;
mod seq;
mod shard;
mod spec;

pub use datapath::{
    datapath_input_plan, role_label, style_from_label, style_label, DatapathCampaignSpec,
    DatapathScenario, DfgSource, MAX_EXHAUSTIVE_INPUT_BITS,
};
pub use error::CampaignError;
pub use report::{
    drop_from_label, drop_label, duration_from_label, duration_label, CampaignReport,
    DatapathDetails, DeduceDetails, FaultRecord, FuTally, SequentialDetails, REPORT_SCHEMA,
    REPORT_SCHEMA_V2, REPORT_SCHEMA_V3, REPORT_SCHEMA_V4,
};
pub use runner::{CampaignJob, CampaignRunner, RunnerOutcome, ShardState};
pub use scenario::{
    allocation_from_label, allocation_label, op_from_label, realisation_from_label,
    realisation_label, technique_from_label, technique_label, Backend, FaultModel, Scenario,
};
pub use seq::SeqDatapathCampaignSpec;
pub use shard::{config_fingerprint, ShardInfo, ShardPlan};
pub use spec::{CampaignSpec, ExecPolicy, MAX_WIDTH};

// The shared input-space configuration and its batched twin are part of
// the unified surface: campaign front-ends configure an `InputSpace`;
// the gate-level backend converts it with `InputPlan::from_space` (also
// available as `InputPlan::from`). Re-exported so downstream code no
// longer reaches into engine crates for them.
pub use scdp_coverage::{InputSpace, Tally, TechIndex, TechTally};
pub use scdp_netlist::FaultDuration;
pub use scdp_sim::{DropPolicy, InputPlan, Lanes};

// The observability vocabulary is part of the unified surface too:
// every spec shape takes an `EventSink`, and reports embed a
// `TelemetrySnapshot` when telemetry is requested.
pub use scdp_obs::{EventSink, ObsEvent, TelemetrySnapshot};
