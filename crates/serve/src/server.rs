//! The campaign job server: four routes, a bounded worker pool and a
//! fingerprint-keyed result cache backed by the checkpoint directory.
//!
//! ## Layout on disk
//!
//! Every job lives under `<dir>/<id>/` where `<id>` is the job's
//! [`config_fingerprint`](scdp_campaign::CampaignJob::config_fingerprint)
//! in hex — the submission's content address:
//!
//! ```text
//! <dir>/<id>/spec.json       the submitted spec, verbatim
//! <dir>/<id>/shard-NNN.json  CampaignRunner checkpoints (v4)
//! <dir>/<id>/report.json     the merged report — its presence IS the
//!                            cache: written once, served verbatim
//! ```
//!
//! A second `POST /jobs` of the same spec therefore finds the job by
//! id and never re-runs it; a server killed mid-job leaves its shard
//! checkpoints behind, and the startup scan re-enqueues every job
//! directory without a `report.json`, so the resumed run pays only for
//! the missing shards (the runner's fingerprint guard re-runs stale
//! ones) and still merges bit-identical to an unsharded run.

use crate::http::{self, Request};
use crate::jobspec::{self, JobSpec};
use scdp_campaign::json::Json;
use scdp_campaign::{CampaignJob, CampaignRunner, EventSink, ObsEvent};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a server instance is configured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind, e.g. `127.0.0.1:7878` (port `0` picks a
    /// free port; read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// The job-state directory (created if missing).
    pub dir: PathBuf,
    /// How many campaign jobs may run concurrently.
    pub workers: usize,
}

/// Where a job is in its lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Done,
    Failed,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
        }
    }
}

/// The in-memory record of one job.
struct JobState {
    status: Status,
    shards_done: u32,
    shards_total: u32,
    error: Option<String>,
}

impl JobState {
    fn queued(shards: u32) -> Self {
        JobState {
            status: Status::Queued,
            shards_done: 0,
            shards_total: shards,
            error: None,
        }
    }
}

/// State shared by the acceptor, the handlers and the workers.
struct Inner {
    dir: PathBuf,
    jobs: Mutex<HashMap<String, JobState>>,
    queue: Mutex<VecDeque<String>>,
    work: Condvar,
    stop: AtomicBool,
}

/// The campaign job server. [`Server::start`] binds, scans the job
/// directory for unfinished work and returns a [`ServerHandle`].
pub struct Server;

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// The content address of a job: its configuration fingerprint in hex.
#[must_use]
pub fn job_id(job: &CampaignJob) -> String {
    format!("{:016x}", job.config_fingerprint())
}

impl Server {
    /// Binds `config.addr`, re-enqueues every unfinished job found
    /// under `config.dir` and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and socket-bind failures.
    pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
        std::fs::create_dir_all(&config.dir)?;
        let (jobs, queue) = scan_dir(&config.dir);
        let inner = Arc::new(Inner {
            dir: config.dir.clone(),
            jobs: Mutex::new(jobs),
            queue: Mutex::new(queue),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if inner.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let inner = Arc::clone(&inner);
                    std::thread::spawn(move || handle_connection(&inner, stream));
                }
            })
        };
        Ok(ServerHandle {
            addr,
            inner,
            acceptor,
            workers,
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server is shut down from another thread (or
    /// forever — the `scdp serve` foreground mode).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Stops accepting, drains the worker pool (running jobs finish
    /// their current shard set; their checkpoints survive for the next
    /// start) and joins every thread.
    pub fn shutdown(self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        // Unblock the acceptor's blocking `incoming()` call.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }
}

/// Registers finished jobs and re-enqueues unfinished ones from a
/// previous server life. Directories whose name does not match their
/// spec's fingerprint are foreign and skipped.
fn scan_dir(dir: &Path) -> (HashMap<String, JobState>, VecDeque<String>) {
    let mut jobs = HashMap::new();
    let mut queue = VecDeque::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (jobs, queue);
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    paths.sort();
    for path in paths {
        let Some(id) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(path.join("spec.json")) else {
            continue;
        };
        let Ok(spec) = jobspec::parse(&text) else {
            continue;
        };
        if job_id(&spec.job) != id {
            continue;
        }
        if path.join("report.json").is_file() {
            jobs.insert(
                id.to_string(),
                JobState {
                    status: Status::Done,
                    shards_done: spec.shards,
                    shards_total: spec.shards,
                    error: None,
                },
            );
        } else {
            jobs.insert(id.to_string(), JobState::queued(spec.shards));
            queue.push_back(id.to_string());
        }
    }
    (jobs, queue)
}

/// One worker: pop a job id, run it through the checkpointing runner,
/// publish the merged report.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = inner.work.wait(queue).unwrap();
            }
        };
        if let Some(entry) = inner.jobs.lock().unwrap().get_mut(&id) {
            entry.status = Status::Running;
        }
        let result = execute(inner, &id);
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(&id) else {
            continue;
        };
        match result {
            Ok(()) => {
                entry.status = Status::Done;
                entry.shards_done = entry.shards_total;
            }
            Err(message) => {
                entry.status = Status::Failed;
                entry.error = Some(message);
            }
        }
    }
}

/// Runs one job to completion: rebuild the [`CampaignJob`] from its
/// persisted spec, run (or resume) every shard with checkpoints in the
/// job directory, then atomically publish `report.json`.
fn execute(inner: &Arc<Inner>, id: &str) -> Result<(), String> {
    let dir = inner.dir.join(id);
    let text = std::fs::read_to_string(dir.join("spec.json"))
        .map_err(|e| format!("read persisted spec: {e}"))?;
    let JobSpec { job, shards } = jobspec::parse(&text).map_err(|e| e.to_string())?;
    let outcome = CampaignRunner::new(job, shards)
        .checkpoint_dir(&dir)
        .events(progress_sink(inner, id))
        .run()
        .map_err(|e| e.to_string())?;
    let report = outcome
        .report
        .ok_or("runner returned an incomplete sweep")?;
    // Write-then-rename so `report.json` — the cache marker — only
    // ever exists complete.
    let tmp = dir.join("report.json.tmp");
    std::fs::write(&tmp, report.to_json()).map_err(|e| format!("write report: {e}"))?;
    std::fs::rename(&tmp, dir.join("report.json")).map_err(|e| format!("publish report: {e}"))?;
    Ok(())
}

/// An [`EventSink`] that folds the runner's `shard_finished` events
/// into the job's progress counter (resumed shards count too; budget
/// `pending` ones do not, though the server never sets a budget).
fn progress_sink(inner: &Arc<Inner>, id: &str) -> EventSink {
    let inner = Arc::clone(inner);
    let id = id.to_string();
    Arc::new(move |event: &ObsEvent| {
        if let ObsEvent::ShardFinished { state, .. } = event {
            if state != "pending" {
                if let Some(entry) = inner.jobs.lock().unwrap().get_mut(&id) {
                    entry.shards_done += 1;
                }
            }
        }
    })
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let (status, body) = match http::read_request(&mut stream) {
        Ok(request) => route(inner, &request),
        Err(e) => (e.status(), error_body(&e.to_string())),
    };
    let _ = http::write_response(&mut stream, status, &body);
}

/// The route table. Unknown paths are 404, known paths with the wrong
/// method are 405 — both as typed JSON errors.
fn route(inner: &Arc<Inner>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
        ("POST", "/jobs") => handle_submit(inner, &request.body),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                if method != "GET" {
                    return (405, error_body(&format!("{method} not allowed on {path}")));
                }
                return match rest.strip_suffix("/report") {
                    Some(id) => handle_report(inner, id),
                    None => handle_status(inner, rest),
                };
            }
            if path == "/healthz" || path == "/jobs" {
                return (405, error_body(&format!("{method} not allowed on {path}")));
            }
            (404, error_body(&format!("no route for `{path}`")))
        }
    }
}

/// `POST /jobs`: parse, content-address, dedupe, enqueue.
fn handle_submit(inner: &Arc<Inner>, body: &[u8]) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, error_body("request body is not UTF-8"));
    };
    let spec = match jobspec::parse(text) {
        Ok(spec) => spec,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let id = job_id(&spec.job);
    let mut jobs = inner.jobs.lock().unwrap();
    if let Some(entry) = jobs.get(&id) {
        return (200, submit_body(&id, entry.status.label(), "hit"));
    }
    let dir = inner.dir.join(&id);
    let persisted = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(dir.join("spec.json"), text.as_bytes()));
    if let Err(e) = persisted {
        return (500, error_body(&format!("persist spec: {e}")));
    }
    jobs.insert(id.clone(), JobState::queued(spec.shards));
    drop(jobs);
    inner.queue.lock().unwrap().push_back(id.clone());
    inner.work.notify_one();
    (201, submit_body(&id, "queued", "miss"))
}

/// `GET /jobs/<id>`: the job's lifecycle state and shard progress.
fn handle_status(inner: &Arc<Inner>, id: &str) -> (u16, String) {
    let jobs = inner.jobs.lock().unwrap();
    match jobs.get(id) {
        None => (404, error_body(&format!("unknown job `{id}`"))),
        Some(state) => (200, status_body(id, state)),
    }
}

/// `GET /jobs/<id>/report`: the merged report, byte-verbatim from
/// disk so every cache hit is byte-identical to the first response.
fn handle_report(inner: &Arc<Inner>, id: &str) -> (u16, String) {
    let state = {
        let jobs = inner.jobs.lock().unwrap();
        match jobs.get(id) {
            None => return (404, error_body(&format!("unknown job `{id}`"))),
            Some(s) => (s.status, s.error.clone()),
        }
    };
    match state {
        (Status::Done, _) => {
            match std::fs::read_to_string(inner.dir.join(id).join("report.json")) {
                Ok(report) => (200, report),
                Err(e) => (500, error_body(&format!("read report: {e}"))),
            }
        }
        (Status::Failed, error) => (
            409,
            error_body(&format!(
                "job `{id}` failed: {}",
                error.as_deref().unwrap_or("unknown error")
            )),
        ),
        (status, _) => (
            409,
            error_body(&format!("job `{id}` is not finished ({})", status.label())),
        ),
    }
}

/// `{"error":{"message":...}}` with proper string escaping.
fn error_body(message: &str) -> String {
    Json::Obj(vec![(
        "error".to_string(),
        Json::Obj(vec![(
            "message".to_string(),
            Json::Str(message.to_string()),
        )]),
    )])
    .write_compact()
}

/// The `POST /jobs` response: id, lifecycle state and cache verdict.
fn submit_body(id: &str, status: &str, cache: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("status".to_string(), Json::Str(status.to_string())),
        ("cache".to_string(), Json::Str(cache.to_string())),
    ])
    .write_compact()
}

/// The `GET /jobs/<id>` response.
fn status_body(id: &str, state: &JobState) -> String {
    let mut members = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        (
            "status".to_string(),
            Json::Str(state.status.label().to_string()),
        ),
        (
            "shards".to_string(),
            Json::Obj(vec![
                ("done".to_string(), Json::Int(i128::from(state.shards_done))),
                (
                    "total".to_string(),
                    Json::Int(i128::from(state.shards_total)),
                ),
            ]),
        ),
    ];
    if let Some(error) = &state.error {
        members.push(("error".to_string(), Json::Str(error.clone())));
    }
    Json::Obj(members).write_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_bodies_are_valid_json() {
        for body in [
            error_body("quote \" and backslash \\"),
            submit_body("abc", "queued", "miss"),
            status_body(
                "abc",
                &JobState {
                    status: Status::Failed,
                    shards_done: 1,
                    shards_total: 4,
                    error: Some("boom".to_string()),
                },
            ),
        ] {
            scdp_campaign::json::parse(&body).expect("server JSON re-parses");
        }
    }

    #[test]
    fn job_ids_are_stable_hex_fingerprints() {
        let spec = jobspec::parse(r#"{"kind":"operator","width":3}"#).expect("spec");
        let id = job_id(&spec.job);
        assert_eq!(id.len(), 16);
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(id, job_id(&spec.job), "deterministic");
    }
}
