//! `scdp-serve` — the campaign job server behind `scdp serve`.
//!
//! A long-running process that computes each graded campaign point
//! once and serves it many times: hand-rolled HTTP/1.1 + JSON over
//! [`std::net::TcpListener`] (no dependencies, consistent with the
//! workspace's offline policy), a bounded worker pool executing
//! [`scdp_campaign::CampaignRunner`] jobs, and a content-addressed
//! result cache keyed by the job's configuration fingerprint.
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /jobs` | submit a spec; returns the job id and a cache verdict |
//! | `GET /jobs/<id>` | lifecycle state + per-shard progress |
//! | `GET /jobs/<id>/report` | the merged report, byte-verbatim |
//! | `GET /healthz` | liveness probe |
//!
//! Because the cache and the checkpoints share the job directory, a
//! killed server resumes its in-flight jobs on restart through the
//! runner's fingerprint-guarded resume — see [`server`] for the
//! on-disk layout.
//!
//! ```no_run
//! use scdp_serve::{Server, ServerConfig};
//!
//! let handle = Server::start(&ServerConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     dir: "scdp-jobs".into(),
//!     workers: 2,
//! })
//! .expect("bind");
//! println!("listening on {}", handle.addr());
//! handle.join();
//! ```

pub mod client;
pub mod http;
pub mod jobspec;
pub mod server;

pub use jobspec::JobSpec;
pub use server::{job_id, Server, ServerConfig, ServerHandle};
