//! Dataflow-graph IR for loop bodies.

use std::fmt;

/// Identifier of a DFG node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Dense index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Operation kinds of DFG nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Loop-invariant or loop-carried input value.
    Input(String),
    /// Integer constant.
    Const(i64),
    /// Named result (no hardware; marks liveness to the loop edge).
    Output(String),
    /// Addition (ALU).
    Add,
    /// Subtraction (ALU).
    Sub,
    /// Negation (ALU).
    Neg,
    /// Multiplication (multiplier, multi-cycle).
    Mul,
    /// Division (divider, multi-cycle).
    Div,
    /// Remainder (divider, multi-cycle).
    Rem,
    /// Memory read from bank `bank` (memory port).
    Load {
        /// Memory bank index.
        bank: usize,
    },
    /// Memory write to bank `bank` (memory port).
    Store {
        /// Memory bank index.
        bank: usize,
    },
    /// Disequality comparator (checker logic, chained — zero latency).
    CmpNe,
    /// Single-bit OR (error accumulation, chained — zero latency).
    OrBit,
}

impl OpKind {
    /// `true` for operator nodes that the SCK mechanism can check.
    #[must_use]
    pub fn is_checkable(&self) -> bool {
        matches!(self, OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div)
    }

    /// `true` for zero-latency checker logic chained into its producer's
    /// cycle.
    #[must_use]
    pub fn is_chained(&self) -> bool {
        matches!(self, OpKind::CmpNe | OpKind::OrBit)
    }

    /// `true` for nodes that occupy no datapath resource at all.
    #[must_use]
    pub fn is_virtual(&self) -> bool {
        matches!(
            self,
            OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_)
        )
    }
}

/// Whether a node belongs to the nominal computation or to the hidden
/// checking operations inserted by the SCK expansion.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Role {
    /// User-visible computation.
    #[default]
    Nominal,
    /// Hidden checking operation.
    Checker,
}

/// One DFG node.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operation.
    pub kind: OpKind,
    /// Data predecessors.
    pub args: Vec<NodeId>,
    /// Nominal or checker role.
    pub role: Role,
    /// For checker nodes: the nominal node being checked.
    pub check_of: Option<NodeId>,
}

/// A dataflow graph describing one loop body (acyclic by construction:
/// nodes may only reference already-created nodes).
#[derive(Clone, Debug)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty DFG named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    fn push(&mut self, node: Node) -> NodeId {
        for a in &node.args {
            assert!(a.0 < self.nodes.len(), "argument {a} does not exist");
        }
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an input node.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node {
            kind: OpKind::Input(name.into()),
            args: Vec::new(),
            role: Role::Nominal,
            check_of: None,
        })
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: i64) -> NodeId {
        self.push(Node {
            kind: OpKind::Const(value),
            args: Vec::new(),
            role: Role::Nominal,
            check_of: None,
        })
    }

    /// Adds an operation node with [`Role::Nominal`].
    ///
    /// # Panics
    ///
    /// Panics if any argument does not exist.
    pub fn op(&mut self, kind: OpKind, args: &[NodeId]) -> NodeId {
        self.push(Node {
            kind,
            args: args.to_vec(),
            role: Role::Nominal,
            check_of: None,
        })
    }

    /// Adds a checker node attached to nominal node `of`.
    ///
    /// # Panics
    ///
    /// Panics if any argument or `of` does not exist.
    pub fn checker_op(&mut self, kind: OpKind, args: &[NodeId], of: NodeId) -> NodeId {
        assert!(of.0 < self.nodes.len(), "checked node {of} does not exist");
        self.push(Node {
            kind,
            args: args.to_vec(),
            role: Role::Checker,
            check_of: Some(of),
        })
    }

    /// Marks `value` as a named output.
    pub fn output(&mut self, name: impl Into<String>, value: NodeId) -> NodeId {
        self.push(Node {
            kind: OpKind::Output(name.into()),
            args: vec![value],
            role: Role::Nominal,
            check_of: None,
        })
    }

    /// Users (consumers) of each node.
    #[must_use]
    pub fn users(&self) -> Vec<Vec<NodeId>> {
        let mut users = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for a in &n.args {
                users[a.0].push(NodeId(i));
            }
        }
        users
    }

    /// Counts nodes per operation kind discriminant (for reports).
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(String, usize)> {
        let mut hist: Vec<(String, usize)> = Vec::new();
        for n in &self.nodes {
            let key = match &n.kind {
                OpKind::Input(_) => "input".to_string(),
                OpKind::Const(_) => "const".to_string(),
                OpKind::Output(_) => "output".to_string(),
                OpKind::Load { .. } => "load".to_string(),
                OpKind::Store { .. } => "store".to_string(),
                k => format!("{k:?}").to_lowercase(),
            };
            match hist.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => hist.push((key, 1)),
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_topologically() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let s = d.op(OpKind::Add, &[a, b]);
        let o = d.output("s", s);
        assert_eq!(d.len(), 4);
        assert_eq!(d.node(s).args, vec![a, b]);
        assert!(matches!(d.node(o).kind, OpKind::Output(_)));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn rejects_forward_reference() {
        let mut d = Dfg::new("t");
        let _ = d.op(OpKind::Add, &[NodeId(5), NodeId(6)]);
    }

    #[test]
    fn users_are_tracked() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let s1 = d.op(OpKind::Add, &[a, a]);
        let s2 = d.op(OpKind::Sub, &[s1, a]);
        let users = d.users();
        assert_eq!(users[a.index()].len(), 3); // twice in s1, once in s2
        assert_eq!(users[s1.index()], vec![s2]);
    }

    #[test]
    fn checker_metadata() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let s = d.op(OpKind::Add, &[a, b]);
        let c = d.checker_op(OpKind::Sub, &[s, a], s);
        assert_eq!(d.node(c).role, Role::Checker);
        assert_eq!(d.node(c).check_of, Some(s));
        assert_eq!(d.node(s).role, Role::Nominal);
    }

    #[test]
    fn histogram() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let _ = d.op(OpKind::Add, &[a, b]);
        let _ = d.op(OpKind::Add, &[a, b]);
        let hist = d.op_histogram();
        assert!(hist.contains(&("add".to_string(), 2)));
        assert!(hist.contains(&("input".to_string(), 2)));
    }

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Add.is_checkable());
        assert!(!OpKind::CmpNe.is_checkable());
        assert!(OpKind::CmpNe.is_chained());
        assert!(OpKind::Input("x".into()).is_virtual());
        assert!(!OpKind::Mul.is_virtual());
    }
}
