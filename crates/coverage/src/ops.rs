//! Per-operator situation classifiers.
//!
//! Each classifier computes the nominal faulty result and the Tech1/Tech2
//! checking values in a single pass (the Both column is the OR of the two
//! detections), matching the checked-operator semantics of `scdp-core`
//! exactly (asserted by cross-validation tests).

use scdp_arith::{ArrayMultiplier, RcaFault, RestoringDivider, RippleCarryAdder, Word};
use scdp_core::Allocation;
use scdp_fault::UnitFault;

/// Verdict of one fault situation, all technique columns at once.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TriVerdict {
    /// `true` if the nominal (user-visible) result is wrong.
    pub observable: bool,
    /// Tech1 check fired.
    pub det1: bool,
    /// Tech2 check fired.
    pub det2: bool,
}

impl TriVerdict {
    /// Detection of the combined technique.
    #[must_use]
    pub fn det_both(&self) -> bool {
        self.det1 || self.det2
    }
}

#[inline]
fn checker_fault(fault: Option<RcaFault>, alloc: Allocation) -> Option<RcaFault> {
    match alloc {
        Allocation::SingleUnit => fault,
        Allocation::Dedicated => None,
    }
}

/// Classifies `ris = a + b` under an adder fault (Table 2 semantics).
///
/// * Tech1: `op2' = ris − op1` on the checker adder, alarm if `op2' != op2`.
/// * Tech2: `op1' = ris − op2`, alarm if `op1' != op1`.
#[must_use]
pub fn classify_add(
    adder: &RippleCarryAdder,
    fault: RcaFault,
    alloc: Allocation,
    a: Word,
    b: Word,
) -> TriVerdict {
    let golden = a.wrapping_add(b);
    let ris = adder.add(a, b, Some(fault));
    let cf = checker_fault(Some(fault), alloc);
    let op2p = adder.sub(ris, a, cf);
    let op1p = adder.sub(ris, b, cf);
    TriVerdict {
        observable: ris != golden,
        det1: op2p != b,
        det2: op1p != a,
    }
}

/// Classifies `ris = a − b` under an adder fault (subtraction shares the
/// adder's cells through the *g*-function).
///
/// * Tech1: `op1' = ris + op2`, alarm if `op1' != op1`.
/// * Tech2: `ris' = op2 − op1`, alarm if `ris + ris' != 0` (the zero-check
///   addition also runs on the checker adder).
#[must_use]
pub fn classify_sub(
    adder: &RippleCarryAdder,
    fault: RcaFault,
    alloc: Allocation,
    a: Word,
    b: Word,
) -> TriVerdict {
    let golden = a.wrapping_sub(b);
    let ris = adder.sub(a, b, Some(fault));
    let cf = checker_fault(Some(fault), alloc);
    let op1p = adder.add(ris, b, cf);
    let risp = adder.sub(b, a, cf);
    let zero = adder.add(ris, risp, cf);
    TriVerdict {
        observable: ris != golden,
        det1: op1p != a,
        det2: zero.bits() != 0,
    }
}

/// Classifies `ris = a × b` under a multiplier fault.
///
/// * Tech1: `ris' = (−op1) × op2` on the checker multiplier, alarm if
///   `ris + ris' != 0`;
/// * Tech2: `ris' = op1 × (−op2)`, alarm if `ris + ris' != 0`.
///
/// Negation is the fault-free *g*-function and the zero-check addition
/// runs on the adder — a different functional unit, hence fault-free
/// under the single-unit failure model.
#[must_use]
pub fn classify_mul(
    mult: &ArrayMultiplier,
    fault: UnitFault,
    alloc: Allocation,
    a: Word,
    b: Word,
) -> TriVerdict {
    let golden = a.wrapping_mul(b);
    let ris = mult.mul(a, b, Some(fault));
    let cf = match alloc {
        Allocation::SingleUnit => Some(fault),
        Allocation::Dedicated => None,
    };
    let ris1 = mult.mul(a.wrapping_neg(), b, cf);
    let ris2 = mult.mul(a, b.wrapping_neg(), cf);
    TriVerdict {
        observable: ris != golden,
        det1: ris.wrapping_add(ris1).bits() != 0,
        det2: ris.wrapping_add(ris2).bits() != 0,
    }
}

/// Where the fault sits for a division campaign.
///
/// Division is checked through multiplication; in the worst case
/// (monoprocessor / combined multiply-divide unit) the checking
/// multiplications execute on faulty hardware too, so the division fault
/// universe is the union of divider-part and multiplier-part faults.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DivFaultSite {
    /// Fault in the restoring-divider array (hits `/` and `%`).
    Divider(UnitFault),
    /// Fault in the multiplier part (hits the checking `×`).
    Multiplier(UnitFault),
}

/// Classifies `ris = a / b` (with `r = a % b` from the same unit) under a
/// fault in the combined multiply-divide unit.
///
/// * Tech1: `op1' = ris × op2 + (a % b)`, alarm if `op1' != op1`;
/// * Tech2: `op1' = −ris × op2 − (a % b)`, alarm if `op1' != −op1`.
///
/// The recomposition additions/subtractions run on the (fault-free)
/// adder. Inputs with `b == 0` must be excluded by the caller.
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn classify_div(
    div: &RestoringDivider,
    mult: &ArrayMultiplier,
    fault: DivFaultSite,
    alloc: Allocation,
    a: Word,
    b: Word,
) -> TriVerdict {
    assert!(b.bits() != 0, "divisor must be non-zero");
    let (gq, _gr) = a.wrapping_div_rem(b);
    let div_fault = match fault {
        DivFaultSite::Divider(uf) => Some(uf),
        DivFaultSite::Multiplier(_) => None,
    };
    let mul_fault = match (fault, alloc) {
        (DivFaultSite::Multiplier(uf), Allocation::SingleUnit) => Some(uf),
        _ => None,
    };
    let out = div.div_rem(a, b, div_fault).expect("non-zero divisor");
    let (q, r) = (out.quotient, out.remainder);
    // Tech1: op1' = q*b + r
    let m1 = mult.mul(q, b, mul_fault);
    let op1p1 = m1.wrapping_add(r);
    // Tech2: op1' = (-q)*b - r, compared against -a
    let m2 = mult.mul(q.wrapping_neg(), b, mul_fault);
    let op1p2 = m2.wrapping_sub(r);
    TriVerdict {
        observable: q != gq,
        det1: op1p1 != a,
        det2: op1p2 != a.wrapping_neg(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::FaultableUnit;
    use scdp_core::{
        checked_add, checked_div_rem, checked_mul, checked_sub, FaultSite, FaultyDataPath,
        Technique,
    };
    use scdp_fault::{FaGateFault, FaSite};

    /// The classifier must agree with `scdp-core`'s checked operators for
    /// every technique, fault and input (cross-validation on a 3-bit
    /// space, gate faults).
    #[test]
    fn classify_add_matches_core_checked_add() {
        let width = 3;
        let adder = RippleCarryAdder::new(width);
        for alloc in [Allocation::SingleUnit, Allocation::Dedicated] {
            for fault in adder.gate_faults() {
                for a in Word::all(width) {
                    for b in Word::all(width) {
                        let v = classify_add(&adder, fault, alloc, a, b);
                        let mut dp = FaultyDataPath::new(width, FaultSite::Adder(fault), alloc);
                        let c1 = checked_add(&mut dp, Technique::Tech1, a, b);
                        let mut dp = FaultyDataPath::new(width, FaultSite::Adder(fault), alloc);
                        let c2 = checked_add(&mut dp, Technique::Tech2, a, b);
                        assert_eq!(v.det1, c1.error, "{fault:?} {a:?} {b:?}");
                        assert_eq!(v.det2, c2.error, "{fault:?} {a:?} {b:?}");
                        assert_eq!(v.observable, c1.value != a.wrapping_add(b));
                    }
                }
            }
        }
    }

    #[test]
    fn classify_sub_matches_core_checked_sub() {
        let width = 3;
        let adder = RippleCarryAdder::new(width);
        for fault in adder.gate_faults().take(64) {
            for a in Word::all(width) {
                for b in Word::all(width) {
                    let v = classify_sub(&adder, fault, Allocation::SingleUnit, a, b);
                    let mut dp =
                        FaultyDataPath::new(width, FaultSite::Adder(fault), Allocation::SingleUnit);
                    let c1 = checked_sub(&mut dp, Technique::Tech1, a, b);
                    let mut dp =
                        FaultyDataPath::new(width, FaultSite::Adder(fault), Allocation::SingleUnit);
                    let c2 = checked_sub(&mut dp, Technique::Tech2, a, b);
                    assert_eq!(v.det1, c1.error, "{fault:?} {a:?} {b:?}");
                    assert_eq!(v.det2, c2.error, "{fault:?} {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn classify_mul_matches_core_checked_mul() {
        let width = 3;
        let mult = ArrayMultiplier::new(width);
        for fault in mult.universe().iter().take(80) {
            for a in Word::all(width) {
                for b in Word::all(width) {
                    let v = classify_mul(&mult, fault, Allocation::SingleUnit, a, b);
                    let mut dp = FaultyDataPath::new(
                        width,
                        FaultSite::Multiplier(fault),
                        Allocation::SingleUnit,
                    );
                    let c1 = checked_mul(&mut dp, Technique::Tech1, a, b);
                    let mut dp = FaultyDataPath::new(
                        width,
                        FaultSite::Multiplier(fault),
                        Allocation::SingleUnit,
                    );
                    let c2 = checked_mul(&mut dp, Technique::Tech2, a, b);
                    assert_eq!(v.det1, c1.error, "{fault} {a:?} {b:?}");
                    assert_eq!(v.det2, c2.error, "{fault} {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn classify_div_divider_fault_matches_core() {
        let width = 3;
        let div = RestoringDivider::new(width);
        let mult = ArrayMultiplier::new(width);
        for fault in div.universe().iter().take(60) {
            for a in Word::all(width) {
                for b in Word::all(width).filter(|b| b.bits() != 0) {
                    let v = classify_div(
                        &div,
                        &mult,
                        DivFaultSite::Divider(fault),
                        Allocation::SingleUnit,
                        a,
                        b,
                    );
                    let mut dp = FaultyDataPath::new(
                        width,
                        FaultSite::Divider(fault),
                        Allocation::SingleUnit,
                    );
                    let (c1, _) = checked_div_rem(&mut dp, Technique::Tech1, a, b);
                    assert_eq!(v.det1, c1.error, "{fault} {a:?}/{b:?}");
                }
            }
        }
    }

    #[test]
    fn dedicated_add_has_full_coverage() {
        // §2.1: with different functional units, every observable error
        // is detected (the inverse op is computed correctly).
        let width = 4;
        let adder = RippleCarryAdder::new(width);
        for fault in adder.gate_faults() {
            for a in Word::all(width) {
                for b in Word::all(width) {
                    let v = classify_add(&adder, fault, Allocation::Dedicated, a, b);
                    if v.observable {
                        assert!(v.det1 && v.det2, "{fault:?} {a:?} {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn gate_fault_on_sum_line_is_always_caught_by_tech1() {
        let adder = RippleCarryAdder::new(2);
        let fault = RcaFault::Gate {
            position: 0,
            fault: FaGateFault::new(FaSite::Sum, true),
        };
        // a=0,b=0: ris = 1 (wrong). Check: ris-0 = 1 with faulty adder...
        let v = classify_add(
            &adder,
            fault,
            Allocation::SingleUnit,
            Word::zero(2),
            Word::zero(2),
        );
        assert!(v.observable);
    }
}
