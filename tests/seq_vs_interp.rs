//! Property-based differential harness: the cycle-accurate sequential
//! engine must be bit-identical to the word-level DFG interpreter on
//! fault-free runs.
//!
//! Every case runs one loop body through the full pipeline — SCK
//! expansion (workload cases), list scheduling, binding, sequential
//! elaboration ([`elaborate_seq_datapath`]), packed multi-cycle
//! simulation ([`SeqEngine`]) — and compares all 64 lanes of a random
//! input batch, output bus by output bus, against
//! [`interpret_dfg`]. The sweep covers the four built-in workloads ×
//! techniques × styles × widths (72 cases) plus 184 seeded random
//! DFGs (160 plain + 24 SCK-expanded): 256 cases in all, each
//! reproducible from its printed seed.

use scdp::campaign::{DatapathScenario, DfgSource};
use scdp::hls::testgen::{random_dfg, random_resources, DfgGenConfig};
use scdp::hls::{bind, sched, BindOptions, ComponentLibrary, Dfg, SckStyle};
use scdp::netlist::gen::{elaborate_seq_datapath, interpret_dfg, SeqDatapath};
use scdp::netlist::Word;
use scdp::rng::{Rng, Xoshiro256StarStar};
use scdp::sim::{InputBatch, SeqEngine, LANES};
use scdp::Technique;

/// Packs `words[bus][lane]` into the engine's bit-sliced batch format.
fn pack_batch(words: &[Vec<Word>]) -> InputBatch {
    let lanes = words.first().map_or(0, Vec::len);
    let mut bits = Vec::new();
    for bus in words {
        assert_eq!(bus.len(), lanes);
        let width = bus[0].width();
        for bit in 0..width {
            let mut packed = 0u64;
            for (lane, w) in bus.iter().enumerate() {
                if w.bit(bit) {
                    packed |= 1 << lane;
                }
            }
            bits.push(packed);
        }
    }
    InputBatch { bits, len: lanes }
}

/// Runs one differential case: 64 random vectors through the packed
/// sequential engine vs the interpreter. Returns the case count (1).
fn check_case(tag: &str, dfg: &Dfg, dp: &SeqDatapath, width: u32, seed: u64) -> usize {
    let engine = SeqEngine::new(&dp.netlist);
    let mut rng = Xoshiro256StarStar::from_seed(seed ^ 0xD1FF_7E57);
    let buses = dp.netlist.inputs().len();
    let words: Vec<Vec<Word>> = (0..buses)
        .map(|_| {
            (0..LANES)
                .map(|_| Word::new(width, rng.next_u64()))
                .collect()
        })
        .collect();
    let batch = pack_batch(&words);
    let mut values = Vec::new();
    let mut state = Vec::new();
    let out = engine.run_batch_into(&batch, None, dp.total_cycles, &mut values, &mut state);
    assert_eq!(out.alarm, 0, "{tag}: fault-free alarm fired");
    for lane in 0..LANES {
        let inputs: Vec<Word> = words.iter().map(|bus| bus[lane]).collect();
        let ev = interpret_dfg(dfg, width, &inputs);
        assert!(!ev.alarm, "{tag}: interpreter alarm on fault-free inputs");
        let mut result_idx = 0usize;
        for (name, nets) in engine.outputs() {
            if name == "error" {
                continue;
            }
            let mut got = 0u64;
            for (i, &net) in nets.iter().enumerate() {
                if (values[net as usize] >> lane) & 1 != 0 {
                    got |= 1 << i;
                }
            }
            let expect = ev.results[result_idx];
            assert_eq!(
                got,
                expect.bits(),
                "{tag}: lane {lane} output `{name}` mismatch (seed {seed})"
            );
            result_idx += 1;
        }
        assert_eq!(result_idx, ev.results.len(), "{tag}: result bus count");
    }
    1
}

#[test]
fn workloads_match_interpreter_across_techniques_styles_widths() {
    let mut cases = 0usize;
    for source in DfgSource::BUILTIN {
        for technique in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
                for width in [2u32, 3] {
                    let scenario = DatapathScenario::new(source.clone(), width)
                        .technique(technique)
                        .style(style);
                    let dfg = scenario.expanded();
                    let dp = scenario.elaborate_seq();
                    let tag = format!("{}/{technique:?}/{style:?}/w{width}", source.label());
                    let seed = u64::from(width) ^ (cases as u64) << 8;
                    cases += check_case(&tag, &dfg, &dp, width, seed);
                }
            }
        }
    }
    assert_eq!(
        cases, 72,
        "4 workloads x 3 techniques x 3 styles x 2 widths"
    );
}

#[test]
fn random_dfgs_match_interpreter() {
    let lib = ComponentLibrary::virtex16();
    let mut cases = 0usize;
    for seed in 0..160u64 {
        let cfg = DfgGenConfig {
            max_ops: 8,
            // Divider cores dominate gate counts; keep them to a third
            // of the sweep so the whole run stays fast.
            allow_div: seed % 3 == 0,
            allow_mem: seed % 2 == 0,
        };
        let dfg = random_dfg(seed, &cfg);
        let width = 2 + (seed % 3) as u32; // 2..=4
        let resources = random_resources(seed);
        let schedule = sched::list_schedule(&dfg, &lib, &resources);
        let binding = bind(&dfg, &schedule, &lib, BindOptions::default());
        let dp = elaborate_seq_datapath(&dfg, &schedule, &binding, width);
        cases += check_case(&format!("rand{seed}/w{width}"), &dfg, &dp, width, seed);
    }
    assert_eq!(cases, 160);
}

#[test]
fn random_dfgs_with_checkers_match_interpreter() {
    // Random graphs through the SCK expansion too: checker scheduling
    // and the gated sticky alarms must stay silent fault-free.
    let lib = ComponentLibrary::virtex16();
    let mut cases = 0usize;
    for seed in 1000..1024u64 {
        let cfg = DfgGenConfig {
            max_ops: 5,
            allow_div: false,
            allow_mem: seed % 2 == 0,
        };
        let body = random_dfg(seed, &cfg);
        let dfg = scdp::hls::expand_sck(&body, Technique::Both, SckStyle::Full);
        let width = 2 + (seed % 2) as u32;
        let resources = random_resources(seed);
        let schedule = sched::list_schedule(&dfg, &lib, &resources);
        let binding = bind(&dfg, &schedule, &lib, BindOptions::default());
        let dp = elaborate_seq_datapath(&dfg, &schedule, &binding, width);
        cases += check_case(&format!("sck_rand{seed}/w{width}"), &dfg, &dp, width, seed);
    }
    assert_eq!(cases, 24);
}
