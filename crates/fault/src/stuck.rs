//! Gate-level single stuck-at faults for structural netlists.

use std::fmt;

/// A single stuck-at fault on a netlist line.
///
/// The line is identified by an opaque `usize` id assigned by the netlist
/// substrate (`scdp-netlist`); this crate only carries the fault
/// description so that campaign drivers can be written independently of
/// the circuit representation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StuckAt {
    line: usize,
    value: bool,
}

impl StuckAt {
    /// Creates a stuck-at-`value` fault on `line`.
    #[must_use]
    pub const fn new(line: usize, value: bool) -> Self {
        Self { line, value }
    }

    /// Stuck-at-0 on `line`.
    #[must_use]
    pub const fn sa0(line: usize) -> Self {
        Self::new(line, false)
    }

    /// Stuck-at-1 on `line`.
    #[must_use]
    pub const fn sa1(line: usize) -> Self {
        Self::new(line, true)
    }

    /// The affected line id.
    #[must_use]
    pub const fn line(&self) -> usize {
        self.line
    }

    /// The stuck value.
    #[must_use]
    pub const fn value(&self) -> bool {
        self.value
    }

    /// Enumerates both polarities for every line in `0..lines`.
    pub fn enumerate(lines: usize) -> impl Iterator<Item = StuckAt> {
        (0..lines).flat_map(|l| [StuckAt::sa0(l), StuckAt::sa1(l)])
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{} s-a-{}", self.line, u8::from(self.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_is_two_per_line() {
        let faults: Vec<_> = StuckAt::enumerate(5).collect();
        assert_eq!(faults.len(), 10);
        assert_eq!(faults[0], StuckAt::sa0(0));
        assert_eq!(faults[1], StuckAt::sa1(0));
        assert_eq!(faults[9], StuckAt::sa1(4));
    }

    #[test]
    fn accessors() {
        let f = StuckAt::sa1(7);
        assert_eq!(f.line(), 7);
        assert!(f.value());
        assert_eq!(f.to_string(), "net7 s-a-1");
    }
}
