//! The wire format of a submitted campaign: one flat JSON object
//! mirroring the `scdp run` flag vocabulary, parsed into a
//! [`CampaignJob`] plus a shard count.
//!
//! The parser is strict — unknown keys, wrong types and out-of-range
//! values are typed [`CampaignError`]s, never panics — because this is
//! the first thing untrusted bytes from the network reach after
//! [`scdp_campaign::json::parse`].
//!
//! ```json
//! {"kind": "sequential", "workload": "fir", "width": 4,
//!  "technique": "tech1", "samples": 64, "shards": 4}
//! ```

use scdp_campaign::{
    allocation_from_label, drop_from_label, duration_from_label, json, op_from_label,
    realisation_from_label, style_from_label, technique_from_label, Backend, CampaignError,
    CampaignJob, DatapathScenario, DfgSource, ExecPolicy, FaultDuration, FaultModel, InputSpace,
    Lanes, Scenario,
};
use scdp_core::{Allocation, Technique};
use scdp_hls::SckStyle;

/// The seed a spec without an explicit `"seed"` uses — the same
/// default as the `scdp` CLI, so a submitted spec and the equivalent
/// `scdp run` invocation fingerprint identically.
pub const DEFAULT_SEED: u64 = 0xDA7E_2005;

/// Default shard count of a submitted job.
pub const DEFAULT_SHARDS: u32 = 4;

/// Every key a spec object may carry. Anything else is a schema error
/// — a typoed `"widht"` must not silently fall back to the default.
const KNOWN_KEYS: &[&str] = &[
    "kind",
    "width",
    "technique",
    "allocation",
    "op",
    "realisation",
    "backend",
    "fault_model",
    "workload",
    "style",
    "duration",
    "samples",
    "seed",
    "exhaustive",
    "threads",
    "lanes",
    "drop",
    "collapse",
    "telemetry",
    "shards",
];

/// A fully parsed submission: the job to run and its shard geometry.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The campaign, ready for [`scdp_campaign::CampaignRunner`].
    pub job: CampaignJob,
    /// How many shards to partition the fault universe into.
    pub shards: u32,
}

fn schema(field: &'static str, message: impl Into<String>) -> CampaignError {
    CampaignError::Schema {
        field,
        message: message.into(),
    }
}

/// A string field, or a schema error when present with another type.
fn str_field<'a>(
    obj: &'a json::Json,
    key: &str,
    field: &'static str,
) -> Result<Option<&'a str>, CampaignError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| schema(field, "expected a string")),
    }
}

/// An unsigned integer field, or a schema error.
fn u64_field(
    obj: &json::Json,
    key: &str,
    field: &'static str,
) -> Result<Option<u64>, CampaignError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| schema(field, "expected an unsigned integer")),
    }
}

/// A boolean field, or a schema error.
fn bool_field(obj: &json::Json, key: &str, field: &'static str) -> Result<bool, CampaignError> {
    match obj.get(key) {
        None => Ok(false),
        Some(json::Json::Bool(b)) => Ok(*b),
        Some(_) => Err(schema(field, "expected a boolean")),
    }
}

/// Parses one submitted spec document into a [`JobSpec`].
///
/// # Errors
///
/// [`CampaignError::Parse`] when the text is not JSON,
/// [`CampaignError::Schema`] when it is JSON but not a valid spec.
pub fn parse(text: &str) -> Result<JobSpec, CampaignError> {
    let doc = json::parse(text)?;
    let json::Json::Obj(members) = &doc else {
        return Err(schema("spec", "expected a JSON object"));
    };
    if let Some((key, _)) = members
        .iter()
        .find(|(k, _)| !KNOWN_KEYS.contains(&k.as_str()))
    {
        return Err(schema("spec", format!("unknown key `{key}`")));
    }

    let width = u32::try_from(u64_field(&doc, "width", "spec.width")?.unwrap_or(4))
        .map_err(|_| schema("spec.width", "width out of range"))?;
    let samples = u64_field(&doc, "samples", "spec.samples")?.unwrap_or(1024);
    let seed = u64_field(&doc, "seed", "spec.seed")?.unwrap_or(DEFAULT_SEED);
    let shards = u32::try_from(
        u64_field(&doc, "shards", "spec.shards")?.unwrap_or(u64::from(DEFAULT_SHARDS)),
    )
    .map_err(|_| schema("spec.shards", "shard count out of range"))?;

    let technique = match str_field(&doc, "technique", "spec.technique")? {
        None => Technique::Both,
        Some(s) => technique_from_label(s)
            .ok_or_else(|| schema("spec.technique", format!("unknown technique `{s}`")))?,
    };
    let allocation = match str_field(&doc, "allocation", "spec.allocation")? {
        None => Allocation::SingleUnit,
        Some(s) => allocation_from_label(s)
            .ok_or_else(|| schema("spec.allocation", format!("unknown allocation `{s}`")))?,
    };
    let space = if bool_field(&doc, "exhaustive", "spec.exhaustive")? {
        InputSpace::Exhaustive
    } else {
        InputSpace::Sampled {
            per_fault: samples,
            seed,
        }
    };
    let exec = exec_from(&doc)?;

    let kind = str_field(&doc, "kind", "spec.kind")?
        .ok_or_else(|| schema("spec.kind", "missing (operator|datapath|sequential)"))?;
    let job = match kind {
        "operator" => {
            let op_label = str_field(&doc, "op", "spec.op")?.unwrap_or("add");
            let op = op_from_label(op_label)
                .ok_or_else(|| schema("spec.op", format!("unknown operator `{op_label}`")))?;
            let mut scenario = Scenario::new(op, width)
                .technique(technique)
                .allocation(allocation);
            if let Some(r) = str_field(&doc, "realisation", "spec.realisation")? {
                scenario = scenario.realisation(realisation_from_label(r).ok_or_else(|| {
                    schema("spec.realisation", format!("unknown realisation `{r}`"))
                })?);
            }
            let backend = match str_field(&doc, "backend", "spec.backend")? {
                None => Backend::Functional,
                Some(s) => Backend::from_label(s)
                    .ok_or_else(|| schema("spec.backend", format!("unknown backend `{s}`")))?,
            };
            let mut spec = scenario.campaign().backend(backend).input_space(space);
            if let Some(m) = str_field(&doc, "fault_model", "spec.fault_model")? {
                spec = spec.fault_model(FaultModel::from_label(m).ok_or_else(|| {
                    schema("spec.fault_model", format!("unknown fault model `{m}`"))
                })?);
            }
            CampaignJob::Operator(spec.exec(exec))
        }
        "datapath" | "sequential" => {
            let workload = str_field(&doc, "workload", "spec.workload")?
                .ok_or_else(|| schema("spec.workload", "missing (fir|iir|dot|matvec)"))?;
            let source = DfgSource::from_label(workload)
                .ok_or_else(|| schema("spec.workload", format!("unknown workload `{workload}`")))?;
            let style = match str_field(&doc, "style", "spec.style")? {
                None => SckStyle::Full,
                Some(s) => style_from_label(s)
                    .ok_or_else(|| schema("spec.style", format!("unknown style `{s}`")))?,
            };
            let scenario = DatapathScenario::new(source, width)
                .technique(technique)
                .style(style)
                .allocation(allocation);
            if kind == "sequential" {
                let duration = match str_field(&doc, "duration", "spec.duration")? {
                    None => FaultDuration::Permanent,
                    Some(s) => duration_from_label(s).ok_or_else(|| {
                        schema("spec.duration", format!("unknown duration `{s}`"))
                    })?,
                };
                CampaignJob::Sequential(
                    scenario
                        .seq_campaign()
                        .duration(duration)
                        .input_space(space)
                        .exec(exec),
                )
            } else {
                if doc.get("duration").is_some() {
                    return Err(schema(
                        "spec.duration",
                        "durations apply to sequential campaigns only",
                    ));
                }
                CampaignJob::Datapath(scenario.campaign().input_space(space).exec(exec))
            }
        }
        other => {
            return Err(schema(
                "spec.kind",
                format!("unknown kind `{other}` (operator|datapath|sequential)"),
            ))
        }
    };
    Ok(JobSpec { job, shards })
}

/// The execution-policy subset of a spec: threads, lanes, drop policy,
/// collapsing and telemetry.
fn exec_from(doc: &json::Json) -> Result<ExecPolicy, CampaignError> {
    let mut exec = ExecPolicy::new()
        .collapse(bool_field(doc, "collapse", "spec.collapse")?)
        .telemetry(bool_field(doc, "telemetry", "spec.telemetry")?);
    if let Some(threads) = u64_field(doc, "threads", "spec.threads")? {
        let threads = usize::try_from(threads)
            .map_err(|_| schema("spec.threads", "thread count out of range"))?;
        exec = exec.threads(threads);
    }
    if let Some(drop) = str_field(doc, "drop", "spec.drop")? {
        exec = exec.drop_policy(
            drop_from_label(drop)
                .ok_or_else(|| schema("spec.drop", format!("unknown drop policy `{drop}`")))?,
        );
    }
    match doc.get("lanes") {
        None => {}
        Some(json::Json::Str(s)) if s == "auto" => {}
        Some(v) => {
            let lanes = v
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .and_then(Lanes::from_limbs)
                .ok_or_else(|| schema("spec.lanes", "expected \"auto\", 1, 4 or 8"))?;
            exec = exec.lanes(lanes);
        }
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_kinds_parse_with_defaults() {
        let op = parse(r#"{"kind":"operator"}"#).expect("operator spec");
        assert!(matches!(op.job, CampaignJob::Operator(_)));
        assert_eq!(op.shards, DEFAULT_SHARDS);
        let dp = parse(r#"{"kind":"datapath","workload":"dot","shards":2}"#).expect("dp spec");
        assert!(matches!(dp.job, CampaignJob::Datapath(_)));
        assert_eq!(dp.shards, 2);
        let seq = parse(r#"{"kind":"sequential","workload":"fir","duration":"transient@2"}"#)
            .expect("seq spec");
        match seq.job {
            CampaignJob::Sequential(spec) => {
                assert_eq!(spec.duration, FaultDuration::Transient { cycle: 2 });
            }
            other => panic!("expected sequential, got {other:?}"),
        }
    }

    #[test]
    fn spec_fingerprints_match_the_equivalent_builder_job() {
        let spec = parse(
            r#"{"kind":"sequential","workload":"fir","width":4,
                "technique":"tech1","samples":64}"#,
        )
        .expect("parses");
        let direct = CampaignJob::Sequential(
            DatapathScenario::new(DfgSource::Fir, 4)
                .technique(Technique::Tech1)
                .seq_campaign()
                .input_space(InputSpace::Sampled {
                    per_fault: 64,
                    seed: DEFAULT_SEED,
                }),
        );
        assert_eq!(
            spec.job.config_fingerprint(),
            direct.config_fingerprint(),
            "wire spec and builder agree on the fingerprint"
        );
    }

    #[test]
    fn bad_specs_are_typed_errors_never_panics() {
        for (text, expect_parse) in [
            ("", true),
            ("[1,2]", false),
            (r#"{"kind":"operator","widht":4}"#, false),
            (r#"{"kind":"frobnicate"}"#, false),
            (r#"{"kind":"datapath"}"#, false),
            (r#"{"kind":"datapath","workload":"nope"}"#, false),
            (r#"{"kind":"operator","width":"four"}"#, false),
            (r#"{"kind":"operator","lanes":3}"#, false),
            (r#"{"kind":"operator","exhaustive":"yes"}"#, false),
            (
                r#"{"kind":"datapath","workload":"dot","duration":"permanent"}"#,
                false,
            ),
        ] {
            match parse(text) {
                Err(CampaignError::Parse { .. }) => assert!(expect_parse, "{text}"),
                Err(CampaignError::Schema { .. }) => assert!(!expect_parse, "{text}"),
                other => panic!("{text}: expected a typed error, got {other:?}"),
            }
        }
    }
}
