//! Checked operator implementations (the paper's Figure 2, all operators).

use crate::{DataPath, Slot, Technique};
use scdp_arith::Word;

/// The result of a checked operation: the computed value plus the CED
/// verdict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Checked {
    /// The (possibly fault-corrupted) result.
    pub value: Word,
    /// `true` if a hidden checking operation disagreed — the error bit of
    /// the paper's SCK class.
    pub error: bool,
    /// `true` if the nominal operation overflowed its width.
    ///
    /// Overflow is reported separately (the paper: "with the exception of
    /// overflows, which are separately dealt with"); the inverse-operation
    /// identities themselves hold exactly under wrapping arithmetic, so
    /// overflow never causes a false alarm.
    pub overflow: bool,
}

/// Checked addition `ris = op1 + op2` (Table 1, row *Add*).
///
/// * Tech1: `op2' = ris − op1`, error if `op2' != op2`.
/// * Tech2: `op1' = ris − op2`, error if `op1' != op1`.
///
/// # Panics
///
/// Panics if operand widths differ.
#[inline]
pub fn checked_add<D: DataPath + ?Sized>(
    dp: &mut D,
    tech: Technique,
    op1: Word,
    op2: Word,
) -> Checked {
    let ris = dp.add(Slot::Nominal, op1, op2);
    let mut error = false;
    if tech.uses_tech1() {
        let op2p = dp.sub(Slot::Checker, ris, op1);
        error |= op2p != op2;
    }
    if tech.uses_tech2() {
        let op1p = dp.sub(Slot::Checker, ris, op2);
        error |= op1p != op1;
    }
    // Signed overflow: operands agree in sign, result disagrees.
    let overflow = op1.sign() == op2.sign() && ris.sign() != op1.sign();
    Checked {
        value: ris,
        error,
        overflow,
    }
}

/// Checked subtraction `ris = op1 − op2` (Table 1, row *Sub*).
///
/// * Tech1: `op1' = ris + op2`, error if `op1' != op1`.
/// * Tech2: `ris' = op2 − op1`, error if `ris + ris' != 0` (the zero-check
///   addition also executes on the data path, hence on the shared faulty
///   unit in the worst case).
///
/// # Panics
///
/// Panics if operand widths differ.
#[inline]
pub fn checked_sub<D: DataPath + ?Sized>(
    dp: &mut D,
    tech: Technique,
    op1: Word,
    op2: Word,
) -> Checked {
    let ris = dp.sub(Slot::Nominal, op1, op2);
    let mut error = false;
    if tech.uses_tech1() {
        let op1p = dp.add(Slot::Checker, ris, op2);
        error |= op1p != op1;
    }
    if tech.uses_tech2() {
        let risp = dp.sub(Slot::Checker, op2, op1);
        let zero = dp.add(Slot::Checker, ris, risp);
        error |= zero.bits() != 0;
    }
    let overflow = op1.sign() != op2.sign() && ris.sign() != op1.sign();
    Checked {
        value: ris,
        error,
        overflow,
    }
}

/// Checked multiplication `ris = op1 × op2` (Table 1, row *Mult*).
///
/// * Tech1: `ris' = (−op1) × op2`, error if `ris + ris' != 0`.
/// * Tech2: `ris' = op1 × (−op2)`, error if `ris + ris' != 0`.
///
/// Negation is the fault-free *g*-function; the zero-check addition runs
/// on the adder (a different functional unit than the multiplier, hence
/// fault-free under the single-unit failure model — but still routed
/// through the data path for counting and completeness).
///
/// # Panics
///
/// Panics if operand widths differ.
#[inline]
pub fn checked_mul<D: DataPath + ?Sized>(
    dp: &mut D,
    tech: Technique,
    op1: Word,
    op2: Word,
) -> Checked {
    let ris = dp.mul(Slot::Nominal, op1, op2);
    let mut error = false;
    if tech.uses_tech1() {
        let risp = dp.mul(Slot::Checker, op1.wrapping_neg(), op2);
        let zero = dp.add(Slot::Checker, ris, risp);
        error |= zero.bits() != 0;
    }
    if tech.uses_tech2() {
        let risp = dp.mul(Slot::Checker, op1, op2.wrapping_neg());
        let zero = dp.add(Slot::Checker, ris, risp);
        error |= zero.bits() != 0;
    }
    let wide = i128::from(op1.to_i64()) * i128::from(op2.to_i64());
    let lo = if op1.width() == 64 {
        i128::from(i64::MIN)
    } else {
        -(1i128 << (op1.width() - 1))
    };
    let hi = -lo - 1;
    let overflow = wide < lo || wide > hi;
    Checked {
        value: ris,
        error,
        overflow,
    }
}

/// Checked division `ris = op1 / op2` (Table 1, row *Div*).
///
/// The remainder `op1 % op2` is obtained from the same division unit.
///
/// * Tech1: `op1' = ris × op2 + (op1 % op2)`, error if `op1' != op1`.
/// * Tech2: `op1' = −ris × op2 − (op1 % op2)`, error if `op1' != −op1`.
///
/// Returns `(quotient checked, remainder)`. A zero divisor raises the
/// error bit and yields zero quotient/remainder (division by zero is a
/// specification error, not a hardware fault, but must not go unnoticed).
///
/// # Panics
///
/// Panics if operand widths differ.
#[inline]
pub fn checked_div_rem<D: DataPath + ?Sized>(
    dp: &mut D,
    tech: Technique,
    op1: Word,
    op2: Word,
) -> (Checked, Word) {
    let width = op1.width();
    let Some((q, r)) = dp.div_rem(Slot::Nominal, op1, op2) else {
        return (
            Checked {
                value: Word::zero(width),
                error: true,
                overflow: false,
            },
            Word::zero(width),
        );
    };
    let mut error = false;
    if tech.uses_tech1() {
        let m = dp.mul(Slot::Checker, q, op2);
        let op1p = dp.add(Slot::Checker, m, r);
        error |= op1p != op1;
    }
    if tech.uses_tech2() {
        let m = dp.mul(Slot::Checker, q.wrapping_neg(), op2);
        let op1p = dp.sub(Slot::Checker, m, r);
        error |= op1p != op1.wrapping_neg();
    }
    // Division overflows only for MIN / -1.
    let overflow = {
        let min = Word::new(width, 1u64 << (width - 1));
        op1 == min && op2.to_i64() == -1
    };
    (
        Checked {
            value: q,
            error,
            overflow,
        },
        r,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Allocation, FaultSite, FaultyDataPath, NativeDataPath};
    use scdp_arith::{ArrayMultiplier, FaultableUnit, RestoringDivider};
    use scdp_fault::{FaGateFault, FaSite};

    fn w8(v: i64) -> Word {
        Word::from_i64(8, v)
    }

    #[test]
    fn native_add_never_alarms_even_on_overflow() {
        let mut dp = NativeDataPath::new();
        for t in Technique::ALL {
            let c = checked_add(&mut dp, t, w8(120), w8(100));
            assert!(!c.error, "{t}");
            assert!(c.overflow, "{t}");
            assert_eq!(c.value.to_i64(), (120i64 + 100) as i8 as i64);
        }
    }

    #[test]
    fn native_sub_overflow_flag() {
        let mut dp = NativeDataPath::new();
        let c = checked_sub(&mut dp, Technique::Both, w8(-100), w8(100));
        assert!(!c.error);
        assert!(c.overflow);
        let c2 = checked_sub(&mut dp, Technique::Both, w8(5), w8(3));
        assert!(!c2.error);
        assert!(!c2.overflow);
        assert_eq!(c2.value.to_i64(), 2);
    }

    #[test]
    fn native_mul_overflow_flag() {
        let mut dp = NativeDataPath::new();
        let c = checked_mul(&mut dp, Technique::Both, w8(16), w8(16));
        assert!(!c.error);
        assert!(c.overflow);
        let c2 = checked_mul(&mut dp, Technique::Tech1, w8(-8), w8(3));
        assert!(!c2.error);
        assert!(!c2.overflow);
        assert_eq!(c2.value.to_i64(), -24);
    }

    #[test]
    fn native_div_checks_pass() {
        let mut dp = NativeDataPath::new();
        for t in Technique::ALL {
            let (c, r) = checked_div_rem(&mut dp, t, w8(-77), w8(10));
            assert!(!c.error, "{t}");
            assert_eq!(c.value.to_i64(), -7);
            assert_eq!(r.to_i64(), -7);
        }
    }

    #[test]
    fn div_by_zero_raises_error() {
        let mut dp = NativeDataPath::new();
        let (c, r) = checked_div_rem(&mut dp, Technique::Tech1, w8(5), w8(0));
        assert!(c.error);
        assert_eq!(c.value.to_i64(), 0);
        assert_eq!(r.to_i64(), 0);
    }

    #[test]
    fn div_min_by_minus_one_overflows() {
        let mut dp = NativeDataPath::new();
        let (c, _) = checked_div_rem(&mut dp, Technique::Tech1, w8(-128), w8(-1));
        assert!(c.overflow);
    }

    #[test]
    fn dedicated_checker_always_detects_observable_adder_faults() {
        // §2.1: different functional units for op and check => 100%.
        let adder_faults: Vec<_> = scdp_arith::RippleCarryAdder::new(8).gate_faults().collect();
        for rf in adder_faults {
            let mut dp = FaultyDataPath::new(8, FaultSite::Adder(rf), Allocation::Dedicated);
            for (a, b) in [(1i64, 2), (100, -27), (-128, 127), (0, 0), (-1, -1)] {
                let golden = w8(a).wrapping_add(w8(b));
                let c = checked_add(&mut dp, Technique::Tech1, w8(a), w8(b));
                if c.value != golden {
                    assert!(c.error, "observable error must be detected: {rf:?}");
                }
            }
        }
    }

    #[test]
    fn single_unit_masking_escapes_detection() {
        // The critical situation (2b) of §4: same unit computes op and
        // check, and the two errors mask. Find one concrete witness.
        let mut found = false;
        'outer: for rf in scdp_arith::RippleCarryAdder::new(4).gate_faults() {
            for a in Word::all(4) {
                for b in Word::all(4) {
                    let mut dp =
                        FaultyDataPath::new(4, FaultSite::Adder(rf), Allocation::SingleUnit);
                    let golden = a.wrapping_add(b);
                    let c = checked_add(&mut dp, Technique::Tech1, a, b);
                    if c.value != golden && !c.error {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            found,
            "worst-case masking must exist (paper Table 2 < 100%)"
        );
    }

    #[test]
    fn faulty_multiplier_detected_by_mul_checks() {
        let mult = ArrayMultiplier::new(8);
        let mut detected_any = false;
        for uf in mult
            .universe()
            .iter()
            .filter(|f| !f.fault().is_latent())
            .take(64)
        {
            let mut dp = FaultyDataPath::new(8, FaultSite::Multiplier(uf), Allocation::SingleUnit);
            for (a, b) in [(3i64, 5), (-7, 11), (127, 127), (-128, 2)] {
                let golden = w8(a).wrapping_mul(w8(b));
                let c = checked_mul(&mut dp, Technique::Both, w8(a), w8(b));
                if c.value != golden && c.error {
                    detected_any = true;
                }
            }
        }
        assert!(detected_any);
    }

    #[test]
    fn faulty_divider_mostly_detected() {
        let div = RestoringDivider::new(8);
        let mut observable = 0u32;
        let mut detected = 0u32;
        for uf in div.universe().iter().filter(|f| !f.fault().is_latent()) {
            let mut dp = FaultyDataPath::new(8, FaultSite::Divider(uf), Allocation::SingleUnit);
            for (a, b) in [(77i64, 10), (-100, 7), (127, -3), (5, 5)] {
                let (gq, _) = w8(a).wrapping_div_rem(w8(b));
                let (c, _) = checked_div_rem(&mut dp, Technique::Tech1, w8(a), w8(b));
                if c.value != gq {
                    observable += 1;
                    if c.error {
                        detected += 1;
                    }
                }
            }
        }
        assert!(observable > 0);
        // A substantial share of observable divider errors break the
        // q*b+r identity and are detected; the rest are the consistent
        // wrong pairs (quotient off by one with out-of-range remainder)
        // that make division the lowest-coverage operator in Table 1.
        assert!(detected * 3 >= observable, "{detected}/{observable}");
        assert!(detected < observable, "some masking must exist");
    }

    #[test]
    fn checks_consistent_across_techniques_fault_free() {
        let mut dp = NativeDataPath::new();
        for a in [-128i64, -55, -1, 0, 1, 99, 127] {
            for b in [-128i64, -9, -1, 1, 4, 127] {
                for t in Technique::ALL {
                    assert!(!checked_add(&mut dp, t, w8(a), w8(b)).error);
                    assert!(!checked_sub(&mut dp, t, w8(a), w8(b)).error);
                    assert!(!checked_mul(&mut dp, t, w8(a), w8(b)).error);
                    let (c, _) = checked_div_rem(&mut dp, t, w8(a), w8(b));
                    assert!(!c.error, "{a}/{b} {t}");
                }
            }
        }
    }

    #[test]
    fn faulty_gate_adder_detected_by_add_checks() {
        let rf = scdp_arith::RcaFault::Gate {
            position: 0,
            fault: FaGateFault::new(FaSite::Sum, false),
        };
        let mut dp = FaultyDataPath::new(8, FaultSite::Adder(rf), Allocation::Dedicated);
        let c = checked_add(&mut dp, Technique::Tech1, w8(1), w8(0));
        assert_eq!(c.value.to_i64(), 0);
        assert!(c.error);
    }
}
