//! Campaign construction and (multithreaded) execution.

use crate::ops::{classify_add, classify_div, classify_mul, classify_sub, DivFaultSite};
use crate::space::InputSpace;
use crate::verdict::{Tally, TechIndex};
use scdp_arith::{
    ArrayMultiplier, FaultableUnit, RcaFault, RestoringDivider, RippleCarryAdder, Word,
};
use scdp_core::Allocation;
use std::thread;

/// Which operator a campaign analyses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// `+` on the ripple-carry adder.
    Add,
    /// `-` on the same adder (shared cells).
    Sub,
    /// `×` on the array multiplier.
    Mul,
    /// `/` (+ `%`) on the restoring divider, checked through the
    /// multiplier (combined multiply-divide unit in the worst case).
    Div,
}

/// Fault model for adder campaigns (see [`RcaFault`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AdderFaultModel {
    /// Gate-level stuck-at inside one full adder (16 sites × 2 — the
    /// model that reproduces the paper's Table 2).
    Gate,
    /// Truth-table cell faults (row-local alternative model).
    Cell,
}

/// Configures and runs a functional fault-coverage campaign.
///
/// This is the *backend* behind the unified campaign surface: construct
/// campaigns through `scdp_campaign::{Scenario, CampaignSpec}`, which
/// validates with typed errors and serves both this engine and the
/// gate-level one. [`CampaignBuilder::over`] is the engine-room entry
/// that surface drives.
///
/// # Example
///
/// ```
/// use scdp_coverage::{CampaignBuilder, OperatorKind, TechIndex};
/// use scdp_core::Allocation;
///
/// let r = CampaignBuilder::over(OperatorKind::Add, 2).run();
/// // 2-bit adder, worst case: some observable errors escape Tech1
/// // (the paper's §4.1 reports 32 such situations for its full-adder
/// // netlist; our five-gate netlist yields 76 — see EXPERIMENTS.md).
/// assert_eq!(r.tally.of(TechIndex::Tech1).error_undetected, 76);
/// assert_eq!(r.total_situations(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct CampaignBuilder {
    op: OperatorKind,
    width: u32,
    adder_model: AdderFaultModel,
    alloc: Allocation,
    space: InputSpace,
    threads: usize,
    range: Option<std::ops::Range<usize>>,
}

impl CampaignBuilder {
    /// Starts a campaign for `op` at `width` bits with the paper's
    /// defaults: gate-level adder faults, single (shared) unit, exhaustive
    /// inputs, all available cores.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32`. The unified entry point
    /// (`scdp_campaign::CampaignSpec::run`) performs this validation
    /// up front and returns a typed `CampaignError` instead.
    #[must_use]
    pub fn over(op: OperatorKind, width: u32) -> Self {
        assert!((1..=32).contains(&width), "width {width} out of range");
        Self {
            op,
            width,
            adder_model: AdderFaultModel::Gate,
            alloc: Allocation::SingleUnit,
            space: InputSpace::Exhaustive,
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            range: None,
        }
    }

    /// Selects the adder fault model (ignored for `×` and `/`).
    #[must_use]
    pub fn adder_model(mut self, model: AdderFaultModel) -> Self {
        self.adder_model = model;
        self
    }

    /// Selects the allocation policy (shared worst case vs dedicated).
    #[must_use]
    pub fn allocation(mut self, alloc: Allocation) -> Self {
        self.alloc = alloc;
        self
    }

    /// Selects the input space.
    #[must_use]
    pub fn input_space(mut self, space: InputSpace) -> Self {
        self.space = space;
        self
    }

    /// Caps the worker thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Restricts classification to the universe subrange `range` — the
    /// shard-scoped iteration of a partitioned campaign. `per_fault`
    /// then covers only `range`, in universe order; per-fault sampling
    /// streams are keyed by the fault itself, so sharded results are
    /// bit-identical to the corresponding slice of a full run.
    ///
    /// # Panics
    ///
    /// `run` panics if the range exceeds the universe (the unified
    /// surface validates shard plans first).
    #[must_use]
    pub fn fault_range(mut self, range: std::ops::Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// Number of faults in the (unrestricted) campaign universe — what
    /// shard plans partition.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.fault_list().len()
    }

    /// Runs the campaign.
    #[must_use]
    pub fn run(&self) -> CampaignResult {
        let mut faults = self.fault_list();
        if let Some(r) = &self.range {
            assert!(
                r.start <= r.end && r.end <= faults.len(),
                "fault range {r:?} exceeds the {}-fault universe",
                faults.len()
            );
            faults = faults[r.clone()].to_vec();
        }
        let n_faults = faults.len();
        let threads = self.threads.min(n_faults.max(1));
        let chunk = n_faults.div_ceil(threads.max(1)).max(1);
        let mut per_fault: Vec<Tally> = Vec::with_capacity(n_faults);

        let results: Vec<Vec<Tally>> = thread::scope(|s| {
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|slice| {
                    let cfg = self.clone();
                    s.spawn(move || slice.iter().map(|f| cfg.run_fault(f)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for v in results {
            per_fault.extend(v);
        }

        let mut tally = Tally::default();
        for t in &per_fault {
            tally += *t;
        }
        CampaignResult {
            op: self.op,
            width: self.width,
            alloc: self.alloc,
            adder_model: self.adder_model,
            space: self.space,
            tally,
            per_fault,
        }
    }

    fn fault_list(&self) -> Vec<FaultCase> {
        match self.op {
            OperatorKind::Add | OperatorKind::Sub => {
                let adder = RippleCarryAdder::new(self.width);
                match self.adder_model {
                    AdderFaultModel::Gate => adder.gate_faults().map(FaultCase::Adder).collect(),
                    AdderFaultModel::Cell => adder.cell_faults().map(FaultCase::Adder).collect(),
                }
            }
            OperatorKind::Mul => ArrayMultiplier::new(self.width)
                .universe()
                .iter()
                .map(FaultCase::Mul)
                .collect(),
            OperatorKind::Div => {
                let div = RestoringDivider::new(self.width);
                let mult = ArrayMultiplier::new(self.width);
                div.universe()
                    .iter()
                    .map(|f| FaultCase::Div(DivFaultSite::Divider(f)))
                    .chain(
                        mult.universe()
                            .iter()
                            .map(|f| FaultCase::Div(DivFaultSite::Multiplier(f))),
                    )
                    .collect()
            }
        }
    }

    fn run_fault(&self, fault: &FaultCase) -> Tally {
        let width = self.width;
        let mut tally = Tally::default();
        let adder = RippleCarryAdder::new(width);
        let mult = ArrayMultiplier::new(width);
        let classify = |a: Word, b: Word, tally: &mut Tally| {
            let v = match (fault, self.op) {
                (FaultCase::Adder(rf), OperatorKind::Add) => {
                    classify_add(&adder, *rf, self.alloc, a, b)
                }
                (FaultCase::Adder(rf), OperatorKind::Sub) => {
                    classify_sub(&adder, *rf, self.alloc, a, b)
                }
                (FaultCase::Mul(uf), OperatorKind::Mul) => {
                    classify_mul(&mult, *uf, self.alloc, a, b)
                }
                (FaultCase::Div(site), OperatorKind::Div) => {
                    let div = RestoringDivider::new(width);
                    classify_div(&div, &mult, *site, self.alloc, a, b)
                }
                _ => unreachable!("fault case matches operator by construction"),
            };
            tally.record(v.observable, v.det1, v.det2);
        };
        let skip_zero_divisor = self.op == OperatorKind::Div;
        for (a, b) in self
            .space
            .pairs(width, fault.stream_id(), skip_zero_divisor)
        {
            classify(a, b, &mut tally);
        }
        tally
    }
}

#[derive(Copy, Clone, Debug)]
enum FaultCase {
    Adder(RcaFault),
    Mul(scdp_fault::UnitFault),
    Div(DivFaultSite),
}

impl FaultCase {
    /// A stable per-fault stream id for reproducible sampling.
    fn stream_id(&self) -> u64 {
        // Hash-free stable encoding: discriminant + position + detail.
        match self {
            FaultCase::Adder(RcaFault::Cell(uf)) => {
                0x1000_0000 + (uf.position() as u64) * 64 + fault_ordinal_cell(uf)
            }
            FaultCase::Adder(RcaFault::Gate { position, fault }) => {
                0x2000_0000 + (*position as u64) * 64 + fault_ordinal_gate(fault)
            }
            FaultCase::Mul(uf) => {
                0x3000_0000 + (uf.position() as u64) * 64 + fault_ordinal_cell(uf)
            }
            FaultCase::Div(DivFaultSite::Divider(uf)) => {
                0x4000_0000 + (uf.position() as u64) * 64 + fault_ordinal_cell(uf)
            }
            FaultCase::Div(DivFaultSite::Multiplier(uf)) => {
                0x5000_0000 + (uf.position() as u64) * 64 + fault_ordinal_cell(uf)
            }
        }
    }
}

fn fault_ordinal_cell(uf: &scdp_fault::UnitFault) -> u64 {
    let f = uf.fault();
    u64::from(f.row()) * 4 + u64::from(f.output()) * 2 + u64::from(f.stuck())
}

fn fault_ordinal_gate(f: &scdp_fault::FaGateFault) -> u64 {
    let site = scdp_fault::FaSite::ALL
        .iter()
        .position(|s| *s == f.site())
        .expect("site in ALL") as u64;
    site * 2 + u64::from(f.stuck())
}

/// The outcome of a campaign: aggregate and per-fault tallies plus the
/// configuration that produced them.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Analysed operator.
    pub op: OperatorKind,
    /// Operand width in bits.
    pub width: u32,
    /// Allocation policy used.
    pub alloc: Allocation,
    /// Adder fault model used (meaningful for `+` and `-`).
    pub adder_model: AdderFaultModel,
    /// Input space strategy used.
    pub space: InputSpace,
    /// Aggregate tallies (per technique column).
    pub tally: Tally,
    /// One tally per fault, in fault-universe order.
    pub per_fault: Vec<Tally>,
}

impl CampaignResult {
    /// Total situations evaluated (per technique column).
    #[must_use]
    pub fn total_situations(&self) -> u64 {
        self.tally.of(TechIndex::Tech1).total()
    }

    /// Number of faults in the campaign.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.per_fault.len() as u64
    }

    /// Coverage per technique column.
    #[must_use]
    pub fn coverage(&self, t: TechIndex) -> f64 {
        self.tally.of(t).coverage()
    }

    /// Range (min, max) of per-fault coverage for one technique — the
    /// paper's §4.1 "[81.90%, 99.87%]" style bound. Faults that were
    /// never excited contribute 100%.
    #[must_use]
    pub fn per_fault_coverage_range(&self, t: TechIndex) -> (f64, f64) {
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for pf in &self.per_fault {
            let c = pf.of(t).coverage();
            min = min.min(c);
            max = max.max(c);
        }
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_width1_gate_counts() {
        let r = CampaignBuilder::over(OperatorKind::Add, 1).threads(2).run();
        assert_eq!(r.total_situations(), 128);
        assert_eq!(r.fault_count(), 32);
    }

    #[test]
    fn dedicated_allocation_reaches_full_coverage() {
        let r = CampaignBuilder::over(OperatorKind::Add, 3)
            .allocation(Allocation::Dedicated)
            .run();
        for t in TechIndex::ALL {
            assert!((r.coverage(t) - 1.0).abs() < f64::EPSILON, "{t}");
        }
        // There *are* observable errors; they are all detected.
        assert!(r.tally.of(TechIndex::Tech1).observable() > 0);
    }

    #[test]
    fn sampled_campaign_is_reproducible() {
        let space = InputSpace::Sampled {
            per_fault: 256,
            seed: 7,
        };
        let r1 = CampaignBuilder::over(OperatorKind::Add, 6)
            .input_space(space)
            .run();
        let r2 = CampaignBuilder::over(OperatorKind::Add, 6)
            .input_space(space)
            .threads(3)
            .run();
        assert_eq!(r1.tally, r2.tally, "thread count must not change results");
    }

    #[test]
    fn div_campaign_excludes_zero_divisor() {
        let r = CampaignBuilder::over(OperatorKind::Div, 2).run();
        let per_fault_inputs = 4 * 3; // 2^2 dividends x 3 non-zero divisors
        assert_eq!(
            r.total_situations(),
            r.fault_count() * per_fault_inputs as u64
        );
    }

    #[test]
    fn per_fault_coverage_range_is_sane() {
        let r = CampaignBuilder::over(OperatorKind::Add, 2).run();
        let (lo, hi) = r.per_fault_coverage_range(TechIndex::Both);
        assert!(lo <= hi);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn mul_campaign_runs() {
        let r = CampaignBuilder::over(OperatorKind::Mul, 3).run();
        assert!(r.coverage(TechIndex::Both) >= r.coverage(TechIndex::Tech1) - f64::EPSILON);
        assert!(r.tally.of(TechIndex::Tech1).observable() > 0);
    }
}
