//! A miniature fault-coverage campaign (the paper's §4 analysis) from
//! the public API: exhaustively classify every (fault, input) situation
//! of a 4-bit self-checking adder under both allocations and print a
//! Table 2-style row.
//!
//! Run with: `cargo run --release --example fault_campaign`

use scdp::core::Allocation;
use scdp::coverage::{CampaignBuilder, OperatorKind, TechIndex};

fn main() {
    println!("4-bit self-checking adder, exhaustive campaign\n");
    for alloc in [Allocation::SingleUnit, Allocation::Dedicated] {
        let result = CampaignBuilder::new(OperatorKind::Add, 4)
            .allocation(alloc)
            .run();
        println!("allocation: {alloc:?}");
        println!("  situations: {}", result.total_situations());
        for tech in TechIndex::ALL {
            let t = result.tally.of(tech);
            println!(
                "  {tech:<9} coverage {:>7.2}%  (observable {}, undetected {}, early-detected {})",
                result.coverage(tech) * 100.0,
                t.observable(),
                t.error_undetected,
                t.correct_detected,
            );
        }
        println!();
    }
    println!("Dedicated checker units detect every observable error (§2.1);");
    println!("the shared unit exposes the worst-case masking of Table 2.");
}
