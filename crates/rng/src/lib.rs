//! Small, dependency-free deterministic PRNGs for the workspace.
//!
//! The build environment is fully offline, so the usual `rand` crate is
//! not available; campaigns instead use this vendored generator. Two
//! requirements drive the design:
//!
//! * **Reproducibility** — every Monte-Carlo campaign must produce the
//!   same tallies for the same seed, regardless of thread count. Each
//!   fault derives its own independent stream (`Xoshiro256StarStar::
//!   from_seed(seed ^ stream_id)`), so partitioning the fault universe
//!   across workers cannot change any per-fault sequence.
//! * **Speed** — the bit-parallel engine consumes one `u64` of fresh
//!   randomness per primary-input bit per 64-vector batch, so the
//!   generator sits on a hot path. xoshiro256** is a few ALU ops per
//!   word.
//!
//! [`SplitMix64`] is used to expand a 64-bit seed into the 256-bit
//! xoshiro state (the construction recommended by the xoshiro authors)
//! and as a cheap stream-id mixer.

#![warn(missing_docs)]

/// Uniform random source: the subset of the `rand::Rng` surface the
/// workspace actually uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `0..bound` (rejection sampling, no modulo
    /// bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform random boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 != 0
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, statistically solid 64-bit generator used for
/// seed expansion and stream derivation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator for campaigns and property
/// tests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with [`SplitMix64`].
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 from the reference C code.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256StarStar::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256StarStar::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256StarStar::from_seed(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut r = Xoshiro256StarStar::from_seed(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::from_seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::new(0);
        let _ = r.gen_range(0);
    }
}
