//! Ablation (E8): the reliability/area trade-off of binding the checker
//! operations onto the *same* functional units as the nominal ones
//! versus dedicated checker units — the design choice behind the paper's
//! §2.1 dichotomy and its stated future work ("allow the designer to
//! select the desired level of reliability while keeping area overhead …
//! within an acceptable limit").
//!
//! For each technique it reports:
//!  * worst-case coverage with a shared unit (from the exhaustive
//!    functional campaign, 8-bit adder);
//!  * coverage with a dedicated checker unit (always 100%);
//!  * the FIR datapath area with shared-allowed vs reliability-aware
//!    binding.
//!
//! Both campaign layers run through the unified `scdp-campaign` API:
//! one functional scenario per allocation yields all technique columns;
//! the gate-level cross-check re-runs the same allocations on the
//! structural datapath.

use scdp_bench::{pct, CliArgs};
use scdp_campaign::{Backend, ExecPolicy, Scenario, TechIndex};
use scdp_core::{Allocation, Operator, Technique};
use scdp_fir::fir_body_dfg;
use scdp_hls::{area, bind, expand_sck, sched, BindOptions, ErrorHandling, ResourceSet, SckStyle};

fn main() {
    let args = CliArgs::parse();
    println!("Reliability-aware binding ablation (8-bit adder campaigns, FIR datapath)\n");
    println!(
        "{:<10} {:>16} {:>16}",
        "technique", "shared-unit cov", "dedicated cov"
    );
    let functional = |alloc: Allocation| {
        Scenario::new(Operator::Add, 8)
            .allocation(alloc)
            .campaign()
            .run()
            .expect("valid functional scenario")
    };
    let shared = functional(Allocation::SingleUnit);
    let dedicated = functional(Allocation::Dedicated);
    for (tech, idx) in [
        (Technique::Tech1, TechIndex::Tech1),
        (Technique::Tech2, TechIndex::Tech2),
        (Technique::Both, TechIndex::Both),
    ] {
        println!(
            "{:<10} {:>16} {:>16}",
            tech.to_string(),
            pct(shared.coverage_of(idx).expect("filled")),
            pct(dedicated.coverage_of(idx).expect("filled"))
        );
    }

    // Gate-level cross-check on the bit-parallel engine: the same
    // shared-vs-dedicated dichotomy measured on the generated
    // structural datapath (correlated faults = shared binding, nominal
    // only = dedicated checker units).
    println!("\nGate-level cross-check (4-bit structural adder, bit-parallel engine):");
    println!(
        "{:<10} {:>16} {:>16}",
        "technique", "correlated cov", "dedicated cov"
    );
    for tech in Technique::ALL {
        let gate = |alloc: Allocation| {
            Scenario::new(Operator::Add, 4)
                .technique(tech)
                .allocation(alloc)
                .campaign()
                .backend(Backend::GateLevel)
                .exec(ExecPolicy::new().threads(args.threads()))
                .run()
                .expect("valid gate scenario")
        };
        let shared = gate(Allocation::SingleUnit);
        let dedicated = gate(Allocation::Dedicated);
        assert_eq!(
            dedicated.four_way().error_undetected,
            0,
            "dedicated checkers must catch every observable error"
        );
        println!(
            "{:<10} {:>16} {:>16}",
            tech.to_string(),
            pct(shared.coverage()),
            pct(dedicated.coverage())
        );
    }

    println!("\nFIR embedded-SCK datapath, min-area resources:");
    let flow = scdp_codesign::CodesignFlow::default();
    let expanded = expand_sck(&fir_body_dfg(), Technique::Tech1, SckStyle::Embedded);
    let schedule = sched::list_schedule(&expanded, &flow.library, &ResourceSet::min_area());
    for (label, opts) in [
        (
            "share checker with nominal (cheap, lossy)",
            BindOptions {
                separate_checkers: false,
                no_sharing: false,
            },
        ),
        (
            "reliability-aware (dedicated checker units)",
            BindOptions {
                separate_checkers: true,
                no_sharing: false,
            },
        ),
    ] {
        let binding = bind(&expanded, &schedule, &flow.library, opts);
        let report = area::area(
            &expanded,
            &schedule,
            &binding,
            &flow.library,
            ErrorHandling::SingleFlag,
        );
        println!("  {label:<45} {report}");
    }
    println!("\nShared binding reuses the nominal units (smaller) but exposes the");
    println!("worst-case masking above; reliability-aware binding buys back 100%");
    println!("coverage with the extra checker units.");
}
