//! Datapath component generators.
//!
//! Each generator exists in two forms: a `*_into` function that appends
//! the component to an existing [`NetlistBuilder`](crate::NetlistBuilder)
//! and returns its output nets (for composition), and a top-level
//! function that wraps it into a complete [`Netlist`](crate::Netlist)
//! with named IO buses.

mod adder;
mod checker;
mod compare;
mod datapath;
mod divider;
mod interp;
mod mult;
mod seq_datapath;

pub use adder::{
    addsub, cla, cla_into, csa, csa_into, rca, rca_into, subtract_into, FaCells, RcaInstance,
};
pub use checker::{
    self_checking, self_checking_add_with, AdderRealisation, SelfCheckingDatapath,
    SelfCheckingSpec, UnitInstance,
};
pub use compare::{equal, is_zero_into, neq_into, two_rail_checker};
pub use datapath::{class_label, elaborate_datapath, ElaboratedDatapath, FuFaultRange, FuSpan};
pub use divider::{restoring_divider, restoring_divider_into};
pub use interp::{interpret_dfg, DfgEval};
pub use mult::{array_mult, array_mult_into};
pub use seq_datapath::{elaborate_seq_datapath, SeqDatapath, SeqFuSpan};
