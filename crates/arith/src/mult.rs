//! Row-ripple array multiplier built from AND and full-adder cells.

use crate::adder::full_adder;
use crate::{FaultableUnit, Word};
use scdp_fault::{CellKind, FaultUniverse, UnitFault};

/// An n-bit array multiplier producing the low n bits of the product.
///
/// Keeping only the low n bits makes signed (two's complement) and
/// unsigned multiplication coincide, which is the wrapping semantics used
/// by the paper's integer data types; the checking identity
/// `0 == ris + ris'` with `ris' = (-op1) × op2` then holds exactly even
/// across overflow.
///
/// # Architecture and cell map
///
/// Partial products `pp(i, j) = a_i AND b_j` (for `i + j < n`) feed a
/// row-ripple accumulation: after processing row `j`, the accumulator
/// holds the low n bits of `a × b[0..=j]`. Row `j ≥ 1` adds its shifted
/// partial product through a ripple chain of `n − j` full adders.
///
/// Fault-universe cell positions (stable order):
///
/// 1. AND cells, row-major: row `j` contributes `n − j` cells computing
///    `a_i AND b_j` for `i = 0 .. n − j`;
/// 2. full-adder cells, row-major: row `j` (for `j ≥ 1`) contributes
///    `n − j` cells.
///
/// Total: `n(n+1)/2` AND cells and `n(n−1)/2` full-adder cells.
///
/// # Example
///
/// ```
/// use scdp_arith::{ArrayMultiplier, Word};
///
/// let mult = ArrayMultiplier::new(8);
/// let a = Word::from_i64(8, -7);
/// let b = Word::from_i64(8, 11);
/// assert_eq!(mult.mul(a, b, None).to_i64(), -77);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ArrayMultiplier {
    width: u32,
}

impl ArrayMultiplier {
    /// Creates a multiplier for `width`-bit operands.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        Self { width }
    }

    /// Number of AND (partial-product) cells: `n(n+1)/2`.
    #[must_use]
    pub fn and_cells(&self) -> usize {
        let n = self.width as usize;
        n * (n + 1) / 2
    }

    /// Number of full-adder cells: `n(n−1)/2`.
    #[must_use]
    pub fn fa_cells(&self) -> usize {
        let n = self.width as usize;
        n * (n - 1) / 2
    }

    /// Multiplies `a × b` (low `width` bits), under an optional cell fault.
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ from the unit width.
    #[must_use]
    pub fn mul(&self, a: Word, b: Word, fault: Option<UnitFault>) -> Word {
        assert_eq!(a.width(), self.width, "operand width mismatch");
        assert_eq!(b.width(), self.width, "operand width mismatch");
        let n = self.width;
        let (fault_pos, cell_fault) = match &fault {
            Some(uf) => (uf.position(), Some(uf.fault())),
            None => (usize::MAX, None),
        };

        // Partial products through AND cells (positions 0 .. n(n+1)/2).
        // pp[j] holds bits i = 0 .. n-j of row j, packed at offset 0.
        let mut cell = 0usize;
        let mut acc = 0u64; // running low-n-bit accumulator
        let mut pp_rows: Vec<u64> = Vec::with_capacity(n as usize);
        for j in 0..n {
            let mut row_bits = 0u64;
            for i in 0..(n - j) {
                let golden = a.bit(i) && b.bit(j);
                let value = if cell == fault_pos {
                    let f = cell_fault.as_ref().expect("fault position matched");
                    let row = u8::from(a.bit(i)) | (u8::from(b.bit(j)) << 1);
                    f.apply(row, 0, golden)
                } else {
                    golden
                };
                if value {
                    row_bits |= 1 << i;
                }
                cell += 1;
            }
            pp_rows.push(row_bits);
        }

        // Row 0 initialises the accumulator.
        acc |= pp_rows[0];

        // Rows 1.. ripple-add into the accumulator at offset j.
        for j in 1..n {
            let mut carry = false;
            for k in 0..(n - j) {
                let bit_index = j + k;
                let acc_bit = (acc >> bit_index) & 1 != 0;
                let pp_bit = (pp_rows[j as usize] >> k) & 1 != 0;
                let cf = if cell == fault_pos { cell_fault } else { None };
                let (s, c) = full_adder(acc_bit, pp_bit, carry, cf.as_ref());
                if s {
                    acc |= 1 << bit_index;
                } else {
                    acc &= !(1 << bit_index);
                }
                carry = c;
                cell += 1;
            }
            // Carry out of the top bit is dropped (wrapping).
        }

        Word::new(self.width, acc)
    }
}

impl FaultableUnit for ArrayMultiplier {
    fn width(&self) -> u32 {
        self.width
    }

    fn universe(&self) -> FaultUniverse {
        let mut sites = Vec::with_capacity(self.and_cells() + self.fa_cells());
        sites.extend(std::iter::repeat_n(CellKind::And2, self.and_cells()));
        sites.extend(std::iter::repeat_n(CellKind::FullAdder, self.fa_cells()));
        FaultUniverse::new(sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_golden_exhaustively() {
        for w in [1u32, 2, 3, 4, 5] {
            let mult = ArrayMultiplier::new(w);
            for a in Word::all(w) {
                for b in Word::all(w) {
                    assert_eq!(mult.mul(a, b, None), a.wrapping_mul(b), "w={w} {a:?}*{b:?}");
                }
            }
        }
    }

    #[test]
    fn mul_matches_golden_sampled_8bit() {
        let mult = ArrayMultiplier::new(8);
        for a in (-128..128).step_by(7) {
            for b in (-128..128).step_by(5) {
                let aw = Word::from_i64(8, a);
                let bw = Word::from_i64(8, b);
                assert_eq!(mult.mul(aw, bw, None), aw.wrapping_mul(bw));
            }
        }
    }

    #[test]
    fn cell_counts() {
        let mult = ArrayMultiplier::new(8);
        assert_eq!(mult.and_cells(), 36);
        assert_eq!(mult.fa_cells(), 28);
        assert_eq!(
            mult.universe().fault_count(),
            36 * 8 + 28 * 32 // AND faults + FA faults
        );
    }

    #[test]
    fn latent_faults_never_corrupt() {
        let mult = ArrayMultiplier::new(3);
        for uf in mult.universe().iter().filter(|f| f.fault().is_latent()) {
            for a in Word::all(3) {
                for b in Word::all(3) {
                    assert_eq!(mult.mul(a, b, Some(uf)), a.wrapping_mul(b), "{uf}");
                }
            }
        }
    }

    #[test]
    fn structurally_redundant_faults_are_bounded() {
        // Array multipliers contain structurally redundant faults: the
        // first full adder of each ripple row never sees carry-in 1, so
        // its cin=1 truth-table rows are unexcitable. Such faults always
        // produce correct results and are therefore trivially covered.
        let mult = ArrayMultiplier::new(3);
        let mut excitable = 0usize;
        let mut redundant = 0usize;
        for uf in mult.universe().iter().filter(|f| !f.fault().is_latent()) {
            let hit = Word::all(3)
                .any(|a| Word::all(3).any(|b| mult.mul(a, b, Some(uf)) != a.wrapping_mul(b)));
            if hit {
                excitable += 1;
            } else {
                redundant += 1;
            }
        }
        // Pinned counts for width 3 (72 non-latent faults total): the
        // redundant ones are carry-in rows of first-in-row adders and
        // dropped top-bit carry outs.
        assert_eq!(excitable + redundant, 72);
        assert_eq!(excitable, 42);
        assert_eq!(redundant, 30);
    }

    #[test]
    fn negation_identity_fault_free() {
        // ris + (-op1)*op2 == 0, the paper's Tech1 check for ×.
        let mult = ArrayMultiplier::new(6);
        for a in Word::all(6).step_by(3) {
            for b in Word::all(6).step_by(5) {
                let ris = mult.mul(a, b, None);
                let ris2 = mult.mul(a.wrapping_neg(), b, None);
                assert_eq!(ris.wrapping_add(ris2), Word::zero(6));
            }
        }
    }
}
