//! Gate-level stuck-at faults inside a single full adder.
//!
//! The paper's Table 2 counts `num_faults_1bit = 32` faults for the 1-bit
//! full adder. The classic realisation that yields exactly 32 single
//! stuck-at faults is the standard five-gate full adder
//!
//! ```text
//! p = a XOR b        g = a AND b
//! s = p XOR cin      t = p AND cin
//! cout = g OR t
//! ```
//!
//! counting one fault site per net *stem* and one per fanout *branch*:
//! `a`, `b`, `cin` and `p` each fan out to two gates (stem + 2 branches =
//! 3 sites each), while `g`, `t`, `s` and `cout` have a single site —
//! 16 sites × 2 polarities = **32 faults**.
//!
//! Unlike the truth-table [`CellFault`](crate::CellFault) model (which is
//! row-local), a gate-level stuck-at corrupts *every* input row that
//! sensitises the faulty line, so the same fault can corrupt an addition
//! and the subtraction that checks it — the error-masking mechanism the
//! paper's worst-case analysis quantifies.

use std::fmt;

/// A stuck-at fault site in the five-gate full adder.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaSite {
    /// Input `a`, stem (affects both fanout branches).
    AStem,
    /// Branch of `a` into the XOR producing `p`.
    AXor,
    /// Branch of `a` into the AND producing `g`.
    AAnd,
    /// Input `b`, stem.
    BStem,
    /// Branch of `b` into the XOR producing `p`.
    BXor,
    /// Branch of `b` into the AND producing `g`.
    BAnd,
    /// Input `cin`, stem.
    CinStem,
    /// Branch of `cin` into the XOR producing `s`.
    CinXor,
    /// Branch of `cin` into the AND producing `t`.
    CinAnd,
    /// Net `p = a XOR b`, stem.
    PStem,
    /// Branch of `p` into the XOR producing `s`.
    PXor,
    /// Branch of `p` into the AND producing `t`.
    PAnd,
    /// Net `g = a AND b`.
    G,
    /// Net `t = p AND cin`.
    T,
    /// Output `s`.
    Sum,
    /// Output `cout`.
    Cout,
}

impl FaSite {
    /// All 16 fault sites, in a stable order.
    pub const ALL: [FaSite; 16] = [
        FaSite::AStem,
        FaSite::AXor,
        FaSite::AAnd,
        FaSite::BStem,
        FaSite::BXor,
        FaSite::BAnd,
        FaSite::CinStem,
        FaSite::CinXor,
        FaSite::CinAnd,
        FaSite::PStem,
        FaSite::PXor,
        FaSite::PAnd,
        FaSite::G,
        FaSite::T,
        FaSite::Sum,
        FaSite::Cout,
    ];
}

impl fmt::Display for FaSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaSite::AStem => "a",
            FaSite::AXor => "a>xor",
            FaSite::AAnd => "a>and",
            FaSite::BStem => "b",
            FaSite::BXor => "b>xor",
            FaSite::BAnd => "b>and",
            FaSite::CinStem => "cin",
            FaSite::CinXor => "cin>xor",
            FaSite::CinAnd => "cin>and",
            FaSite::PStem => "p",
            FaSite::PXor => "p>xor",
            FaSite::PAnd => "p>and",
            FaSite::G => "g",
            FaSite::T => "t",
            FaSite::Sum => "s",
            FaSite::Cout => "cout",
        };
        f.write_str(name)
    }
}

/// A single stuck-at fault inside one full adder: `site` stuck at `stuck`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaGateFault {
    site: FaSite,
    stuck: bool,
}

impl FaGateFault {
    /// Creates the fault `site` stuck-at-`stuck`.
    #[must_use]
    pub const fn new(site: FaSite, stuck: bool) -> Self {
        Self { site, stuck }
    }

    /// Enumerates the paper's complete 32-fault universe for one full
    /// adder (stable order: site-major, stuck-at-0 before stuck-at-1).
    pub fn enumerate() -> impl Iterator<Item = FaGateFault> {
        FaSite::ALL
            .into_iter()
            .flat_map(|site| [false, true].map(|stuck| FaGateFault::new(site, stuck)))
    }

    /// The faulty site.
    #[must_use]
    pub const fn site(&self) -> FaSite {
        self.site
    }

    /// The stuck value.
    #[must_use]
    pub const fn stuck(&self) -> bool {
        self.stuck
    }

    /// Evaluates the faulty full adder. Returns `(sum, cout)`.
    #[inline]
    #[must_use]
    pub fn eval(&self, a: bool, b: bool, cin: bool) -> (bool, bool) {
        #[inline]
        fn ov(active: bool, stuck: bool, v: bool) -> bool {
            if active {
                stuck
            } else {
                v
            }
        }
        let st = self.stuck;
        let s = self.site;

        let a0 = ov(s == FaSite::AStem, st, a);
        let b0 = ov(s == FaSite::BStem, st, b);
        let c0 = ov(s == FaSite::CinStem, st, cin);

        let a_x = ov(s == FaSite::AXor, st, a0);
        let a_a = ov(s == FaSite::AAnd, st, a0);
        let b_x = ov(s == FaSite::BXor, st, b0);
        let b_a = ov(s == FaSite::BAnd, st, b0);
        let c_x = ov(s == FaSite::CinXor, st, c0);
        let c_a = ov(s == FaSite::CinAnd, st, c0);

        let p = ov(s == FaSite::PStem, st, a_x ^ b_x);
        let p_x = ov(s == FaSite::PXor, st, p);
        let p_a = ov(s == FaSite::PAnd, st, p);

        let sum = ov(s == FaSite::Sum, st, p_x ^ c_x);
        let g = ov(s == FaSite::G, st, a_a & b_a);
        let t = ov(s == FaSite::T, st, p_a & c_a);
        let cout = ov(s == FaSite::Cout, st, g | t);
        (sum, cout)
    }
}

impl fmt::Display for FaGateFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.site, u8::from(self.stuck))
    }
}

/// Golden (fault-free) full adder: `(sum, cout)`.
#[inline]
#[must_use]
pub fn fa_golden(a: bool, b: bool, cin: bool) -> (bool, bool) {
    (a ^ b ^ cin, (a & b) | (a & cin) | (b & cin))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_32() {
        assert_eq!(FaGateFault::enumerate().count(), 32);
    }

    #[test]
    fn fault_free_structure_matches_golden() {
        // A fault whose site never differs (impossible by construction)
        // aside, verify the gate structure itself: evaluate each fault on
        // rows where its line already holds the stuck value — output must
        // equal golden there.
        for f in FaGateFault::enumerate() {
            let mut differs_somewhere = false;
            for row in 0u8..8 {
                let a = row & 1 != 0;
                let b = row & 2 != 0;
                let c = row & 4 != 0;
                if f.eval(a, b, c) != fa_golden(a, b, c) {
                    differs_somewhere = true;
                }
            }
            // Every gate-level stuck-at in the FA is excitable by some row.
            assert!(differs_somewhere, "{f} never changes any output");
        }
    }

    #[test]
    fn stem_fault_covers_both_branches() {
        // a stem s-a-0 must corrupt rows where a=1 via both p and g paths.
        let f = FaGateFault::new(FaSite::AStem, false);
        // a=1,b=0,cin=0: golden (1,0); with a forced 0 -> (0,0)
        assert_eq!(f.eval(true, false, false), (false, false));
        // a=1,b=1,cin=0: golden (0,1); a->0: p=1, s=1, g=0, t=0 -> (1,0)
        assert_eq!(f.eval(true, true, false), (true, false));
    }

    #[test]
    fn branch_fault_is_local() {
        // a>and s-a-0 leaves the sum path intact.
        let f = FaGateFault::new(FaSite::AAnd, false);
        for row in 0u8..8 {
            let a = row & 1 != 0;
            let b = row & 2 != 0;
            let c = row & 4 != 0;
            let (s, _) = f.eval(a, b, c);
            let (gs, _) = fa_golden(a, b, c);
            assert_eq!(s, gs, "sum must be untouched by a>and fault");
        }
    }

    #[test]
    fn output_faults_force_constant() {
        let f0 = FaGateFault::new(FaSite::Sum, false);
        let f1 = FaGateFault::new(FaSite::Cout, true);
        for row in 0u8..8 {
            let a = row & 1 != 0;
            let b = row & 2 != 0;
            let c = row & 4 != 0;
            assert!(!f0.eval(a, b, c).0);
            assert!(f1.eval(a, b, c).1);
        }
    }

    #[test]
    fn display_names() {
        let f = FaGateFault::new(FaSite::PXor, true);
        assert_eq!(f.to_string(), "p>xor s-a-1");
    }
}
