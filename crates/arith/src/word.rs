//! Fixed-width two's-complement words.

use std::fmt;

/// A fixed-width two's-complement word (1 ..= 64 bits).
///
/// `Word` is the operand/result type of every functional unit in this
/// crate. The stored bits are always masked to the width; signed reads
/// sign-extend from the top bit.
///
/// # Example
///
/// ```
/// use scdp_arith::Word;
///
/// let w = Word::from_i64(4, -3);
/// assert_eq!(w.bits(), 0b1101);
/// assert_eq!(w.to_i64(), -3);
/// assert_eq!(w.to_u64(), 13);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Word {
    width: u32,
    bits: u64,
}

impl Word {
    /// Creates a word of `width` bits from raw `bits` (masked to width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32, bits: u64) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        Self {
            width,
            bits: bits & Self::mask(width),
        }
    }

    /// Creates a word from a signed value, wrapping to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn from_i64(width: u32, value: i64) -> Self {
        Self::new(width, value as u64)
    }

    /// The all-zeros word.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn zero(width: u32) -> Self {
        Self::new(width, 0)
    }

    /// Bit mask for `width` bits.
    #[inline]
    #[must_use]
    fn mask(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Operand width in bits.
    #[inline]
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Raw bits, masked to the width.
    #[inline]
    #[must_use]
    pub const fn bits(&self) -> u64 {
        self.bits
    }

    /// Unsigned value of the bits.
    #[inline]
    #[must_use]
    pub const fn to_u64(&self) -> u64 {
        self.bits
    }

    /// Signed (two's-complement) value of the bits.
    #[inline]
    #[must_use]
    pub fn to_i64(&self) -> i64 {
        let shift = 64 - self.width;
        ((self.bits << shift) as i64) >> shift
    }

    /// Bit `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit {i} out of range");
        (self.bits >> i) & 1 != 0
    }

    /// Returns a copy with bit `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn with_bit(&self, i: u32, value: bool) -> Self {
        assert!(i < self.width, "bit {i} out of range");
        let bits = if value {
            self.bits | (1 << i)
        } else {
            self.bits & !(1 << i)
        };
        Self::new(self.width, bits)
    }

    /// The sign bit (most significant bit).
    #[inline]
    #[must_use]
    pub fn sign(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Bitwise NOT (the paper's *g*-function: 1's complement), fault-free.
    #[inline]
    #[must_use]
    pub fn not(&self) -> Self {
        Self::new(self.width, !self.bits)
    }

    /// Two's-complement negation (fault-free helper).
    #[inline]
    #[must_use]
    pub fn wrapping_neg(&self) -> Self {
        Self::new(self.width, (!self.bits).wrapping_add(1))
    }

    /// Golden wrapping addition (fault-free reference).
    #[inline]
    #[must_use]
    pub fn wrapping_add(&self, rhs: Word) -> Self {
        self.assert_same_width(rhs);
        Self::new(self.width, self.bits.wrapping_add(rhs.bits))
    }

    /// Golden wrapping subtraction (fault-free reference).
    #[inline]
    #[must_use]
    pub fn wrapping_sub(&self, rhs: Word) -> Self {
        self.assert_same_width(rhs);
        Self::new(self.width, self.bits.wrapping_sub(rhs.bits))
    }

    /// Golden wrapping multiplication (fault-free reference, low bits).
    #[inline]
    #[must_use]
    pub fn wrapping_mul(&self, rhs: Word) -> Self {
        self.assert_same_width(rhs);
        Self::new(self.width, self.bits.wrapping_mul(rhs.bits))
    }

    /// Golden truncating signed division (fault-free reference).
    ///
    /// Returns `(quotient, remainder)` with Rust/C semantics: the quotient
    /// rounds toward zero and the remainder takes the dividend's sign.
    /// The `MIN / -1` overflow case wraps.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    pub fn wrapping_div_rem(&self, rhs: Word) -> (Self, Self) {
        self.assert_same_width(rhs);
        assert!(rhs.bits != 0, "division by zero");
        let a = self.to_i64();
        let b = rhs.to_i64();
        let q = a.wrapping_div(b);
        let r = a.wrapping_rem(b);
        (Self::from_i64(self.width, q), Self::from_i64(self.width, r))
    }

    /// Iterates all `2^width` words of `width` bits.
    ///
    /// Only sensible for small widths; intended for exhaustive campaigns.
    pub fn all(width: u32) -> impl Iterator<Item = Word> {
        let count: u64 = if width >= 64 { 0 } else { 1u64 << width };
        (0..count).map(move |bits| Word::new(width, bits))
    }

    #[inline]
    fn assert_same_width(&self, rhs: Word) {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word<{}>({})", self.width, self.to_i64())
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_i64())
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.width as usize)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

impl fmt::Octal for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extension_round_trips() {
        for w in [1, 2, 3, 7, 8, 16, 31, 64] {
            for v in [-3i64, -1, 0, 1, 5] {
                let word = Word::from_i64(w, v);
                let lo = if w == 64 {
                    i64::MIN
                } else {
                    -(1i64 << (w - 1))
                };
                let hi = if w == 64 {
                    i64::MAX
                } else {
                    (1i64 << (w - 1)) - 1
                };
                if v >= lo && v <= hi {
                    assert_eq!(word.to_i64(), v, "w={w} v={v}");
                }
            }
        }
    }

    #[test]
    fn wrapping_matches_width() {
        let w = Word::from_i64(4, 7).wrapping_add(Word::from_i64(4, 1));
        assert_eq!(w.to_i64(), -8); // overflow wraps in 4 bits
        let m = Word::from_i64(4, 5).wrapping_mul(Word::from_i64(4, 5));
        assert_eq!(m.to_u64(), 25 & 0xF);
    }

    #[test]
    fn neg_and_not_identities() {
        for v in Word::all(5) {
            let expected = (v.to_i64().wrapping_neg() as u64) & 0x1F;
            assert_eq!(v.wrapping_neg().bits(), expected, "v={v:?}");
            // -x == !x + 1
            assert_eq!(
                v.wrapping_neg(),
                v.not().wrapping_add(Word::new(5, 1)),
                "v={v:?}"
            );
        }
    }

    #[test]
    fn div_rem_matches_rust_semantics() {
        let w = 8;
        for a in [-128i64, -77, -1, 0, 1, 63, 127] {
            for b in [-128i64, -3, -1, 1, 2, 10, 127] {
                let (q, r) = Word::from_i64(w, a).wrapping_div_rem(Word::from_i64(w, b));
                let a8 = a as i8;
                let b8 = b as i8;
                assert_eq!(q.to_i64(), a8.wrapping_div(b8) as i64, "{a}/{b}");
                assert_eq!(r.to_i64(), a8.wrapping_rem(b8) as i64, "{a}%{b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Word::from_i64(8, 1).wrapping_div_rem(Word::zero(8));
    }

    #[test]
    fn bit_access() {
        let w = Word::new(4, 0b1010);
        assert!(!w.bit(0));
        assert!(w.bit(1));
        assert!(w.sign());
        assert_eq!(w.with_bit(0, true).bits(), 0b1011);
        assert_eq!(w.with_bit(3, false).bits(), 0b0010);
    }

    #[test]
    fn all_enumerates_exactly() {
        assert_eq!(Word::all(3).count(), 8);
        let v: Vec<u64> = Word::all(2).map(|w| w.to_u64()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn formatting() {
        let w = Word::new(4, 0b1010);
        assert_eq!(format!("{w:b}"), "1010");
        assert_eq!(format!("{w:x}"), "a");
        assert_eq!(format!("{w}"), "-6");
        assert_eq!(format!("{w:?}"), "Word<4>(-6)");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Word::zero(4).wrapping_add(Word::zero(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        let _ = Word::new(0, 0);
    }
}
