//! Run-scoped observability: the one lifecycle/telemetry context
//! behind every campaign spec shape.
//!
//! [`RunCtx`] owns the run's root [`Span`], its [`Recorder`], the
//! structured [`EventSink`] and the deprecated
//! [`Progress`](crate::Progress) observer. The three spec shapes
//! (`CampaignSpec`, `DatapathCampaignSpec`, `SeqDatapathCampaignSpec`)
//! used to duplicate the same `Instant::now()` → emit `Started` → run →
//! patch `elapsed_ms` → emit `Finished` choreography; they now share
//! it here, which makes two things impossible by construction:
//!
//! * a report escaping with the `elapsed_ms: 0` placeholder — the only
//!   writer of `elapsed_ms` is [`RunCtx::finish`], deriving it from the
//!   root span;
//! * the structured stream and the legacy observer drifting apart —
//!   every lifecycle event goes through [`RunCtx::emit`], which fans
//!   out to both.

use crate::report::CampaignReport;
use crate::scenario::{Backend, FaultModel};
#[allow(deprecated)]
use crate::spec::{Progress, ProgressHook};
use scdp_obs::{EventSink, ObsEvent, Recorder, Span};
use std::sync::Arc;

/// The observability context of one campaign run.
pub(crate) struct RunCtx {
    recorder: Arc<Recorder>,
    root: Option<Span>,
    sink: Option<EventSink>,
    #[allow(deprecated)]
    observer: Option<ProgressHook>,
    /// Embed a [`scdp_obs::TelemetrySnapshot`] in the finished report.
    record: bool,
    backend: Backend,
    fault_model: FaultModel,
}

impl RunCtx {
    /// Opens the root span and emits `CampaignStarted` (and the legacy
    /// `Progress::Started`). Call *after* validation so failed configs
    /// never announce a run.
    #[allow(deprecated)]
    pub(crate) fn start(
        backend: Backend,
        fault_model: FaultModel,
        sink: Option<EventSink>,
        observer: Option<ProgressHook>,
        record: bool,
    ) -> RunCtx {
        let recorder = Arc::new(Recorder::new());
        let root = recorder.span("campaign", sink.clone());
        let ctx = RunCtx {
            recorder,
            root: Some(root),
            sink,
            observer,
            record,
            backend,
            fault_model,
        };
        ctx.emit(&ObsEvent::CampaignStarted {
            backend: backend.label().to_string(),
            fault_model: fault_model.label().to_string(),
        });
        ctx
    }

    /// The run's recorder, when the spec asked for a telemetry section
    /// (`None` keeps the engine hot loops instrumentation-free).
    pub(crate) fn recorder(&self) -> Option<Arc<Recorder>> {
        self.record.then(|| Arc::clone(&self.recorder))
    }

    /// Opens a child span of the root (`campaign/<name>`).
    pub(crate) fn span(&self, name: &str) -> Span {
        self.root
            .as_ref()
            .expect("root span open until finish")
            .child(name)
    }

    /// Emits `NetlistCompiled` on both channels.
    pub(crate) fn netlist_compiled(&self, name: &str, gates: usize, faults: usize) {
        self.emit(&ObsEvent::NetlistCompiled {
            name: name.to_string(),
            gates: gates as u64,
            faults: faults as u64,
        });
    }

    /// Fans an event out to the structured sink and, translated, to the
    /// deprecated progress observer.
    #[allow(deprecated)]
    pub(crate) fn emit(&self, event: &ObsEvent) {
        if let Some(sink) = &self.sink {
            sink(event);
        }
        let Some(hook) = &self.observer else {
            return;
        };
        let legacy = match event {
            ObsEvent::CampaignStarted { .. } => Some(Progress::Started {
                backend: self.backend,
                fault_model: self.fault_model,
            }),
            ObsEvent::NetlistCompiled {
                name,
                gates,
                faults,
            } => Some(Progress::NetlistCompiled {
                name: name.clone(),
                gates: *gates as usize,
                faults: *faults as usize,
            }),
            ObsEvent::CampaignFinished {
                simulated,
                elapsed_ms,
            } => Some(Progress::Finished {
                simulated: *simulated,
                elapsed_ms: *elapsed_ms,
            }),
            _ => None,
        };
        if let Some(p) = legacy {
            hook(&p);
        }
    }

    /// Ends the run: closes the root span, stamps `elapsed_ms` from it
    /// (the single place that writes the field), embeds the telemetry
    /// snapshot when recording, and emits `CampaignFinished`.
    pub(crate) fn finish(mut self, report: &mut CampaignReport) {
        let root = self.root.take().expect("finish runs once");
        report.elapsed_ms = root.close() / 1_000_000;
        if self.record {
            let snap = self.recorder.snapshot();
            if !snap.is_empty() {
                report.telemetry = Some(snap);
            }
        }
        self.emit(&ObsEvent::CampaignFinished {
            simulated: report.simulated,
            elapsed_ms: report.elapsed_ms,
        });
    }
}
