//! The two scalar instruments: monotonic counters and log2-bucketed
//! histograms. Both are lock-free (`Relaxed` atomics — telemetry wants
//! cheap increments, not cross-metric ordering) and shared by `Arc`
//! between the [`Recorder`](crate::Recorder) and the hot loops that
//! increment them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `k >= 1` holds values in `[2^(k-1), 2^k)`, so 65 buckets cover the
/// full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index of `value` (0 for 0, `k` for
/// `2^(k-1) <= value < 2^k`).
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The smallest value falling into bucket `index` (the inverse of
/// [`bucket_of`] on bucket lower bounds). Used by trace summaries to
/// label buckets.
#[must_use]
pub fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        k => 1u64 << (k - 1),
    }
}

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed distribution of `u64` samples.
///
/// Power-of-two buckets keep recording branch-free and the snapshot
/// small regardless of the value range — detection latencies span six
/// orders of magnitude between a combinational sweep and a
/// million-cycle sequential campaign.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// The count in bucket `index` (0 for out-of-range indices).
    #[must_use]
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets
            .get(index)
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The non-empty `(bucket, count)` pairs in bucket order.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.bucket(i);
                (n > 0).then_some((u32::try_from(i).expect("bucket index fits u32"), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(k)), k, "floor of bucket {k}");
        }
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_records_and_lists_nonzero() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (10, 1)]);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
