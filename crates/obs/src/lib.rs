//! `scdp-obs` — the telemetry layer of the reproduction.
//!
//! Campaigns in this workspace range from a millisecond functional
//! sweep to a million-cycle sharded sequential run; before this crate
//! nobody could say where that time went, how fast faults dropped, or
//! which shard straggled. This crate is the instrument panel: a
//! zero-dependency, thread-safe set of primitives that every layer
//! (engine hot loop, spec runner, shard orchestrator, CLI) records
//! into, and a stable snapshot type the campaign report embeds.
//!
//! * [`Counter`] — a monotonic atomic counter.
//! * [`Histogram`] — log2-bucketed value distribution (65 buckets
//!   cover the full `u64` range).
//! * [`Span`] — a hierarchical wall-clock timer; closing a span folds
//!   its duration into the owning [`Recorder`] under its `a/b/c` path
//!   and optionally emits an [`ObsEvent::SpanClosed`] to a sink.
//! * [`Recorder`] — the registry; [`Recorder::snapshot`] freezes it
//!   into a [`TelemetrySnapshot`].
//! * [`TelemetrySnapshot`] — plain, ordered, mergeable data; the
//!   `telemetry` section of campaign reports.
//! * [`ObsEvent`] / [`EventSink`] — the unified structured event
//!   stream (campaign lifecycle, span closures, shard progress) with a
//!   stable JSONL serialisation for `--trace` files.
//!
//! # Determinism contract
//!
//! Counter and histogram names that do **not** end in `_ns` are
//! *count-typed*: their values must be independent of the thread count
//! and of sharding (a merged sharded run equals the unsharded run).
//! Names ending in `_ns` carry wall-clock nanoseconds and are exempt.
//! [`TelemetrySnapshot::deterministic_counters`] selects the former;
//! the campaign test-suite enforces the contract on it.
//!
//! The crate is deliberately free of dependencies — it sits *below*
//! `scdp-campaign` (whose report embeds the snapshot), so it carries
//! its own minimal JSONL writer rather than using `campaign::json`.

#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;
mod snapshot;

pub use event::{write_json_string, EventSink, ObsEvent};
pub use metrics::{bucket_floor, bucket_of, Counter, Histogram, HISTOGRAM_BUCKETS};
pub use recorder::{Recorder, Span};
pub use snapshot::{
    BucketCount, CounterSnapshot, HistogramSnapshot, SpanSnapshot, TelemetrySnapshot,
};
