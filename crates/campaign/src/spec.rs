//! Campaign configuration and the unified `run()` entry point.

use crate::collapse::CollapsePlan;
use crate::error::CampaignError;
use crate::obs::RunCtx;
use crate::prune::PrunePlan;
use crate::report::{drop_label, CampaignReport, DeduceDetails, FaultRecord};
use crate::scenario::{
    allocation_label, realisation_label, technique_label, Backend, FaultModel, Scenario,
};
use crate::shard::{self, ShardInfo, ShardPlan};
use scdp_core::{Allocation, Operator};
use scdp_coverage::{AdderFaultModel, InputSpace, OperatorKind, Tally, TechIndex, TechTally};
use scdp_netlist::gen::{
    self_checking, self_checking_add_with, AdderRealisation, SelfCheckingSpec,
};
use scdp_netlist::{Netlist, StuckAtLine};
use scdp_obs::EventSink;
use scdp_sim::{DropPolicy, Engine, InputPlan, Lanes};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Maximum supported operand width (the functional cell models cap at
/// 32 bits).
pub const MAX_WIDTH: u32 = 32;

/// How a campaign *executes*, as opposed to *what* it simulates: the
/// worker-thread cap, SIMD lane width, fault-drop policy, equivalence
/// collapsing, deductive pruning, and telemetry capture. One `ExecPolicy` is shared —
/// field for field — by every spec builder ([`CampaignSpec`],
/// [`crate::DatapathCampaignSpec`], [`crate::SeqDatapathCampaignSpec`]),
/// so execution tuning written for one backend carries unchanged to the
/// others.
///
/// # Example
///
/// ```
/// use scdp_campaign::{Backend, ExecPolicy, Lanes, Scenario};
/// use scdp_core::Operator;
///
/// let exec = ExecPolicy::new().threads(2).lanes(Lanes::Auto);
/// let report = Scenario::new(Operator::Add, 3)
///     .campaign()
///     .backend(Backend::GateLevel)
///     .exec(exec)
///     .run()
///     .expect("gate level");
/// assert!(report.coverage() > 0.9);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker-thread cap for the work-stealing pool (`None` = all
    /// available cores). Validated against zero at `run()` time.
    pub threads: Option<usize>,
    /// Packed-engine lane width: how many 64-bit limbs each simulated
    /// word carries ([`Lanes::Auto`] picks the widest). Results are
    /// bit-identical at every width.
    pub lanes: Lanes,
    /// When faults leave the simulated universe (gate level only).
    pub drop: DropPolicy,
    /// When `true`, the gate-level engine simulates only one
    /// representative per fault-equivalence class and fans verdicts
    /// back out — reports stay bit-identical, wall clock shrinks.
    pub collapse: bool,
    /// When `true`, the deductive pre-classifier (`scdp-analyze`'s
    /// `PrunedUniverse` / `DominatorChains`) settles provably
    /// untestable faults from a fault-free baseline probe and defers
    /// dominated faults behind their dominators — reports stay
    /// bit-identical, wall clock shrinks; the report carries a
    /// presence-driven `deduce` section with the breakdown.
    pub prune: bool,
    /// When `true`, the report carries a presence-driven `telemetry`
    /// section ([`scdp_obs::TelemetrySnapshot`]): engine counters and
    /// histograms, pool/scheduling observations, per-stage span
    /// timings.
    pub telemetry: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecPolicy {
    /// The default policy: all cores, auto lane width, no dropping, no
    /// collapsing, no pruning, no telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: None,
            lanes: Lanes::Auto,
            drop: DropPolicy::Never,
            collapse: false,
            prune: false,
            telemetry: false,
        }
    }

    /// Caps the worker thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Selects the packed-engine lane width.
    #[must_use]
    pub fn lanes(mut self, lanes: Lanes) -> Self {
        self.lanes = lanes;
        self
    }

    /// Selects the drop policy (gate-level backend only).
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.drop = drop;
        self
    }

    /// Enables fault-equivalence collapsing (gate-level backend only).
    #[must_use]
    pub fn collapse(mut self, enabled: bool) -> Self {
        self.collapse = enabled;
        self
    }

    /// Enables deductive pruning (gate-level backends only): provably
    /// untestable faults are settled from a fault-free baseline probe
    /// without simulation, and — for combinational detection
    /// campaigns — dominated faults are deferred behind their
    /// dominators and settled whenever the dominator stays silent.
    /// Reports (tallies, per-fault rows, shard geometry, fingerprints)
    /// stay bit-identical to the unpruned run; the `deduce.*`
    /// telemetry counters and the report's `deduce` section record
    /// what was saved.
    #[must_use]
    pub fn prune(mut self, enabled: bool) -> Self {
        self.prune = enabled;
        self
    }

    /// Embeds a telemetry snapshot in the report.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }
}

/// Configures *how* a [`Scenario`] is analysed and runs it.
///
/// # Example
///
/// ```
/// use scdp_campaign::{Backend, ExecPolicy, Scenario};
/// use scdp_core::{Operator, Technique};
///
/// let scenario = Scenario::new(Operator::Add, 3).technique(Technique::Both);
/// // The same scenario drives both engines.
/// let functional = scenario.campaign().run().expect("functional");
/// let gate = scenario
///     .campaign()
///     .backend(Backend::GateLevel)
///     .exec(ExecPolicy::new().threads(2))
///     .run()
///     .expect("gate level");
/// assert!(functional.coverage() > 0.9);
/// assert!(gate.coverage() > 0.9);
/// ```
///
/// Invalid configurations are reported as typed errors, not panics:
///
/// ```
/// use scdp_campaign::{CampaignError, Scenario};
/// use scdp_core::Operator;
///
/// let err = Scenario::new(Operator::Add, 99).campaign().run().unwrap_err();
/// assert!(matches!(err, CampaignError::WidthOutOfRange { width: 99, .. }));
/// ```
#[derive(Clone)]
pub struct CampaignSpec {
    /// The scenario under analysis.
    pub scenario: Scenario,
    /// The executing engine.
    pub backend: Backend,
    /// The fault universe to inject.
    pub fault_model: FaultModel,
    /// The input-space strategy.
    pub space: InputSpace,
    /// How the campaign executes: threads, lanes, dropping, collapsing,
    /// telemetry.
    pub exec: ExecPolicy,
    /// Restricts the run to one shard of a partitioned universe:
    /// `(index, count)` of a [`ShardPlan`] over the fault universe.
    /// `None` runs the whole universe.
    pub shard: Option<(u32, u32)>,
    /// Optional structured event sink observing the run's lifecycle
    /// and span closures ([`scdp_obs::ObsEvent`]).
    pub events: Option<EventSink>,
}

impl fmt::Debug for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignSpec")
            .field("scenario", &self.scenario)
            .field("backend", &self.backend)
            .field("fault_model", &self.fault_model)
            .field("space", &self.space)
            .field("exec", &self.exec)
            .field("shard", &self.shard)
            .field("events", &self.events.as_ref().map(|_| ".."))
            .finish()
    }
}

impl CampaignSpec {
    /// Starts a campaign specification with the paper's defaults:
    /// functional backend, canonical fault model, exhaustive inputs,
    /// and the default [`ExecPolicy`].
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            backend: Backend::Functional,
            fault_model: FaultModel::Auto,
            space: InputSpace::Exhaustive,
            exec: ExecPolicy::new(),
            shard: None,
            events: None,
        }
    }

    /// Selects the executing backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the fault model.
    #[must_use]
    pub fn fault_model(mut self, model: FaultModel) -> Self {
        self.fault_model = model;
        self
    }

    /// Selects the input space.
    #[must_use]
    pub fn input_space(mut self, space: InputSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the execution policy wholesale: threads, lanes, drop
    /// policy, collapsing and telemetry in one value. This supersedes
    /// the per-knob setters (`threads`, `drop_policy`, `collapse`,
    /// `telemetry`), which remain as deprecated shims.
    #[must_use]
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the drop policy (gate-level backend only).
    #[deprecated(
        since = "0.1.0",
        note = "use `exec(ExecPolicy::new().drop_policy(..))`"
    )]
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.exec.drop = drop;
        self
    }

    /// Caps the worker thread count (validated by [`CampaignSpec::run`]).
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().threads(..))`")]
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec.threads = Some(threads);
        self
    }

    /// Restricts the run to shard `index` of a `count`-way
    /// [`ShardPlan`] over the fault universe (validated by
    /// [`CampaignSpec::run`]). The report then carries a `shard`
    /// section and serialises as `scdp.campaign.report/v4`; merging all
    /// `count` shards reproduces the unsharded report bit for bit.
    #[must_use]
    pub fn shard(mut self, index: u32, count: u32) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Fingerprint of this campaign's configuration — the value sharded
    /// runs stamp into [`ShardInfo::plan_hash`] so checkpoints from
    /// different campaigns can never be resumed or merged into one
    /// sweep. Stable across processes (label-based, not hash-seeded).
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        let s = &self.scenario;
        let width = s.width.to_string();
        let space = shard::space_part(self.space);
        shard::config_fingerprint([
            "operator",
            s.op_label(),
            &width,
            technique_label(s.technique),
            allocation_label(s.allocation),
            realisation_label(s.realisation),
            self.backend.label(),
            self.fault_model.resolve(self.backend).label(),
            &space,
            drop_label(self.exec.drop),
        ])
    }

    /// Installs a structured event sink, called on the driver thread:
    /// lifecycle events plus a [`scdp_obs::ObsEvent::SpanClosed`] per
    /// run stage.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Embeds a telemetry snapshot in the report (presence-driven
    /// `telemetry` section; off by default so reports stay
    /// byte-reproducible).
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().telemetry(..))`")]
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.exec.telemetry = enabled;
        self
    }

    /// Simulates only one representative per fault-equivalence class
    /// (static collapsing via `scdp-analyze`) and fans verdicts back
    /// out to the full universe. The report — tallies, per-fault rows,
    /// shard geometry — stays bit-identical to the uncollapsed run;
    /// only wall clock and the `collapse.*` telemetry counters change.
    /// Gate-level backend only; intentionally excluded from
    /// [`CampaignSpec::config_fingerprint`] so collapsed and
    /// uncollapsed checkpoints stay interchangeable.
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().collapse(..))`")]
    #[must_use]
    pub fn collapse(mut self, enabled: bool) -> Self {
        self.exec.collapse = enabled;
        self
    }

    /// Runs the campaign on the selected backend.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] instead of panicking for every
    /// invalid configuration: width out of range, zero threads,
    /// unsupported operator/fault-model/drop-policy combinations, and
    /// exhaustive spaces too large to enumerate.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let model = self.validate()?;
        let ctx = RunCtx::start(
            self.backend,
            model,
            self.events.clone(),
            self.exec.telemetry,
        );
        let mut report = match self.backend {
            Backend::Functional => self.run_functional(model, &ctx),
            Backend::GateLevel => self.run_gate(model, &ctx),
        }?;
        ctx.finish(&mut report);
        Ok(report)
    }

    /// Validates the configuration and resolves the fault model.
    fn validate(&self) -> Result<FaultModel, CampaignError> {
        let s = &self.scenario;
        if s.width == 0 || s.width > MAX_WIDTH {
            return Err(CampaignError::WidthOutOfRange {
                width: s.width,
                max: MAX_WIDTH,
            });
        }
        if self.exec.threads == Some(0) {
            return Err(CampaignError::ZeroThreads);
        }
        if let Some((index, count)) = self.shard {
            if count == 0 {
                return Err(CampaignError::ZeroShards);
            }
            if index >= count {
                return Err(CampaignError::ShardIndexOutOfRange { index, count });
            }
        }
        let model = self.fault_model.resolve(self.backend);
        match self.backend {
            Backend::Functional => {
                if self.exec.collapse {
                    return Err(CampaignError::UnsupportedCollapse {
                        backend: self.backend,
                    });
                }
                if self.exec.prune {
                    return Err(CampaignError::UnsupportedPrune {
                        backend: self.backend,
                    });
                }
                if self.exec.drop != DropPolicy::Never {
                    return Err(CampaignError::UnsupportedDropPolicy {
                        backend: self.backend,
                    });
                }
                if model == FaultModel::Structural {
                    return Err(CampaignError::UnsupportedFaultModel {
                        model,
                        backend: self.backend,
                        detail: "structural stuck-ats exist only on generated netlists",
                    });
                }
            }
            Backend::GateLevel => {
                if s.op == Operator::Div {
                    return Err(CampaignError::UnsupportedOperator {
                        op: s.op,
                        backend: self.backend,
                    });
                }
                if s.realisation != AdderRealisation::RippleCarry && s.op != Operator::Add {
                    return Err(CampaignError::UnsupportedRealisation {
                        realisation: s.realisation,
                        op: s.op,
                    });
                }
                if model == FaultModel::Cell {
                    return Err(CampaignError::UnsupportedFaultModel {
                        model,
                        backend: self.backend,
                        detail: "truth-table cell faults exist only in the functional models",
                    });
                }
                if model == FaultModel::FaGate
                    && (s.op == Operator::Mul || s.realisation != AdderRealisation::RippleCarry)
                {
                    return Err(CampaignError::UnsupportedFaultModel {
                        model,
                        backend: self.backend,
                        detail: "the functional-twin universe needs a ripple-carry \
                                 full-adder chain",
                    });
                }
                if self.space == InputSpace::Exhaustive && 2 * s.width >= 64 {
                    return Err(CampaignError::ExhaustiveSpaceTooLarge { width: s.width });
                }
            }
        }
        Ok(model)
    }

    /// Dispatches to the functional classifier of `scdp-coverage`.
    fn run_functional(
        &self,
        model: FaultModel,
        ctx: &RunCtx,
    ) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        let kind = match s.op {
            Operator::Add => OperatorKind::Add,
            Operator::Sub => OperatorKind::Sub,
            Operator::Mul => OperatorKind::Mul,
            Operator::Div => OperatorKind::Div,
        };
        let adder_model = match model {
            FaultModel::Cell => AdderFaultModel::Cell,
            _ => AdderFaultModel::Gate,
        };
        // The engine-room constructor's `assert!`s cannot fire because
        // `validate()` ran first.
        let mut builder = scdp_coverage::CampaignBuilder::over(kind, s.width)
            .adder_model(adder_model)
            .allocation(s.allocation)
            .input_space(self.space);
        if let Some(t) = self.exec.threads {
            builder = builder.threads(t);
        }
        let shard = match self.shard {
            None => None,
            Some((index, count)) => {
                let plan = ShardPlan::new(builder.universe_size() as u64, count)?;
                plan.check_index(index)?;
                let range = plan.range(index);
                builder = builder.fault_range(range.start as usize..range.end as usize);
                Some(ShardInfo {
                    index,
                    count,
                    fault_start: range.start,
                    fault_end: range.end,
                    total_faults: plan.total_faults(),
                    plan_hash: self.config_fingerprint(),
                })
            }
        };
        let sim = ctx.span("simulate");
        let result = builder.run();
        sim.close();
        let selected = s.tech_index();
        let per_fault: Vec<FaultRecord> = result
            .per_fault
            .iter()
            .map(|tally| {
                let t = *tally.of(selected);
                FaultRecord {
                    tally: t,
                    detected: t.alarms() > 0,
                    escaped: t.error_undetected > 0,
                    dropped_after: None,
                }
            })
            .collect();
        Ok(CampaignReport {
            scenario: *s,
            backend: Backend::Functional,
            fault_model: model,
            space: self.space,
            drop: self.exec.drop,
            simulated: result.tally.of(selected).total(),
            tally: result.tally,
            filled: TechIndex::ALL.to_vec(),
            per_fault,
            elapsed_ms: 0,
            datapath: None,
            sequential: None,
            shard,
            deduce: None,
            telemetry: None,
        })
    }

    /// Compiles the scenario's netlist and dispatches to the
    /// bit-parallel engine of `scdp-sim`.
    fn run_gate(&self, model: FaultModel, ctx: &RunCtx) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        let compile = ctx.span("compile");
        let dp = match s.op {
            Operator::Add => self_checking_add_with(s.width, s.technique, s.realisation),
            Operator::Sub | Operator::Mul => self_checking(SelfCheckingSpec {
                op: s.op,
                technique: s.technique,
                width: s.width,
            }),
            Operator::Div => unreachable!("rejected by validate()"),
        };
        let correlated = s.allocation == Allocation::SingleUnit;
        let groups = match model {
            FaultModel::Structural => {
                let mut groups = Vec::new();
                for site in dp.local_sites() {
                    for value in [false, true] {
                        groups.push(if correlated {
                            dp.correlated_fault(site, value)
                        } else {
                            dp.nominal_fault(site, value)
                        });
                    }
                }
                groups
            }
            FaultModel::FaGate => {
                dp.fa_gate_fault_groups(correlated)
                    .ok_or(CampaignError::UnsupportedFaultModel {
                        model,
                        backend: self.backend,
                        detail: "this datapath retains no full-adder cell maps",
                    })?
            }
            _ => unreachable!("rejected by validate()"),
        };
        let engine = Engine::new(&dp.netlist);
        compile.close();
        ctx.netlist_compiled(dp.netlist.name(), dp.netlist.gate_count(), groups.len());
        let universe = groups.len() as u64;
        let shard = match self.shard {
            None => None,
            Some((index, count)) => {
                let plan = ShardPlan::new(universe, count)?;
                plan.check_index(index)?;
                let range = plan.range(index);
                Some(ShardInfo {
                    index,
                    count,
                    fault_start: range.start,
                    fault_end: range.end,
                    total_faults: plan.total_faults(),
                    plan_hash: self.config_fingerprint(),
                })
            }
        };
        let covered: Range<u64> = shard
            .as_ref()
            .map_or(0..universe, |si| si.fault_start..si.fault_end);
        let (per_fault, col, simulated, deduce) = run_gate_groups(
            ctx,
            &dp.netlist,
            &engine,
            groups,
            covered,
            InputPlan::from_space(self.space),
            &self.exec,
        )?;
        let tally_span = ctx.span("tally");
        let selected = s.tech_index();
        let mut tally = Tally::default();
        tally.tech[selected as usize] = col;
        tally_span.close();
        Ok(CampaignReport {
            scenario: *s,
            backend: Backend::GateLevel,
            fault_model: model,
            space: self.space,
            drop: self.exec.drop,
            tally,
            filled: vec![selected],
            per_fault,
            simulated,
            elapsed_ms: 0,
            datapath: None,
            sequential: None,
            shard,
            deduce,
            telemetry: None,
        })
    }
}

/// Shared gate-level driver for combinational fault-group universes
/// (operator and datapath campaigns): runs `groups` on `engine` over
/// `covered` (the whole universe or one shard's slice) and returns the
/// covered per-fault rows plus their summed tally and situation count.
///
/// With `exec.collapse` the engine sees only one representative group
/// per equivalence class intersecting `covered` (selected by
/// [`CollapsePlan`]); each representative's verdict is then cloned to
/// every covered member. The rows — and therefore everything derived
/// from them — are bit-identical to the uncollapsed run because the
/// engine replays the same deterministic batch stream for every group.
///
/// With `exec.prune` a [`PrunePlan`] additionally settles engine groups
/// deductively: untestable groups take the fault-free baseline probe
/// outcome, dominated singleton lines defer behind their dominator root
/// and settle with the baseline when that root simulated completely
/// silent — any root that did not stays bit-exact via a second engine
/// pass over just the unsettled lines. The returned [`DeduceDetails`]
/// records the breakdown and which rows were settled without
/// simulation.
pub(crate) fn run_gate_groups(
    ctx: &RunCtx,
    netlist: &Netlist,
    engine: &Engine,
    groups: Vec<Vec<StuckAtLine>>,
    covered: Range<u64>,
    plan: InputPlan,
    exec: &ExecPolicy,
) -> Result<(Vec<FaultRecord>, TechTally, u64, Option<DeduceDetails>), CampaignError> {
    let universe = groups.len();
    let sharded = covered != (0..universe as u64);
    let collapse_plan = exec
        .collapse
        .then(|| CollapsePlan::build(netlist, &groups, covered.clone()));
    if let Some(cp) = &collapse_plan {
        ctx.record_collapse(universe, cp.rep_groups.len(), cp.classes_total);
    }
    let sim_groups = match &collapse_plan {
        Some(cp) => cp.rep_groups.clone(),
        None => groups,
    };
    let ranged = sharded && collapse_plan.is_none();
    let scope: Range<usize> = if ranged {
        covered.start as usize..covered.end as usize
    } else {
        0..sim_groups.len()
    };
    let prune_plan = exec.prune.then(|| {
        let span = ctx.span("deduce");
        let pp = PrunePlan::build(netlist, &sim_groups, scope.clone());
        span.close();
        pp
    });
    // Deferred groups are the only ones that might re-simulate in a
    // second pass; keep copies before the engine takes the universe.
    let deferred_groups: HashMap<usize, Vec<StuckAtLine>> = prune_plan
        .as_ref()
        .map(|pp| {
            pp.deferred
                .iter()
                .map(|&(u, _)| (u, sim_groups[u].clone()))
                .collect()
        })
        .unwrap_or_default();
    let mut campaign = scdp_sim::EngineCampaign::over(engine, sim_groups)
        .plan(plan)
        .drop_policy(exec.drop)
        .lanes(exec.lanes);
    if let Some(pp) = &prune_plan {
        campaign = campaign.skip_resolved(pp.skip());
    }
    if let Some(rec) = ctx.recorder() {
        campaign = campaign.recorder(rec);
    }
    if let Some(t) = exec.threads {
        campaign = campaign.threads(t);
    }
    if ranged {
        campaign = campaign.fault_range(scope.clone());
    }
    campaign.check().map_err(|e| CampaignError::FaultSpec {
        message: e.to_string(),
    })?;
    let sim = ctx.span("simulate");
    let summary = campaign.run();
    sim.close();
    let mut outcomes = summary.per_fault;
    // Deductive settling: skipped entries already carry the fault-free
    // baseline outcome; deferred ones keep it only when their root's
    // simulated outcome *is* that (silent, undropped) baseline, and are
    // re-simulated otherwise — each group's outcome is independent of
    // its neighbours, so the second pass reproduces the unpruned rows
    // bit for bit.
    let mut deduced = vec![false; scope.len()];
    let mut deduce = None;
    if let Some(pp) = &prune_plan {
        for &u in &pp.untestable {
            deduced[u - scope.start] = true;
        }
        let baseline = summary.baseline.as_ref();
        let silent_baseline = baseline.is_some_and(|b| {
            b.tally.correct_detected == 0
                && b.tally.error_detected == 0
                && b.tally.error_undetected == 0
                && b.dropped_after.is_none()
        });
        let mut unsettled: Vec<usize> = Vec::new();
        for &(u, anc) in &pp.deferred {
            let settled = silent_baseline && Some(&outcomes[anc - scope.start]) == baseline;
            if settled {
                deduced[u - scope.start] = true;
            } else {
                unsettled.push(u);
            }
        }
        if !unsettled.is_empty() {
            let rerun: Vec<Vec<StuckAtLine>> = unsettled
                .iter()
                .map(|&u| deferred_groups[&u].clone())
                .collect();
            // No recorder here: pass-1 situation counters already cover
            // the whole scope (baseline-filled rows included), keeping
            // `engine.situations` equal to the report's `simulated`.
            let mut pass2 = scdp_sim::EngineCampaign::over(engine, rerun)
                .plan(plan)
                .drop_policy(exec.drop)
                .lanes(exec.lanes);
            if let Some(t) = exec.threads {
                pass2 = pass2.threads(t);
            }
            let second = pass2.run();
            for (k, &u) in unsettled.iter().enumerate() {
                outcomes[u - scope.start] = second.per_fault[k].clone();
            }
        }
        let untestable = pp.untestable.len() as u64;
        let dominated = (pp.deferred.len() - unsettled.len()) as u64;
        let simulated = scope.len() as u64 - untestable - dominated;
        ctx.record_deduce(untestable, dominated, simulated);
        deduce = Some(DeduceDetails {
            untestable,
            dominated,
            simulated,
            rows: Vec::new(),
        });
    }
    let record = |f: &scdp_sim::FaultOutcome| FaultRecord {
        tally: f.tally,
        detected: f.detected,
        escaped: f.escaped,
        dropped_after: f.dropped_after,
    };
    let per_fault: Vec<FaultRecord> = match &collapse_plan {
        Some(cp) => cp.slot_of.iter().map(|&s| record(&outcomes[s])).collect(),
        None => outcomes.iter().map(record).collect(),
    };
    if let Some(d) = &mut deduce {
        d.rows = match &collapse_plan {
            Some(cp) => cp
                .slot_of
                .iter()
                .enumerate()
                .filter(|&(_, &s)| deduced[s])
                .map(|(i, _)| i as u64)
                .collect(),
            None => deduced
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d)
                .map(|(i, _)| i as u64)
                .collect(),
        };
    }
    let mut col = TechTally::default();
    let mut simulated = 0u64;
    for r in &per_fault {
        col += r.tally;
        simulated += r.tally.total();
    }
    Ok((per_fault, col, simulated, deduce))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::Technique;
    use std::sync::Arc;

    #[test]
    fn validation_rejects_bad_configs() {
        let err = Scenario::new(Operator::Add, 0)
            .campaign()
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::WidthOutOfRange { .. }));

        let err = Scenario::new(Operator::Add, 4)
            .campaign()
            .exec(ExecPolicy::new().threads(0))
            .run()
            .unwrap_err();
        assert_eq!(err, CampaignError::ZeroThreads);

        let err = Scenario::new(Operator::Add, 4)
            .campaign()
            .exec(ExecPolicy::new().drop_policy(DropPolicy::OnDetect))
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnsupportedDropPolicy { .. }));

        let err = Scenario::new(Operator::Div, 4)
            .campaign()
            .backend(Backend::GateLevel)
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnsupportedOperator { .. }));

        let err = Scenario::new(Operator::Add, 4)
            .campaign()
            .fault_model(FaultModel::Structural)
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnsupportedFaultModel { .. }));

        let err = Scenario::new(Operator::Mul, 4)
            .campaign()
            .backend(Backend::GateLevel)
            .fault_model(FaultModel::FaGate)
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnsupportedFaultModel { .. }));

        let err = Scenario::new(Operator::Sub, 4)
            .realisation(AdderRealisation::CarrySave)
            .campaign()
            .backend(Backend::GateLevel)
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::UnsupportedRealisation { .. }));

        let err = Scenario::new(Operator::Add, 32)
            .campaign()
            .backend(Backend::GateLevel)
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::ExhaustiveSpaceTooLarge { .. }));
    }

    #[test]
    fn functional_report_fills_all_columns() {
        let r = Scenario::new(Operator::Add, 2)
            .technique(Technique::Tech1)
            .campaign()
            .run()
            .unwrap();
        assert_eq!(r.filled.len(), 3);
        assert_eq!(r.four_way().total(), 64 * 16, "64 faults x 16 input pairs");
        assert!(r.column(TechIndex::Both).is_some());
        assert_eq!(r.fault_count(), 64);
    }

    #[test]
    fn gate_report_fills_the_selected_column() {
        let r = Scenario::new(Operator::Add, 2)
            .technique(Technique::Tech1)
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(2))
            .run()
            .unwrap();
        assert_eq!(r.filled, vec![TechIndex::Tech1]);
        assert!(r.column(TechIndex::Both).is_none());
        assert!(r.coverage() > 0.8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_are_equivalent_to_exec_policy() {
        let scenario = Scenario::new(Operator::Add, 3);
        let legacy = scenario
            .campaign()
            .backend(Backend::GateLevel)
            .threads(2)
            .drop_policy(DropPolicy::OnDetect)
            .collapse(true)
            .telemetry(true);
        let unified = scenario.campaign().backend(Backend::GateLevel).exec(
            ExecPolicy::new()
                .threads(2)
                .drop_policy(DropPolicy::OnDetect)
                .collapse(true)
                .telemetry(true),
        );
        assert_eq!(legacy.exec, unified.exec, "shims must mutate ExecPolicy");
        let a = legacy.run().unwrap();
        let b = unified.run().unwrap();
        assert!(a.same_results(&b));
        assert_eq!(
            legacy.config_fingerprint(),
            unified.config_fingerprint(),
            "fingerprints must agree across the old and new surface"
        );
    }

    #[test]
    fn event_sink_sees_lifecycle_and_spans() {
        use scdp_obs::ObsEvent;
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let tap = Arc::clone(&seen);
        let sink: EventSink = Arc::new(move |e: &ObsEvent| {
            tap.lock().unwrap().push(e.kind().to_string());
        });
        let r = Scenario::new(Operator::Add, 2)
            .campaign()
            .backend(Backend::GateLevel)
            .events(sink)
            .exec(ExecPolicy::new().telemetry(true))
            .run()
            .unwrap();
        let kinds = seen.lock().unwrap().clone();
        assert_eq!(kinds.first().map(String::as_str), Some("campaign_started"));
        assert!(kinds.contains(&"netlist_compiled".to_string()));
        assert!(
            kinds.iter().filter(|k| *k == "span").count() >= 4,
            "compile/simulate/tally/root spans expected, got {kinds:?}"
        );
        assert_eq!(kinds.last().map(String::as_str), Some("campaign_finished"));
        let tel = r.telemetry.as_ref().expect("telemetry requested");
        assert!(tel.span("campaign/simulate").is_some());
        assert_eq!(tel.counter("engine.faults"), Some(r.fault_count()));
        assert_eq!(tel.counter("engine.situations"), Some(r.simulated));
    }

    #[test]
    fn reports_without_telemetry_stay_plain() {
        let r = Scenario::new(Operator::Add, 2)
            .campaign()
            .backend(Backend::GateLevel)
            .run()
            .unwrap();
        assert!(r.telemetry.is_none(), "telemetry is opt-in");
        assert!(!r.to_json().contains("\"telemetry\""));
    }

    #[test]
    fn thread_count_does_not_change_gate_results() {
        let scenario = Scenario::new(Operator::Mul, 2);
        let a = scenario
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(1))
            .run()
            .unwrap();
        let b = scenario
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(4))
            .run()
            .unwrap();
        assert!(a.same_results(&b));
    }

    #[test]
    fn dropping_works_through_the_unified_api() {
        let scenario = Scenario::new(Operator::Add, 4);
        let full = scenario
            .campaign()
            .backend(Backend::GateLevel)
            .run()
            .unwrap();
        let dropped = scenario
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().drop_policy(DropPolicy::OnDetect))
            .run()
            .unwrap();
        assert!(dropped.simulated < full.simulated);
        for (f, d) in full.per_fault.iter().zip(&dropped.per_fault) {
            assert_eq!(f.detected, d.detected, "dropping must not change verdicts");
        }
    }
}
