//! Walks the paper's **Figure 3** co-design flow end to end for the FIR
//! specification: self-checking specification → SCK expansion
//! ("OFFIS synthesizer") → hardware path (scheduling/binding/area — the
//! "Synopsys CoCentric" role) and software path (cost model — the "g++"
//! role) → partitioning → reliability validation.
//!
//! Validation happens twice, closing the loop at two abstraction
//! levels:
//!
//! * step `[6]` — the §4 *operator* campaign through the unified
//!   `scdp-campaign` API on both engines (bit-identical tallies);
//! * step `[7]` — the *system-level* campaign: the scheduled, bound FIR
//!   datapath elaborated to one flat netlist and fault-graded per
//!   functional unit (`scdp.campaign.report/v2`);
//! * step `[8]` — the *cycle-accurate* campaign: the same datapath as
//!   one shared-FU sequential machine, graded under permanent and
//!   single-cycle transient faults with per-cycle detection latencies
//!   (`scdp.campaign.report/v3`).
//!
//! Usage:
//!   fig3_flow [--width N] [--threads N] [--samples N] [--seed S]
//!             [--quick] [--report FILE] [--seq-report FILE]
//!
//! `--quick` shrinks the campaigns for CI smoke; `--report FILE` writes
//! the step-`[7]` datapath report as `scdp.campaign.report/v2` JSON and
//! `--seq-report FILE` the step-`[8]` sequential report as v3.

use scdp_bench::CliArgs;
use scdp_campaign::{
    Backend, DatapathScenario, DfgSource, ExecPolicy, FaultDuration, FaultModel, InputSpace,
    Scenario,
};
use scdp_codesign::{partition, CodesignFlow, Goal, Mapping, PartitionProblem, TaskEstimate};
use scdp_core::{Operator, Technique};
use scdp_fir::fir_body_dfg;
use scdp_hls::{expand_sck, SckStyle};

fn main() {
    let args = CliArgs::parse();
    let quick = args.flag("--quick");
    let flow = CodesignFlow::default();
    let body = fir_body_dfg();
    println!(
        "[1] self-checking specification: {} ({} nodes)",
        body.name(),
        body.len()
    );

    let expanded = expand_sck(&body, Technique::Tech1, SckStyle::Full);
    println!(
        "[2] SCK expansion (OFFIS role): {} nodes (+{} hidden checker ops)",
        expanded.len(),
        expanded.len() - body.len()
    );
    for (name, count) in expanded.op_histogram() {
        println!("      {name:<8} x{count}");
    }

    let hw = flow.hardware(&body, SckStyle::Full, Goal::MinArea);
    println!(
        "[3] hardware path (CoCentric role): latency {}, fmax {:.2} MHz, {}",
        hw.latency_formula(),
        hw.fmax_mhz,
        hw.area
    );

    let sw = flow.software(&body, SckStyle::Full);
    println!(
        "[4] software path (g++ role): {} cycles/iteration, {} instructions, {} KB",
        sw.cycles_per_iteration,
        sw.instructions_per_iteration,
        sw.code_bytes / 1024
    );

    // Partition a small system: the FIR plus a control task.
    let n = 64.0; // taps
    let cpu_mhz = 50.0;
    let problem = PartitionProblem {
        tasks: vec![
            TaskEstimate {
                name: "fir".into(),
                hw_latency: (2.0 + f64::from(hw.cycles_per_iteration) * n) / hw.fmax_mhz,
                hw_area: hw.area_slices,
                sw_latency: (sw.cycles_per_iteration as f64 * n) / cpu_mhz,
            },
            TaskEstimate {
                name: "control".into(),
                hw_latency: 5.0,
                hw_area: 900.0,
                sw_latency: 8.0,
            },
        ],
        area_budget: 1000.0,
    };
    let (mapping, latency, area) = partition(&problem);
    println!("[5] partitioning under a 1000-slice budget:");
    for (task, m) in problem.tasks.iter().zip(&mapping) {
        println!(
            "      {:<8} -> {}",
            task.name,
            match m {
                Mapping::Hardware => "hardware",
                Mapping::Software => "software",
            }
        );
    }
    println!("      total latency {latency:.1} us, area used {area:.0} slices");

    // Operator-level validation: one scenario, both engines,
    // bit-identical tallies. Exhaustive inputs are what make the
    // cross-backend equality exact, so the validation width is clamped
    // to keep the 2^(2w) pair space bounded.
    let width = args.width(4).clamp(1, 8);
    let op_width = if quick { width.min(2) } else { width };
    let scenario = Scenario::new(Operator::Add, op_width).technique(Technique::Tech1);
    let spec = scenario
        .campaign()
        .fault_model(FaultModel::FaGate)
        .exec(ExecPolicy::new().threads(args.threads()));
    let functional = spec.clone().run().expect("functional campaign");
    let gate = spec
        .backend(Backend::GateLevel)
        .run()
        .expect("gate-level campaign");
    println!(
        "[6] operator validation (+, {op_width}-bit, Tech1): functional {:.2}% vs \
         gate-level {:.2}% — {}",
        functional.coverage() * 100.0,
        gate.coverage() * 100.0,
        if functional.same_results(&gate) {
            "bit-identical four-way tallies"
        } else {
            "MISMATCH"
        }
    );

    // System-level validation: the scheduled, bound FIR datapath as one
    // circuit, fault-graded per physical functional unit.
    let dp_width = if quick { width.min(2) } else { width.min(4) };
    let samples = args.samples(if quick { 256 } else { 2048 });
    let report = DatapathScenario::new(DfgSource::Fir, dp_width)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: samples,
            seed: args.seed(),
        })
        .exec(ExecPolicy::new().threads(args.threads()))
        .run()
        .expect("datapath campaign");
    let details = report.datapath.as_ref().expect("datapath section");
    println!(
        "[7] datapath validation (FIR, {dp_width}-bit, Tech1, {} vectors): \
         {} gates over {} cycles, {} faults, coverage {:.2}%, detection {:.2}%",
        samples,
        details.gates,
        details.schedule_length,
        report.fault_count(),
        report.coverage() * 100.0,
        report.detection_rate() * 100.0,
    );
    for fu in &details.per_fu {
        if fu.faults == 0 {
            println!(
                "      {:<6} {:<7} {} ops (no gates: memory port)",
                fu.name, fu.role, fu.ops
            );
            continue;
        }
        println!(
            "      {:<6} {:<7} {} ops x {} gates, {} faults: \
             [{} cs, {} cd, {} ed, {} eu] detected {}/{}",
            fu.name,
            fu.role,
            fu.ops,
            fu.instance_gates,
            fu.faults,
            fu.tally.correct_silent,
            fu.tally.correct_detected,
            fu.tally.error_detected,
            fu.tally.error_undetected,
            fu.detected,
            fu.faults,
        );
    }

    if let Some(path) = args.value::<String>("--report") {
        std::fs::write(&path, report.to_json()).expect("write report");
        println!("      wrote {path} ({})", scdp_campaign::REPORT_SCHEMA_V2);
    }

    // Cycle-accurate validation: the same datapath as one shared-FU
    // sequential machine — permanent faults for the coverage story,
    // one mid-schedule transient for the upset story, both with
    // per-cycle first-detection latencies.
    let seq_scenario = DatapathScenario::new(DfgSource::Fir, dp_width).technique(Technique::Tech1);
    let machine = seq_scenario.elaborate_seq();
    let total_cycles = machine.total_cycles;
    let seq_space = InputSpace::Sampled {
        per_fault: samples,
        seed: args.seed(),
    };
    let mut seq_reports = Vec::new();
    for duration in [
        FaultDuration::Permanent,
        FaultDuration::Transient {
            cycle: total_cycles / 2,
        },
    ] {
        let r = seq_scenario
            .clone()
            .seq_campaign()
            .duration(duration)
            .input_space(seq_space)
            .exec(ExecPolicy::new().threads(args.threads()))
            .run_on(&machine)
            .expect("sequential campaign");
        seq_reports.push((duration, r));
    }
    println!(
        "[8] sequential validation (FIR, {dp_width}-bit, Tech1, {} cycles/vector):",
        total_cycles
    );
    for (duration, r) in &seq_reports {
        let seq = r.sequential.as_ref().expect("sequential section");
        let latency = seq
            .mean_detection_latency()
            .map_or("-".to_string(), |l| format!("{l:.2} cycles"));
        println!(
            "      {:<12} coverage {:>6.2}%  detection {:>6.2}%  mean first-detect {latency}",
            scdp_campaign::duration_label(*duration),
            r.coverage() * 100.0,
            r.detection_rate() * 100.0,
        );
        print!("      latency hist:");
        for (c, n) in seq.first_detect_hist.iter().enumerate() {
            if *n > 0 {
                print!(" c{c}:{n}");
            }
        }
        println!();
    }
    if let Some(path) = args.value::<String>("--seq-report") {
        let (_, permanent) = &seq_reports[0];
        std::fs::write(&path, permanent.to_json()).expect("write seq report");
        println!("      wrote {path} ({})", scdp_campaign::REPORT_SCHEMA_V3);
    }
}
