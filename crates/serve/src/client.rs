//! The client side of the job server: a one-request HTTP client over
//! [`std::net::TcpStream`] plus typed wrappers for the four routes —
//! what `scdp submit` (and the integration tests) are built on.

use scdp_campaign::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long the client waits for a connection or a response.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A raw HTTP exchange: status code and response body.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The response status code.
    pub status: u16,
    /// The response body, verbatim.
    pub body: String,
}

/// Performs one `Connection: close` request against `addr`.
///
/// # Errors
///
/// Returns a description of the connection, protocol or timeout
/// failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| format!("configure socket: {e}"))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| format!("response from {addr} has no body"))?;
    Ok(HttpResponse { status, body })
}

/// The parsed `POST /jobs` response.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// The job's content address.
    pub id: String,
    /// The job's lifecycle state at submission time.
    pub status: String,
    /// `"hit"` when the spec was already known, `"miss"` when this
    /// submission enqueued it.
    pub cache: String,
}

/// Submits a spec document, returning the server's verdict.
///
/// # Errors
///
/// Connection failures and every non-2xx response (with the server's
/// error message).
pub fn submit(addr: &str, spec: &str) -> Result<SubmitOutcome, String> {
    let response = request(addr, "POST", "/jobs", Some(spec))?;
    let doc = parse_ok(addr, &response)?;
    Ok(SubmitOutcome {
        id: field(&doc, "id")?,
        status: field(&doc, "status")?,
        cache: field(&doc, "cache")?,
    })
}

/// The parsed `GET /jobs/<id>` response.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// `queued`, `running`, `done` or `failed`.
    pub status: String,
    /// Shards finished so far.
    pub done: u64,
    /// Shards in the job's partition.
    pub total: u64,
    /// The failure message, when `status` is `failed`.
    pub error: Option<String>,
}

/// Polls one job's status.
///
/// # Errors
///
/// Connection failures and every non-2xx response.
pub fn job_status(addr: &str, id: &str) -> Result<JobStatus, String> {
    let response = request(addr, "GET", &format!("/jobs/{id}"), None)?;
    let doc = parse_ok(addr, &response)?;
    let shards = doc.get("shards");
    let count = |key| {
        shards
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    Ok(JobStatus {
        status: field(&doc, "status")?,
        done: count("done"),
        total: count("total"),
        error: doc
            .get("error")
            .and_then(Json::as_str)
            .map(ToString::to_string),
    })
}

/// Fetches a finished job's merged report, byte-verbatim.
///
/// # Errors
///
/// Connection failures and every non-2xx response (including the 409
/// served while the job is still running).
pub fn fetch_report(addr: &str, id: &str) -> Result<String, String> {
    let response = request(addr, "GET", &format!("/jobs/{id}/report"), None)?;
    if response.status != 200 {
        return Err(server_error(addr, &response));
    }
    Ok(response.body)
}

/// Polls `id` until it reaches `done` or `failed`.
///
/// # Errors
///
/// A failed job's error message, or the connection failure that
/// interrupted polling.
pub fn wait(addr: &str, id: &str, poll: Duration) -> Result<JobStatus, String> {
    loop {
        let status = job_status(addr, id)?;
        match status.status.as_str() {
            "done" => return Ok(status),
            "failed" => return Err(status.error.unwrap_or_else(|| format!("job `{id}` failed"))),
            _ => std::thread::sleep(poll),
        }
    }
}

/// Accepts a 2xx response and parses its JSON body.
fn parse_ok(addr: &str, response: &HttpResponse) -> Result<Json, String> {
    if !(200..300).contains(&response.status) {
        return Err(server_error(addr, response));
    }
    json::parse(&response.body).map_err(|e| format!("response from {addr}: {e}"))
}

/// Renders a non-2xx response: the server's typed message if the body
/// carries one, the raw body otherwise.
fn server_error(addr: &str, response: &HttpResponse) -> String {
    let message = json::parse(&response.body)
        .ok()
        .and_then(|doc| {
            doc.get("error")
                .and_then(|e| e.get("message"))
                .and_then(|m| m.as_str().map(ToString::to_string))
        })
        .unwrap_or_else(|| response.body.clone());
    format!("{addr} responded {}: {message}", response.status)
}

/// A required string member of a response object.
fn field(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(ToString::to_string)
        .ok_or_else(|| format!("response is missing `{key}`"))
}
