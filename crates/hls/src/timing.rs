//! Clock-period / fmax estimation from a scheduled DFG.

use crate::dfg::Dfg;
use crate::library::ComponentLibrary;
use crate::sched::Schedule;

/// How checker logic is placed relative to the clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ChainPolicy {
    /// Comparators and error ORs chain combinationally onto their
    /// producer's cycle (saves states; lengthens the critical path —
    /// the min-area flavour of Table 3's frequency degradation).
    ChainChecks,
    /// A register is inserted before checker logic, keeping the nominal
    /// critical path intact (the min-latency flavour: 20 MHz preserved).
    RegisterChecks,
}

/// Minimum clock period (ns) of the scheduled design: the worst
/// intra-cycle combinational path plus sequential overhead.
///
/// Sequential operations contribute their own delay (multi-cycle units
/// contribute their per-cycle delay). Under
/// [`ChainPolicy::ChainChecks`], chained nodes ([`OpKind::CmpNe`](crate::OpKind::CmpNe),
/// [`OpKind::OrBit`](crate::OpKind::OrBit)) extend the path of the producer finishing in their
/// evaluation cycle.
#[must_use]
pub fn min_clock_period(
    dfg: &Dfg,
    schedule: &Schedule,
    lib: &ComponentLibrary,
    policy: ChainPolicy,
) -> f64 {
    let n = dfg.len();
    // arrival[i]: combinational arrival time of node i's output within
    // its final execution cycle.
    let mut arrival = vec![0.0f64; n];
    let mut worst: f64 = 0.0;
    for (id, node) in dfg.iter() {
        let t = lib.timing(&node.kind);
        let a = match &node.kind {
            k if k.is_virtual() => 0.0,
            k if k.is_chained() => {
                match policy {
                    ChainPolicy::ChainChecks => {
                        // Chain onto producers that finish in this node's
                        // evaluation cycle.
                        let cycle = schedule.start(id);
                        let base = node
                            .args
                            .iter()
                            .map(|arg| {
                                let an = dfg.node(*arg);
                                let finishes_here = !an.kind.is_virtual()
                                    && schedule.avail(*arg).saturating_sub(1) == cycle;
                                if finishes_here {
                                    arrival[arg.index()]
                                } else {
                                    0.0 // registered / stable operand
                                }
                            })
                            .fold(0.0f64, f64::max);
                        base + t.delay_ns
                    }
                    ChainPolicy::RegisterChecks => t.delay_ns,
                }
            }
            _ => t.delay_ns,
        };
        arrival[id.index()] = a;
        if !node.kind.is_virtual() {
            worst = worst.max(a);
        }
    }
    worst + lib.seq_overhead
}

/// Maximum clock frequency in MHz.
#[must_use]
pub fn fmax_mhz(
    dfg: &Dfg,
    schedule: &Schedule,
    lib: &ComponentLibrary,
    policy: ChainPolicy,
) -> f64 {
    1000.0 / min_clock_period(dfg, schedule, lib, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{Dfg, OpKind};
    use crate::library::ResourceSet;
    use crate::sched::list_schedule;

    #[test]
    fn plain_design_is_multiplier_bound() {
        let mut d = Dfg::new("mac");
        let a = d.input("a");
        let b = d.input("b");
        let m = d.op(OpKind::Mul, &[a, b]);
        let acc = d.input("acc");
        let s = d.op(OpKind::Add, &[acc, m]);
        d.output("o", s);
        let lib = ComponentLibrary::virtex16();
        let sch = list_schedule(&d, &lib, &ResourceSet::min_area());
        let p = min_clock_period(&d, &sch, &lib, ChainPolicy::ChainChecks);
        assert!((p - (lib.mult_delay + lib.seq_overhead)).abs() < 1e-9);
        assert!((fmax_mhz(&d, &sch, &lib, ChainPolicy::ChainChecks) - 20.0).abs() < 0.01);
    }

    #[test]
    fn chained_comparator_degrades_fmax() {
        let mut d = Dfg::new("chk");
        let a = d.input("a");
        let b = d.input("b");
        let m = d.op(OpKind::Mul, &[a, b]);
        let mc = d.checker_op(OpKind::Mul, &[a, b], m);
        let ne = d.checker_op(OpKind::CmpNe, &[m, mc], m);
        d.output("o", m);
        d.output("e", ne);
        let lib = ComponentLibrary::virtex16();
        let sch = list_schedule(
            &d,
            &lib,
            &ResourceSet {
                mults: 2,
                ..ResourceSet::min_area()
            },
        );
        let chained = min_clock_period(&d, &sch, &lib, ChainPolicy::ChainChecks);
        let registered = min_clock_period(&d, &sch, &lib, ChainPolicy::RegisterChecks);
        assert!(chained > registered);
        assert!((chained - (lib.mult_delay + lib.cmp_delay + lib.seq_overhead)).abs() < 1e-9);
        assert!((registered - (lib.mult_delay + lib.seq_overhead)).abs() < 1e-9);
    }
}
