//! Shared helpers for the table-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — overloading techniques & fault coverage per operator |
//! | `table2` | Table 2 — `+` coverage vs operand width (+ §4.1 statistics) |
//! | `table3` | Table 3 — FIR hardware/software cost & performance |
//! | `fig3_flow` | Figure 3 — the co-design flow, end to end (+ §4 validation) |
//! | `gate_xval` | §4.1 "implementation independent" claim (RCA/CLA/CSA at gate level) |
//! | `ablation_binding` | reliability-aware binding ablation (future-work trade-off) |
//! | `other_circuits` | §5 companion workloads + companion-generator campaigns |
//! | `table_datapath` | system-level campaigns: every workload × technique, elaborated datapaths with per-FU tallies (wrapper over `scdp sweep`) |
//! | `table_seq` | cycle-accurate campaigns with fault durations and detection latencies (wrapper over `scdp sweep --seq`) |
//! | `scdp` | the unified CLI ([`scdp_cli`]): `run` (sharded/resumable campaigns), `merge`, `validate`, `table`, `sweep` |
//! | `bench_check` | the bench-regression gate: fresh `BENCH_*.json` vs committed baselines ([`regression`]) |
//!
//! Every binary constructs its campaigns through the unified
//! `scdp_campaign::{Scenario, CampaignSpec}` surface and parses its
//! command line with the shared [`cli::CliArgs`] module.

#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod regression;
pub mod scdp_cli;
pub mod trace;

pub use cli::{CliArgs, DEFAULT_SEED};
pub use harness::{Bench, Record};
pub use regression::{BenchFile, CheckConfig};

use scdp_arith::Word;
use scdp_netlist::gen::SelfCheckingDatapath;
use std::time::Instant;

/// The pre-engine scalar `+` campaign: every instance-local site, both
/// polarities, correlated across instances, classified one situation at
/// a time through `Netlist::eval_nets`. Kept as the differential-
/// testing oracle for the bit-parallel engine (`gate_xval --oracle`)
/// and as the baseline of the `sim_engine` speedup bench. Returns the
/// coverage (fraction of situations that are not undetected errors).
#[must_use]
pub fn scalar_add_oracle(dp: &SelfCheckingDatapath, width: u32) -> f64 {
    let mut total = 0u64;
    let mut undetected = 0u64;
    for site in dp.local_sites() {
        for value in [false, true] {
            let faults = dp.correlated_fault(site, value);
            for a in Word::all(width) {
                for b in Word::all(width) {
                    total += 1;
                    let out = dp.netlist.eval_words(&[a, b], &faults);
                    let observable = out[0] != a.wrapping_add(b);
                    let alarm = out[1].bits() != 0;
                    if observable && !alarm {
                        undetected += 1;
                    }
                }
            }
        }
    }
    1.0 - undetected as f64 / total as f64
}

/// Runs `f`, printing the elapsed wall time afterwards.
pub fn timed<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

/// Formats a fraction as the paper's percentage style.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.9711), "97.11%");
    }
}
