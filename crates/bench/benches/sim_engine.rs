//! The headline benchmark of `scdp-sim`: scalar `Netlist::eval_nets`
//! campaigns versus the bit-parallel engine, single-threaded and with
//! the parallel campaign driver, on the `gate_xval` workload (width-4
//! exhaustive so the scalar path finishes in reasonable time).
//!
//! Writes `BENCH_sim_engine.json`; the measured speedup ratios land in
//! its `metrics` array.
//!
//! Benchmarks measure the engine layers directly, below the unified
//! `scdp-campaign` surface, through the engine-room constructors.

use scdp_analyze::{CollapsedUniverse, DominatorChains, PrunedUniverse};
use scdp_bench::{scalar_add_oracle, Bench};
use scdp_campaign::{DatapathScenario, DfgSource, InputSpace};
use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
use scdp_netlist::StuckAtLine;
use scdp_obs::Recorder;
use scdp_sim::{correlated_coverage, par, Engine, EngineCampaign, FaultOutcome, InputPlan, Lanes};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let width = 4u32;
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Both,
        width,
    });
    let situations = (dp.local_sites().len() as u64) * 2 * (1u64 << (2 * width));

    let mut bench = Bench::new("sim_engine");
    let scalar = bench.sample_elements("scalar_eval_nets_w4", 3, situations, &mut || {
        black_box(scalar_add_oracle(&dp, width))
    });
    let packed = bench.sample_elements("bitparallel_1thread_w4", 10, situations, &mut || {
        black_box(correlated_coverage(&dp, InputPlan::Exhaustive, 1).tally)
    });
    // One stable id regardless of the machine's core count (a
    // thread-count-dependent id once produced `bitparallel_1threads_w4`,
    // colliding with the single-thread record on 1-core machines); the
    // actual thread count is recorded as a metric below. The floor of 4
    // exercises the work-stealing pool's multi-worker merge path even
    // on smaller machines (oversubscription is harmless: idle workers
    // steal nothing and park).
    let threads = par::default_threads().max(4);
    let parallel = bench.sample_elements("bitparallel_parallel_w4", 10, situations, &mut || {
        black_box(correlated_coverage(&dp, InputPlan::Exhaustive, threads).tally)
    });
    // Fault dropping on the same universe (detectability grading).
    let engine = Engine::new(&dp.netlist);
    let groups: Vec<_> = dp
        .local_sites()
        .iter()
        .flat_map(|s| [false, true].map(|v| dp.correlated_fault(*s, v)))
        .collect();
    bench.sample_elements("bitparallel_dropping_w4", 10, situations, &mut || {
        black_box(
            EngineCampaign::over(&engine, groups.clone())
                .drop_policy(scdp_sim::DropPolicy::OnDetect)
                .threads(1)
                .run()
                .simulated,
        )
    });

    // Fault-equivalence collapsing on the same universe: simulate only
    // class representatives and fan the verdicts back out. The wall
    // clock must win by the gated `collapse_ratio` floor (bench_check:
    // >= 1.3x) since the run cost is linear in the group count.
    let cu = CollapsedUniverse::build(&dp.netlist);
    let rep_groups = cu.collapse_groups(&groups).rep_groups;
    let uncollapsed = bench.sample_elements("campaign_uncollapsed_w4", 10, situations, &mut || {
        black_box(
            EngineCampaign::over(&engine, groups.clone())
                .threads(1)
                .run()
                .simulated,
        )
    });
    let collapsed = bench.sample_elements("campaign_collapsed_w4", 10, situations, &mut || {
        black_box(
            EngineCampaign::over(&engine, rep_groups.clone())
                .threads(1)
                .run()
                .simulated,
        )
    });
    let collapse_ratio = uncollapsed / collapsed;

    // A width-8 engine-only run — infeasible on the scalar path inside a
    // bench budget, routine for the engine. Single-thread vs pooled on
    // the same universe gives the pool's own scaling ratio
    // (`parallel_speedup_w8`); its >=3x-at-4-threads floor is gated by
    // `bench_check` only on machines with >=4 cores, since the ratio is
    // physically capped at 1x on fewer.
    let dp8 = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Both,
        width: 8,
    });
    let situations8 = (dp8.local_sites().len() as u64) * 2 * (1u64 << 16);
    let single_w8 = bench.sample_elements("bitparallel_1thread_w8", 5, situations8, &mut || {
        black_box(correlated_coverage(&dp8, InputPlan::Exhaustive, 1).tally)
    });
    let parallel_w8 = bench.sample_elements("bitparallel_parallel_w8", 5, situations8, &mut || {
        black_box(correlated_coverage(&dp8, InputPlan::Exhaustive, threads).tally)
    });
    let parallel_speedup_w8 = single_w8 / parallel_w8;

    // Lane-width scaling on the same width-8 universe: the 64-vector
    // scalar path (one u64 limb) vs the widest `Words` path the engine
    // auto-selects. Results are bit-identical; only the throughput
    // moves.
    let engine8 = Engine::new(&dp8.netlist);
    let groups8: Vec<_> = dp8
        .local_sites()
        .iter()
        .flat_map(|s| [false, true].map(|v| dp8.correlated_fault(*s, v)))
        .collect();
    let lane1_w8 = bench.sample_elements("bitparallel_lanes1_w8", 5, situations8, &mut || {
        black_box(
            EngineCampaign::over(&engine8, groups8.clone())
                .lanes(Lanes::L1)
                .threads(1)
                .run()
                .simulated,
        )
    });
    let lane8_w8 = bench.sample_elements("bitparallel_lanes8_w8", 5, situations8, &mut || {
        black_box(
            EngineCampaign::over(&engine8, groups8.clone())
                .lanes(Lanes::L8)
                .threads(1)
                .run()
                .simulated,
        )
    });
    let lane_speedup = lane1_w8 / lane8_w8;

    // Deductive pruning (`scdp-analyze`) on the width-8 FIR datapath's
    // full stuck-at line universe: untestability proofs settle groups
    // from the baseline probe without vectors; dominance-deferred
    // lines skip the first pass and are settled when their chain root
    // simulated completely silent, re-simulated in a second pass
    // otherwise. Campaign cost is linear in the simulated group count,
    // so the wall clock must track `prune_ratio` (bench_check floor:
    // >= 1.15x). The analysis runs *inside* the timed closure — the
    // measured speedup is end-to-end, deduction cost included.
    let fir = DatapathScenario::new(DfgSource::Fir, 8)
        .technique(Technique::Tech1)
        .elaborate();
    let fir_engine = Engine::new(&fir.netlist);
    let fir_lines = fir.netlist.fault_lines();
    let fir_groups: Vec<Vec<StuckAtLine>> = fir_lines.iter().map(|&l| vec![l]).collect();
    let fir_plan = InputPlan::from_space(InputSpace::Sampled {
        per_fault: 64,
        seed: 0x51AE,
    });
    let fir_situations = fir_groups.len() as u64 * 64;
    let unpruned_fir =
        bench.sample_elements("campaign_unpruned_fir_w8", 5, fir_situations, &mut || {
            black_box(
                EngineCampaign::over(&fir_engine, fir_groups.clone())
                    .plan(fir_plan)
                    .threads(1)
                    .run()
                    .per_fault,
            )
        });
    let pruned_fir_run = || -> (Vec<FaultOutcome>, [u64; 3]) {
        let pu = PrunedUniverse::build(&fir.netlist, &fir_groups);
        let untestable = pu.untestable_indices();
        let untestable_set: HashSet<usize> = untestable.iter().copied().collect();
        let cu = CollapsedUniverse::build(&fir.netlist);
        let dc = DominatorChains::build(&fir.netlist, &cu);
        let mut index_of: HashMap<StuckAtLine, usize> = HashMap::new();
        for (i, &line) in fir_lines.iter().enumerate() {
            index_of.entry(line).or_insert(i);
        }
        let mut candidates = Vec::new();
        let mut candidate_set = HashSet::new();
        for (i, &line) in fir_lines.iter().enumerate() {
            if untestable_set.contains(&i) {
                continue;
            }
            let Some(root) = dc.deferrable_root(line) else {
                continue;
            };
            let Some(&anc) = index_of.get(&root) else {
                continue;
            };
            if anc == i {
                continue;
            }
            candidates.push((i, anc));
            candidate_set.insert(i);
        }
        // Roots must carry simulated (or untestable-settled) outcomes,
        // so a pair whose root is itself deferred cannot settle.
        let deferred: Vec<(usize, usize)> = candidates
            .into_iter()
            .filter(|&(_, anc)| !candidate_set.contains(&anc))
            .collect();
        let mut skip = untestable.clone();
        skip.extend(deferred.iter().map(|&(u, _)| u));
        let pass1 = EngineCampaign::over(&fir_engine, fir_groups.clone())
            .plan(fir_plan)
            .threads(1)
            .skip_resolved(skip)
            .run();
        let baseline = pass1
            .baseline
            .expect("skipping computes the baseline probe");
        let silent = baseline.tally.correct_detected == 0
            && baseline.tally.error_detected == 0
            && baseline.tally.error_undetected == 0
            && baseline.dropped_after.is_none();
        let mut outcomes = pass1.per_fault;
        let unsettled: Vec<usize> = deferred
            .iter()
            .filter(|&&(_, anc)| !(silent && outcomes[anc] == baseline))
            .map(|&(u, _)| u)
            .collect();
        if !unsettled.is_empty() {
            let rerun: Vec<Vec<StuckAtLine>> =
                unsettled.iter().map(|&u| fir_groups[u].clone()).collect();
            let pass2 = EngineCampaign::over(&fir_engine, rerun)
                .plan(fir_plan)
                .threads(1)
                .run();
            for (k, &u) in unsettled.iter().enumerate() {
                outcomes[u] = pass2.per_fault[k].clone();
            }
        }
        let dominated = (deferred.len() - unsettled.len()) as u64;
        let simulated_groups = fir_groups.len() as u64 - untestable.len() as u64 - dominated;
        (
            outcomes,
            [untestable.len() as u64, dominated, simulated_groups],
        )
    };
    // Bit-identity first, then the timing samples.
    let reference = EngineCampaign::over(&fir_engine, fir_groups.clone())
        .plan(fir_plan)
        .threads(1)
        .run()
        .per_fault;
    let (pruned_outcomes, [deduce_untestable, deduce_dominated, deduce_simulated]) =
        pruned_fir_run();
    assert_eq!(
        pruned_outcomes, reference,
        "acceptance: pruned outcomes must be bit-identical to simulation"
    );
    let pruned_fir =
        bench.sample_elements("campaign_pruned_fir_w8", 5, fir_situations, &mut || {
            black_box(pruned_fir_run().0)
        });
    let prune_ratio = fir_groups.len() as f64 / deduce_simulated as f64;
    let prune_speedup = unpruned_fir / pruned_fir;
    eprintln!(
        "prune: {} lines -> {deduce_simulated} simulated \
         ({deduce_untestable} untestable, {deduce_dominated} dominated); \
         ratio {prune_ratio:.2}x, end-to-end {prune_speedup:.2}x",
        fir_groups.len()
    );
    bench.metric("prune_ratio", prune_ratio);
    bench.metric("prune_campaign_speedup_w8", prune_speedup);
    bench.metric("deduce.untestable", deduce_untestable as f64);
    bench.metric("deduce.dominated", deduce_dominated as f64);
    bench.metric("deduce.simulated", deduce_simulated as f64);

    // Telemetry-derived metrics: one instrumented parallel campaign
    // over the width-4 universe. `engine.busy_ns` sums the workers'
    // in-chunk time, so busy ÷ (threads × wall) is the parallel
    // utilisation; both absolute rates demote to cross-machine
    // warnings in `bench_check --cross-machine`.
    let recorder = Arc::new(Recorder::new());
    let start = Instant::now();
    let summary = EngineCampaign::over(&engine, groups.clone())
        .threads(threads)
        .recorder(Arc::clone(&recorder))
        .run();
    black_box(summary.simulated);
    let wall_ns = start.elapsed().as_nanos() as f64;
    let busy_ns = recorder.snapshot().counter("engine.busy_ns").unwrap_or(0) as f64;
    let busy_fraction = busy_ns / (threads as f64 * wall_ns);
    let faults_per_sec = groups.len() as f64 * 1e9 / wall_ns;

    let speedup_1t = scalar / packed;
    let speedup_mt = scalar / parallel;
    eprintln!("speedup vs scalar: {speedup_1t:.1}x single-thread, {speedup_mt:.1}x parallel");
    eprintln!("parallel run: busy fraction {busy_fraction:.2}, {faults_per_sec:.0} faults/s");
    eprintln!(
        "pool: {threads} workers, {parallel_speedup_w8:.2}x at w8; \
         lanes 1->8: {lane_speedup:.2}x"
    );
    bench.metric("speedup_1thread_vs_scalar", speedup_1t);
    bench.metric("speedup_parallel_vs_scalar", speedup_mt);
    bench.metric("parallel_threads", threads as f64);
    bench.metric("simd_lanes", Lanes::Auto.limbs() as f64);
    bench.metric("parallel_speedup_w8", parallel_speedup_w8);
    bench.metric("lane_speedup_w8", lane_speedup);
    bench.metric("parallel_busy_fraction", busy_fraction);
    bench.metric("faults_per_sec", faults_per_sec);
    eprintln!(
        "collapse: {} -> {} groups, {collapse_ratio:.2}x campaign speedup",
        groups.len(),
        rep_groups.len()
    );
    bench.metric("collapse_ratio", collapse_ratio);
    bench.finish();
    assert!(
        speedup_1t >= 20.0,
        "acceptance: bit-parallel engine must be >=20x over scalar at width 4+ \
         (measured {speedup_1t:.1}x)"
    );
    assert!(
        prune_ratio >= 1.15,
        "acceptance: deductive pruning must settle enough of the w8 FIR line \
         universe (measured {prune_ratio:.2}x, floor 1.15x)"
    );
}
