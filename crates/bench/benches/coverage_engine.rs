//! Bench for the campaign engines: throughput of the exhaustive Table 2
//! functional campaigns (situations classified per second) at growing
//! widths, plus the gate-level bit-parallel campaign on the same
//! datapath — the cost of regenerating the paper's data.
//!
//! Benchmarks measure the engine layers directly, below the unified
//! `scdp-campaign` surface, through the engine-room constructors.

use scdp_bench::Bench;
use scdp_core::{Allocation, Operator, Technique};
use scdp_coverage::{CampaignBuilder, OperatorKind};
use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
use scdp_sim::{correlated_coverage, InputPlan};
use std::hint::black_box;

fn main() {
    let mut bench = Bench::new("coverage_engine");
    for width in [1u32, 2, 3, 4] {
        let situations = 32u64 * u64::from(width) * (1 << (2 * width));
        bench.sample_elements(
            &format!("functional_add_w{width}"),
            10,
            situations,
            &mut || {
                black_box(
                    CampaignBuilder::over(OperatorKind::Add, width)
                        .allocation(Allocation::SingleUnit)
                        .threads(1)
                        .run()
                        .tally,
                )
            },
        );
    }
    bench.sample("functional_add_w4_dedicated", 10, || {
        black_box(
            CampaignBuilder::over(OperatorKind::Add, 4)
                .allocation(Allocation::Dedicated)
                .threads(1)
                .run()
                .tally,
        )
    });
    for width in [4u32, 6, 8] {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Both,
            width,
        });
        let situations = dp.local_sites().len() as u64 * 2 * (1u64 << (2 * width));
        bench.sample_elements(&format!("gate_add_w{width}"), 5, situations, &mut || {
            black_box(correlated_coverage(&dp, InputPlan::Exhaustive, 1).tally)
        });
    }
    bench.finish();
}
