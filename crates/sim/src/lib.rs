//! `scdp-sim` — bit-parallel (PPSFP) stuck-at fault simulation for the
//! gate-level campaigns of the reproduction.
//!
//! # Why this crate exists
//!
//! The paper's evaluation (§4, Tables 1–2) rests on exhaustive fault
//! campaigns. The scalar path — [`scdp_netlist::Netlist::eval_nets`] —
//! walks the whole netlist once per `(fault, input)` *situation*,
//! carrying one `bool` per net and scanning the fault list at every gate
//! read: `O(faults × inputs × gates × |fault list|)`. That makes the
//! gate-level cross-validation (`gate_xval`) minutes-slow at 8 bits and
//! infeasible at 16. This crate implements the two classic remedies:
//!
//! * **PPSFP packing** (parallel-pattern single-fault propagation): 64
//!   input vectors are packed into one `u64` per net ([`InputBatch`],
//!   [`LANES`]). Each gate evaluates 64 situations with a single bitwise
//!   operation; the good machine is simulated **once per batch** and its
//!   packed net values are compared against each fault's re-simulation.
//!   A stuck-at fault is injected by splatting the stuck value across
//!   the word at the faulty stem, or by overriding one operand word at a
//!   faulty input pin — faults touch only their own gate, so the fast
//!   path stays branch-free.
//! * **Fault dropping** ([`DropPolicy`]): a fault leaves the simulated
//!   universe as soon as its verdict is decided. Detection-style
//!   campaigns drop on the first alarmed batch
//!   ([`DropPolicy::OnDetect`]); safeness-style campaigns drop on the
//!   first *undetected erroneous* lane ([`DropPolicy::OnEscape`]).
//!   Coverage classification in the paper's situation taxonomy —
//!   `CorrectSilent` / `CorrectDetected` / `ErrorDetected` /
//!   `ErrorUndetected` ratios over the full input space — needs every
//!   situation tallied, so [`DropPolicy::Never`] keeps all faults live
//!   and returns exact per-fault [`scdp_coverage::TechTally`] counts.
//!
//! A third remedy extends both to the time axis: the **sequential
//! engine** ([`SeqEngine`], [`SeqCampaign`]) evaluates netlists with
//! [`scdp_netlist::GateKind::Dff`] state cells cycle by cycle, carrying
//! a packed per-cycle state vector. Faults gain a [`FaultDuration`]
//! (permanent structural defects vs single-cycle transients) and every
//! detection records the cycle it first fired in — the per-cycle
//! detection-latency axis of the sequential datapath campaigns.
//!
//! On top sits a **parallel campaign driver** ([`EngineCampaign`]): the
//! fault universe is split into small blocks scheduled by a
//! work-stealing pool ([`par::run_blocks`]), every block regenerates
//! the same deterministic batch stream (so results are independent of
//! thread count and scheduling), and per-block results are merged in
//! block order at the join barrier. `rayon` would provide the same
//! fork-join shape, but the build environment is offline, so the pool
//! uses `std::thread::scope` and an atomic work index directly. The
//! packing itself is lane-width generic ([`Words`], [`Lanes`]): the
//! drivers default to 8×`u64` wide words — 512 situations per gate
//! operation, auto-vectorised to the hardware's widest SIMD — and
//! consume verdicts limb by limb so every tally, drop point and
//! latency histogram stays bit-identical to the 64-lane path.
//!
//! # Relation to the paper's situation taxonomy
//!
//! The paper classifies each `(fault, input)` situation by whether the
//! nominal result is wrong (*observable*) and whether any check fired
//! (*detected*). At gate level those map to packed masks: `wrong` — OR
//! over the result-bus nets of `good XOR faulty` — and `alarm` — OR over
//! the `error`-bus nets of the faulty values. The four taxonomy classes
//! are bit-sliced out of `wrong`/`alarm` with two AND-NOTs and counted
//! with `count_ones`, 64 situations at a time ([`BatchOutcome`]).
//!
//! # Example
//!
//! ```
//! use scdp_core::{Operator, Technique};
//! use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
//! use scdp_sim::{correlated_coverage, DropPolicy, InputPlan};
//!
//! let dp = self_checking(SelfCheckingSpec {
//!     op: Operator::Add,
//!     technique: Technique::Both,
//!     width: 4,
//! });
//! let report = correlated_coverage(&dp, InputPlan::Exhaustive, 2);
//! // Shared-unit masking leaves a small uncovered tail (cf. Table 2).
//! assert!(report.tally.coverage() > 0.9);
//! assert!(report.tally.error_undetected > 0);
//! ```

#![warn(missing_docs)]

mod batch;
mod campaign;
mod engine;
mod error;
pub mod par;
mod seq;
mod words;

pub use batch::{BatchStream, InputBatch, InputPlan, WideBatch, WideStream, LANES};
pub use campaign::{
    correlated_coverage, dedicated_coverage, CampaignSummary, DropPolicy, EngineCampaign,
    FaultOutcome, XvalReport,
};
pub use engine::{BatchOutcome, Engine, WideOutcome};
pub use error::SimError;
pub use par::PoolStats;
pub use scdp_netlist::FaultDuration;
pub use seq::{
    mean_detection_latency, SeqBatchOutcome, SeqCampaign, SeqCampaignSummary, SeqEngine,
    SeqFaultGroup, SeqFaultOutcome,
};
pub use words::{LaneWord, Lanes, Words};
