//! Prints the co-design flow's Table 3 reproduction for the FIR body.

fn main() {
    let flow = scdp_codesign::CodesignFlow::default();
    let t = flow.table3(&scdp_fir::fir_body_dfg());
    println!("{t}");
    for r in &t.rows {
        println!(
            "{:?} {:?} sw: {} cycles/iter, {} KB",
            r.style,
            r.goal,
            r.sw.cycles_per_iteration,
            r.sw.code_bytes / 1024
        );
    }
}
