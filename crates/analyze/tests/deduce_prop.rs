//! Seeded property tests for the deductive layer: on random netlists
//! (≤12 inputs), every `ProvenUntestable` verdict is cross-checked by
//! brute force — exhaustive input enumeration must show the faulty
//! machine pointwise identical to the fault-free one — and every
//! dominator-chain implication is verified per vector. These are the
//! soundness obligations `scdp-campaign`'s `.prune(true)` rests on.

use scdp_analyze::{CollapsedUniverse, DominatorChains, PrunedUniverse, Verdict};
use scdp_netlist::{Netlist, NetlistBuilder, SeqStuckAt, StuckAtLine};
use scdp_rng::{Rng, Xoshiro256StarStar};

/// Random flat (combinational) netlist, mirroring `collapse_prop.rs`
/// but with constants always present — the deductive pass is only
/// interesting when the constant lattice has something to chew on.
fn random_flat(rng: &mut Xoshiro256StarStar) -> Netlist {
    let mut b = NetlistBuilder::new("rand_flat");
    let width = 2 + rng.gen_range(4) as u32;
    let mut nets = b.input_bus("in", width);
    nets.push(b.constant(false));
    if rng.gen_bool() {
        nets.push(b.constant(true));
    }
    let gates = 6 + rng.gen_range(20) as usize;
    for _ in 0..gates {
        let a = nets[rng.gen_range(nets.len() as u64) as usize];
        let c = nets[rng.gen_range(nets.len() as u64) as usize];
        let n = match rng.gen_range(8) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            _ => b.buf(a),
        };
        nets.push(n);
    }
    let keep = 1 + rng.gen_range(3) as usize;
    let out: Vec<_> = nets[nets.len() - keep..].to_vec();
    b.output("y", &out);
    b.finish()
}

/// Random sequential netlist with constants and Dffs.
fn random_seq(rng: &mut Xoshiro256StarStar) -> Netlist {
    let mut b = NetlistBuilder::new("rand_seq");
    let width = 2 + rng.gen_range(3) as u32;
    let mut nets = b.input_bus("in", width);
    nets.push(b.constant(false));
    let dffs: Vec<_> = (0..1 + rng.gen_range(3)).map(|_| b.dff()).collect();
    nets.extend(&dffs);
    let gates = 6 + rng.gen_range(16) as usize;
    for _ in 0..gates {
        let a = nets[rng.gen_range(nets.len() as u64) as usize];
        let c = nets[rng.gen_range(nets.len() as u64) as usize];
        let n = match rng.gen_range(8) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            _ => b.buf(a),
        };
        nets.push(n);
    }
    for &q in &dffs {
        let d = nets[nets.len() - 1 - rng.gen_range(4) as usize];
        b.connect_dff(q, d);
    }
    let out: Vec<_> = nets[nets.len() - 2..].to_vec();
    b.output("y", &out);
    b.finish()
}

fn outputs_of(n: &Netlist, values: &[bool]) -> Vec<bool> {
    n.outputs()
        .iter()
        .flat_map(|(_, bus)| bus.iter().map(|net| values[net.index()]))
        .collect()
}

fn bits_of(word: u32, width: usize) -> Vec<bool> {
    (0..width).map(|i| word >> i & 1 != 0).collect()
}

/// Exhaustive: a flat netlist's `ProvenUntestable` singleton lines are
/// genuinely undetectable on every one of the ≤2^12 input vectors —
/// and not only on the declared outputs: on *every* net (the stronger
/// property the baseline-settling in `scdp-campaign` relies on is
/// output equality; checking all nets also exercises the tier-2
/// closure's internal reasoning).
#[test]
fn proven_untestable_lines_are_untestable_flat() {
    let mut rng = Xoshiro256StarStar::from_seed(0xdedc_0001);
    let mut proven_total = 0usize;
    for case in 0..96 {
        let n = random_flat(&mut rng);
        assert!(n.input_bits() <= 12);
        let lines = n.fault_lines();
        let groups: Vec<Vec<StuckAtLine>> = lines.iter().map(|&l| vec![l]).collect();
        let pu = PrunedUniverse::build(&n, &groups);
        for (i, &line) in lines.iter().enumerate() {
            if !matches!(pu.verdict(i), Verdict::ProvenUntestable(_)) {
                continue;
            }
            proven_total += 1;
            for word in 0..(1u32 << n.input_bits()) {
                let bits = bits_of(word, n.input_bits());
                let good = outputs_of(&n, &n.eval_nets(&bits, &[]));
                let faulty = outputs_of(&n, &n.eval_nets(&bits, &[line]));
                assert_eq!(
                    good, faulty,
                    "case {case}: {line:?} proven untestable but detected on {bits:?}"
                );
            }
        }
    }
    // The suite must actually exercise the proofs.
    assert!(proven_total > 100, "only {proven_total} proofs exercised");
}

/// Exhaustive soundness for random *multi-line* groups on flat
/// netlists: a group-level untestability proof must hold under the
/// engine's whole-group injection semantics.
#[test]
fn proven_untestable_groups_are_untestable_flat() {
    let mut rng = Xoshiro256StarStar::from_seed(0xdedc_0002);
    let mut proven_total = 0usize;
    for case in 0..96 {
        let n = random_flat(&mut rng);
        let lines = n.fault_lines();
        let groups: Vec<Vec<StuckAtLine>> = (0..24)
            .map(|_| {
                (0..1 + rng.gen_range(3))
                    .map(|_| lines[rng.gen_range(lines.len() as u64) as usize])
                    .collect()
            })
            .collect();
        let pu = PrunedUniverse::build(&n, &groups);
        for (i, group) in groups.iter().enumerate() {
            if !matches!(pu.verdict(i), Verdict::ProvenUntestable(_)) {
                continue;
            }
            proven_total += 1;
            for word in 0..(1u32 << n.input_bits()) {
                let bits = bits_of(word, n.input_bits());
                let good = outputs_of(&n, &n.eval_nets(&bits, &[]));
                let faulty = outputs_of(&n, &n.eval_nets(&bits, group));
                assert_eq!(good, faulty, "case {case}: group {group:?} detected");
            }
        }
    }
    assert!(proven_total > 40, "only {proven_total} proofs exercised");
}

/// Sequential netlists: proofs must hold per cycle across a
/// multi-cycle trace, for permanent and transient durations alike.
#[test]
fn proven_untestable_lines_are_untestable_seq() {
    let mut rng = Xoshiro256StarStar::from_seed(0xdedc_0003);
    let mut proven_total = 0usize;
    for case in 0..96 {
        let n = random_seq(&mut rng);
        let lines = n.fault_lines();
        let groups: Vec<Vec<StuckAtLine>> = lines.iter().map(|&l| vec![l]).collect();
        let pu = PrunedUniverse::build(&n, &groups);
        let cycles = 4u32;
        for (i, &line) in lines.iter().enumerate() {
            if !matches!(pu.verdict(i), Verdict::ProvenUntestable(_)) {
                continue;
            }
            proven_total += 1;
            for duration in [
                SeqStuckAt::permanent(line),
                SeqStuckAt::transient(line, case as u32 % cycles),
            ] {
                for word in 0..(1u32 << n.input_bits()) {
                    let bits = bits_of(word, n.input_bits());
                    let good = n.eval_seq_nets(&bits, cycles, &[]);
                    let faulty = n.eval_seq_nets(&bits, cycles, &[duration]);
                    for (vg, vf) in good.iter().zip(&faulty) {
                        assert_eq!(
                            outputs_of(&n, vg),
                            outputs_of(&n, vf),
                            "case {case}: seq {line:?} detected"
                        );
                    }
                }
            }
        }
    }
    assert!(proven_total > 40, "only {proven_total} proofs exercised");
}

/// Dominator-chain implication, exhaustively: on every vector where a
/// line's fault perturbs any output, its deferrable root produces the
/// *identical* faulty outputs. This is the exact containment that lets
/// a silent root settle the line with the baseline outcome.
#[test]
fn dominator_chain_implications_hold_flat() {
    let mut rng = Xoshiro256StarStar::from_seed(0xdedc_0004);
    let mut checked = 0usize;
    for case in 0..96 {
        let n = random_flat(&mut rng);
        let cu = CollapsedUniverse::build(&n);
        let dc = DominatorChains::build(&n, &cu);
        for &line in &n.fault_lines() {
            let Some(root) = dc.deferrable_root(line) else {
                continue;
            };
            // The root must itself be a fixpoint: settling is acyclic.
            assert_eq!(dc.deferrable_root(root), None, "case {case}: cyclic root");
            checked += 1;
            for word in 0..(1u32 << n.input_bits()) {
                let bits = bits_of(word, n.input_bits());
                let good = outputs_of(&n, &n.eval_nets(&bits, &[]));
                let faulty = outputs_of(&n, &n.eval_nets(&bits, &[line]));
                if faulty != good {
                    assert_eq!(
                        outputs_of(&n, &n.eval_nets(&bits, &[root])),
                        faulty,
                        "case {case}: root {root:?} must replay {line:?} on {bits:?}"
                    );
                }
            }
        }
    }
    assert!(checked > 200, "only {checked} chains exercised");
}
