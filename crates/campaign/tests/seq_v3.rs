//! Sequential-campaign regression pins, `scdp.campaign.report/v3`
//! schema compatibility and the cross-elaboration equivalence of the
//! permanent-fault universe.
//!
//! * The width-4 FIR/Tech1 sequential tally, detection-latency
//!   histogram and per-FU shape are golden-pinned (same seeded input
//!   space as the unrolled pin in `datapath_v2.rs`).
//! * **Cross-elaboration equivalence**: the sequential engine's
//!   permanent-fault per-fault tallies must match the unrolled
//!   correlated-injection tallies *exactly* for every fault site in a
//!   functional-unit **core**. Sites in the operand **mux-chain
//!   region** (`SeqFuSpan::mux_gates`) legitimately diverge — the two
//!   machines are *semantically different* there (see
//!   `mux_divergence_is_semantically_required` for the root cause) —
//!   but the divergence is no longer a blanket allowlist: every
//!   divergent site and its exact tally delta is golden-pinned in
//!   `tests/golden/seq_mux_divergence_w4.json` (regenerate with
//!   `REGEN_GOLDEN=1`), so any behavioural drift in the steering
//!   logic fails the suite site by site.
//! * v1/v2/v3 documents all parse; v3 round-trips byte for byte; a
//!   malformed latency histogram is a typed [`CampaignError`], never a
//!   panic.

use scdp_campaign::json::{self, Json};
use scdp_campaign::{
    CampaignError, CampaignReport, DatapathScenario, DfgSource, ExecPolicy, FaultDuration,
    InputSpace, REPORT_SCHEMA, REPORT_SCHEMA_V2, REPORT_SCHEMA_V3,
};
use scdp_core::Technique;
use scdp_coverage::TechTally;
use std::path::PathBuf;

/// The pinned scenario: width-4 FIR, Tech1, full SCK expansion, shared
/// (worst-case) allocation, 2048 seeded Monte-Carlo vectors — the
/// sequential twin of `datapath_v2.rs`'s pin.
fn pinned_scenario() -> DatapathScenario {
    DatapathScenario::new(DfgSource::Fir, 4).technique(Technique::Tech1)
}

fn pinned_space() -> InputSpace {
    InputSpace::Sampled {
        per_fault: 2048,
        seed: 0xDA7E_2005,
    }
}

fn pinned_seq_report() -> CampaignReport {
    pinned_scenario()
        .seq_campaign()
        .duration(FaultDuration::Permanent)
        .input_space(pinned_space())
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("sequential campaign runs")
}

#[test]
fn width4_fir_tech1_sequential_tally_is_pinned() {
    let r = pinned_seq_report();
    let t = r.four_way();
    assert_eq!(
        (
            t.correct_silent,
            t.correct_detected,
            t.error_detected,
            t.error_undetected,
        ),
        (1_300_966, 529_858, 986_969, 94_463),
        "the width-4 FIR/Tech1 sequential tally drifted — elaboration, \
         scheduling, binding or the sequential engine changed behaviour"
    );
    assert_eq!(r.fault_count(), 1422);
    assert_eq!(r.simulated, 2_912_256);
    let seq = r.sequential.as_ref().expect("sequential section");
    assert_eq!(seq.duration, FaultDuration::Permanent);
    assert_eq!(seq.total_cycles, 8, "7 schedule cycles + 1 drain state");
    assert_eq!(
        seq.first_detect_hist,
        vec![0, 0, 0, 864_314, 0, 0, 230_731, 421_782],
        "the detection-latency histogram drifted"
    );
    let dp = r.datapath.as_ref().expect("datapath section");
    // One physical ALU (6 ops), one physical multiplier (2 ops), one
    // memory port (no gates) — a single instance each.
    let alu = dp.per_fu.iter().find(|f| f.name == "alu0").expect("alu0");
    assert_eq!(
        (alu.ops, alu.instances, alu.instance_gates, alu.faults),
        (6, 1, 180, 1000)
    );
    let mult = dp.per_fu.iter().find(|f| f.name == "mult0").expect("mult0");
    assert_eq!(
        (mult.ops, mult.instances, mult.instance_gates, mult.faults),
        (2, 1, 75, 422)
    );
    let mem = dp.per_fu.iter().find(|f| f.class == "mem").expect("mem0");
    assert_eq!((mem.instances, mem.faults), (0, 0));
}

/// One cross-elaboration divergence: universe index, the site's
/// identity, and the exact four-way tallies on both machines.
#[derive(Debug, PartialEq, Eq)]
struct Divergence {
    index: usize,
    fu: String,
    gate: usize,
    /// `-1` encodes a stem fault.
    pin: i64,
    value: bool,
    unrolled: TechTally,
    sequential: TechTally,
}

fn tally_json(t: &TechTally) -> Json {
    Json::Arr(
        [
            t.correct_silent,
            t.correct_detected,
            t.error_detected,
            t.error_undetected,
        ]
        .iter()
        .map(|&n| Json::Int(i128::from(n)))
        .collect(),
    )
}

fn tally_from_json(v: &Json) -> TechTally {
    let cells = v.as_arr().expect("tally is a 4-array");
    assert_eq!(cells.len(), 4, "tally is a 4-array");
    let n = |i: usize| cells[i].as_u64().expect("tally cell is a count");
    TechTally {
        correct_silent: n(0),
        correct_detected: n(1),
        error_detected: n(2),
        error_undetected: n(3),
    }
}

fn divergence_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seq_mux_divergence_w4.json")
}

/// The cross-elaboration differential, site by site: core sites must
/// agree exactly; mux-region sites may diverge, but only in the exact
/// per-site pattern pinned in the golden file.
#[test]
fn permanent_tallies_match_unrolled_with_mux_divergence_pinned_per_site() {
    let scenario = pinned_scenario();
    let unrolled = scenario
        .clone()
        .campaign()
        .input_space(pinned_space())
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("unrolled campaign runs");
    let seq = pinned_seq_report();
    assert_eq!(
        unrolled.fault_count(),
        seq.fault_count(),
        "the two elaborations enumerate the same universe"
    );
    // Map universe indices to FU-local sites via the sequential
    // elaboration (site order is index-compatible by construction).
    let dp = scenario.elaborate_seq();
    let (_, ranges) = dp.fault_universe();
    let mut core_faults = 0usize;
    let mut divergences: Vec<Divergence> = Vec::new();
    for r in &ranges {
        let span = &dp.fus[r.fu];
        let sites = dp.fu_local_sites(r.fu);
        for i in r.start..r.end {
            let site = sites[(i - r.start) / 2];
            let u = &unrolled.per_fault[i];
            let s = &seq.per_fault[i];
            if site.gate < span.mux_gates {
                // Steering logic: the machines are semantically
                // different here, so divergence is expected — but it
                // must match the golden pin exactly, site by site.
                if u.tally != s.tally {
                    divergences.push(Divergence {
                        index: i,
                        fu: span.name.clone(),
                        gate: site.gate,
                        pin: site.pin.map_or(-1, i64::from),
                        value: (i - r.start) % 2 == 1,
                        unrolled: u.tally,
                        sequential: s.tally,
                    });
                }
            } else {
                core_faults += 1;
                assert_eq!(
                    u.tally, s.tally,
                    "core fault {i} ({} local gate {} pin {:?}): sequential and \
                     unrolled four-way tallies must be identical",
                    span.name, site.gate, site.pin
                );
                assert_eq!((u.detected, u.escaped), (s.detected, s.escaped));
            }
        }
    }
    assert!(core_faults > 300, "the core region must be substantial");

    let golden = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("scdp.test.mux-divergence/v1".to_string()),
        ),
        (
            "sites".to_string(),
            Json::Arr(
                divergences
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("index".to_string(), Json::Int(d.index as i128)),
                            ("fu".to_string(), Json::Str(d.fu.clone())),
                            ("gate".to_string(), Json::Int(d.gate as i128)),
                            ("pin".to_string(), Json::Int(i128::from(d.pin))),
                            ("value".to_string(), Json::Bool(d.value)),
                            ("unrolled".to_string(), tally_json(&d.unrolled)),
                            ("sequential".to_string(), tally_json(&d.sequential)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = format!("{}\n", golden.write_compact());
    let path = divergence_golden_path();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let pinned = std::fs::read_to_string(&path).expect("divergence golden file present");
    let pinned = json::parse(&pinned).expect("golden parses");
    let sites = pinned
        .get("sites")
        .and_then(Json::as_arr)
        .expect("sites array");
    // The probe that motivated the pin measured 111 divergent sites;
    // the exact per-site deltas are the golden content.
    assert_eq!(
        divergences.len(),
        sites.len(),
        "the number of divergent mux sites drifted (expected {}, measured {})",
        sites.len(),
        divergences.len()
    );
    assert_eq!(sites.len(), 111, "the headline 111-site count");
    for (d, g) in divergences.iter().zip(sites) {
        let num = |key: &str| g.get(key).and_then(Json::as_u64).expect("count member");
        assert_eq!(d.index as u64, num("index"), "site order drifted");
        let context = format!(
            "divergent site {} ({} local gate {} pin {})",
            d.index, d.fu, d.gate, d.pin
        );
        assert_eq!(
            d.fu,
            g.get("fu").and_then(Json::as_str).unwrap(),
            "{context}"
        );
        assert_eq!(d.gate as u64, num("gate"), "{context}");
        assert_eq!(
            tally_from_json(g.get("unrolled").expect("unrolled")),
            d.unrolled,
            "{context}: the unrolled tally drifted"
        );
        assert_eq!(
            tally_from_json(g.get("sequential").expect("sequential")),
            d.sequential,
            "{context}: the sequential tally drifted"
        );
    }
}

/// Root cause of the mux-region divergence, demonstrated on a minimal
/// machine: two independent adds serialized onto one ALU, plain style
/// (no checkers), exhaustive inputs.
///
/// The two elaborations are **semantically different** in the operand
/// steering region, in two distinct ways:
///
/// 1. **Dead legs are live.** The unrolled model ties every
///    not-selected mux leg to constant zero, so a stuck-at on such a
///    leg's data path can never be excited there. The physical
///    (sequential) machine routes *real operand data* through every
///    leg in every cycle — the same local fault corrupts whatever
///    flows past while the leg is selected. The test exhibits sites
///    that are completely silent in the unrolled run yet corrupt
///    results in the sequential run.
/// 2. **Selects are dynamic, so checkers see different excitation.**
///    Unrolled instances freeze the select lines at per-instance
///    constants (the decoded controller state of one cycle); the
///    physical chain decodes them from the live state machine, so a
///    steering fault perturbs the data flowing to the comparators in
///    cycles the unrolled model never represents. On the pinned FIR
///    machine this shows up as sites where *neither* machine corrupts
///    the final result, yet the alarm tallies differ
///    (`correct_detected` vs `correct_silent`) — checked below against
///    the golden divergence data, since it needs checkers (the minimal
///    plain-style machine has none).
///
/// Neither effect can be "fixed" without making one machine model the
/// other's approximation: the unrolled zero-tied legs are the
/// *model's* don't-care abstraction, while the sequential netlist is
/// the machine the paper actually describes. The divergence is
/// therefore pinned (previous test), not fixed.
#[test]
fn mux_divergence_is_semantically_required() {
    use scdp_hls::{Dfg, OpKind, SckStyle};
    let mut d = Dfg::new("two_indep_adds");
    let a = d.input("a");
    let b = d.input("b");
    let s1 = d.op(OpKind::Add, &[a, b]);
    let s2 = d.op(OpKind::Add, &[b, a]);
    d.output("o1", s1);
    d.output("o2", s2);
    let scenario = DatapathScenario::new(DfgSource::Custom(d), 2).style(SckStyle::Plain);

    let unrolled = scenario
        .clone()
        .campaign()
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("unrolled");
    let seq = scenario
        .clone()
        .seq_campaign()
        .duration(FaultDuration::Permanent)
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("sequential");
    let dp = scenario.elaborate_seq();
    let (_, ranges) = dp.fault_universe();

    let wrong = |t: &TechTally| t.error_detected + t.error_undetected;
    let mut live_dead_leg = 0usize; // silent unrolled, corrupting sequential
    for r in &ranges {
        let span = &dp.fus[r.fu];
        let sites = dp.fu_local_sites(r.fu);
        for i in r.start..r.end {
            let site = sites[(i - r.start) / 2];
            let u = &unrolled.per_fault[i];
            let s = &seq.per_fault[i];
            if site.gate >= span.mux_gates {
                assert_eq!(
                    u.tally, s.tally,
                    "core fault {i}: outside the steering region the machines agree"
                );
                continue;
            }
            if wrong(&u.tally) == 0 && wrong(&s.tally) > 0 {
                live_dead_leg += 1;
            }
        }
    }
    assert!(
        live_dead_leg > 0,
        "some mux fault must be unexcitable on zero-tied unrolled legs \
         yet corrupt the live-data sequential chain"
    );

    // Effect 2, read from the pinned FIR divergence data: sites where
    // neither machine ever corrupts the final result but the alarm
    // excitation differs — only the dynamic steering can do that.
    let pinned =
        std::fs::read_to_string(divergence_golden_path()).expect("divergence golden file present");
    let pinned = json::parse(&pinned).expect("golden parses");
    let sites = pinned
        .get("sites")
        .and_then(Json::as_arr)
        .expect("sites array");
    let mut alarm_only = 0usize;
    let mut result_corrupting = 0usize;
    for g in sites {
        let u = tally_from_json(g.get("unrolled").expect("unrolled"));
        let s = tally_from_json(g.get("sequential").expect("sequential"));
        if wrong(&u) == 0 && wrong(&s) == 0 {
            assert_ne!(
                u.correct_detected, s.correct_detected,
                "a result-clean divergence must differ in alarm excitation"
            );
            alarm_only += 1;
        }
        if wrong(&u) == 0 && wrong(&s) > 0 {
            result_corrupting += 1;
        }
    }
    assert!(
        alarm_only > 0,
        "dynamic selects must perturb checker excitation on result-clean sites"
    );
    assert!(
        result_corrupting > 0,
        "live dead legs must corrupt results on the FIR machine too"
    );
}

#[test]
fn v3_report_round_trips_byte_for_byte() {
    let mut r = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .seq_campaign()
        .duration(FaultDuration::Transient { cycle: 2 })
        .input_space(InputSpace::Sampled {
            per_fault: 128,
            seed: 9,
        })
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let json = r.to_json();
    assert!(json.contains(REPORT_SCHEMA_V3), "v3 schema tag missing");
    assert!(
        json.contains("\"sequential\""),
        "sequential section missing"
    );
    assert!(json.contains("\"kind\": \"transient\", \"cycle\": 2"));
    let parsed = CampaignReport::from_json(&json).expect("v3 parses");
    assert!(parsed.same_results(&r));
    assert_eq!(parsed.sequential, r.sequential);
    assert_eq!(parsed.to_json(), json, "serialisation is a fixpoint");
}

#[test]
fn v1_and_v2_documents_still_parse() {
    let v1 = scdp_campaign::Scenario::new(scdp_core::Operator::Add, 2)
        .campaign()
        .run()
        .expect("operator campaign");
    let json = v1.to_json();
    assert!(json.contains(REPORT_SCHEMA));
    let parsed = CampaignReport::from_json(&json).expect("v1 parses");
    assert!(parsed.sequential.is_none());

    let v2 = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 3,
        })
        .run()
        .expect("datapath campaign");
    let json = v2.to_json();
    assert!(json.contains(REPORT_SCHEMA_V2));
    assert!(!json.contains("\"sequential\""));
    let parsed = CampaignReport::from_json(&json).expect("v2 parses");
    assert!(parsed.datapath.is_some());
    assert!(parsed.sequential.is_none());
}

#[test]
fn schema_and_sequential_section_must_agree() {
    let mut r = pinned_scenario()
        .seq_campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 5,
        })
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let v3 = r.to_json();
    // v2-labelled document with a sequential section: typed error.
    let bad = v3.replace(REPORT_SCHEMA_V3, REPORT_SCHEMA_V2);
    assert!(matches!(
        CampaignReport::from_json(&bad),
        Err(CampaignError::Schema {
            field: "sequential",
            ..
        })
    ));
    // v3-labelled document without the section: typed error.
    let stripped = {
        let start = v3.find("  \"sequential\":").expect("section present");
        let end = v3[start..].find("]},\n").expect("section end") + start + 4;
        format!("{}{}", &v3[..start], &v3[end..])
    };
    assert!(matches!(
        CampaignReport::from_json(&stripped),
        Err(CampaignError::Schema {
            field: "sequential",
            ..
        })
    ));
}

#[test]
fn malformed_latency_histograms_are_typed_errors() {
    let mut r = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .seq_campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 5,
        })
        .exec(ExecPolicy::new().threads(1))
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let good = r.to_json();
    let hist_start = good.find("\"first_detect_hist\": [").expect("hist");
    let hist_end = good[hist_start..].find(']').unwrap() + hist_start + 1;
    let hist = &good[hist_start..hist_end];
    for (bad_hist, why) in [
        ("\"first_detect_hist\": 7".to_string(), "not an array"),
        (
            "\"first_detect_hist\": [true]".to_string(),
            "cell not a count",
        ),
        (
            hist.replacen('[', "[999, ", 1),
            "length disagrees with total_cycles",
        ),
    ] {
        let bad = good.replacen(hist, &bad_hist, 1);
        assert_ne!(bad, good, "{why}: replacement did not apply");
        match CampaignReport::from_json(&bad) {
            Err(CampaignError::Schema { field, .. }) => {
                assert_eq!(field, "sequential.first_detect_hist", "{why}");
            }
            other => panic!("{why}: expected typed schema error, got {other:?}"),
        }
    }
    // Malformed duration object.
    let bad = good.replacen("\"kind\": \"permanent\"", "\"kind\": \"forever\"", 1);
    assert!(matches!(
        CampaignReport::from_json(&bad),
        Err(CampaignError::Schema {
            field: "sequential.duration",
            ..
        })
    ));
}

#[test]
fn negative_paths_have_stable_display_messages() {
    // `Display` text is part of the CLI surface; pin it.
    let err = pinned_scenario()
        .seq_campaign()
        .duration(FaultDuration::Transient { cycle: 99 })
        .input_space(InputSpace::Sampled {
            per_fault: 16,
            seed: 1,
        })
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        CampaignError::TransientCycleOutOfRange {
            cycle: 99,
            total_cycles: 8
        }
    ));
    assert_eq!(
        err.to_string(),
        "transient fault cycle 99 out of range: the sequential datapath runs 8 cycles (0..8)"
    );

    let err = DatapathScenario::new(DfgSource::Iir, 8)
        .seq_campaign()
        .run()
        .unwrap_err();
    let CampaignError::ExhaustiveDatapathTooLarge { input_bits } = err.clone() else {
        panic!("expected ExhaustiveDatapathTooLarge, got {err:?}");
    };
    assert_eq!(
        err.to_string(),
        format!(
            "exhaustive enumeration over {input_bits} datapath input bits is \
             intractable; use a sampled input space"
        )
    );

    let err = CampaignError::Schema {
        field: "sequential.first_detect_hist",
        message: "missing or not an array".into(),
    };
    assert_eq!(
        err.to_string(),
        "report JSON schema error at `sequential.first_detect_hist`: \
         missing or not an array"
    );
}
