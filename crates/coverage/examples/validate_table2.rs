//! Scratch validation: compare both fault models against the paper's
//! Table 2 for n = 1, 2, 3 (exhaustive).
//!
//! Drives the functional backend directly through its engine-room
//! entry on purpose — this example lives below the unified
//! `scdp-campaign` surface.
use scdp_coverage::{AdderFaultModel, CampaignBuilder, OperatorKind, TechIndex};

fn main() {
    let paper = [
        (1u32, [95.31, 96.88, 97.66]),
        (2, [96.88, 98.44, 98.83]),
        (3, [97.40, 98.96, 99.22]),
        (4, [97.66, 99.22, 99.41]),
    ];
    for model in [AdderFaultModel::Gate, AdderFaultModel::Cell] {
        println!("=== model {model:?} ===");
        for (w, expect) in paper {
            let r = CampaignBuilder::over(OperatorKind::Add, w)
                .adder_model(model)
                .run();
            println!(
                "n={w} total={} tech1={:.2} tech2={:.2} both={:.2}  (paper {:.2} {:.2} {:.2})",
                r.total_situations(),
                r.coverage(TechIndex::Tech1) * 100.0,
                r.coverage(TechIndex::Tech2) * 100.0,
                r.coverage(TechIndex::Both) * 100.0,
                expect[0],
                expect[1],
                expect[2],
            );
        }
    }
    // The in-text 2-bit stats: 216 observable, 352/384/428 detections.
    let r2 = CampaignBuilder::over(OperatorKind::Add, 2).run();
    let t = &r2.tally;
    println!(
        "2-bit: observable={} alarms(T1)={} alarms(T2)={} alarms(Both)={} detwhencorrect T1={} T2={} Both={}",
        t.of(TechIndex::Tech1).observable(),
        t.of(TechIndex::Tech1).alarms(),
        t.of(TechIndex::Tech2).alarms(),
        t.of(TechIndex::Both).alarms(),
        t.of(TechIndex::Tech1).correct_detected,
        t.of(TechIndex::Tech2).correct_detected,
        t.of(TechIndex::Both).correct_detected,
    );
}
