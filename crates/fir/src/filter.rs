//! FIR filter implementations: plain, SCK-typed, embedded-check.

use scdp_core::{CheckPolicy, DefaultPolicy, Sck};

/// The reference FIR filter on plain wrapping integer arithmetic.
///
/// `y[n] = Σ c[k] · x[n−k]`, with a shift-register delay line — the
/// structure the paper's case study synthesizes.
#[derive(Clone, Debug)]
pub struct PlainFir {
    coeffs: Vec<i32>,
    delay: Vec<i32>,
}

impl PlainFir {
    /// Creates a filter with the given coefficients (≥ 1 tap).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn new(coeffs: Vec<i32>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one tap");
        let taps = coeffs.len();
        Self {
            coeffs,
            delay: vec![0; taps],
        }
    }

    /// Number of taps.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// Filters one sample.
    pub fn process(&mut self, x: i32) -> i32 {
        self.delay.rotate_right(1);
        self.delay[0] = x;
        let mut acc = 0i32;
        for (c, d) in self.coeffs.iter().zip(&self.delay) {
            acc = acc.wrapping_add(c.wrapping_mul(*d));
        }
        acc
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, xs: &[i32]) -> Vec<i32> {
        xs.iter().map(|&x| self.process(x)).collect()
    }
}

/// The FIR filter written with the self-checking data type — the paper's
/// "FIR with SCK": the *source is identical* to [`PlainFir`] modulo the
/// declared data type, and every `+`/`×` transparently executes its
/// hidden checking operations under the ambient data path.
#[derive(Clone, Debug)]
pub struct SckFir<P: CheckPolicy = DefaultPolicy> {
    coeffs: Vec<Sck<i32, P>>,
    delay: Vec<Sck<i32, P>>,
}

impl<P: CheckPolicy> SckFir<P> {
    /// Creates a self-checking filter with the given coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn new(coeffs: Vec<i32>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one tap");
        let taps = coeffs.len();
        Self {
            coeffs: coeffs.into_iter().map(Sck::new).collect(),
            delay: vec![Sck::new(0); taps],
        }
    }

    /// Number of taps.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// Filters one sample; the result carries the sticky error bit.
    pub fn process(&mut self, x: i32) -> Sck<i32, P> {
        self.delay.rotate_right(1);
        self.delay[0] = Sck::new(x);
        let mut acc = Sck::new(0);
        for (c, d) in self.coeffs.iter().zip(&self.delay) {
            acc += *c * *d;
        }
        acc
    }

    /// Filters a block, returning values; use [`error`](Self::error) to
    /// inspect the accumulated CED verdict.
    pub fn process_block(&mut self, xs: &[i32]) -> (Vec<i32>, bool) {
        let mut error = false;
        let ys = xs
            .iter()
            .map(|&x| {
                let y = self.process(x);
                error |= y.error();
                y.value()
            })
            .collect();
        (ys, error)
    }

    /// `true` if any stored coefficient or delay value has its error bit
    /// set (faults detected during coefficient loading or filtering).
    #[must_use]
    pub fn error(&self) -> bool {
        self.coeffs.iter().chain(&self.delay).any(Sck::error)
    }
}

/// The hand-optimised variant — the paper's "FIR embedded SCK": the
/// designer embeds explicit inverse-operation checks for the data-path
/// results (the multiply and the accumulation) but not for index
/// bookkeeping, and a single sticky flag accumulates the verdicts.
#[derive(Clone, Debug)]
pub struct EmbeddedFir {
    coeffs: Vec<i32>,
    delay: Vec<i32>,
    error: bool,
}

impl EmbeddedFir {
    /// Creates a filter with the given coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    #[must_use]
    pub fn new(coeffs: Vec<i32>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one tap");
        let taps = coeffs.len();
        Self {
            coeffs,
            delay: vec![0; taps],
            error: false,
        }
    }

    /// Number of taps.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// The sticky error flag.
    #[must_use]
    pub fn error(&self) -> bool {
        self.error
    }

    /// Clears the sticky error flag.
    pub fn clear_error(&mut self) {
        self.error = false;
    }

    /// Filters one sample with embedded checks.
    pub fn process(&mut self, x: i32) -> i32 {
        self.delay.rotate_right(1);
        self.delay[0] = x;
        let mut acc = 0i32;
        for (c, d) in self.coeffs.iter().zip(&self.delay) {
            let t = c.wrapping_mul(*d);
            // Embedded check on the multiply: 0 == t + (-c)*d (Table 1,
            // Mult Tech1).
            let t_neg = c.wrapping_neg().wrapping_mul(*d);
            if t.wrapping_add(t_neg) != 0 {
                self.error = true;
            }
            let next = acc.wrapping_add(t);
            // Embedded check on the accumulation: t == next - acc
            // (Table 1, Add Tech1).
            if next.wrapping_sub(acc) != t {
                self.error = true;
            }
            acc = next;
        }
        acc
    }

    /// Filters a block of samples.
    pub fn process_block(&mut self, xs: &[i32]) -> Vec<i32> {
        xs.iter().map(|&x| self.process(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::{context, Allocation, BothPolicy, FaultSite, FaultyDataPath};
    use scdp_fault::{FaGateFault, FaSite};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn coeffs() -> Vec<i32> {
        vec![3, -1, 4, 1, -5, 9, -2, 6]
    }

    fn samples() -> Vec<i32> {
        (0..200).map(|i| ((i * 37) % 101) - 50).collect()
    }

    #[test]
    fn all_variants_agree_fault_free() {
        let mut plain = PlainFir::new(coeffs());
        let mut sck = SckFir::<BothPolicy>::new(coeffs());
        let mut emb = EmbeddedFir::new(coeffs());
        for x in samples() {
            let y = plain.process(x);
            assert_eq!(sck.process(x).value(), y);
            assert_eq!(emb.process(x), y);
        }
        assert!(!sck.error());
        assert!(!emb.error());
    }

    #[test]
    fn block_apis_match_scalar() {
        let xs = samples();
        let mut p1 = PlainFir::new(coeffs());
        let mut p2 = PlainFir::new(coeffs());
        let block = p1.process_block(&xs);
        let scalar: Vec<i32> = xs.iter().map(|&x| p2.process(x)).collect();
        assert_eq!(block, scalar);
        let mut s = SckFir::<BothPolicy>::new(coeffs());
        let (ys, err) = s.process_block(&xs);
        assert_eq!(ys, block);
        assert!(!err);
    }

    #[test]
    fn impulse_response_is_coefficients() {
        let mut f = PlainFir::new(coeffs());
        let mut input = vec![0i32; coeffs().len()];
        input[0] = 1;
        let mut out = Vec::new();
        for x in input {
            out.push(f.process(x));
        }
        assert_eq!(out, coeffs());
    }

    #[test]
    fn sck_fir_detects_injected_adder_fault() {
        // Break bit 0 of the 32-bit adder; the accumulation checks fire.
        let site = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, true));
        let dp = Rc::new(RefCell::new(FaultyDataPath::new(
            32,
            site,
            Allocation::Dedicated,
        )));
        let _g = context::install(dp);
        let mut sck = SckFir::<BothPolicy>::new(coeffs());
        let (_, err) = sck.process_block(&samples()[..32]);
        assert!(err, "fault must be detected by the hidden checks");
    }

    #[test]
    fn plain_fir_silently_corrupts_under_fault_while_sck_flags() {
        let site = FaultSite::adder_gate(2, FaGateFault::new(FaSite::Sum, true));
        let dp: Rc<RefCell<FaultyDataPath>> = Rc::new(RefCell::new(FaultyDataPath::new(
            32,
            site,
            Allocation::Dedicated,
        )));
        // The plain filter does not route through the data path at all —
        // it computes on host arithmetic and has no error indication;
        // the SCK filter computes *and* checks on the faulty model.
        let mut golden = PlainFir::new(coeffs());
        let expected: Vec<i32> = samples()[..16].iter().map(|&x| golden.process(x)).collect();
        let _g = context::install(dp);
        let mut sck = SckFir::<BothPolicy>::new(coeffs());
        let (got, err) = sck.process_block(&samples()[..16]);
        assert_ne!(got, expected, "fault corrupts results");
        assert!(err, "…and the SCK type reports it");
    }

    #[test]
    fn embedded_checks_cost_less_than_full_sck() {
        use scdp_core::{CountingDataPath, NativeDataPath};
        let dp = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
        {
            let _g = context::install(dp.clone());
            let mut sck = SckFir::<BothPolicy>::new(coeffs());
            let _ = sck.process_block(&samples()[..8]);
        }
        let full_ops = dp.borrow().counts().total();
        // The embedded variant performs its checks in plain arithmetic:
        // count them analytically — per tap: 2 muls + 1 add nominal+
        // checks (1 mul + 1 add + 1 sub) vs SCK's (checked mul = 3 ops,
        // checked add = 2 ops, each × Both policy ≈ 2×).
        assert!(full_ops > 0);
        let embedded_ops_per_tap = 3 /* nominal */ + 3 /* checks */;
        let full_ops_per_tap = full_ops / (8 * coeffs().len() as u64);
        assert!(
            full_ops_per_tap >= embedded_ops_per_tap,
            "full {full_ops_per_tap} vs embedded {embedded_ops_per_tap}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_coefficients_rejected() {
        let _ = PlainFir::new(vec![]);
    }
}
