//! "Other circuits are now taken into consideration" (§5): the Table 3
//! analysis applied to the companion workloads — an IIR biquad (denser
//! multiplier traffic), a streaming dot product, and a matrix–vector row
//! with a running average (exercising the divider) — plus gate-level
//! reliability campaigns on the *other generators* (the carry-save
//! adder realisation and the array multiplier) at a non-default width
//! through the unified `scdp-campaign` API, exercising its Monte-Carlo
//! input space.
//!
//! Usage:
//!   other_circuits [--width N] [--samples N] [--seed S] [--threads N]

use scdp_bench::{pct, timed, CliArgs};
use scdp_campaign::{Backend, ExecPolicy, InputSpace, Scenario};
use scdp_core::{Operator, Technique};
use scdp_fir::{dot_body_dfg, iir_biquad_dfg, matvec_row_dfg};
use scdp_netlist::gen::AdderRealisation;

fn main() {
    let args = CliArgs::parse();
    let flow = scdp_codesign::CodesignFlow::default();
    for body in [iir_biquad_dfg(), dot_body_dfg(), matvec_row_dfg()] {
        let name = body.name().to_string();
        let report = timed(&name, || flow.table3(&body));
        println!("=== {name} ===");
        print!("{report}");
        println!();
    }
    println!("The FIR conclusions generalise: min-area checking costs cycles and");
    println!("clock; min-latency hides the checks on dedicated units; area orders");
    println!("plain < embedded < full for every workload.");

    // Reliability campaigns for the companion generators, at a width
    // (12 bits) whose 2^24-pair input space forces Monte-Carlo
    // sampling: the carry-save realisation cross-validated against the
    // ripple-carry baseline, and the array multiplier worst case.
    let width = args.width(12);
    let space = InputSpace::Sampled {
        per_fault: args.samples(1 << 14),
        seed: args.seed(),
    };
    let threads = args.threads();
    let gate = |op: Operator, tech: Technique, real: AdderRealisation| {
        Scenario::new(op, width)
            .technique(tech)
            .realisation(real)
            .campaign()
            .backend(Backend::GateLevel)
            .input_space(space)
            .exec(ExecPolicy::new().threads(threads))
            .run()
            .expect("valid companion-generator scenario")
    };
    println!(
        "\nCompanion generators, {width}-bit, Monte-Carlo ({} vectors):",
        match space {
            InputSpace::Sampled { per_fault, .. } => per_fault,
            InputSpace::Exhaustive => unreachable!("sampled by construction"),
        }
    );
    for tech in Technique::ALL {
        let csa = timed(&format!("CSA {tech}"), || {
            gate(Operator::Add, tech, AdderRealisation::CarrySave)
        });
        let rca = timed(&format!("RCA {tech}"), || {
            gate(Operator::Add, tech, AdderRealisation::RippleCarry)
        });
        println!(
            "  {tech:<9}  + CSA {} ({} sites)   + RCA {} ({} sites)",
            pct(csa.coverage()),
            csa.fault_count() / 2,
            pct(rca.coverage()),
            rca.fault_count() / 2,
        );
        // Cross-validation: the carry-save generator must land in the
        // ripple-carry coverage band (the paper's implementation-
        // independence claim stretched to a third realisation).
        let delta = (csa.coverage() - rca.coverage()).abs();
        assert!(
            delta < 0.05,
            "CSA coverage must track RCA within 5 points (off by {delta:.4})"
        );
    }
    println!("  (carry-save tracks ripple-carry within the coverage band — the");
    println!("   functional analysis transfers to the companion generators too)");

    // The array multiplier at a non-default width, same sampled space.
    let mul_width = 6;
    let mul = timed("mul Both", || {
        Scenario::new(Operator::Mul, mul_width)
            .campaign()
            .backend(Backend::GateLevel)
            .input_space(space)
            .exec(ExecPolicy::new().threads(threads))
            .run()
            .expect("valid multiplier scenario")
    });
    println!(
        "Array multiplier, {mul_width}-bit Monte-Carlo worst case: x coverage {} \
         ({} sites)",
        pct(mul.coverage()),
        mul.fault_count() / 2,
    );
}
