//! The bench-regression gate (`scdp-bench --check` mode): compare
//! fresh `BENCH_*.json` artifacts against the committed baselines and
//! exit non-zero on a regression.
//!
//! Usage:
//!   bench_check [--check] --fresh DIR [--baseline DIR]
//!               [--tolerance F] [--cross-machine]
//!
//! * `--baseline DIR` — committed artifacts (default: the workspace
//!   root, where `Bench::finish` writes them);
//! * `--fresh DIR` — artifacts from the run under test (e.g. a CI job
//!   that ran `cargo bench` with `BENCH_DIR=fresh`);
//! * `--tolerance F` — relative median/metric tolerance (default 0.30
//!   = ±30%). The hard floor — `speedup_1thread_vs_scalar` ≥ 100× —
//!   applies regardless of tolerance;
//! * `--cross-machine` — the baseline was recorded on a different
//!   machine: absolute-median slowdowns demote to warnings, while the
//!   machine-relative ratio metrics (`speedup_*`) and the hard floors
//!   keep failing. Use on CI runners comparing against committed
//!   baselines.
//!
//! Exit status: 0 when the gate passes (warnings allowed), 1 on any
//! failure.

use scdp_bench::regression::{check_dirs, CheckConfig, Severity};
use scdp_bench::CliArgs;
use std::path::PathBuf;

fn main() {
    let args = CliArgs::parse();
    let baseline = args
        .value::<String>("--baseline")
        .map_or_else(default_baseline_dir, PathBuf::from);
    let Some(fresh) = args.value::<String>("--fresh").map(PathBuf::from) else {
        eprintln!("bench_check: --fresh DIR is required");
        std::process::exit(2);
    };
    let mut cfg = CheckConfig {
        tolerance: args.value_or("--tolerance", CheckConfig::default().tolerance),
        medians_fail: !args.flag("--cross-machine"),
        ..CheckConfig::default()
    };
    // The pool's scaling floor only holds where the physics allow it:
    // ≥ 3× at 4 workers needs ≥ 4 cores. Smaller runners still gate
    // the shape floors (`parallel_threads`, `simd_lanes`), which are
    // core-count independent.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= 4 {
        cfg.metric_floors
            .push(("parallel_speedup_w8".to_string(), 3.0));
    }

    let (findings, compared) = match check_dirs(&baseline, &fresh, &cfg) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    };
    let mut failures = 0usize;
    for f in &findings {
        match f.severity {
            Severity::Fail => {
                failures += 1;
                eprintln!("FAIL  {}", f.message);
            }
            Severity::Warn => eprintln!("warn  {}", f.message),
        }
    }
    println!(
        "bench_check: {compared} artifact pair(s), {} finding(s), {failures} failure(s) \
         (tolerance ±{:.0}%)",
        findings.len(),
        cfg.tolerance * 100.0
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// The committed baselines live where `Bench::finish` writes them: the
/// workspace root.
fn default_baseline_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}
