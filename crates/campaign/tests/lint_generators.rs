//! Every netlist this repo can generate passes the structural linter
//! with zero errors — the lint gate CI greps for. Warnings are allowed
//! (dangling diagnostic taps exist by design); the datapath
//! elaborations additionally exercise the dead-mux-leg waiver.

use scdp_analyze::{lint, LintOptions, Severity};
use scdp_campaign::{DatapathScenario, DfgSource};
use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{
    addsub, array_mult, cla, csa, rca, restoring_divider, self_checking, two_rail_checker,
    SelfCheckingSpec,
};
use scdp_netlist::Netlist;

fn assert_no_errors(netlist: &Netlist) {
    let report = lint(netlist, &LintOptions::default());
    assert_eq!(
        report.errors(),
        0,
        "{} must lint clean:\n{}",
        netlist.name(),
        report.render()
    );
    assert!(report.render().contains("0 errors"), "CI greps this label");
}

#[test]
fn arithmetic_cores_lint_clean() {
    for width in [2u32, 4] {
        for n in [
            rca(width),
            cla(width),
            csa(width),
            addsub(width),
            array_mult(width),
            restoring_divider(width),
        ] {
            assert_no_errors(&n);
        }
    }
    assert_no_errors(&two_rail_checker(4));
}

#[test]
fn self_checking_datapaths_lint_clean() {
    for op in [Operator::Add, Operator::Sub, Operator::Mul] {
        for technique in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            let dp = self_checking(SelfCheckingSpec {
                op,
                technique,
                width: 3,
            });
            assert_no_errors(&dp.netlist);
        }
    }
}

/// The unrolled and sequential elaborations tie inactive mux legs to
/// the constant-zero bus; the linter must *waive* that (with a reason),
/// not flag it — and certainly not count it as an error.
#[test]
fn elaborated_datapaths_lint_clean_with_waived_mux_legs() {
    let mut any_waived = false;
    for source in DfgSource::BUILTIN {
        let scenario = DatapathScenario::new(source.clone(), 2).technique(Technique::Tech1);
        let unrolled = scenario.clone().elaborate();
        assert_no_errors(&unrolled.netlist);
        let seq = scenario.elaborate_seq();
        let report = lint(&seq.netlist, &LintOptions::default());
        assert_eq!(
            report.errors(),
            0,
            "{}:\n{}",
            seq.netlist.name(),
            report.render()
        );
        any_waived |= report.waived() > 0;
        if report.waived() > 0 {
            let diag = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Waived)
                .expect("waived diagnostic");
            assert!(
                diag.message.contains("waived:"),
                "waivers must carry a reason: {}",
                diag.message
            );
        }
    }
    assert!(
        any_waived,
        "sequential datapaths are known to carry zero-tied mux legs"
    );
}

/// Strict mode turns the waivers into real warnings but still finds no
/// errors anywhere.
#[test]
fn strict_mode_finds_no_errors_in_generated_cores() {
    let seq = DatapathScenario::new(DfgSource::Fir, 2)
        .technique(Technique::Both)
        .elaborate_seq();
    let waiving = lint(&seq.netlist, &LintOptions::default());
    let strict = lint(&seq.netlist, &LintOptions { strict: true });
    assert_eq!(strict.errors(), 0);
    assert_eq!(strict.waived(), 0, "strict mode has no waivers");
    assert_eq!(
        strict.warnings(),
        waiving.warnings() + waiving.waived(),
        "every waiver escalates to exactly one warning"
    );
}
