//! Cycle-accurate bit-parallel fault simulation for sequential
//! netlists.
//!
//! [`crate::Engine`] evaluates a combinational netlist once per batch;
//! [`SeqEngine`] evaluates a *sequential* netlist (one containing
//! [`GateKind::Dff`] cells) for a fixed number of clock cycles per
//! batch, carrying a packed per-cycle state vector (one `u64` per Dff,
//! 64 input vectors in flight). The good machine is still simulated
//! once per batch and shared across every fault in a worker's chunk;
//! each fault replays all cycles with its stuck lines forced only in
//! the cycles its [`FaultDuration`] is active in — permanent structural
//! defects and single-cycle transients run through one code path.
//!
//! Classification follows the paper's situation taxonomy, extended with
//! the cycle axis:
//!
//! * **wrong** — any result-bus bit differs from the good machine at
//!   the *final* cycle (result registers are valid there);
//! * **alarm** — the `error` bus asserted in *any* cycle (checker
//!   alarms are sticky by construction);
//! * **detection latency** — the first cycle the alarm fired in,
//!   recorded per lane into a per-cycle histogram
//!   ([`SeqBatchOutcome::first_detect`], aggregated by
//!   [`SeqCampaign`]).

use crate::batch::{InputBatch, InputPlan};
use crate::campaign::FaultOutcome;
use crate::engine::{apply2, check_lines, BatchOutcome};
use crate::error::SimError;
use crate::par;
use crate::words::{LaneWord, Lanes};
use scdp_coverage::TechTally;
use scdp_netlist::{FaultDuration, GateKind, Netlist, StuckAtLine};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// One multiple-stuck-at fault with a duration: the unit of injection
/// of a sequential campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqFaultGroup {
    /// The stuck lines (forced together while active), sorted by gate.
    pub lines: Vec<StuckAtLine>,
    /// When the lines are forced.
    pub duration: FaultDuration,
}

impl SeqFaultGroup {
    /// A fault group with `duration`, sorting the lines by gate as the
    /// evaluator requires.
    #[must_use]
    pub fn new(mut lines: Vec<StuckAtLine>, duration: FaultDuration) -> Self {
        lines.sort_by_key(|f| (f.site.gate, f.site.pin));
        Self { lines, duration }
    }
}

/// Packed verdict of one faulty multi-cycle batch against the good
/// machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeqBatchOutcome {
    /// Lanes whose final-cycle result-bus values differ from the good
    /// machine.
    pub wrong: u64,
    /// Lanes where the alarm bus asserted in at least one cycle.
    pub alarm: u64,
    /// Mask of lanes that carry real vectors.
    pub mask: u64,
    /// `first_detect[c]` — lanes whose alarm fired *first* in cycle
    /// `c`. The set bits across all cycles equal `alarm & mask`.
    pub first_detect: Vec<u64>,
}

impl SeqBatchOutcome {
    /// The four-way situation counts, identical taxonomy to the
    /// combinational engine.
    #[must_use]
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        BatchOutcome {
            wrong: self.wrong,
            alarm: self.alarm,
            mask: self.mask,
        }
        .counts()
    }
}

/// A sequential netlist compiled for packed cycle-accurate evaluation.
///
/// Construction mirrors [`crate::Engine`] (structure-of-arrays gate
/// table, `error` buses split off as alarms) and additionally resolves
/// every Dff's D net. Per-bus output metadata is kept so differential
/// tests can read back whole words.
#[derive(Clone, Debug)]
pub struct SeqEngine {
    kinds: Vec<GateKind>,
    a: Vec<u32>,
    b: Vec<u32>,
    input_bits: usize,
    result_nets: Vec<u32>,
    alarm_nets: Vec<u32>,
    /// `(gate index, D net)` of every Dff, gate order.
    dffs: Vec<(u32, u32)>,
    /// Dense gate → Dff index (unused slots are `u32::MAX`).
    dff_index: Vec<u32>,
    outputs: Vec<(String, Vec<u32>)>,
    name: String,
}

impl SeqEngine {
    /// Compiles `netlist` for packed sequential evaluation. Works for
    /// purely combinational netlists too (they simply have no state).
    ///
    /// # Panics
    ///
    /// Panics if a Dff cell has no connected D input — impossible for
    /// netlists from `NetlistBuilder::finish`, which validates this.
    /// Use [`SeqEngine::try_new`] for a typed error instead.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Self::try_new(netlist).expect("netlist compiles")
    }

    /// Compiles `netlist` for packed sequential evaluation, reporting
    /// malformed state cells as typed errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnconnectedDff`] if a Dff cell has no
    /// connected D input.
    pub fn try_new(netlist: &Netlist) -> Result<Self, SimError> {
        let gates = netlist.gates();
        let mut kinds = Vec::with_capacity(gates.len());
        let mut a = Vec::with_capacity(gates.len());
        let mut b = Vec::with_capacity(gates.len());
        let mut dffs = Vec::new();
        let mut dff_index = vec![u32::MAX; gates.len()];
        for (i, g) in gates.iter().enumerate() {
            kinds.push(g.kind);
            a.push(g.a.map_or(0, |n| n.index() as u32));
            b.push(g.b.map_or(0, |n| n.index() as u32));
            if g.kind == GateKind::Dff {
                let Some(d) = g.a else {
                    return Err(SimError::UnconnectedDff { gate: i });
                };
                dff_index[i] = dffs.len() as u32;
                dffs.push((i as u32, d.index() as u32));
            }
        }
        let mut result_nets = Vec::new();
        let mut alarm_nets = Vec::new();
        let mut outputs = Vec::new();
        for (name, bus) in netlist.outputs() {
            let nets: Vec<u32> = bus.iter().map(|n| n.index() as u32).collect();
            if name == "error" {
                alarm_nets.extend(&nets);
            } else {
                result_nets.extend(&nets);
            }
            outputs.push((name.clone(), nets));
        }
        Ok(Self {
            kinds,
            a,
            b,
            input_bits: netlist.input_bits(),
            result_nets,
            alarm_nets,
            dffs,
            dff_index,
            outputs,
            name: netlist.name().to_string(),
        })
    }

    /// Validates a fault group against the compiled netlist — the
    /// sequential twin of [`crate::Engine::check_faults`].
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in line order.
    pub fn check_group(&self, group: &SeqFaultGroup) -> Result<(), SimError> {
        check_lines(&self.kinds, &group.lines)
    }

    /// The compiled design's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (= gates) in the compiled netlist.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of state bits.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Number of primary input bits expected per batch.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Named output buses (net indices), declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Vec<u32>)] {
        &self.outputs
    }

    /// Evaluates one forward pass (one cycle) into `values`: Dff cells
    /// output `state`, faults in `faults` are forced (pass an empty
    /// slice for inactive cycles), inputs come from `bits`.
    fn eval_cycle<W: LaneWord>(
        &self,
        bits: &[W],
        faults: &[StuckAtLine],
        state: &[W],
        values: &mut [W],
    ) {
        let n = self.kinds.len();
        let mut next_input = 0usize;
        let mut fi = 0usize;
        let mut fault_gate = faults.first().map_or(usize::MAX, |f| f.site.gate);
        for i in 0..n {
            let out = if i == fault_gate {
                // Slow path: apply every fault attached to this gate.
                let mut pin0 = None;
                let mut pin1 = None;
                let mut stem = None;
                while fi < faults.len() && faults[fi].site.gate == i {
                    match faults[fi].site.pin {
                        Some(0) => pin0 = Some(faults[fi].value),
                        Some(1) => pin1 = Some(faults[fi].value),
                        // Rejected by `check_group`; ignored here so a
                        // line smuggled past validation through the raw
                        // batch API cannot abort a campaign.
                        Some(_) => {}
                        None => stem = Some(faults[fi].value),
                    }
                    fi += 1;
                }
                fault_gate = faults.get(fi).map_or(usize::MAX, |f| f.site.gate);
                let read = |pin: Option<bool>, net: u32, values: &[W]| -> W {
                    pin.map_or(values[net as usize], W::splat)
                };
                let out = match self.kinds[i] {
                    GateKind::Input => {
                        let v = bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => W::splat(c),
                    // A Dff outputs its state; a pin-0 fault affects
                    // the value *captured* (handled in `step`).
                    GateKind::Dff => state[self.dff_index[i] as usize],
                    GateKind::Not => !read(pin0, self.a[i], values),
                    GateKind::Buf => read(pin0, self.a[i], values),
                    kind => {
                        let va = read(pin0, self.a[i], values);
                        let vb = read(pin1, self.b[i], values);
                        apply2(kind, va, vb)
                    }
                };
                stem.map_or(out, W::splat)
            } else {
                match self.kinds[i] {
                    GateKind::Input => {
                        let v = bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => W::splat(c),
                    GateKind::Dff => state[self.dff_index[i] as usize],
                    GateKind::Not => !values[self.a[i] as usize],
                    GateKind::Buf => values[self.a[i] as usize],
                    kind => apply2(kind, values[self.a[i] as usize], values[self.b[i] as usize]),
                }
            };
            values[i] = out;
        }
    }

    /// Captures the next state from the D nets, honouring pin-0 faults
    /// on Dff cells.
    fn step<W: LaneWord>(&self, faults: &[StuckAtLine], values: &[W], state: &mut [W]) {
        for (k, &(_, d)) in self.dffs.iter().enumerate() {
            state[k] = values[d as usize];
        }
        for f in faults {
            if f.site.pin == Some(0) {
                let k = self.dff_index[f.site.gate];
                if k != u32::MAX {
                    state[k as usize] = W::splat(f.value);
                }
            }
        }
    }

    /// Runs one batch for `cycles` clock cycles under `fault` (pass
    /// `None` for the good machine), leaving the **final cycle's** net
    /// values in `values`. `state` and `values` are scratch buffers
    /// reused across calls.
    ///
    /// Returns the per-cycle packed alarm masks folded into a
    /// [`SeqBatchOutcome`] — except `wrong`, which the caller fills by
    /// comparing against the good machine's final values.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the netlist or
    /// `cycles` is 0.
    pub fn run_batch_into(
        &self,
        batch: &InputBatch,
        fault: Option<&SeqFaultGroup>,
        cycles: u32,
        values: &mut Vec<u64>,
        state: &mut Vec<u64>,
    ) -> SeqBatchOutcome {
        let (alarm, first_detect) =
            self.run_words_into(&batch.bits, batch.mask(), fault, cycles, values, state);
        SeqBatchOutcome {
            wrong: 0,
            alarm,
            mask: batch.mask(),
            first_detect,
        }
    }

    /// The generic multi-cycle run shared by the scalar and wide paths:
    /// returns the sticky alarm word and the per-cycle first-detection
    /// words, leaving the final cycle's net values in `values`.
    fn run_words_into<W: LaneWord>(
        &self,
        bits: &[W],
        mask: W,
        fault: Option<&SeqFaultGroup>,
        cycles: u32,
        values: &mut Vec<W>,
        state: &mut Vec<W>,
    ) -> (W, Vec<W>) {
        assert_eq!(bits.len(), self.input_bits, "input bit count mismatch");
        assert!(cycles > 0, "at least one cycle required");
        debug_assert!(
            fault.is_none_or(|f| f.lines.windows(2).all(|w| w[0].site.gate <= w[1].site.gate)),
            "fault lines must be sorted by gate"
        );
        values.clear();
        values.resize(self.kinds.len(), W::ZERO);
        state.clear();
        state.resize(self.dffs.len(), W::ZERO);
        let mut alarm_seen = W::ZERO;
        let mut first_detect = vec![W::ZERO; cycles as usize];
        for cycle in 0..cycles {
            let active: &[StuckAtLine] = match fault {
                Some(f) if f.duration.active_at(cycle) => &f.lines,
                _ => &[],
            };
            self.eval_cycle(bits, active, state, values);
            let mut alarm = W::ZERO;
            for &net in &self.alarm_nets {
                alarm = alarm | values[net as usize];
            }
            alarm = alarm & mask;
            let fired = alarm & !alarm_seen;
            if !fired.is_zero() {
                first_detect[cycle as usize] = fired;
                alarm_seen = alarm_seen | fired;
            }
            if cycle + 1 < cycles {
                self.step(active, values, state);
            }
        }
        (alarm_seen, first_detect)
    }

    /// XOR-compares the result nets of two final-cycle value vectors.
    #[must_use]
    pub fn result_diff(&self, good: &[u64], faulty: &[u64], mask: u64) -> u64 {
        self.result_diff_words(good, faulty, mask)
    }

    fn result_diff_words<W: LaneWord>(&self, good: &[W], faulty: &[W], mask: W) -> W {
        let mut wrong = W::ZERO;
        for &net in &self.result_nets {
            wrong = wrong | (good[net as usize] ^ faulty[net as usize]);
        }
        wrong & mask
    }
}

/// Per-fault result of a sequential campaign: the combinational
/// [`FaultOutcome`] fields plus the detection-latency histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeqFaultOutcome {
    /// Four-way tallies / verdicts / drop point, as combinational.
    pub outcome: FaultOutcome,
    /// `first_detect[c]` — situations of this fault whose alarm fired
    /// first in cycle `c`. Sums to the number of detected situations
    /// (partial under dropping, like the tallies).
    pub first_detect: Vec<u64>,
}

/// Aggregate result of a sequential campaign.
#[derive(Clone, Debug)]
pub struct SeqCampaignSummary {
    /// One outcome per fault group, universe order.
    pub per_fault: Vec<SeqFaultOutcome>,
    /// Sum of all per-fault tallies.
    pub tally: TechTally,
    /// Situations actually simulated.
    pub simulated: u64,
    /// Aggregate first-detection histogram over all faults, one entry
    /// per cycle.
    pub first_detect: Vec<u64>,
    /// Cycles each situation ran.
    pub cycles: u32,
    /// The fault-free baseline probe (an empty fault group replayed
    /// over the batch stream), computed once when any group was
    /// skipped via [`SeqCampaign::skip_resolved`]; skipped entries of
    /// `per_fault` hold a copy of it.
    pub baseline: Option<SeqFaultOutcome>,
}

impl SeqCampaignSummary {
    /// Fraction of faults with at least one alarmed situation.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| f.outcome.detected).count() as f64
            / self.per_fault.len() as f64
    }

    /// Mean first-detection latency in cycles over all detected
    /// situations (`None` when nothing was detected).
    #[must_use]
    pub fn mean_detection_latency(&self) -> Option<f64> {
        mean_detection_latency(&self.first_detect)
    }
}

/// Mean of a per-cycle first-detection histogram, in cycles (`None`
/// when no situation was detected). The one latency computation shared
/// by the campaign summary and the serialised report section.
#[must_use]
pub fn mean_detection_latency(hist: &[u64]) -> Option<f64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let weighted: u64 = hist.iter().enumerate().map(|(c, &n)| c as u64 * n).sum();
    Some(weighted as f64 / total as f64)
}

/// A configured sequential campaign: a compiled [`SeqEngine`], a
/// universe of duration-qualified fault groups, a cycle count, an input
/// plan, a drop policy and a lane width. The driver shape matches
/// [`crate::EngineCampaign`]: small fault blocks scheduled by the
/// work-stealing pool, every block re-generating the same deterministic
/// batch stream and sharing one good-machine evaluation per (wide)
/// batch, so results are independent of the worker count, the
/// scheduling order and the lane width.
#[derive(Clone, Debug)]
pub struct SeqCampaign<'a> {
    engine: &'a SeqEngine,
    groups: Vec<SeqFaultGroup>,
    cycles: u32,
    plan: InputPlan,
    drop: crate::DropPolicy,
    threads: usize,
    lanes: Lanes,
    range: Option<Range<usize>>,
    skip: Vec<usize>,
    recorder: Option<std::sync::Arc<scdp_obs::Recorder>>,
}

impl<'a> SeqCampaign<'a> {
    /// Starts a campaign over `groups`, each run for `cycles` clock
    /// cycles per input vector, with exhaustive inputs, no dropping and
    /// all available cores.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is 0.
    #[must_use]
    pub fn new(engine: &'a SeqEngine, groups: Vec<SeqFaultGroup>, cycles: u32) -> Self {
        assert!(cycles > 0, "at least one cycle required");
        Self {
            engine,
            groups,
            cycles,
            plan: InputPlan::Exhaustive,
            drop: crate::DropPolicy::Never,
            threads: par::default_threads(),
            lanes: Lanes::Auto,
            range: None,
            skip: Vec::new(),
            recorder: None,
        }
    }

    /// Selects the input plan.
    #[must_use]
    pub fn plan(mut self, plan: InputPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Selects the drop policy.
    #[must_use]
    pub fn drop_policy(mut self, drop: crate::DropPolicy) -> Self {
        self.drop = drop;
        self
    }

    /// Caps the worker thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Selects the SIMD lane width (wide words per gate operation).
    /// Results are bit-identical at every width; [`Lanes::Auto`] picks
    /// the widest supported path.
    #[must_use]
    pub fn lanes(mut self, lanes: Lanes) -> Self {
        self.lanes = lanes;
        self
    }

    /// Restricts simulation to the universe subrange `range` — the
    /// shard-scoped iteration of a partitioned campaign. The summary's
    /// `per_fault` then covers only `range`, in universe order; because
    /// every fault replays the same deterministic batch stream
    /// independently, per-fault outcomes are bit-identical to the
    /// corresponding slice of an unrestricted run.
    ///
    /// # Panics
    ///
    /// `run` panics if the range exceeds the universe (campaign
    /// front-ends validate shard plans before reaching this driver).
    #[must_use]
    pub fn fault_range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// Marks fault groups as **pre-resolved**: the given universe
    /// indices (pre-[`SeqCampaign::fault_range`] scoping; out-of-range
    /// indices are ignored) are never simulated — each takes a copy of
    /// the fault-free baseline probe instead, which is bit-identical
    /// for any group proven to behave like the fault-free machine in
    /// every cycle (see `scdp-analyze`'s `PrunedUniverse`). The
    /// baseline's `first_detect` histogram is all zeros, exactly like
    /// a never-alarming fault's.
    #[must_use]
    pub fn skip_resolved(mut self, skip: Vec<usize>) -> Self {
        self.skip = skip;
        self
    }

    /// Attaches a telemetry recorder. The driver then counts fault
    /// groups, per-fault batch evaluations, dropped faults, simulated
    /// situations and evaluated cycles under `seq.*` (all thread-count
    /// and shard invariant), plus per-worker busy time under
    /// `seq.busy_ns`.
    #[must_use]
    pub fn recorder(mut self, recorder: std::sync::Arc<scdp_obs::Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The universe subrange that will be simulated.
    fn scoped(&self) -> &[SeqFaultGroup] {
        match &self.range {
            None => &self.groups,
            Some(r) => {
                assert!(
                    r.start <= r.end && r.end <= self.groups.len(),
                    "fault range {r:?} exceeds the {}-group universe",
                    self.groups.len()
                );
                &self.groups[r.clone()]
            }
        }
    }

    /// Validates every in-scope fault group against the compiled
    /// netlist — call before [`SeqCampaign::run`] to surface malformed
    /// specs as typed errors instead of feeding them to the packed
    /// evaluator.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in universe order.
    pub fn check(&self) -> Result<(), SimError> {
        for group in self.scoped() {
            self.engine.check_group(group)?;
        }
        Ok(())
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a fault group names a gate or pin the compiled
    /// netlist does not have — validate with [`SeqCampaign::check`]
    /// first for a typed error (the unified `scdp-campaign` surface
    /// does); silently dropping such lines would produce plausible but
    /// wrong tallies. Also re-raises a worker panic (see
    /// [`SeqCampaign::try_run`] for the typed-error form).
    #[must_use]
    pub fn run(&self) -> SeqCampaignSummary {
        match self.try_run() {
            Ok(summary) => summary,
            Err(e @ SimError::WorkerPanicked { .. }) => panic!("{e}"),
            Err(e) => panic!("invalid fault spec: {e} (validate with SeqCampaign::check)"),
        }
    }

    /// Runs the campaign, surfacing malformed fault specs and worker
    /// panics as typed errors.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] a fault group fails validation with, or
    /// [`SimError::WorkerPanicked`] if a pool worker panicked.
    pub fn try_run(&self) -> Result<SeqCampaignSummary, SimError> {
        self.check()?;
        let scoped = self.scoped();
        let start = self.range.as_ref().map_or(0, |r| r.start);
        let mut skip_mask = vec![false; scoped.len()];
        for &i in &self.skip {
            if let Some(s) = i.checked_sub(start).filter(|&s| s < scoped.len()) {
                skip_mask[s] = true;
            }
        }
        let block = par::auto_block(scoped.len(), self.threads);
        let batch_evals = AtomicU64::new(0);
        let probe = [SeqFaultGroup::new(Vec::new(), FaultDuration::Permanent)];
        let baseline: Option<SeqFaultOutcome> = skip_mask.contains(&true).then(|| {
            match self.lanes.limbs() {
                1 => self.run_chunk::<1>(&probe, &[false], &batch_evals),
                4 => self.run_chunk::<4>(&probe, &[false], &batch_evals),
                _ => self.run_chunk::<8>(&probe, &[false], &batch_evals),
            }
            .pop()
            .expect("probe chunk yields one outcome")
        });
        let (mut per_fault, stats) = match self.lanes.limbs() {
            1 => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<1>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
            4 => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<4>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
            _ => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<8>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
        };
        if let Some(b) = &baseline {
            for (o, &skipped) in per_fault.iter_mut().zip(&skip_mask) {
                if skipped {
                    *o = b.clone();
                }
            }
        }
        if let Some(rec) = &self.recorder {
            let flat: Vec<FaultOutcome> = per_fault.iter().map(|o| o.outcome.clone()).collect();
            crate::campaign::record_campaign_telemetry(
                rec,
                "seq",
                &flat,
                batch_evals.load(Ordering::Relaxed),
                &stats,
            );
            let situations: u64 = flat.iter().map(|o| o.tally.total()).sum();
            rec.add("seq.cycles_evaluated", situations * u64::from(self.cycles));
        }
        let mut tally = TechTally::default();
        let mut simulated = 0u64;
        let mut first_detect = vec![0u64; self.cycles as usize];
        for f in &per_fault {
            tally += f.outcome.tally;
            simulated += f.outcome.tally.total();
            for (c, n) in f.first_detect.iter().enumerate() {
                first_detect[c] += n;
            }
        }
        Ok(SeqCampaignSummary {
            per_fault,
            tally,
            simulated,
            first_detect,
            cycles: self.cycles,
            baseline,
        })
    }

    /// Simulates one block of the fault universe on the calling worker
    /// (`64 * L` situations per gate operation per cycle).
    ///
    /// Wide verdicts — including the per-cycle first-detection words —
    /// are consumed one limb at a time in scalar-batch order, so
    /// tallies, latency histograms and drop points are lane-width
    /// invariant.
    fn run_chunk<const L: usize>(
        &self,
        chunk: &[SeqFaultGroup],
        skip: &[bool],
        batch_evals: &AtomicU64,
    ) -> Vec<SeqFaultOutcome> {
        let engine = self.engine;
        let cycles = self.cycles;
        let mut outcomes: Vec<SeqFaultOutcome> = chunk
            .iter()
            .map(|_| SeqFaultOutcome {
                outcome: FaultOutcome::default(),
                first_detect: vec![0u64; cycles as usize],
            })
            .collect();
        let mut live: Vec<usize> = (0..chunk.len())
            .filter(|&k| !skip.get(k).copied().unwrap_or(false))
            .collect();
        let mut good = Vec::new();
        let mut faulty = Vec::new();
        let mut state = Vec::new();
        let mut evals = 0u64;
        for wide in self.plan.wide_stream::<L>(engine.input_bits()) {
            if live.is_empty() {
                break;
            }
            // The good machine runs once per wide batch, shared across
            // every fault (and every cycle) of this block.
            let (g_alarm, _) =
                engine.run_words_into(&wide.bits, wide.mask, None, cycles, &mut good, &mut state);
            debug_assert!(g_alarm.is_zero(), "good machine must be alarm-free");
            let drop = self.drop;
            live.retain(|&k| {
                let (alarm, first_detect) = engine.run_words_into(
                    &wide.bits,
                    wide.mask,
                    Some(&chunk[k]),
                    cycles,
                    &mut faulty,
                    &mut state,
                );
                let wrong = engine.result_diff_words(&good, &faulty, wide.mask);
                let so = &mut outcomes[k];
                let mut decided = false;
                for limb in 0..wide.limbs {
                    let (cs, cd, ed, eu) = BatchOutcome {
                        wrong: wrong.limb(limb),
                        alarm: alarm.limb(limb),
                        mask: wide.mask.limb(limb),
                    }
                    .counts();
                    evals += 1;
                    let o = &mut so.outcome;
                    o.tally.correct_silent += cs;
                    o.tally.correct_detected += cd;
                    o.tally.error_detected += ed;
                    o.tally.error_undetected += eu;
                    o.detected |= cd + ed > 0;
                    o.escaped |= eu > 0;
                    for (c, m) in first_detect.iter().enumerate() {
                        so.first_detect[c] += u64::from(m.limb(limb).count_ones());
                    }
                    decided = match drop {
                        crate::DropPolicy::Never => false,
                        crate::DropPolicy::OnDetect => so.outcome.detected,
                        crate::DropPolicy::OnEscape => so.outcome.escaped,
                    };
                    if decided {
                        so.outcome.dropped_after = Some(so.outcome.tally.total());
                        break;
                    }
                }
                !decided
            });
        }
        batch_evals.fetch_add(evals, Ordering::Relaxed);
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::{NetlistBuilder, SeqStuckAt, StuckSite, Word};

    /// A 2-deep shift register with a parity alarm: error = s0 ^ s1
    /// forced low in the fault-free run by feeding x into both.
    fn shift_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("shift");
        let x = b.input_bus("x", 1);
        let s0 = b.dff();
        let s1 = b.dff();
        b.connect_dff(s0, x[0]);
        b.connect_dff(s1, s0);
        b.output("y", &[s1]);
        b.finish()
    }

    #[test]
    fn packed_matches_scalar_on_sequential_netlists() {
        let nl = shift_netlist();
        let engine = SeqEngine::new(&nl);
        assert_eq!(engine.dff_count(), 2);
        let cycles = 4u32;
        let faults = [
            None,
            Some(SeqFaultGroup::new(
                vec![StuckAtLine::new(StuckSite { gate: 1, pin: None }, true)],
                FaultDuration::Permanent,
            )),
            Some(SeqFaultGroup::new(
                vec![StuckAtLine::new(
                    StuckSite {
                        gate: 2,
                        pin: Some(0),
                    },
                    true,
                )],
                FaultDuration::Transient { cycle: 1 },
            )),
        ];
        for fault in &faults {
            for batch in InputPlan::Exhaustive.stream(1) {
                let mut values = Vec::new();
                let mut state = Vec::new();
                let _ =
                    engine.run_batch_into(&batch, fault.as_ref(), cycles, &mut values, &mut state);
                for lane in 0..batch.len {
                    let scalar_faults: Vec<SeqStuckAt> = fault
                        .iter()
                        .flat_map(|f| {
                            f.lines.iter().map(|&line| SeqStuckAt {
                                line,
                                duration: f.duration,
                            })
                        })
                        .collect();
                    let trace = nl.eval_seq_nets(&batch.lane_bits(lane), cycles, &scalar_faults);
                    let last = trace.last().unwrap();
                    for (net, word) in values.iter().enumerate() {
                        assert_eq!(
                            (word >> lane) & 1 != 0,
                            last[net],
                            "{fault:?} net {net} lane {lane}"
                        );
                    }
                }
            }
        }
    }

    /// An alarm that fires in cycle 2 when x is set: x delayed twice,
    /// error = s1.
    fn delayed_alarm_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("delayed");
        let x = b.input_bus("x", 1);
        let s0 = b.dff();
        let s1 = b.dff();
        b.connect_dff(s0, x[0]);
        b.connect_dff(s1, s0);
        let zero = b.constant(false);
        b.output("y", &[zero]);
        b.output("error", &[s1]);
        b.finish()
    }

    #[test]
    fn first_detection_cycle_is_recorded() {
        let nl = delayed_alarm_netlist();
        let engine = SeqEngine::new(&nl);
        let batch = InputPlan::Exhaustive.stream(1).next().unwrap();
        // Lane 1 has x = 1: alarm rises at cycle 2 and stays.
        let mut values = Vec::new();
        let mut state = Vec::new();
        let out = engine.run_batch_into(&batch, None, 4, &mut values, &mut state);
        assert_eq!(out.mask, 0b11);
        assert_eq!(out.alarm, 0b10);
        assert_eq!(out.first_detect, vec![0, 0, 0b10, 0]);
    }

    #[test]
    fn campaign_counts_latencies_and_tallies() {
        // Good machine: x = 0 lane keeps everything quiet; x = 1 lane
        // raises the alarm. The "good machine" itself must be
        // alarm-free, so use a fault to create the alarm instead: stuck
        // s0 D at 1 (gate 1 pin 0) -> alarm at cycle 2 in every lane.
        let mut b = NetlistBuilder::new("c");
        let s0 = b.dff();
        let s1 = b.dff();
        let zero = b.constant(false);
        b.connect_dff(s0, zero);
        b.connect_dff(s1, s0);
        let x = b.input_bus("x", 1);
        let y = b.and(x[0], s1); // wrong result once s1 sets and x = 1
        b.output("y", &[y]);
        b.output("error", &[s1]);
        let nl = b.finish();
        let engine = SeqEngine::new(&nl);
        let stuck = SeqFaultGroup::new(
            vec![StuckAtLine::new(
                StuckSite {
                    gate: 0,
                    pin: Some(0),
                },
                true,
            )],
            FaultDuration::Permanent,
        );
        let summary = SeqCampaign::new(&engine, vec![stuck], 4).threads(1).run();
        assert_eq!(summary.simulated, 2);
        // Both lanes detected at cycle 2; the x = 1 lane is also wrong.
        assert_eq!(summary.first_detect, vec![0, 0, 2, 0]);
        assert_eq!(summary.tally.error_detected, 1);
        assert_eq!(summary.tally.correct_detected, 1);
        assert_eq!(summary.mean_detection_latency(), Some(2.0));
        assert!((summary.detection_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let nl = shift_netlist();
        let engine = SeqEngine::new(&nl);
        let mut groups = Vec::new();
        for gate in 0..nl.gate_count() {
            for value in [false, true] {
                groups.push(SeqFaultGroup::new(
                    vec![StuckAtLine::new(StuckSite { gate, pin: None }, value)],
                    FaultDuration::Permanent,
                ));
                groups.push(SeqFaultGroup::new(
                    vec![StuckAtLine::new(StuckSite { gate, pin: None }, value)],
                    FaultDuration::Transient { cycle: 1 },
                ));
            }
        }
        let a = SeqCampaign::new(&engine, groups.clone(), 5)
            .threads(1)
            .run();
        let b = SeqCampaign::new(&engine, groups, 5).threads(3).run();
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.first_detect, b.first_detect);
        for (x, y) in a.per_fault.iter().zip(&b.per_fault) {
            assert_eq!(x.outcome.tally, y.outcome.tally);
            assert_eq!(x.first_detect, y.first_detect);
        }
    }

    /// Skipping a group whose faulty machine *is* the fault-free
    /// machine (an empty group) reproduces the unskipped run
    /// bit-for-bit, latency histograms included.
    #[test]
    fn skipping_resolved_groups_is_bit_identical() {
        let nl = shift_netlist();
        let engine = SeqEngine::new(&nl);
        let mut groups = vec![SeqFaultGroup::new(Vec::new(), FaultDuration::Permanent)];
        for gate in 0..nl.gate_count() {
            for value in [false, true] {
                groups.push(SeqFaultGroup::new(
                    vec![StuckAtLine::new(StuckSite { gate, pin: None }, value)],
                    FaultDuration::Permanent,
                ));
            }
        }
        let plain = SeqCampaign::new(&engine, groups.clone(), 5)
            .threads(2)
            .run();
        let skipped = SeqCampaign::new(&engine, groups, 5)
            .threads(2)
            .skip_resolved(vec![0])
            .run();
        assert_eq!(plain.per_fault, skipped.per_fault);
        assert_eq!(plain.tally, skipped.tally);
        assert_eq!(plain.simulated, skipped.simulated);
        assert_eq!(plain.first_detect, skipped.first_detect);
        assert!(plain.baseline.is_none());
        let baseline = skipped.baseline.expect("probe ran");
        assert_eq!(baseline, skipped.per_fault[0]);
        assert!(baseline.first_detect.iter().all(|&n| n == 0));
    }

    #[test]
    fn transient_outside_the_window_is_harmless() {
        let nl = shift_netlist();
        let engine = SeqEngine::new(&nl);
        // Transient at a cycle >= cycles: never active.
        let harmless = SeqFaultGroup::new(
            vec![StuckAtLine::new(StuckSite { gate: 1, pin: None }, true)],
            FaultDuration::Transient { cycle: 9 },
        );
        let summary = SeqCampaign::new(&engine, vec![harmless], 3)
            .threads(1)
            .run();
        assert_eq!(summary.tally.error_detected, 0);
        assert_eq!(summary.tally.error_undetected, 0);
        assert_eq!(summary.tally.correct_silent, summary.simulated);
    }

    /// Alarm path quiet in the good machine (s0 fed by constant 0);
    /// only faults can set the sticky chain.
    fn quiet_alarm_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("quiet");
        let s0 = b.dff();
        let s1 = b.dff();
        let zero = b.constant(false);
        b.connect_dff(s0, zero);
        b.connect_dff(s1, s0);
        let x = b.input_bus("x", 2);
        let y = b.xor(x[0], x[1]);
        b.output("y", &[y]);
        b.output("error", &[s1]);
        b.finish()
    }

    #[test]
    fn dropping_preserves_verdicts() {
        let nl = quiet_alarm_netlist();
        let engine = SeqEngine::new(&nl);
        let groups: Vec<SeqFaultGroup> = (0..nl.gate_count())
            .map(|gate| {
                SeqFaultGroup::new(
                    vec![StuckAtLine::new(StuckSite { gate, pin: None }, true)],
                    FaultDuration::Permanent,
                )
            })
            .collect();
        let full = SeqCampaign::new(&engine, groups.clone(), 4)
            .plan(InputPlan::Sampled {
                vectors: 256,
                seed: 7,
            })
            .threads(2)
            .run();
        let dropped = SeqCampaign::new(&engine, groups, 4)
            .plan(InputPlan::Sampled {
                vectors: 256,
                seed: 7,
            })
            .drop_policy(crate::DropPolicy::OnDetect)
            .threads(2)
            .run();
        for (f, d) in full.per_fault.iter().zip(&dropped.per_fault) {
            assert_eq!(f.outcome.detected, d.outcome.detected);
        }
        assert!(dropped.simulated <= full.simulated);
    }

    #[test]
    fn lane_width_does_not_change_seq_results() {
        let nl = quiet_alarm_netlist();
        let engine = SeqEngine::new(&nl);
        let groups: Vec<SeqFaultGroup> = (0..nl.gate_count())
            .flat_map(|gate| {
                [
                    SeqFaultGroup::new(
                        vec![StuckAtLine::new(StuckSite { gate, pin: None }, true)],
                        FaultDuration::Permanent,
                    ),
                    SeqFaultGroup::new(
                        vec![StuckAtLine::new(StuckSite { gate, pin: None }, false)],
                        FaultDuration::Transient { cycle: 1 },
                    ),
                ]
            })
            .collect();
        let plan = InputPlan::Sampled {
            vectors: 300,
            seed: 0x5EED,
        };
        let run = |lanes: Lanes, drop: crate::DropPolicy| {
            SeqCampaign::new(&engine, groups.clone(), 4)
                .plan(plan)
                .drop_policy(drop)
                .threads(2)
                .lanes(lanes)
                .run()
        };
        for drop in [crate::DropPolicy::Never, crate::DropPolicy::OnDetect] {
            let reference = run(Lanes::L1, drop);
            for lanes in [Lanes::L4, Lanes::L8] {
                let wide = run(lanes, drop);
                assert_eq!(reference.tally, wide.tally, "{drop:?} {lanes:?}");
                assert_eq!(
                    reference.first_detect, wide.first_detect,
                    "{drop:?} {lanes:?}"
                );
                assert_eq!(reference.simulated, wide.simulated);
                for (a, b) in reference.per_fault.iter().zip(&wide.per_fault) {
                    assert_eq!(a.outcome.tally, b.outcome.tally);
                    assert_eq!(a.outcome.dropped_after, b.outcome.dropped_after);
                    assert_eq!(a.first_detect, b.first_detect);
                }
            }
        }
    }

    #[test]
    fn seq_engine_word_extraction_matches_scalar() {
        let nl = shift_netlist();
        let engine = SeqEngine::new(&nl);
        assert_eq!(engine.outputs().len(), 1);
        let batch = InputPlan::Exhaustive.stream(1).next().unwrap();
        let mut values = Vec::new();
        let mut state = Vec::new();
        let _ = engine.run_batch_into(&batch, None, 3, &mut values, &mut state);
        // Lane 1 (x = 1): y = 1 after 3 cycles.
        let (_, nets) = &engine.outputs()[0];
        let y = (values[nets[0] as usize] >> 1) & 1;
        assert_eq!(y, 1);
        let scalar = nl.eval_seq_words(&[Word::new(1, 1)], 3, &[]);
        assert_eq!(scalar[0].bits(), 1);
    }
}
