//! Generates the structural netlist of a self-checking adder datapath
//! (operator `+`, Tech1, 8 bits), reports its size, verifies it against
//! the golden model, and writes Verilog + DOT files — the hand-off a
//! conventional synthesis flow would consume.
//!
//! Run with: `cargo run --example netlist_export`

use scdp::arith::Word;
use scdp::core::{Operator, Technique};
use scdp::netlist::export::{to_dot, to_verilog};
use scdp::netlist::gen::{self_checking, SelfCheckingSpec};

fn main() -> std::io::Result<()> {
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Tech1,
        width: 8,
    });
    println!("design: {}", dp.netlist.name());
    println!(
        "gates:  {} ({} logic)",
        dp.netlist.gate_count(),
        dp.netlist.logic_gate_count()
    );
    println!(
        "units:  nominal [{}..{}] + {} checker instance(s)",
        dp.nominal.start,
        dp.nominal.end,
        dp.checkers.len()
    );
    println!("stuck-at fault sites: {}", dp.netlist.fault_sites().len());

    // Sanity: the generated netlist is functionally a checked adder.
    for (a, b) in [(3i64, 4), (-100, 27), (127, 1)] {
        let out = dp
            .netlist
            .eval_words(&[Word::from_i64(8, a), Word::from_i64(8, b)], &[]);
        assert_eq!(out[0].to_i64(), (a as i8).wrapping_add(b as i8) as i64);
        assert_eq!(out[1].bits(), 0, "no alarm on healthy hardware");
    }

    let vpath = std::env::temp_dir().join("sck_add8.v");
    let dpath = std::env::temp_dir().join("sck_add8.dot");
    std::fs::write(&vpath, to_verilog(&dp.netlist))?;
    std::fs::write(&dpath, to_dot(&dp.netlist))?;
    println!("\nwrote {} and {}", vpath.display(), dpath.display());
    let verilog = to_verilog(&dp.netlist);
    println!("\nVerilog head:\n{}", &verilog[..verilog.len().min(400)]);
    Ok(())
}
