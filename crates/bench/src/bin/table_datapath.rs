//! Datapath-level fault-campaign sweep: every `scdp-fir` workload ×
//! every Table 1 technique, each scheduled, bound, elaborated to one
//! flat netlist and fault-graded per physical functional unit on the
//! bit-parallel engine — the system-level companion of `table1`/
//! `table2` (which grade lone operators).
//!
//! Usage:
//!   table_datapath [--width N] [--samples N] [--seed S] [--threads N]
//!                  [--style plain|full|embedded] [--dedicated]
//!                  [--report-dir DIR]
//!
//! `--report-dir DIR` writes one `scdp.campaign.report/v2` JSON per
//! scenario as `DIR/dp_<workload>_<technique>.json`.

use scdp_bench::{pct, CliArgs};
use scdp_campaign::{style_from_label, style_label, DatapathScenario, DfgSource, InputSpace};
use scdp_core::{Allocation, Technique};
use scdp_hls::SckStyle;

fn main() {
    let args = CliArgs::parse();
    let width = args.width(3).clamp(1, 16);
    let samples = args.samples(1024);
    let seed = args.seed();
    let threads = args.threads();
    let style = args
        .value::<String>("--style")
        .and_then(|s| style_from_label(&s))
        .unwrap_or(SckStyle::Full);
    let allocation = if args.flag("--dedicated") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };
    let report_dir = args.value::<String>("--report-dir");
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).expect("create report dir");
    }

    println!(
        "Datapath campaigns: width {width}, style {}, {} allocation, \
         {samples} vectors/fault (seed {seed:#x})",
        style_label(style),
        if allocation == Allocation::Dedicated {
            "dedicated-checker"
        } else {
            "shared (worst-case)"
        },
    );
    println!(
        "{:<8} {:<6} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10}",
        "workload", "tech", "gates", "cycles", "faults", "coverage", "detection", "safe"
    );

    for source in DfgSource::BUILTIN {
        for technique in Technique::ALL {
            let label = source.label();
            let report = DatapathScenario::new(source.clone(), width)
                .technique(technique)
                .style(style)
                .allocation(allocation)
                .campaign()
                .input_space(InputSpace::Sampled {
                    per_fault: samples,
                    seed,
                })
                .threads(threads)
                .run()
                .expect("datapath campaign");
            let details = report.datapath.as_ref().expect("datapath section");
            println!(
                "{:<8} {:<6} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10}",
                label,
                format!("{technique:?}").to_lowercase(),
                details.gates,
                details.schedule_length,
                report.fault_count(),
                pct(report.coverage()),
                pct(report.detection_rate()),
                pct(report.safe_rate()),
            );
            for fu in details.per_fu.iter().filter(|f| f.faults > 0) {
                println!(
                    "    {:<6} {:<7} {:>2} ops {:>5} faults  cov {:>8}  det {:>4}/{:<4}",
                    fu.name,
                    fu.role,
                    fu.ops,
                    fu.faults,
                    pct(fu.tally.coverage()),
                    fu.detected,
                    fu.faults,
                );
            }
            if let Some(dir) = &report_dir {
                let path = format!(
                    "{dir}/dp_{label}_{}.json",
                    format!("{technique:?}").to_lowercase()
                );
                std::fs::write(&path, report.to_json()).expect("write report");
                eprintln!("    wrote {path}");
            }
        }
    }
}
