//! Work-stealing fork-join pool over `std::thread`.
//!
//! The campaign drivers need one parallel shape: *split a fault range
//! into small blocks, evaluate each block on some worker, splice the
//! per-block outputs back in index order*. `rayon` would express this
//! directly, but the build environment is offline, so this module
//! provides the same semantics on scoped threads.
//!
//! Scheduling is dynamic — workers race on a shared atomic work index,
//! so a worker that finishes its "home" share early steals blocks that
//! static contiguous chunking would have assigned elsewhere. Fault
//! dropping makes per-fault cost wildly uneven (a dropped fault costs
//! one batch, an undetected one costs the whole input space), which is
//! exactly the load shape static chunking handles worst. Output stays
//! bit-identical to single-thread because results are merged by block
//! index at the join barrier, never by completion order.
//!
//! Worker panics do not propagate as panics: each worker runs under
//! `std::panic::catch_unwind`, the first payload aborts the pool
//! (remaining workers stop taking blocks), and the caller receives a
//! typed [`SimError::WorkerPanicked`].

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::error::SimError;

/// A sensible default worker count: the machine's available
/// parallelism, 1 if it cannot be queried.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Work-block size for `n` items on `threads` workers.
///
/// Small enough that each worker sees several blocks (so stealing can
/// balance uneven per-fault cost), large enough that the per-block
/// fixed cost — re-evaluating the good machine once per block per
/// batch — stays a few percent: ~4 blocks per worker, capped at 32
/// faults per block.
#[must_use]
pub fn auto_block(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).clamp(1, 32)
}

/// What the pool observed while running: exported as `pool.*` telemetry
/// counters by the campaign drivers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers the pool actually ran with (1 for the inline path).
    pub threads: usize,
    /// Number of work blocks the range was split into.
    pub blocks: u64,
    /// Blocks executed by a worker other than their static "home"
    /// worker — how much dynamic scheduling deviated from contiguous
    /// chunking. Zero on one thread; scheduling-dependent otherwise.
    pub steals: u64,
    /// Wall time each worker spent inside `f`, in nanoseconds. All
    /// entries are nonzero when every worker got at least one block.
    pub worker_busy_ns: Vec<u64>,
}

impl PoolStats {
    /// Total busy time across workers, in nanoseconds.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.worker_busy_ns.iter().sum()
    }
}

/// Maps `f` over `block`-sized index ranges of `0..n` on up to
/// `threads` workers and concatenates the per-block outputs in index
/// order, together with pool telemetry.
///
/// `f(lo..hi)` must depend only on the range, not on which worker runs
/// it — the drivers regenerate their deterministic input streams per
/// block — so the concatenation is bit-identical to calling
/// `f(0..n)` ranges sequentially. Runs inline on the calling thread
/// when one worker or one block suffices, so small workloads pay no
/// spawn cost.
///
/// # Errors
///
/// [`SimError::WorkerPanicked`] if any invocation of `f` panics; the
/// first payload is captured, the pool drains, and no result is
/// returned.
pub fn run_blocks<R, F>(
    n: usize,
    threads: usize,
    block: usize,
    f: F,
) -> Result<(Vec<R>, PoolStats), SimError>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    let threads = threads.max(1).min(nblocks.max(1));
    let range_of = |b: usize| b * block..((b + 1) * block).min(n);

    if threads <= 1 {
        let start = Instant::now();
        let mut out = Vec::new();
        let mut result = Ok(());
        for b in 0..nblocks {
            match catch_unwind(AssertUnwindSafe(|| f(range_of(b)))) {
                Ok(items) => out.extend(items),
                Err(payload) => {
                    result = Err(SimError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    });
                    break;
                }
            }
        }
        result?;
        let stats = PoolStats {
            threads: 1,
            blocks: nblocks as u64,
            steals: 0,
            worker_busy_ns: vec![start.elapsed().as_nanos() as u64],
        };
        return Ok((out, stats));
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_msg: Mutex<Option<String>> = Mutex::new(None);

    // (block index, block output, executing worker) triples per worker,
    // merged by block index after the join barrier.
    type WorkerOut<R> = (Vec<(usize, Vec<R>)>, u64, u64);
    let per_worker: Vec<WorkerOut<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let abort = &abort;
                let panic_msg = &panic_msg;
                let f = &f;
                s.spawn(move || {
                    let start = Instant::now();
                    let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        // The worker static chunking would have given
                        // this block to; executing it elsewhere is a
                        // steal.
                        if b * threads / nblocks != w {
                            steals += 1;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(range_of(b)))) {
                            Ok(items) => mine.push((b, items)),
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                let msg = panic_message(payload.as_ref());
                                let mut slot = panic_msg.lock().unwrap_or_else(|e| e.into_inner());
                                slot.get_or_insert(msg);
                                break;
                            }
                        }
                    }
                    (mine, steals, start.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                // Unreachable: the closure body cannot panic (f runs
                // under catch_unwind). Degrade to an empty share so the
                // abort path below still reports cleanly.
                Err(payload) => {
                    abort.store(true, Ordering::Relaxed);
                    let msg = panic_message(payload.as_ref());
                    let mut slot = panic_msg.lock().unwrap_or_else(|e| e.into_inner());
                    slot.get_or_insert(msg);
                    (Vec::new(), 0, 0)
                }
            })
            .collect()
    });

    if let Some(message) = panic_msg.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(SimError::WorkerPanicked { message });
    }

    let mut stats = PoolStats {
        threads,
        blocks: nblocks as u64,
        steals: 0,
        worker_busy_ns: Vec::with_capacity(threads),
    };
    let mut slots: Vec<Option<Vec<R>>> = (0..nblocks).map(|_| None).collect();
    for (mine, steals, busy_ns) in per_worker {
        stats.steals += steals;
        stats.worker_busy_ns.push(busy_ns);
        for (b, items) in mine {
            slots[b] = Some(items);
        }
    }
    let out = slots
        .into_iter()
        .flat_map(|s| s.expect("pool completed without abort, so every block ran"))
        .collect();
    Ok((out, stats))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        for threads in [1, 2, 3, 7, 64] {
            for block in [1, 3, 32, 1000, 5000] {
                let (doubled, stats) =
                    run_blocks(1000, threads, block, |r| r.map(|x| 2 * x as u64).collect())
                        .unwrap();
                assert_eq!(doubled.len(), 1000);
                assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
                assert_eq!(stats.blocks, 1000u64.div_ceil(block.max(1) as u64));
                assert!(stats.threads >= 1);
                assert_eq!(stats.worker_busy_ns.len(), stats.threads);
            }
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = run_blocks(0, 4, 8, |_| vec![0u8]).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        for threads in [1, 4] {
            let err = run_blocks(100, threads, 4, |r| {
                if r.contains(&57) {
                    panic!("bad block at {}", r.start);
                }
                r.collect::<Vec<_>>()
            })
            .unwrap_err();
            match err {
                SimError::WorkerPanicked { message } => {
                    assert!(message.contains("bad block"), "message: {message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_thread_pool_reports_per_worker_busy() {
        let (out, stats) = run_blocks(256, 4, 2, |r| {
            // Enough work per block that every worker gets a slice.
            let mut acc = 0u64;
            for x in r.clone() {
                for i in 0..2000 {
                    acc = acc.wrapping_mul(31).wrapping_add(x as u64 ^ i);
                }
            }
            vec![(acc & 1) + r.start as u64]
        })
        .unwrap();
        assert_eq!(out.len(), 128);
        assert_eq!(stats.blocks, 128);
        assert_eq!(stats.worker_busy_ns.len(), stats.threads);
        assert!(stats.busy_ns() > 0);
    }

    #[test]
    fn auto_block_is_bounded() {
        assert_eq!(auto_block(0, 4), 1);
        assert_eq!(auto_block(1, 4), 1);
        assert_eq!(auto_block(1000, 4), 32);
        assert_eq!(auto_block(64, 4), 4);
        assert!(auto_block(usize::MAX, 1) == 32);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
