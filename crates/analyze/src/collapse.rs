//! Stuck-at fault-equivalence collapsing.
//!
//! Classic structural collapsing shrinks the single-stuck-at universe
//! *before a single vector is simulated*, using only local gate
//! identities and fanout-free-region (FFR) chaining:
//!
//! * **constant-forcing rules** — s-a-0 on an AND input forces the
//!   output to 0 exactly like s-a-0 on its stem, so the two faults have
//!   the *same faulty function* (duals: OR input s-a-1 ≡ stem s-a-1,
//!   NAND input s-a-0 ≡ stem s-a-1, NOR input s-a-1 ≡ stem s-a-0);
//! * **transfer rules** — an inverter maps input s-a-v to stem s-a-v̄, a
//!   buffer to stem s-a-v (XOR/XNOR have no such rule: an input fault
//!   turns them into a wire/inverter of the other input, which is not a
//!   stuck line);
//! * **FFR chaining** — a stem fault on a net with structural fanout 1
//!   that is not a primary output is observable only through its single
//!   reader pin, so it is equivalent to the same fault on that pin
//!   (this includes a Dff D pin: forcing the captured value is
//!   pointwise identical to forcing the net it samples);
//! * **constant redundancy** — sticking a line at the constant value it
//!   already holds (forward constant propagation from `Const` gates;
//!   datapaths tie inactive mux legs to the zero bus, so these are
//!   common) leaves the faulty function *equal to the fault-free one*,
//!   making every such fault a member of one shared class.
//!
//! Chasing these rewrites to a fixpoint assigns every line a unique
//! *representative*; two lines are equivalent iff they share one. The
//! rewrites preserve the complete faulty function — not merely
//! detectability — so a fault-simulation verdict computed for the
//! representative is *bit-identical* for every member of its class,
//! which is what lets campaign engines simulate representatives only
//! and fan verdicts back out (see `scdp-campaign`'s `.collapse(true)`).
//!
//! Dominance relations (e.g. AND stem s-a-1 is detected by any test for
//! an input s-a-1) only preserve detectability, not the four-way
//! silent/detected taxonomy this project reports, so they cannot fan a
//! verdict out the way equivalence classes do. They are still strong
//! enough to *settle* faults deductively in the one direction that is
//! safe: when a dominator's simulated outcome is completely silent, all
//! of its dominated lines are provably silent too. The consumer is
//! [`crate::dominance::DominatorChains`], which closes
//! [`CollapsedUniverse::dominance_edges`] into per-line dominator
//! chains for `scdp-campaign`'s `.prune(true)` pass.

use scdp_netlist::{GateKind, Netlist, StuckAtLine, StuckSite};
use std::collections::HashMap;

/// Dense key for a [`StuckAtLine`]: `(gate, pin∈{stem,0,1}, value)`.
pub(crate) fn line_key(line: &StuckAtLine) -> usize {
    let pin_code = match line.site.pin {
        None => 0,
        Some(p) => p as usize + 1,
    };
    (line.site.gate * 3 + pin_code) * 2 + usize::from(line.value)
}

/// The result of collapsing a netlist's single-stuck-at line universe.
///
/// Maps every original [`StuckAtLine`] to its equivalence-class
/// representative and keeps the reverse fan-out table (representative →
/// all members), plus informational dominance edges.
#[derive(Clone, Debug)]
pub struct CollapsedUniverse {
    /// `rep[line_key]` — representative of each line in the universe
    /// (chase rewrites plus constant-redundancy folding).
    rep: Vec<Option<StuckAtLine>>,
    /// Chase-only representatives — used for multi-line groups, where
    /// redundancy folding would be unsound (a co-injected fault can
    /// un-constant the cone a "redundant" line sits on).
    rep_chase: Vec<Option<StuckAtLine>>,
    /// All lines of the universe, in [`Netlist::fault_lines`] order.
    lines: Vec<StuckAtLine>,
    /// Representative → every member of its class (fan-out table).
    members: HashMap<usize, Vec<StuckAtLine>>,
    /// `(dominator, dominated)` pairs from local gate rules.
    dominance: Vec<(StuckAtLine, StuckAtLine)>,
}

impl CollapsedUniverse {
    /// Collapses the full stuck-at universe of `netlist`.
    #[must_use]
    pub fn build(netlist: &Netlist) -> Self {
        let readers = netlist.readers();
        let gates = netlist.gates();
        let lines = netlist.fault_lines();
        let consts = crate::lint::propagate_constants(netlist);
        // A line is redundant when the net it forces already constantly
        // holds the stuck value — the faulty function is the fault-free
        // function, so all such lines share one class. The check runs on
        // the *chased* form; every chase rewrite of a syntactically
        // redundant line is syntactically redundant again (a forced
        // const input makes the output const at the forced value), so
        // nothing is missed.
        let redundant = |line: &StuckAtLine| -> bool {
            let src = match line.site.pin {
                None => Some(line.site.gate),
                Some(p) => {
                    let g = &gates[line.site.gate];
                    let net = if p == 0 { g.a } else { g.b };
                    net.map(scdp_netlist::NetId::index)
                }
            };
            src.and_then(|n| consts[n]).is_some_and(|v| v == line.value)
        };
        let mut rep = vec![None; gates.len() * 6];
        let mut rep_chase = vec![None; gates.len() * 6];
        let mut members: HashMap<usize, Vec<StuckAtLine>> = HashMap::new();
        let mut redundant_rep: Option<StuckAtLine> = None;
        for &line in &lines {
            let chased = chase(netlist, &readers, line);
            let r = if redundant(&chased) {
                *redundant_rep.get_or_insert(chased)
            } else {
                chased
            };
            rep[line_key(&line)] = Some(r);
            rep_chase[line_key(&line)] = Some(chased);
            members.entry(line_key(&r)).or_default().push(line);
        }
        let mut dominance = Vec::new();
        for (g, gate) in gates.iter().enumerate() {
            // `stem s-a-v` is detected by any test for `pin s-a-w`:
            // (AND,1,1), (OR,0,0), (NAND,0,1), (NOR,1,0).
            let (stem_v, pin_v) = match gate.kind {
                GateKind::And => (true, true),
                GateKind::Or => (false, false),
                GateKind::Nand => (false, true),
                GateKind::Nor => (true, false),
                _ => continue,
            };
            let stem = StuckAtLine::new(StuckSite { gate: g, pin: None }, stem_v);
            for pin in 0..gate.kind.pins() {
                let dominated = StuckAtLine::new(
                    StuckSite {
                        gate: g,
                        pin: Some(pin),
                    },
                    pin_v,
                );
                dominance.push((stem, dominated));
            }
        }
        CollapsedUniverse {
            rep,
            rep_chase,
            lines,
            members,
            dominance,
        }
    }

    /// The representative of `line`'s equivalence class. Lines outside
    /// the netlist's universe are their own representative.
    #[must_use]
    pub fn representative(&self, line: StuckAtLine) -> StuckAtLine {
        self.rep
            .get(line_key(&line))
            .copied()
            .flatten()
            .unwrap_or(line)
    }

    /// Every member of the class represented by `rep` (empty if `rep`
    /// is not a representative).
    #[must_use]
    pub fn class_members(&self, rep: StuckAtLine) -> &[StuckAtLine] {
        self.members.get(&line_key(&rep)).map_or(&[], Vec::as_slice)
    }

    /// Number of lines in the original universe (sites × 2 polarities).
    #[must_use]
    pub fn sites_before(&self) -> usize {
        self.lines.len()
    }

    /// Number of equivalence classes — lines left after collapsing.
    #[must_use]
    pub fn sites_after(&self) -> usize {
        self.members.len()
    }

    /// Alias for [`CollapsedUniverse::sites_after`].
    #[must_use]
    pub fn classes(&self) -> usize {
        self.members.len()
    }

    /// `sites_after / sites_before` — the collapse ratio (lower is
    /// better; classic circuits land around 0.4–0.6).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.lines.is_empty() {
            return 1.0;
        }
        self.sites_after() as f64 / self.sites_before() as f64
    }

    /// `(dominator, dominated)` pairs from local gate rules: on any
    /// vector where the dominated pin fault perturbs the gate at all,
    /// the dominator stem fault forces the *same* output value, so the
    /// two faulty machines agree net-for-net on that vector. Consumed
    /// by [`crate::dominance::DominatorChains`], which closes these
    /// edges (through equivalence-chase links) into per-line dominator
    /// chains for deductive pruning (`scdp-campaign`'s `.prune(true)`):
    /// a dominator whose simulated outcome is completely silent settles
    /// every line it dominates without simulating it.
    #[must_use]
    pub fn dominance_edges(&self) -> &[(StuckAtLine, StuckAtLine)] {
        &self.dominance
    }

    /// The *chase-only* representative of `line` — equivalence rewrites
    /// without constant-redundancy folding, so the result always has
    /// the exact same faulty function as `line` even inside multi-line
    /// groups. Lines outside the universe map to themselves.
    #[must_use]
    pub fn chased(&self, line: StuckAtLine) -> StuckAtLine {
        self.rep_chase
            .get(line_key(&line))
            .copied()
            .flatten()
            .unwrap_or(line)
    }

    /// Collapses a campaign's fault-group universe: groups whose
    /// *canonical forms* (every line mapped to its representative,
    /// sorted, deduplicated) coincide are equivalent as a whole, so
    /// simulating one per class reproduces every member's verdict
    /// bit-for-bit.
    ///
    /// A group whose canonical form would place conflicting values on
    /// one site (e.g. `{pin0 s-a-0, stem s-a-1}` on one AND — the
    /// rewrite would lose the engine's last-wins semantics) is kept as
    /// its own singleton class rather than risk a wrong merge.
    #[must_use]
    pub fn collapse_groups(&self, groups: &[Vec<StuckAtLine>]) -> CollapsedGroups {
        #[derive(PartialEq, Eq, Hash)]
        enum Key {
            Canon(Vec<usize>),
            Unique(usize),
        }
        let mut seen: HashMap<Key, usize> = HashMap::new();
        let mut rep_groups = Vec::new();
        let mut rep_index = Vec::new();
        let mut class_of = Vec::with_capacity(groups.len());
        for (i, group) in groups.iter().enumerate() {
            let key = self.canonical(group).map_or(Key::Unique(i), Key::Canon);
            let class = *seen.entry(key).or_insert_with(|| {
                rep_groups.push(group.clone());
                rep_index.push(i);
                rep_groups.len() - 1
            });
            class_of.push(class);
        }
        CollapsedGroups {
            rep_groups,
            rep_index,
            class_of,
        }
    }

    /// Canonical form of a fault group: each line mapped to its
    /// representative, sorted, deduplicated. `None` if two lines land
    /// on the same site with conflicting values. Singleton groups use
    /// the full mapping; multi-line groups use chase-only rewrites,
    /// because constant-redundancy folding assumes the fault-free
    /// constant cone — which a co-injected group member can break.
    fn canonical(&self, group: &[StuckAtLine]) -> Option<Vec<usize>> {
        let mut keys: Vec<usize> = if group.len() == 1 {
            vec![line_key(&self.representative(group[0]))]
        } else {
            group
                .iter()
                .map(|&l| {
                    let chased = self
                        .rep_chase
                        .get(line_key(&l))
                        .copied()
                        .flatten()
                        .unwrap_or(l);
                    line_key(&chased)
                })
                .collect()
        };
        keys.sort_unstable();
        keys.dedup();
        for w in keys.windows(2) {
            if w[0] >> 1 == w[1] >> 1 {
                return None; // same site, both polarities
            }
        }
        Some(keys)
    }
}

/// Result of [`CollapsedUniverse::collapse_groups`].
#[derive(Clone, Debug)]
pub struct CollapsedGroups {
    /// One representative group per class — the (verbatim) fault lines
    /// of the class's first original member; simulate exactly these.
    pub rep_groups: Vec<Vec<StuckAtLine>>,
    /// Original group index each representative group came from.
    pub rep_index: Vec<usize>,
    /// `class_of[i]` — index into `rep_groups` for original group `i`.
    pub class_of: Vec<usize>,
}

impl CollapsedGroups {
    /// Original universe size.
    #[must_use]
    pub fn groups_before(&self) -> usize {
        self.class_of.len()
    }

    /// Number of groups that actually need simulating.
    #[must_use]
    pub fn groups_after(&self) -> usize {
        self.rep_groups.len()
    }
}

/// Chases local equivalence rewrites to a fixpoint. Each step moves the
/// fault strictly downstream (pin → own stem, stem → single reader
/// pin), so the chase terminates; the visited guard makes that robust
/// even for hand-built IR with Dff back-edges.
fn chase(netlist: &Netlist, readers: &[Vec<(usize, u8)>], mut line: StuckAtLine) -> StuckAtLine {
    let gates = netlist.gates();
    let mut visited = vec![line_key(&line)];
    loop {
        let next = match line.site.pin {
            Some(_) => {
                // Input-pin fault: fold into the gate's own stem when
                // the pin value forces (or transfers to) the output.
                let g = line.site.gate;
                let stem = |v: bool| Some(StuckAtLine::new(StuckSite { gate: g, pin: None }, v));
                match (gates[g].kind, line.value) {
                    (GateKind::And, false) => stem(false),
                    (GateKind::Or, true) => stem(true),
                    (GateKind::Nand, false) => stem(true),
                    (GateKind::Nor, true) => stem(false),
                    (GateKind::Not, v) => stem(!v),
                    (GateKind::Buf, v) => stem(v),
                    _ => None,
                }
            }
            None => {
                // Stem fault: with structural fanout 1 and no output
                // observer, only the single reader pin sees the net.
                let n = line.site.gate;
                match readers[n].as_slice() {
                    [(h, p)] if !netlist.is_output_net(n) => Some(StuckAtLine::new(
                        StuckSite {
                            gate: *h,
                            pin: Some(*p),
                        },
                        line.value,
                    )),
                    _ => None,
                }
            }
        };
        match next {
            Some(l) if !visited.contains(&line_key(&l)) => {
                visited.push(line_key(&l));
                line = l;
            }
            _ => return line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::NetlistBuilder;

    fn stem(gate: usize, value: bool) -> StuckAtLine {
        StuckAtLine::new(StuckSite { gate, pin: None }, value)
    }

    fn pin(gate: usize, pin: u8, value: bool) -> StuckAtLine {
        StuckAtLine::new(
            StuckSite {
                gate,
                pin: Some(pin),
            },
            value,
        )
    }

    /// `y = a & b`, y is an output: pin s-a-0 folds into stem s-a-0.
    #[test]
    fn and_pin_sa0_collapses_to_stem() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let c = b.input_bus("b", 1)[0];
        let y = b.and(a, c);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let g = y.index();
        assert_eq!(cu.representative(pin(g, 0, false)), stem(g, false));
        assert_eq!(cu.representative(pin(g, 1, false)), stem(g, false));
        // s-a-1 input faults are NOT equivalent to the stem.
        assert_eq!(cu.representative(pin(g, 0, true)), pin(g, 0, true));
        // Input stems chain through their single reader pin.
        assert_eq!(cu.representative(stem(a.index(), false)), stem(g, false));
        assert_eq!(cu.representative(stem(a.index(), true)), pin(g, 0, true));
    }

    /// Inverter chain: every fault on the chain collapses to one class
    /// per polarity at the far end.
    #[test]
    fn inverter_chain_collapses_to_two_classes_plus_ends() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        // a-stem sa0 → pin(x,0) sa0 → stem(x) sa1 → pin(y,0) sa1 → stem(y) sa0
        assert_eq!(
            cu.representative(stem(a.index(), false)),
            stem(y.index(), false)
        );
        assert_eq!(
            cu.representative(stem(x.index(), true)),
            stem(y.index(), false)
        );
        assert_eq!(
            cu.representative(stem(x.index(), false)),
            stem(y.index(), true)
        );
        // Universe: 1 input stem + 2 gates × (stem+pin) lines → 2 classes.
        assert_eq!(cu.sites_after(), 2);
        assert!(cu.ratio() < 0.3);
    }

    /// XOR pins never fold into the stem.
    #[test]
    fn xor_pins_do_not_collapse() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.xor(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        for v in [false, true] {
            assert_eq!(
                cu.representative(pin(y.index(), 0, v)),
                pin(y.index(), 0, v)
            );
        }
    }

    /// A net with fanout 2 blocks FFR chaining.
    #[test]
    fn fanout_blocks_stem_chaining() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let x = b.not(a);
        let y = b.not(a);
        b.output("y", &[x, y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        assert_eq!(
            cu.representative(stem(a.index(), false)),
            stem(a.index(), false)
        );
    }

    /// Same net read on both pins of one gate counts as fanout 2.
    #[test]
    fn double_read_counts_as_fanout_two() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let y = b.and(a, a);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        assert_eq!(
            cu.representative(stem(a.index(), true)),
            stem(a.index(), true)
        );
    }

    /// Conflicting canonical values bail to a singleton class.
    #[test]
    fn conflicting_group_is_its_own_class() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.and(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let g = y.index();
        // {pin0 sa0, stem sa1} canonicalises to {stem sa0, stem sa1}:
        // conflict, so it must NOT merge with {stem sa0}.
        let groups = vec![
            vec![pin(g, 0, false), stem(g, true)],
            vec![stem(g, false)],
            vec![pin(g, 1, false)],
        ];
        let cg = cu.collapse_groups(&groups);
        assert_eq!(cg.class_of[0], 0);
        assert_eq!(cg.class_of[1], 1);
        assert_eq!(cg.class_of[2], 1); // pin1 sa0 ≡ stem sa0
        assert_eq!(cg.groups_after(), 2);
        // The representative group keeps its original (uncollapsed) lines.
        assert_eq!(cg.rep_groups[1], vec![stem(g, false)]);
        assert_eq!(cg.rep_index[1], 1);
    }

    /// Dominance edges carry the textbook pairs.
    #[test]
    fn dominance_edges_for_and() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.and(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let g = y.index();
        assert!(cu
            .dominance_edges()
            .contains(&(stem(g, true), pin(g, 0, true))));
    }

    /// Dominance edges for the OR/NAND/NOR duals of the AND rule.
    #[test]
    fn dominance_edges_for_or_nand_nor() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let o = b.or(a[0], a[1]);
        let nd = b.nand(a[0], a[1]);
        let nr = b.nor(a[0], a[1]);
        b.output("y", &[o, nd, nr]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        for p in 0..2 {
            // OR: stem s-a-0 dominated by pin s-a-0.
            assert!(cu
                .dominance_edges()
                .contains(&(stem(o.index(), false), pin(o.index(), p, false))));
            // NAND: stem s-a-0 dominated by pin s-a-1.
            assert!(cu
                .dominance_edges()
                .contains(&(stem(nd.index(), false), pin(nd.index(), p, true))));
            // NOR: stem s-a-1 dominated by pin s-a-0.
            assert!(cu
                .dominance_edges()
                .contains(&(stem(nr.index(), true), pin(nr.index(), p, false))));
        }
    }

    /// NOT/BUF pin faults are exact *equivalences* (transfer rules), so
    /// they contribute chase links, never dominance edges.
    #[test]
    fn inverters_and_buffers_produce_no_dominance_edges() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let x = b.not(a);
        let y = b.buf(x);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        assert!(cu.dominance_edges().is_empty());
        // The transfer rules show up as equivalences instead.
        assert_eq!(cu.chased(pin(x.index(), 0, false)), stem(y.index(), true));
        assert_eq!(cu.chased(pin(y.index(), 0, true)), stem(y.index(), true));
    }

    /// Brute-force soundness of every dominance edge on a mixed
    /// netlist with AND/OR/NAND/NOR/NOT/BUF and a fanout-free chain:
    /// on every vector where the dominated fault disturbs any output,
    /// the dominator produces the *identical* faulty outputs — the
    /// containment `scdp-campaign`'s dominance settling relies on.
    #[test]
    fn dominance_edges_are_brute_force_sound() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let x = b.or(a[0], a[1]);
        let y = b.nand(x, a[2]);
        // Fanout-free chain hanging off the NOR: nor → not → buf → and.
        let z = b.nor(y, a[3]);
        let w = b.not(z);
        let v = b.buf(w);
        let u = b.and(v, a[0]);
        b.output("y", &[u, y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        assert!(cu.dominance_edges().len() >= 8, "AND/OR/NAND/NOR each edge");
        let outs = |faults: &[StuckAtLine], bits: &[bool]| -> Vec<bool> {
            let values = n.eval_nets(bits, faults);
            n.outputs()
                .iter()
                .flat_map(|(_, bus)| bus.iter().map(|net| values[net.index()]))
                .collect()
        };
        for &(dom, sub) in cu.dominance_edges() {
            let mut perturbs = false;
            for word in 0..(1u32 << n.input_bits()) {
                let bits: Vec<bool> = (0..n.input_bits()).map(|i| word >> i & 1 != 0).collect();
                let good = outs(&[], &bits);
                let faulty = outs(&[sub], &bits);
                if faulty != good {
                    perturbs = true;
                    assert_eq!(
                        outs(&[dom], &bits),
                        faulty,
                        "dominator {dom:?} must replay dominated {sub:?} exactly"
                    );
                }
            }
            // The netlist is small enough that every edge's dominated
            // fault is actually detectable — the check above is live.
            assert!(perturbs, "edge ({dom:?}, {sub:?}) never witnessed");
        }
    }

    /// Dff D-pin: an upstream stem with fanout 1 into the D input
    /// chains onto the Dff capture pin.
    #[test]
    fn stem_chains_into_dff_d_pin() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let q = b.dff();
        let d = b.not(a);
        b.connect_dff(q, d);
        b.output("y", &[q]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        assert_eq!(
            cu.representative(stem(d.index(), true)),
            pin(q.index(), 0, true)
        );
    }

    /// Faults that stick a constant net at its own value are redundant
    /// and share one class — but only for single-fault semantics: in a
    /// multi-line group the chase-only mapping keeps them distinct.
    #[test]
    fn constant_redundant_faults_share_one_class() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let z = b.constant(false);
        let y = b.and(a, z);
        let w = b.or(a, z);
        b.output("y", &[y]);
        b.output("w", &[w]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        // z-stem sa0, the AND/OR pins reading z stuck at 0, and the
        // whole AND cone (its output is constantly 0) are all no-ops.
        let r = cu.representative(stem(z.index(), false));
        assert_eq!(cu.representative(pin(y.index(), 1, false)), r);
        assert_eq!(cu.representative(pin(w.index(), 1, false)), r);
        assert_eq!(cu.representative(stem(y.index(), false)), r);
        // Sticking the const net at 1 is a real fault.
        assert_ne!(cu.representative(stem(z.index(), true)), r);
        // Multi-line groups fall back to chase-only rewrites: a group
        // containing {z sa1, y-pin-z sa0} must not fold the second
        // line into the redundant class (z sa1 un-consts the net).
        let groups = vec![
            vec![stem(z.index(), true), pin(y.index(), 1, false)],
            vec![stem(z.index(), true), pin(w.index(), 1, false)],
        ];
        let cg = cu.collapse_groups(&groups);
        assert_eq!(cg.groups_after(), 2, "no unsound multi-line merge");
    }

    /// Every member listed in the fan-out table maps back to its rep.
    #[test]
    fn fanout_table_is_consistent() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 3);
        let x = b.and(a[0], a[1]);
        let y = b.or(x, a[2]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let mut total = 0;
        for &line in &n.fault_lines() {
            let rep = cu.representative(line);
            assert_eq!(cu.representative(rep), rep, "rep must be a fixpoint");
            assert!(cu.class_members(rep).contains(&line));
            total += 1;
        }
        assert_eq!(total, cu.sites_before());
    }
}
