//! The paper's "extensible reliability library": defining a custom
//! check policy that picks a different Table 1 technique per operator
//! (higher coverage where it is cheap, lower cost where the operator
//! dominates the budget), and comparing hidden-operation counts.
//!
//! Run with: `cargo run --example custom_policy`

use scdp::core::{context, CheckPolicy, CountingDataPath, NativeDataPath, Sck};
use scdp::Technique;
use std::cell::RefCell;
use std::rc::Rc;

/// Both inverse checks on the cheap ALU operators, a single check on the
/// expensive multiplier, Tech2 on division (Table 1: 97.16% > 94.33%).
#[derive(Copy, Clone, Debug, Default)]
struct BudgetPolicy;

impl CheckPolicy for BudgetPolicy {
    const ADD: Technique = Technique::Both;
    const SUB: Technique = Technique::Both;
    const MUL: Technique = Technique::Tech1;
    const DIV: Technique = Technique::Tech2;
}

fn kernel<P: CheckPolicy>() -> Sck<i32, P> {
    let a = Sck::<i32, P>::new(1234);
    let b = Sck::<i32, P>::new(-56);
    (a + b) * b - a / b
}

fn main() {
    for (name, run) in [
        ("Tech1Policy (default)", count::<scdp::core::Tech1Policy>()),
        ("BothPolicy", count::<scdp::BothPolicy>()),
        ("BudgetPolicy (custom)", count::<BudgetPolicy>()),
    ] {
        println!("{name:<22} value {}  hidden checker ops {}", run.0, run.1);
    }
    println!("\nAll policies compute the same value; they trade checking cost");
    println!("against the Table 1 coverage of each operator.");
}

fn count<P: CheckPolicy>() -> (i32, u64) {
    let dp = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
    let value = {
        let _g = context::install(dp.clone());
        kernel::<P>().value()
    };
    let checker_ops = dp.borrow().counts().checker_ops;
    (value, checker_ops)
}
