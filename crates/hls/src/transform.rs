//! The SCK expansion pass: rewriting checkable operators into operator +
//! hidden inverse operations + comparators.
//!
//! This pass plays the role of the OFFIS SystemC-Plus synthesizer in the
//! paper's Figure 3: it turns the *specification-level* self-checking
//! semantics (the overloaded operators of `SCK<TYPE>`) into explicit
//! hardware operations a behavioural synthesis flow can schedule.

use crate::dfg::{Dfg, NodeId, OpKind, Role};
use scdp_core::Technique;

/// How the self-checking property is introduced in the specification.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SckStyle {
    /// No checking (the reference design).
    Plain,
    /// The `SCK<T>` class template: **every** checkable operator is
    /// expanded, and every result keeps its own error bit (registered,
    /// per-value). This is the paper's "FIR with SCK".
    Full,
    /// Hand-embedded checking: only data-path operators (those whose
    /// results reach data outputs or memory writes — not address/index
    /// arithmetic) are expanded, and a single sticky error flag
    /// accumulates every comparator. This is the paper's "FIR embedded
    /// SCK".
    Embedded,
}

/// Expands `dfg` according to `style`, inserting the Table 1 checking
/// operations of `technique` for every targeted operator.
///
/// Checker operations carry [`Role::Checker`] and reference the nominal
/// node they verify, so binding can keep them off the nominal unit
/// (reliability-aware allocation) and scheduling can report
/// nominal-only latency.
#[must_use]
pub fn expand_sck(dfg: &Dfg, technique: Technique, style: SckStyle) -> Dfg {
    if style == SckStyle::Plain {
        return dfg.clone();
    }
    let targets = match style {
        SckStyle::Full => dfg
            .iter()
            .filter(|(_, n)| n.kind.is_checkable() && n.role == Role::Nominal)
            .map(|(id, _)| id)
            .collect::<Vec<_>>(),
        SckStyle::Embedded => datapath_targets(dfg),
        SckStyle::Plain => unreachable!(),
    };

    let mut out = Dfg::new(format!("{}_{:?}", dfg.name(), style).to_lowercase());
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut alarms: Vec<NodeId> = Vec::new();
    let mut err_index = 0usize;

    for (id, node) in dfg.iter() {
        let args: Vec<NodeId> = node.args.iter().map(|a| map[a.index()]).collect();
        let new_id = match &node.kind {
            OpKind::Input(name) => out.input(name.clone()),
            OpKind::Const(v) => out.constant(*v),
            OpKind::Output(name) => out.output(name.clone(), args[0]),
            kind => out.op(kind.clone(), &args),
        };
        map.push(new_id);

        if targets.contains(&id) {
            let alarm = insert_checks(&mut out, new_id, &args, &dfg.node(id).kind, technique);
            match style {
                SckStyle::Full => {
                    // Per-value error bit: registered output per check.
                    out.output(format!("_err{err_index}"), alarm);
                    err_index += 1;
                }
                SckStyle::Embedded => alarms.push(alarm),
                SckStyle::Plain => unreachable!(),
            }
        }
    }

    if style == SckStyle::Embedded && !alarms.is_empty() {
        // Single sticky flag: OR-chain all comparators.
        let mut acc = alarms[0];
        for &a in &alarms[1..] {
            acc = out.checker_op(OpKind::OrBit, &[acc, a], acc);
        }
        out.output("error", acc);
    }
    out
}

/// Inserts the Table 1 checking operations for one nominal node; returns
/// the alarm (comparator or OR of comparators) node.
fn insert_checks(
    out: &mut Dfg,
    ris: NodeId,
    args: &[NodeId],
    kind: &OpKind,
    technique: Technique,
) -> NodeId {
    let (op1, op2) = (args[0], args[1]);
    let mut alarms: Vec<NodeId> = Vec::new();
    match kind {
        OpKind::Add => {
            if technique.uses_tech1() {
                // op2' = ris - op1 ; op2 == op2'
                let c = out.checker_op(OpKind::Sub, &[ris, op1], ris);
                alarms.push(out.checker_op(OpKind::CmpNe, &[c, op2], ris));
            }
            if technique.uses_tech2() {
                let c = out.checker_op(OpKind::Sub, &[ris, op2], ris);
                alarms.push(out.checker_op(OpKind::CmpNe, &[c, op1], ris));
            }
        }
        OpKind::Sub => {
            if technique.uses_tech1() {
                // op1' = ris + op2 ; op1 == op1'
                let c = out.checker_op(OpKind::Add, &[ris, op2], ris);
                alarms.push(out.checker_op(OpKind::CmpNe, &[c, op1], ris));
            }
            if technique.uses_tech2() {
                // ris' = op2 - op1 ; 0 == ris + ris'
                let d = out.checker_op(OpKind::Sub, &[op2, op1], ris);
                let z = out.checker_op(OpKind::Add, &[ris, d], ris);
                let zero = out.constant(0);
                alarms.push(out.checker_op(OpKind::CmpNe, &[z, zero], ris));
            }
        }
        OpKind::Mul => {
            if technique.uses_tech1() {
                // ris' = (-op1) x op2 ; 0 == ris + ris'
                let n = out.checker_op(OpKind::Neg, &[op1], ris);
                let m = out.checker_op(OpKind::Mul, &[n, op2], ris);
                let z = out.checker_op(OpKind::Add, &[ris, m], ris);
                let zero = out.constant(0);
                alarms.push(out.checker_op(OpKind::CmpNe, &[z, zero], ris));
            }
            if technique.uses_tech2() {
                let n = out.checker_op(OpKind::Neg, &[op2], ris);
                let m = out.checker_op(OpKind::Mul, &[op1, n], ris);
                let z = out.checker_op(OpKind::Add, &[ris, m], ris);
                let zero = out.constant(0);
                alarms.push(out.checker_op(OpKind::CmpNe, &[z, zero], ris));
            }
        }
        OpKind::Div => {
            // op1' = ris x op2 + (op1 % op2) ; op1 == op1'  (Tech1)
            // op1' = -ris x op2 - (op1 % op2) ; -op1 == op1' (Tech2)
            let rem = out.checker_op(OpKind::Rem, &[op1, op2], ris);
            if technique.uses_tech1() {
                let m = out.checker_op(OpKind::Mul, &[ris, op2], ris);
                let s = out.checker_op(OpKind::Add, &[m, rem], ris);
                alarms.push(out.checker_op(OpKind::CmpNe, &[s, op1], ris));
            }
            if technique.uses_tech2() {
                let nq = out.checker_op(OpKind::Neg, &[ris], ris);
                let m = out.checker_op(OpKind::Mul, &[nq, op2], ris);
                let s = out.checker_op(OpKind::Sub, &[m, rem], ris);
                let na = out.checker_op(OpKind::Neg, &[op1], ris);
                alarms.push(out.checker_op(OpKind::CmpNe, &[s, na], ris));
            }
        }
        other => unreachable!("not a checkable kind: {other:?}"),
    }
    if alarms.len() == 1 {
        alarms[0]
    } else {
        let mut acc = alarms[0];
        for &a in &alarms[1..] {
            acc = out.checker_op(OpKind::OrBit, &[acc, a], ris);
        }
        acc
    }
}

/// Embedded-style targets: checkable nominal nodes whose result reaches
/// a data output (name not starting with `_`) or a memory-write value
/// operand — i.e. real data-path results, not address or loop-index
/// arithmetic.
fn datapath_targets(dfg: &Dfg) -> Vec<NodeId> {
    let mut data = vec![false; dfg.len()];
    // Seed: values feeding data outputs and memory-write values.
    let mut stack: Vec<NodeId> = Vec::new();
    for (_, node) in dfg.iter() {
        match &node.kind {
            OpKind::Output(name) if !name.starts_with('_') => stack.push(node.args[0]),
            OpKind::Store { .. } => {
                if let Some(value) = node.args.get(1) {
                    stack.push(*value);
                }
            }
            _ => {}
        }
    }
    // Walk producers, stopping at memory reads (their *address* operand
    // is index arithmetic, not data).
    while let Some(id) = stack.pop() {
        if data[id.index()] {
            continue;
        }
        data[id.index()] = true;
        let node = dfg.node(id);
        match &node.kind {
            OpKind::Load { .. } => {}
            OpKind::Store { .. } => {
                if let Some(value) = node.args.get(1) {
                    stack.push(*value);
                }
            }
            _ => stack.extend(node.args.iter().copied()),
        }
    }
    dfg.iter()
        .filter(|(id, n)| n.kind.is_checkable() && n.role == Role::Nominal && data[id.index()])
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{ComponentLibrary, ResourceSet};
    use crate::sched::list_schedule;

    /// A miniature FIR-like body: address add + MAC.
    fn body() -> Dfg {
        let mut d = Dfg::new("body");
        let i = d.input("i");
        let one = d.constant(1);
        let i2 = d.op(OpKind::Add, &[i, one]); // index arithmetic
        d.output("_i", i2);
        let c = d.op(OpKind::Load { bank: 0 }, &[i2]);
        let x = d.op(OpKind::Load { bank: 1 }, &[i2]);
        let acc = d.input("acc");
        let t = d.op(OpKind::Mul, &[c, x]);
        let s = d.op(OpKind::Add, &[acc, t]);
        d.output("acc", s);
        d
    }

    #[test]
    fn plain_is_identity() {
        let d = body();
        let p = expand_sck(&d, Technique::Tech1, SckStyle::Plain);
        assert_eq!(p.len(), d.len());
    }

    #[test]
    fn full_checks_every_checkable_op() {
        let d = body();
        let f = expand_sck(&d, Technique::Tech1, SckStyle::Full);
        // 3 checkable ops (index add, mul, acc add) each gain checkers.
        let checkers = f.iter().filter(|(_, n)| n.role == Role::Checker).count();
        assert!(checkers >= 3 * 2, "checkers = {checkers}");
        // Per-value error outputs.
        let errs = f
            .iter()
            .filter(|(_, n)| matches!(&n.kind, OpKind::Output(name) if name.starts_with("_err")))
            .count();
        assert_eq!(errs, 3);
    }

    #[test]
    fn embedded_skips_index_arithmetic() {
        let d = body();
        let e = expand_sck(&d, Technique::Tech1, SckStyle::Embedded);
        // Only mul and acc add are checked (2 targets).
        let checked: Vec<_> = e
            .iter()
            .filter(|(_, n)| n.role == Role::Checker && matches!(n.kind, OpKind::CmpNe))
            .collect();
        assert_eq!(checked.len(), 2, "index add must not be checked");
        // Single sticky error flag.
        let errs = e
            .iter()
            .filter(|(_, n)| matches!(&n.kind, OpKind::Output(name) if name == "error"))
            .count();
        assert_eq!(errs, 1);
    }

    #[test]
    fn both_technique_doubles_add_checkers() {
        let d = body();
        let t1 = expand_sck(&d, Technique::Tech1, SckStyle::Full);
        let tb = expand_sck(&d, Technique::Both, SckStyle::Full);
        let count = |g: &Dfg| {
            g.iter()
                .filter(|(_, n)| n.role == Role::Checker && matches!(n.kind, OpKind::CmpNe))
                .count()
        };
        assert!(count(&tb) > count(&t1));
    }

    #[test]
    fn expanded_graph_schedules() {
        let d = body();
        let lib = ComponentLibrary::virtex16();
        let plain_len = list_schedule(&d, &lib, &ResourceSet::min_area()).length();
        let full = expand_sck(&d, Technique::Tech1, SckStyle::Full);
        let full_len = list_schedule(&full, &lib, &ResourceSet::min_area()).length();
        let emb = expand_sck(&d, Technique::Tech1, SckStyle::Embedded);
        let emb_len = list_schedule(&emb, &lib, &ResourceSet::min_area()).length();
        assert!(full_len >= emb_len, "full {full_len} vs embedded {emb_len}");
        assert!(
            emb_len > plain_len,
            "embedded {emb_len} vs plain {plain_len}"
        );
    }

    #[test]
    fn div_checks_use_divider_remainder() {
        let mut d = Dfg::new("div");
        let a = d.input("a");
        let b = d.input("b");
        let q = d.op(OpKind::Div, &[a, b]);
        d.output("q", q);
        let f = expand_sck(&d, Technique::Tech1, SckStyle::Full);
        assert!(f
            .iter()
            .any(|(_, n)| matches!(n.kind, OpKind::Rem) && n.role == Role::Checker));
        assert!(f
            .iter()
            .any(|(_, n)| matches!(n.kind, OpKind::Mul) && n.role == Role::Checker));
    }
}
