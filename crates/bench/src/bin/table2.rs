//! Regenerates **Table 2** of the paper: worst-case fault coverage of the
//! self-checking `+` operator on an n-bit ripple-carry adder, for the
//! three overloading strategies, when the same faulty unit executes the
//! nominal addition and its checking subtractions.
//!
//! Also reproduces the §4.1 in-text statistics for the 2-bit adder
//! (observable errors, detection-when-correct counts, per-fault coverage
//! range) with `--detail`, and the §2.1 dedicated-unit result (100%
//! coverage) with `--dual-unit`.
//!
//! Usage:
//!   table2 [--detail] [--dual-unit] [--model gate|cell] [--samples N] [--seed S]

use scdp_bench::{arg_value, has_flag, pct, timed};
use scdp_core::Allocation;
use scdp_coverage::{
    table2_row, AdderFaultModel, CampaignBuilder, InputSpace, OperatorKind, TechIndex,
};
use scdp_fault::SituationCount;

/// Paper values for reference printing: (bits, situations-as-printed,
/// tech1, tech2, both).
const PAPER: [(u32, &str, f64, f64, f64); 6] = [
    (1, "128", 95.31, 96.88, 97.66),
    (2, "1024", 96.88, 98.44, 98.83),
    (3, "6144", 97.40, 98.96, 99.22),
    (4, "7808*", 97.66, 99.22, 99.41),
    (8, "16x2^20", 98.05, 99.61, 99.71),
    (16, "6x2^30*", 98.18, 99.74, 99.80),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model = match arg_value(&args, "--model").as_deref() {
        Some("cell") => AdderFaultModel::Cell,
        _ => AdderFaultModel::Gate,
    };
    let samples: u64 = arg_value(&args, "--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 17);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDA7E_2005);
    let alloc = if has_flag(&args, "--dual-unit") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };

    println!("Table 2 — experimental results for operator + ({model:?} fault model, {alloc:?})");
    println!(
        "{:>4} {:>16} {:>9} {:>9} {:>9}   paper: {:>7} {:>7} {:>7}",
        "bits", "situations", "Tech1", "Tech2", "Tech 1&2", "Tech1", "Tech2", "1&2"
    );
    for (bits, paper_situations, p1, p2, pb) in PAPER {
        let exhaustive = bits <= 8;
        let space = if exhaustive {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled {
                per_fault: samples,
                seed,
            }
        };
        let result = timed(&format!("n={bits}"), || {
            CampaignBuilder::new(OperatorKind::Add, bits)
                .adder_model(model)
                .allocation(alloc)
                .input_space(space)
                .run()
        });
        let row = table2_row(&result);
        println!(
            "{:>4} {:>15}{} {:>9} {:>9} {:>9}   paper: {:>7} {:>7} {:>7}",
            row.bits,
            row.situations,
            if row.sampled { "~" } else { " " },
            pct(row.coverage[0]),
            pct(row.coverage[1]),
            pct(row.coverage[2]),
            p1,
            p2,
            pb,
        );
        // The paper's printed counts for n=4 and n=16 (marked *) violate
        // its own 32·n·2^(2n) formula; we print the formula value.
        let formula = SituationCount::rca(bits).total();
        if !row.sampled {
            assert_eq!(u128::from(row.situations), formula);
        }
        let _ = paper_situations;
    }
    println!("(* = the paper's printed count differs from its own formula; see EXPERIMENTS.md)");

    if has_flag(&args, "--detail") {
        detail(model);
    }
    if has_flag(&args, "--gate") {
        gate_section(samples, seed);
    }
}

/// Gate-level Table 2 companion on the bit-parallel engine: worst-case
/// coverage of the generated structural self-checking adder (correlated
/// shared-unit stuck-ats on every gate of one instance) versus width.
fn gate_section(samples: u64, seed: u64) {
    use scdp_core::{Operator, Technique};
    use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
    use scdp_sim::{correlated_coverage, par, InputPlan};
    let threads = par::default_threads();
    println!("\nGate-level structural adder (bit-parallel engine, correlated faults):");
    println!(
        "{:>4} {:>9} {:>9} {:>9}",
        "bits", "Tech1", "Tech2", "Tech 1&2"
    );
    for bits in [1u32, 2, 3, 4, 8, 16] {
        let plan = InputPlan::auto(2 * bits as usize, samples, seed);
        let mut cov = Vec::new();
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            let dp = self_checking(SelfCheckingSpec {
                op: Operator::Add,
                technique: tech,
                width: bits,
            });
            cov.push(correlated_coverage(&dp, plan, threads).coverage());
        }
        println!(
            "{bits:>4} {:>9} {:>9} {:>9}{}",
            pct(cov[0]),
            pct(cov[1]),
            pct(cov[2]),
            if matches!(plan, InputPlan::Sampled { .. }) {
                "  (sampled)"
            } else {
                ""
            }
        );
    }
}

/// The §4.1 in-text statistics for the 2-bit adder.
fn detail(model: AdderFaultModel) {
    let r = CampaignBuilder::new(OperatorKind::Add, 2)
        .adder_model(model)
        .run();
    let t = &r.tally;
    println!();
    println!("§4.1 statistics, 2-bit adder (paper values in parentheses):");
    println!(
        "  observable errors:        {:>5}   (216)",
        t.of(TechIndex::Tech1).observable()
    );
    println!(
        "  detected though correct:  Tech1 {:>4} (352)  Tech2 {:>4} (384)  Both {:>4} (428)",
        t.of(TechIndex::Tech1).correct_detected,
        t.of(TechIndex::Tech2).correct_detected,
        t.of(TechIndex::Both).correct_detected,
    );
    for tech in TechIndex::ALL {
        let (lo, hi) = r.per_fault_coverage_range(tech);
        println!(
            "  per-fault coverage range {tech}: [{}, {}]   (paper overall: [81.90%, 99.87%])",
            pct(lo),
            pct(hi)
        );
    }
}
