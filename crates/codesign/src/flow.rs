//! The co-design flow driver assembling Table 3.

use crate::sw::{SwCostModel, SwImplementation};
use scdp_core::Technique;
use scdp_hls::timing::{fmax_mhz, ChainPolicy};
use scdp_hls::{
    area, bind, expand_sck, sched, AreaReport, BindOptions, ComponentLibrary, Dfg, ErrorHandling,
    ResourceSet, SckStyle,
};
use std::fmt;

/// Synthesis goal, as in Table 3.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Goal {
    /// Minimise area: one unit per class, chained checker logic.
    MinArea,
    /// Minimise latency: enough units to be dependence-bound, checker
    /// logic registered (clock preserved).
    MinLatency,
}

/// A synthesized hardware implementation of one loop body.
#[derive(Clone, Debug, PartialEq)]
pub struct HwImplementation {
    /// Cycles of the steady-state loop body (the `k` of `2 + k·n`).
    pub cycles_per_iteration: u32,
    /// Pipeline fill / drain cycles (the paper's constant 2).
    pub prologue_cycles: u32,
    /// Achievable clock frequency (MHz).
    pub fmax_mhz: f64,
    /// Area breakdown.
    pub area: AreaReport,
    /// Total area in CLB slices.
    pub area_slices: f64,
}

impl HwImplementation {
    /// Latency in cycles for `n` loop iterations:
    /// `prologue + cycles_per_iteration × n`.
    #[must_use]
    pub fn latency_cycles(&self, n: u32) -> u64 {
        u64::from(self.prologue_cycles) + u64::from(self.cycles_per_iteration) * u64::from(n)
    }

    /// The latency formula as printed in Table 3, e.g. `2 + 7n`.
    #[must_use]
    pub fn latency_formula(&self) -> String {
        format!("{} + {}n", self.prologue_cycles, self.cycles_per_iteration)
    }
}

/// The reliable co-design flow with its calibrated models.
#[derive(Clone, Debug)]
pub struct CodesignFlow {
    /// Hardware component library.
    pub library: ComponentLibrary,
    /// Software cost model.
    pub sw_model: SwCostModel,
    /// Checking technique applied by the SCK expansion.
    pub technique: Technique,
}

impl Default for CodesignFlow {
    fn default() -> Self {
        Self {
            library: ComponentLibrary::virtex16(),
            sw_model: SwCostModel::default(),
            technique: Technique::Tech1,
        }
    }
}

impl CodesignFlow {
    /// Runs the hardware path: SCK expansion → scheduling → binding →
    /// area and timing models.
    #[must_use]
    pub fn hardware(&self, body: &Dfg, style: SckStyle, goal: Goal) -> HwImplementation {
        let expanded = expand_sck(body, self.technique, style);
        let resources = match (style, goal) {
            (_, Goal::MinArea) => ResourceSet::min_area(),
            (SckStyle::Plain, Goal::MinLatency) => ResourceSet::min_latency(),
            // The checked variants need the extra checker units to hide
            // the hidden operations in the nominal schedule's slack.
            (_, Goal::MinLatency) => ResourceSet {
                alus: 6,
                mults: 3,
                divs: 2,
                mem_ports: 2,
            },
        };
        let schedule = sched::list_schedule(&expanded, &self.library, &resources);
        let opts = match style {
            SckStyle::Plain => BindOptions::default(),
            // The class template blocks sharing across operator
            // instances; checker ops additionally must not share with
            // nominal ones (coverage requirement).
            SckStyle::Full => BindOptions {
                separate_checkers: true,
                no_sharing: true,
            },
            SckStyle::Embedded => BindOptions {
                separate_checkers: true,
                no_sharing: false,
            },
        };
        let binding = bind(&expanded, &schedule, &self.library, opts);
        let err = match style {
            SckStyle::Plain => ErrorHandling::None,
            SckStyle::Full => ErrorHandling::PerValue,
            SckStyle::Embedded => ErrorHandling::SingleFlag,
        };
        let area_report = area::area(&expanded, &schedule, &binding, &self.library, err);
        let chain = match goal {
            Goal::MinArea => ChainPolicy::ChainChecks,
            Goal::MinLatency => ChainPolicy::RegisterChecks,
        };
        let mut period = 1000.0 / fmax_mhz(&expanded, &schedule, &self.library, chain);
        // Under the min-area goal the checker comparator monitors the
        // functional-unit output bus combinationally (no extra state, no
        // extra register), so the slowest unit's cycle stretches by the
        // comparator — and, for the single sticky flag of the embedded
        // style, by the accumulation OR as well. The min-latency goal
        // registers unit outputs first, preserving the nominal clock
        // (Table 3: 20 MHz for every min-latency variant).
        if goal == Goal::MinArea && style != SckStyle::Plain {
            let slowest = expanded
                .iter()
                .filter(|(_, n)| !n.kind.is_virtual() && !n.kind.is_chained())
                .map(|(_, n)| self.library.timing(&n.kind).delay_ns)
                .fold(0.0f64, f64::max);
            let chain_penalty = match style {
                SckStyle::Full => self.library.cmp_delay,
                SckStyle::Embedded => self.library.cmp_delay + self.library.or_delay,
                SckStyle::Plain => 0.0,
            };
            period = period.max(slowest + chain_penalty + self.library.seq_overhead);
        }
        let fmax = 1000.0 / period;
        let cycles = match goal {
            // Shared units: the checks lengthen every iteration.
            Goal::MinArea => schedule.length(),
            // Dedicated checker units: checks overlap the next
            // iteration; the nominal critical path sets the rate.
            Goal::MinLatency => schedule.nominal_length(&expanded),
        };
        HwImplementation {
            cycles_per_iteration: cycles,
            prologue_cycles: 2,
            fmax_mhz: fmax,
            area_slices: area_report.total(),
            area: area_report,
        }
    }

    /// Runs the software path: SCK expansion → instruction cost model.
    #[must_use]
    pub fn software(&self, body: &Dfg, style: SckStyle) -> SwImplementation {
        let expanded = expand_sck(body, self.technique, style);
        self.sw_model.estimate(&expanded, style)
    }

    /// Produces the full Table 3 for a loop body (all styles × goals,
    /// plus the software estimates).
    #[must_use]
    pub fn table3(&self, body: &Dfg) -> Table3Report {
        let mut rows = Vec::new();
        for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
            for goal in [Goal::MinArea, Goal::MinLatency] {
                let hw = self.hardware(body, style, goal);
                rows.push(Table3Row {
                    style,
                    goal,
                    hw,
                    sw: self.software(body, style),
                });
            }
        }
        Table3Report { rows }
    }
}

/// One configuration row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// SCK style (plain / with SCK / embedded SCK).
    pub style: SckStyle,
    /// Synthesis goal.
    pub goal: Goal,
    /// Hardware implementation results.
    pub hw: HwImplementation,
    /// Software estimate for the same style.
    pub sw: SwImplementation,
}

/// The assembled Table 3.
#[derive(Clone, Debug)]
pub struct Table3Report {
    /// All style × goal rows.
    pub rows: Vec<Table3Row>,
}

impl Table3Report {
    /// Finds a row.
    #[must_use]
    pub fn row(&self, style: SckStyle, goal: Goal) -> Option<&Table3Row> {
        self.rows
            .iter()
            .find(|r| r.style == style && r.goal == goal)
    }
}

impl fmt::Display for Table3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:<11} {:>10} {:>9} {:>10}",
            "style", "goal", "latency", "fmax", "slices"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:<11} {:>10} {:>8.2}M {:>10.0}",
                format!("{:?}", r.style),
                format!("{:?}", r.goal),
                r.hw.latency_formula(),
                r.hw.fmax_mhz,
                r.hw.area_slices
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_fir::fir_body_dfg;
    use scdp_hls::OpKind;

    #[test]
    fn table3_shape_matches_paper() {
        let flow = CodesignFlow::default();
        let t = flow.table3(&fir_body_dfg());
        let get = |s, g| t.row(s, g).expect("row").hw.clone();
        let plain_a = get(SckStyle::Plain, Goal::MinArea);
        let plain_l = get(SckStyle::Plain, Goal::MinLatency);
        let full_a = get(SckStyle::Full, Goal::MinArea);
        let full_l = get(SckStyle::Full, Goal::MinLatency);
        let emb_a = get(SckStyle::Embedded, Goal::MinArea);
        let emb_l = get(SckStyle::Embedded, Goal::MinLatency);

        // Latency ordering (min-area): plain < embedded <= full.
        assert!(plain_a.cycles_per_iteration < emb_a.cycles_per_iteration);
        assert!(emb_a.cycles_per_iteration <= full_a.cycles_per_iteration);
        // Min-latency per-iteration cycles identical across styles (the
        // paper's 2 + 5n for all three variants).
        assert_eq!(plain_l.cycles_per_iteration, full_l.cycles_per_iteration);
        assert_eq!(plain_l.cycles_per_iteration, emb_l.cycles_per_iteration);
        // Area ordering (min-area): plain < embedded < full.
        assert!(plain_a.area_slices < emb_a.area_slices);
        assert!(emb_a.area_slices < full_a.area_slices);
        // Clock degradation from chained checkers (min-area only).
        assert!(full_a.fmax_mhz < plain_a.fmax_mhz);
        assert!(emb_a.fmax_mhz < plain_a.fmax_mhz);
        assert!((plain_l.fmax_mhz - plain_a.fmax_mhz).abs() < 1e-9);
        assert!(full_l.fmax_mhz > full_a.fmax_mhz);
    }

    #[test]
    fn latency_formula_renders() {
        let flow = CodesignFlow::default();
        let hw = flow.hardware(&fir_body_dfg(), SckStyle::Plain, Goal::MinArea);
        let s = hw.latency_formula();
        assert!(s.starts_with("2 + "), "{s}");
        assert_eq!(hw.latency_cycles(0), 2);
        assert_eq!(
            hw.latency_cycles(10),
            2 + u64::from(hw.cycles_per_iteration) * 10
        );
    }

    #[test]
    fn software_overheads_ordered() {
        let flow = CodesignFlow::default();
        let body = fir_body_dfg();
        let p = flow.software(&body, SckStyle::Plain);
        let f = flow.software(&body, SckStyle::Full);
        let e = flow.software(&body, SckStyle::Embedded);
        assert!(p.cycles_per_iteration < e.cycles_per_iteration);
        assert!(e.cycles_per_iteration < f.cycles_per_iteration);
        assert!(p.code_bytes < f.code_bytes);
    }

    #[test]
    fn division_body_synthesizes() {
        let mut d = Dfg::new("divloop");
        let a = d.input("a");
        let b = d.input("b");
        let q = d.op(OpKind::Div, &[a, b]);
        d.output("q", q);
        let flow = CodesignFlow::default();
        let hw = flow.hardware(&d, SckStyle::Full, Goal::MinArea);
        assert!(hw.cycles_per_iteration >= 8, "div + checks on shared units");
        assert!(hw.area.checker_slices > 0.0);
    }
}
