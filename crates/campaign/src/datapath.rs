//! Whole-datapath campaigns: the specification-level description of a
//! scheduled, bound dataflow graph analysed as one circuit.
//!
//! [`Scenario`](crate::Scenario) drives campaigns over a single checked
//! operator; this module scales the same machinery to the paper's
//! actual subject — a *system-level* self-checking datapath. A
//! [`DatapathScenario`] names a source DFG (the FIR loop body or one of
//! the §5 companion workloads), the SCK expansion that introduces the
//! checking operations, and the synthesis knobs (resources, checker
//! allocation). Its campaign elaborates the scheduled, bound graph to
//! one flat netlist (`scdp_netlist::gen::elaborate_datapath`), injects
//! every functional unit's structural stuck-at universe — each fault
//! correlated across all operations time-multiplexed onto the unit —
//! and reports four-way tallies both in aggregate and **per functional
//! unit** ([`DatapathDetails`](crate::DatapathDetails), serialised as
//! `scdp.campaign.report/v2`).
//!
//! # Example
//!
//! ```
//! use scdp_campaign::{DatapathScenario, DfgSource, ExecPolicy, InputSpace};
//! use scdp_core::Technique;
//!
//! let report = DatapathScenario::new(DfgSource::Fir, 3)
//!     .technique(Technique::Tech1)
//!     .campaign()
//!     .input_space(InputSpace::Sampled { per_fault: 256, seed: 7 })
//!     .exec(ExecPolicy::new().threads(2))
//!     .run()
//!     .expect("valid scenario");
//! let dp = report.datapath.as_ref().expect("datapath section");
//! assert_eq!(dp.source, "fir");
//! assert!(dp.per_fu.iter().any(|fu| fu.class == "alu"));
//! ```

use crate::error::CampaignError;
use crate::obs::RunCtx;
use crate::report::{drop_label, CampaignReport, DatapathDetails, FuTally};
use crate::scenario::{allocation_label, technique_label, Backend, FaultModel, Scenario};
use crate::shard::{self, ShardInfo, ShardPlan};
use crate::spec::{ExecPolicy, MAX_WIDTH};
use scdp_coverage::{InputSpace, Tally};
use scdp_fir::{dot_body_dfg, fir_body_dfg, iir_biquad_dfg, matvec_row_dfg};
use scdp_hls::{
    bind, expand_sck, sched, BindOptions, ComponentLibrary, Dfg, ResourceSet, Role, SckStyle,
};
use scdp_netlist::gen::{class_label, elaborate_datapath, ElaboratedDatapath};
use scdp_obs::EventSink;
use scdp_sim::{DropPolicy, Engine, InputPlan};
use std::fmt;

/// Exhaustive datapath campaigns are rejected above this many primary
/// input bits (the engine could enumerate up to 63, but the run time
/// would be astronomical — sample instead).
pub const MAX_EXHAUSTIVE_INPUT_BITS: usize = 24;

/// Validates a datapath campaign's input space against the elaborated
/// netlist's primary-input width and converts it to the gate-level
/// engine's batched plan — the one construction shared by the unrolled
/// ([`DatapathCampaignSpec`]) and sequential
/// ([`crate::SeqDatapathCampaignSpec`]) campaign paths.
///
/// # Errors
///
/// Returns [`CampaignError::ExhaustiveDatapathTooLarge`] when an
/// exhaustive space is requested over more than
/// [`MAX_EXHAUSTIVE_INPUT_BITS`] primary input bits.
pub fn datapath_input_plan(
    space: InputSpace,
    input_bits: usize,
) -> Result<InputPlan, CampaignError> {
    if space == InputSpace::Exhaustive && input_bits > MAX_EXHAUSTIVE_INPUT_BITS {
        return Err(CampaignError::ExhaustiveDatapathTooLarge { input_bits });
    }
    Ok(InputPlan::from_space(space))
}

/// Which loop-body dataflow graph a datapath campaign analyses.
#[derive(Clone, Debug)]
pub enum DfgSource {
    /// The paper's FIR tap (`scdp_fir::fir_body_dfg`).
    Fir,
    /// Direct-form-I biquad IIR section (`scdp_fir::iir_biquad_dfg`).
    Iir,
    /// Dot-product accumulation step (`scdp_fir::dot_body_dfg`).
    Dot,
    /// Matrix–vector row with running average, divider included
    /// (`scdp_fir::matvec_row_dfg`).
    Matvec,
    /// A caller-supplied loop body.
    Custom(Dfg),
}

impl DfgSource {
    /// The built-in workloads, sweep order.
    pub const BUILTIN: [DfgSource; 4] = [
        DfgSource::Fir,
        DfgSource::Iir,
        DfgSource::Dot,
        DfgSource::Matvec,
    ];

    /// Stable serialisation label (`custom:<name>` for custom graphs).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DfgSource::Fir => "fir".to_string(),
            DfgSource::Iir => "iir".to_string(),
            DfgSource::Dot => "dot".to_string(),
            DfgSource::Matvec => "matvec".to_string(),
            DfgSource::Custom(d) => format!("custom:{}", d.name()),
        }
    }

    /// Parses a built-in workload label.
    #[must_use]
    pub fn from_label(s: &str) -> Option<DfgSource> {
        match s {
            "fir" => Some(DfgSource::Fir),
            "iir" => Some(DfgSource::Iir),
            "dot" => Some(DfgSource::Dot),
            "matvec" => Some(DfgSource::Matvec),
            _ => None,
        }
    }

    /// Builds the (unexpanded) loop-body DFG.
    #[must_use]
    pub fn build(&self) -> Dfg {
        match self {
            DfgSource::Fir => fir_body_dfg(),
            DfgSource::Iir => iir_biquad_dfg(),
            DfgSource::Dot => dot_body_dfg(),
            DfgSource::Matvec => matvec_row_dfg(),
            DfgSource::Custom(d) => d.clone(),
        }
    }
}

impl fmt::Display for DfgSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Stable serialisation label of an SCK expansion style.
#[must_use]
pub fn style_label(style: SckStyle) -> &'static str {
    match style {
        SckStyle::Plain => "plain",
        SckStyle::Full => "full",
        SckStyle::Embedded => "embedded",
    }
}

/// Parses an SCK expansion-style serialisation label.
#[must_use]
pub fn style_from_label(s: &str) -> Option<SckStyle> {
    match s {
        "plain" => Some(SckStyle::Plain),
        "full" => Some(SckStyle::Full),
        "embedded" => Some(SckStyle::Embedded),
        _ => None,
    }
}

/// One whole-datapath reliability scenario: *what* is analysed — the
/// source graph, its checking expansion and the synthesis knobs —
/// independent of *how* (input space, drop policy, threads: those live
/// in [`DatapathCampaignSpec`]).
#[derive(Clone, Debug)]
pub struct DatapathScenario {
    /// The loop-body dataflow graph.
    pub source: DfgSource,
    /// Operand width in bits.
    pub width: u32,
    /// The check policy of the SCK expansion (Table 1 column).
    pub technique: scdp_core::Technique,
    /// How checking is introduced in the specification.
    pub style: SckStyle,
    /// Checker allocation: [`scdp_core::Allocation::SingleUnit`] lets
    /// binding share functional units between nominal and checking
    /// operations (the paper's worst case);
    /// [`scdp_core::Allocation::Dedicated`] keeps checker operations on
    /// their own units (§2.1's 100%-coverage allocation).
    pub allocation: scdp_core::Allocation,
    /// Resource constraints for list scheduling.
    pub resources: ResourceSet,
}

impl DatapathScenario {
    /// A scenario with the paper's defaults: the full `SCK<T>`
    /// expansion, combined techniques, shared (worst-case) allocation,
    /// minimum-area resources.
    #[must_use]
    pub fn new(source: DfgSource, width: u32) -> Self {
        Self {
            source,
            width,
            technique: scdp_core::Technique::Both,
            style: SckStyle::Full,
            allocation: scdp_core::Allocation::SingleUnit,
            resources: ResourceSet::min_area(),
        }
    }

    /// Selects the check policy.
    #[must_use]
    pub fn technique(mut self, technique: scdp_core::Technique) -> Self {
        self.technique = technique;
        self
    }

    /// Selects the SCK expansion style.
    #[must_use]
    pub fn style(mut self, style: SckStyle) -> Self {
        self.style = style;
        self
    }

    /// Selects the checker allocation.
    #[must_use]
    pub fn allocation(mut self, allocation: scdp_core::Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Selects the scheduling resource constraints.
    #[must_use]
    pub fn resources(mut self, resources: ResourceSet) -> Self {
        self.resources = resources;
        self
    }

    /// The expanded DFG (source graph after SCK expansion).
    #[must_use]
    pub fn expanded(&self) -> Dfg {
        expand_sck(&self.source.build(), self.technique, self.style)
    }

    /// Runs the synthesis front half — expansion, list scheduling,
    /// binding — and elaborates the result to one flat netlist.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32`; use
    /// [`DatapathCampaignSpec::run`] for validated, typed-error entry.
    #[must_use]
    pub fn elaborate(&self) -> ElaboratedDatapath {
        let dfg = self.expanded();
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(&dfg, &lib, &self.resources);
        let opts = BindOptions {
            separate_checkers: self.allocation == scdp_core::Allocation::Dedicated,
            no_sharing: false,
        };
        let binding = bind(&dfg, &schedule, &lib, opts);
        elaborate_datapath(&dfg, &schedule, &binding, self.width)
    }

    /// Starts a [`DatapathCampaignSpec`] for this scenario.
    #[must_use]
    pub fn campaign(self) -> DatapathCampaignSpec {
        DatapathCampaignSpec::new(self)
    }

    /// The technique column this scenario's report is canonical for.
    #[must_use]
    pub fn tech_index(&self) -> scdp_coverage::TechIndex {
        match self.technique {
            scdp_core::Technique::Tech1 => scdp_coverage::TechIndex::Tech1,
            scdp_core::Technique::Tech2 => scdp_coverage::TechIndex::Tech2,
            scdp_core::Technique::Both => scdp_coverage::TechIndex::Both,
        }
    }

    /// The operator-scenario twin recorded in the report's `scenario`
    /// field (width, technique and allocation are meaningful; the
    /// operator slot is a placeholder — whole datapaths have no single
    /// operator).
    #[must_use]
    pub(crate) fn placeholder_scenario(&self) -> Scenario {
        Scenario::new(scdp_core::Operator::Add, self.width)
            .technique(self.technique)
            .allocation(self.allocation)
    }
}

/// Configures *how* a [`DatapathScenario`] is analysed and runs it on
/// the bit-parallel gate-level engine.
#[derive(Clone)]
pub struct DatapathCampaignSpec {
    /// The scenario under analysis.
    pub scenario: DatapathScenario,
    /// The input-space strategy.
    pub space: InputSpace,
    /// How the campaign executes: threads, lanes, dropping, collapsing,
    /// telemetry.
    pub exec: ExecPolicy,
    /// Restricts the run to one shard of the fault universe:
    /// `(index, count)` of a [`ShardPlan`]. `None` runs everything.
    pub shard: Option<(u32, u32)>,
    /// Optional structured event sink ([`scdp_obs::ObsEvent`]).
    pub events: Option<EventSink>,
}

impl fmt::Debug for DatapathCampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DatapathCampaignSpec")
            .field("scenario", &self.scenario)
            .field("space", &self.space)
            .field("exec", &self.exec)
            .field("shard", &self.shard)
            .field("events", &self.events.as_ref().map(|_| ".."))
            .finish()
    }
}

impl DatapathCampaignSpec {
    /// Starts a campaign with exhaustive inputs and the default
    /// [`ExecPolicy`].
    #[must_use]
    pub fn new(scenario: DatapathScenario) -> Self {
        Self {
            scenario,
            space: InputSpace::Exhaustive,
            exec: ExecPolicy::new(),
            shard: None,
            events: None,
        }
    }

    /// Selects the input space.
    #[must_use]
    pub fn input_space(mut self, space: InputSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the execution policy wholesale: threads, lanes, drop
    /// policy, collapsing and telemetry in one value. This supersedes
    /// the per-knob setters (`threads`, `drop_policy`, `collapse`,
    /// `telemetry`), which remain as deprecated shims.
    #[must_use]
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the drop policy.
    #[deprecated(
        since = "0.1.0",
        note = "use `exec(ExecPolicy::new().drop_policy(..))`"
    )]
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.exec.drop = drop;
        self
    }

    /// Caps the worker thread count (validated by
    /// [`DatapathCampaignSpec::run`]).
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().threads(..))`")]
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec.threads = Some(threads);
        self
    }

    /// Restricts the run to shard `index` of a `count`-way
    /// [`ShardPlan`] over the fault universe (validated by
    /// [`DatapathCampaignSpec::run`]). The report then carries a
    /// `shard` section (`scdp.campaign.report/v4`); merging all
    /// `count` shards reproduces the unsharded report bit for bit.
    #[must_use]
    pub fn shard(mut self, index: u32, count: u32) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Fingerprint of this campaign's configuration — stamped into
    /// [`ShardInfo::plan_hash`] by sharded runs so checkpoints from
    /// different campaigns can never be resumed or merged together.
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        datapath_fingerprint("datapath", &self.scenario, self.space, self.exec.drop, None)
    }

    /// Installs a structured event sink, called on the driver thread.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Embeds a telemetry snapshot in the report (presence-driven
    /// `telemetry` section; off by default so reports stay
    /// byte-reproducible).
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().telemetry(..))`")]
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.exec.telemetry = enabled;
        self
    }

    /// Simulates only one representative per fault-equivalence class
    /// (static collapsing via `scdp-analyze`) and fans verdicts back
    /// out. Reports — including per-FU tallies and shard slices — stay
    /// bit-identical; excluded from the configuration fingerprint so
    /// collapsed and uncollapsed checkpoints stay interchangeable.
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().collapse(..))`")]
    #[must_use]
    pub fn collapse(mut self, enabled: bool) -> Self {
        self.exec.collapse = enabled;
        self
    }

    /// Validates the run knobs shared by [`DatapathCampaignSpec::run`]
    /// and [`DatapathCampaignSpec::run_on`].
    fn validate(&self) -> Result<(), CampaignError> {
        if self.exec.threads == Some(0) {
            return Err(CampaignError::ZeroThreads);
        }
        if let Some((index, count)) = self.shard {
            if count == 0 {
                return Err(CampaignError::ZeroShards);
            }
            if index >= count {
                return Err(CampaignError::ShardIndexOutOfRange { index, count });
            }
        }
        Ok(())
    }

    /// Opens the run's observability context (post-validation).
    fn start_ctx(&self) -> RunCtx {
        RunCtx::start(
            Backend::GateLevel,
            FaultModel::Structural,
            self.events.clone(),
            self.exec.telemetry,
        )
    }

    /// Runs the campaign: expand → schedule → bind → elaborate →
    /// bit-parallel structural stuck-at simulation, with per-FU
    /// tallies in the report's `datapath` section.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CampaignError`] for invalid configurations:
    /// width out of range, zero threads, or an exhaustive input space
    /// over more than [`MAX_EXHAUSTIVE_INPUT_BITS`] primary input bits.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        if s.width == 0 || s.width > MAX_WIDTH {
            return Err(CampaignError::WidthOutOfRange {
                width: s.width,
                max: MAX_WIDTH,
            });
        }
        self.validate()?;
        let ctx = self.start_ctx();
        let span = ctx.span("elaborate");
        let dp = s.elaborate();
        span.close();
        self.run_with(&dp, ctx)
    }

    /// Runs the campaign on a datapath elaborated earlier with
    /// [`DatapathScenario::elaborate`], skipping the synthesis front
    /// half — for sweeps or sharded runs that grade several
    /// configurations (or shards) of the same machine (the elaboration
    /// must come from this spec's scenario).
    ///
    /// # Errors
    ///
    /// As [`DatapathCampaignSpec::run`], minus the width check the
    /// elaboration already enforced.
    pub fn run_on(&self, dp: &ElaboratedDatapath) -> Result<CampaignReport, CampaignError> {
        self.validate()?;
        self.run_with(dp, self.start_ctx())
    }

    /// The shared back half of `run`/`run_on`: compile, simulate,
    /// tally, finish under `ctx`.
    fn run_with(
        &self,
        dp: &ElaboratedDatapath,
        ctx: RunCtx,
    ) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        let plan = datapath_input_plan(self.space, dp.netlist.input_bits())?;
        let compile = ctx.span("compile");
        let (groups, ranges) = dp.fault_universe();
        let engine = Engine::new(&dp.netlist);
        compile.close();
        ctx.netlist_compiled(dp.netlist.name(), dp.netlist.gate_count(), groups.len());

        let universe = groups.len() as u64;
        let shard = match self.shard {
            None => None,
            Some((index, count)) => {
                let sp = ShardPlan::new(universe, count)?;
                sp.check_index(index)?;
                let range = sp.range(index);
                Some(ShardInfo {
                    index,
                    count,
                    fault_start: range.start,
                    fault_end: range.end,
                    total_faults: sp.total_faults(),
                    plan_hash: self.config_fingerprint(),
                })
            }
        };
        let covered = shard.map_or(0..universe, |sh| sh.fault_start..sh.fault_end);
        let (per_fault, col, simulated, deduce) = crate::spec::run_gate_groups(
            &ctx,
            &dp.netlist,
            &engine,
            groups,
            covered.clone(),
            plan,
            &self.exec,
        )?;

        let tally_span = ctx.span("tally");
        let per_fu: Vec<FuTally> = ranges
            .iter()
            .map(|r| {
                let span = &dp.fus[r.fu];
                let mut tally = scdp_coverage::TechTally::default();
                let mut detected = 0u64;
                let mut escaped = 0u64;
                // Intersect the unit's universe range with the covered
                // (shard) range; `per_fault` is indexed shard-locally.
                let lo = (r.start as u64).max(covered.start);
                let hi = (r.end as u64).min(covered.end);
                for i in lo..hi {
                    let f = &per_fault[(i - covered.start) as usize];
                    tally += f.tally;
                    detected += u64::from(f.detected);
                    escaped += u64::from(f.escaped);
                }
                FuTally {
                    name: span.name.clone(),
                    class: class_label(span.class).to_string(),
                    role: role_label(span.role).to_string(),
                    ops: span.ops.len() as u64,
                    instances: span.instances.len() as u64,
                    instance_gates: span.instance_gates() as u64,
                    faults: hi.saturating_sub(lo),
                    tally,
                    detected,
                    escaped,
                }
            })
            .collect();

        let selected = s.tech_index();
        let mut tally = Tally::default();
        tally.tech[selected as usize] = col;
        let details = DatapathDetails {
            source: s.source.label(),
            style: style_label(s.style).to_string(),
            nodes: dp.nodes as u64,
            schedule_length: u64::from(dp.schedule_length),
            registers: dp.registers as u64,
            mux_legs: dp.mux_legs as u64,
            gates: dp.netlist.gate_count() as u64,
            per_fu,
        };
        tally_span.close();
        let mut report = CampaignReport {
            scenario: s.placeholder_scenario(),
            backend: Backend::GateLevel,
            fault_model: FaultModel::Structural,
            space: self.space,
            drop: self.exec.drop,
            tally,
            filled: vec![selected],
            per_fault,
            simulated,
            elapsed_ms: 0,
            datapath: Some(details),
            sequential: None,
            shard,
            deduce,
            telemetry: None,
        };
        ctx.finish(&mut report);
        Ok(report)
    }
}

/// The shared configuration-fingerprint construction of the unrolled
/// and sequential datapath campaigns (`kind` separates the two;
/// `duration` is the sequential campaigns' fault-duration label).
pub(crate) fn datapath_fingerprint(
    kind: &str,
    s: &DatapathScenario,
    space: InputSpace,
    drop: scdp_sim::DropPolicy,
    duration: Option<String>,
) -> u64 {
    let source = s.source.label();
    let width = s.width.to_string();
    let resources = format!(
        "alu{}:mult{}:div{}:mem{}",
        s.resources.alus, s.resources.mults, s.resources.divs, s.resources.mem_ports
    );
    let space = shard::space_part(space);
    let duration = duration.unwrap_or_default();
    shard::config_fingerprint([
        kind,
        &source,
        &width,
        technique_label(s.technique),
        allocation_label(s.allocation),
        style_label(s.style),
        &resources,
        &space,
        drop_label(drop),
        &duration,
    ])
}

/// Stable serialisation label of a binding role.
#[must_use]
pub fn role_label(role: Role) -> &'static str {
    match role {
        Role::Nominal => "nominal",
        Role::Checker => "checker",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::{Allocation, Technique};

    fn quick(source: DfgSource) -> CampaignReport {
        DatapathScenario::new(source, 2)
            .technique(Technique::Tech1)
            .campaign()
            .input_space(InputSpace::Sampled {
                per_fault: 128,
                seed: 0xDA7E,
            })
            .exec(ExecPolicy::new().threads(2))
            .run()
            .expect("campaign runs")
    }

    #[test]
    fn per_fu_tallies_sum_to_the_aggregate() {
        let r = quick(DfgSource::Fir);
        let dp = r.datapath.as_ref().expect("datapath section");
        let mut sum = scdp_coverage::TechTally::default();
        let mut faults = 0u64;
        for fu in &dp.per_fu {
            sum += fu.tally;
            faults += fu.faults;
        }
        assert_eq!(sum, *r.four_way());
        assert_eq!(faults, r.fault_count());
        assert!(dp.gates > 0 && dp.nodes > 0 && dp.schedule_length > 0);
    }

    #[test]
    fn all_builtin_sources_run() {
        for source in DfgSource::BUILTIN {
            let label = source.label();
            let r = quick(source);
            let dp = r.datapath.as_ref().expect("datapath section");
            assert_eq!(dp.source, label);
            assert!(r.fault_count() > 0, "{label}");
            assert!(r.detection_rate() > 0.0, "{label}");
        }
    }

    #[test]
    fn validation_is_typed() {
        let err = DatapathScenario::new(DfgSource::Fir, 0)
            .campaign()
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::WidthOutOfRange { .. }));

        let err = DatapathScenario::new(DfgSource::Fir, 4)
            .campaign()
            .exec(ExecPolicy::new().threads(0))
            .run()
            .unwrap_err();
        assert_eq!(err, CampaignError::ZeroThreads);

        // 10 input buses x 8 bits = 80 input bits: exhaustive rejected.
        let err = DatapathScenario::new(DfgSource::Iir, 8)
            .campaign()
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::ExhaustiveDatapathTooLarge { input_bits } if input_bits > 24
        ));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenario = DatapathScenario::new(DfgSource::Dot, 2).technique(Technique::Both);
        let space = InputSpace::Sampled {
            per_fault: 256,
            seed: 1,
        };
        let a = scenario
            .clone()
            .campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(1))
            .run()
            .unwrap();
        let b = scenario
            .campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(3))
            .run()
            .unwrap();
        assert!(a.same_results(&b));
    }

    #[test]
    fn dedicated_allocation_separates_checker_units() {
        let shared = DatapathScenario::new(DfgSource::Fir, 2).elaborate();
        let dedicated = DatapathScenario::new(DfgSource::Fir, 2)
            .allocation(Allocation::Dedicated)
            .elaborate();
        assert!(
            dedicated.fus.len() > shared.fus.len(),
            "dedicated checkers need extra units ({} vs {})",
            dedicated.fus.len(),
            shared.fus.len()
        );
        let checker_units = dedicated
            .fus
            .iter()
            .filter(|f| f.role == Role::Checker)
            .count();
        assert!(checker_units > 0, "checker ops must land on own units");
    }

    #[test]
    fn plain_style_has_no_alarms_and_everything_escapes_detection() {
        let r = DatapathScenario::new(DfgSource::Dot, 2)
            .style(SckStyle::Plain)
            .campaign()
            .input_space(InputSpace::Sampled {
                per_fault: 64,
                seed: 3,
            })
            .run()
            .unwrap();
        assert_eq!(
            r.four_way().correct_detected + r.four_way().error_detected,
            0,
            "no checkers, no alarms"
        );
        assert!((r.detection_rate() - 0.0).abs() < 1e-12);
        assert_eq!(r.datapath.as_ref().unwrap().style, "plain");
    }

    #[test]
    fn labels_round_trip() {
        for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
            assert_eq!(style_from_label(style_label(style)), Some(style));
        }
        assert_eq!(style_from_label("nope"), None);
        for source in DfgSource::BUILTIN {
            let parsed = DfgSource::from_label(&source.label()).expect("builtin label");
            assert_eq!(parsed.label(), source.label());
        }
        assert!(DfgSource::from_label("custom:x").is_none());
        let custom = DfgSource::Custom(Dfg::new("mine"));
        assert_eq!(custom.label(), "custom:mine");
    }
}
