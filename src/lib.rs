//! # scdp — Self-Checking Data-Paths
//!
//! A Rust reproduction of C. Bolchini, F. Salice, D. Sciuto, L. Pomante,
//! *Reliable System Specification for Self-Checking Data-Paths*
//! (DATE 2005): concurrent error detection introduced at the
//! specification level through a self-checking data type whose operators
//! transparently verify their own results with hidden inverse
//! operations.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the `Sck<T>` self-checking type, technique
//!   catalogue (Table 1), checked operators, execution contexts;
//! * [`fault`] — cell/gate fault models
//!   (`num_faults_1bit = 32`);
//! * [`arith`] — cell-accurate adder/multiplier/divider with
//!   fault injection;
//! * [`campaign`] — **the** campaign surface: one
//!   `Scenario`/`CampaignSpec`/`CampaignReport` API over the functional
//!   and gate-level engines, with typed errors and a stable JSON report
//!   schema;
//! * [`coverage`] — exhaustive & Monte-Carlo coverage
//!   campaigns (Table 2, §4.1) — the functional backend;
//! * [`netlist`] — gate-level generators, stuck-at
//!   simulation, self-checking datapath synthesis, Verilog/DOT export;
//! * [`sim`] — the bit-parallel (PPSFP) stuck-at
//!   fault-simulation engine: 64 packed vectors per word, good-machine
//!   sharing, fault dropping and a thread-parallel campaign driver —
//!   the substrate of every gate-level campaign (`gate_xval`,
//!   `table1 --gate`, `table2 --gate`, the `sim_engine` bench);
//! * [`rng`] — deterministic dependency-free PRNGs
//!   (SplitMix64, xoshiro256**) seeding every Monte-Carlo campaign;
//! * [`hls`] — scheduling/binding/area/timing models and the
//!   SCK expansion pass (Table 3 hardware);
//! * [`codesign`] — the Figure 3 co-design flow and
//!   software cost model;
//! * [`fir`] — the FIR case study and companion workloads;
//! * [`serve`] — the campaign job server behind `scdp serve`:
//!   HTTP/1.1 + JSON over `std::net` with a fingerprint-keyed result
//!   cache and checkpoint-backed resume.
//!
//! ## Quick start
//!
//! ```
//! use scdp::sck;
//!
//! let y = sck(6i32) * sck(7i32);
//! assert_eq!(y.value(), 42);
//! assert!(!y.error());
//! ```

#![warn(missing_docs)]

pub use scdp_arith as arith;
pub use scdp_campaign as campaign;
pub use scdp_codesign as codesign;
pub use scdp_core as core;
pub use scdp_coverage as coverage;
pub use scdp_fault as fault;
pub use scdp_fir as fir;
pub use scdp_hls as hls;
pub use scdp_netlist as netlist;
pub use scdp_rng as rng;
pub use scdp_serve as serve;
pub use scdp_sim as sim;

pub use scdp_core::{sck, BothPolicy, Sck, SckError, Technique};
