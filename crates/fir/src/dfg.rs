//! The FIR loop-body dataflow graph consumed by the HLS flow.

use scdp_hls::{Dfg, OpKind};

/// Builds the per-tap loop body of the FIR filter:
///
/// ```text
/// i'   = i + 1                (index arithmetic — ALU)
/// c    = coeff[i]             (memory bank 0)
/// x    = sample[i]            (memory bank 1)
/// t    = c * x                (multiplier)
/// acc' = acc + t              (ALU)
/// sample[i'] = x              (delay-line shift — memory bank 1)
/// ```
///
/// The loop executes once per tap; Table 3's latency formulas are
/// `prologue + body_cycles × n` over this body. Index arithmetic feeds
/// only addresses, which is what distinguishes the `Full` and `Embedded`
/// SCK expansion styles.
#[must_use]
pub fn fir_body_dfg() -> Dfg {
    let mut d = Dfg::new("fir_tap");
    let i = d.input("i");
    let acc = d.input("acc");
    let one = d.constant(1);
    let i_next = d.op(OpKind::Add, &[i, one]);
    d.output("_i", i_next);
    let c = d.op(OpKind::Load { bank: 0 }, &[i]);
    let x = d.op(OpKind::Load { bank: 1 }, &[i]);
    let t = d.op(OpKind::Mul, &[c, x]);
    let acc_next = d.op(OpKind::Add, &[acc, t]);
    d.output("acc", acc_next);
    let _shift = d.op(OpKind::Store { bank: 1 }, &[i_next, x]);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_hls::{sched, ComponentLibrary, ResourceSet};

    #[test]
    fn body_has_expected_shape() {
        let d = fir_body_dfg();
        let hist = d.op_histogram();
        let count = |k: &str| hist.iter().find(|(n, _)| n == k).map_or(0, |(_, c)| *c);
        assert_eq!(count("add"), 2);
        assert_eq!(count("mul"), 1);
        assert_eq!(count("load"), 2);
        assert_eq!(count("store"), 1);
    }

    #[test]
    fn min_area_schedule_is_longer_than_min_latency() {
        let d = fir_body_dfg();
        let lib = ComponentLibrary::virtex16();
        let area = sched::list_schedule(&d, &lib, &ResourceSet::min_area());
        let lat = sched::list_schedule(&d, &lib, &ResourceSet::min_latency());
        assert!(area.length() > lat.length());
    }
}
