//! Adder generators: ripple-carry, carry-lookahead, add/sub.

use crate::{NetId, Netlist, NetlistBuilder, StuckSite};
use scdp_fault::FaSite;

/// Gate offsets of one five-gate full adder within an instance.
///
/// Creation order (topological): `p = a⊕b`, `s = p⊕cin`, `g = a·b`,
/// `t = p·cin`, `cout = g+t`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaCells {
    /// Gate id of `p = a XOR b`.
    pub x1: usize,
    /// Gate id of `s = p XOR cin`.
    pub x2: usize,
    /// Gate id of `g = a AND b`.
    pub a1: usize,
    /// Gate id of `t = p AND cin`.
    pub a2: usize,
    /// Gate id of `cout = g OR t`.
    pub o1: usize,
}

impl FaCells {
    /// Rebases absolute gate ids onto instance-local offsets (subtracts
    /// the instance `start`), so the map can be replayed onto any
    /// structurally identical instance via
    /// [`UnitInstance::globalize`](super::UnitInstance::globalize).
    ///
    /// # Panics
    ///
    /// Panics if any cell gate precedes `start`.
    #[must_use]
    pub fn rebased(self, start: usize) -> FaCells {
        let local = |gate: usize| {
            assert!(gate >= start, "cell gate precedes instance start");
            gate - start
        };
        FaCells {
            x1: local(self.x1),
            x2: local(self.x2),
            a1: local(self.a1),
            a2: local(self.a2),
            o1: local(self.o1),
        }
    }

    /// Maps a functional-level [`FaSite`] onto the equivalent set of
    /// structural stuck-at sites of this full adder.
    ///
    /// Port *stems* (`a`, `b`, `cin`) become simultaneous faults on both
    /// pins that read the port; internal nets map to output stems or
    /// single pins. This is the bridge that lets gate-level campaigns
    /// reproduce the functional model of `scdp-arith` exactly.
    #[must_use]
    pub fn sites(&self, site: FaSite) -> Vec<StuckSite> {
        let pin = |gate: usize, pin: u8| StuckSite {
            gate,
            pin: Some(pin),
        };
        let stem = |gate: usize| StuckSite { gate, pin: None };
        match site {
            FaSite::AStem => vec![pin(self.x1, 0), pin(self.a1, 0)],
            FaSite::AXor => vec![pin(self.x1, 0)],
            FaSite::AAnd => vec![pin(self.a1, 0)],
            FaSite::BStem => vec![pin(self.x1, 1), pin(self.a1, 1)],
            FaSite::BXor => vec![pin(self.x1, 1)],
            FaSite::BAnd => vec![pin(self.a1, 1)],
            FaSite::CinStem => vec![pin(self.x2, 1), pin(self.a2, 1)],
            FaSite::CinXor => vec![pin(self.x2, 1)],
            FaSite::CinAnd => vec![pin(self.a2, 1)],
            FaSite::PStem => vec![stem(self.x1)],
            FaSite::PXor => vec![pin(self.x2, 0)],
            FaSite::PAnd => vec![pin(self.a2, 0)],
            FaSite::G => vec![stem(self.a1)],
            FaSite::T => vec![stem(self.a2)],
            FaSite::Sum => vec![stem(self.x2)],
            FaSite::Cout => vec![stem(self.o1)],
        }
    }
}

/// An instantiated ripple-carry adder: per-bit full-adder cell map.
#[derive(Clone, Debug)]
pub struct RcaInstance {
    /// One cell map per bit position, LSB first.
    pub fas: Vec<FaCells>,
    /// Sum output nets.
    pub sum: Vec<NetId>,
    /// Carry-out net.
    pub cout: NetId,
}

/// Appends one five-gate full adder; returns `(sum, cout, cells)`.
fn fa_into(b: &mut NetlistBuilder, a: NetId, bb: NetId, cin: NetId) -> (NetId, NetId, FaCells) {
    let x1 = b.xor(a, bb);
    let x2 = b.xor(x1, cin);
    let a1 = b.and(a, bb);
    let a2 = b.and(x1, cin);
    let o1 = b.or(a1, a2);
    (
        x2,
        o1,
        FaCells {
            x1: x1.index(),
            x2: x2.index(),
            a1: a1.index(),
            a2: a2.index(),
            o1: o1.index(),
        },
    )
}

/// Appends an n-bit ripple-carry adder computing `a + b + cin`.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn rca_into(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId], cin: NetId) -> RcaInstance {
    assert_eq!(a.len(), bb.len(), "operand width mismatch");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    let mut fas = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c, cells) = fa_into(b, a[i], bb[i], carry);
        sum.push(s);
        carry = c;
        fas.push(cells);
    }
    RcaInstance {
        fas,
        sum,
        cout: carry,
    }
}

/// Appends a subtractor `a - b` on a fresh ripple-carry adder through the
/// paper's *g*/*f* functions: `a + !b` with carry-in 1. The inverters are
/// created outside the returned instance (they are fault-free operand
/// conditioning).
pub fn subtract_into(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId]) -> RcaInstance {
    let nb: Vec<NetId> = bb.iter().map(|&n| b.not(n)).collect();
    let one = b.constant(true);
    rca_into(b, a, &nb, one)
}

/// A complete n-bit ripple-carry adder netlist: inputs `a`, `b`; outputs
/// `sum` and `cout`.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn rca(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("rca{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let zero = b.constant(false);
    let inst = rca_into(&mut b, &a, &bb, zero);
    b.output("sum", &inst.sum);
    b.output("cout", &[inst.cout]);
    b.finish()
}

/// Appends a 4-bit-group carry-lookahead adder computing `a + b + cin`.
///
/// Per bit: `p = a⊕b`, `g = a·b`; within each 4-bit group every carry is
/// produced by genuine two-level AND-OR lookahead logic
/// (`c2 = g1 + p1·g0 + p1·p0·c0`, …) rather than rippling, so the gate
/// structure — and therefore the stuck-at fault population — differs
/// substantially from the ripple-carry realisation. Groups are rippled.
/// Returns the sum nets and carry-out.
pub fn cla_into(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), bb.len(), "operand width mismatch");
    let n = a.len();
    let p: Vec<NetId> = (0..n).map(|i| b.xor(a[i], bb[i])).collect();
    let g: Vec<NetId> = (0..n).map(|i| b.and(a[i], bb[i])).collect();
    let mut carries = Vec::with_capacity(n);
    let mut carry_in = cin; // carry into the current group
    for group in (0..n).step_by(4) {
        let hi = (group + 4).min(n);
        // Lookahead within the group: carry into bit i (relative k) is
        //   c_k = g_{k-1} + p_{k-1} g_{k-2} + … + p_{k-1}…p_0 c0
        // built as a flat AND-OR network over the group's p/g signals.
        for i in group..hi {
            carries.push(carry_in_net(b, &p[group..i], &g[group..i], carry_in));
        }
        carry_in = carry_in_net(b, &p[group..hi], &g[group..hi], carry_in);
    }
    let sum: Vec<NetId> = (0..n).map(|i| b.xor(p[i], carries[i])).collect();
    (sum, carry_in)
}

/// Two-level lookahead carry out of a bit span: given the span's
/// propagate/generate nets (LSB first) and the carry into the span,
/// builds `g_last + p_last·g_prev + … + p_last·…·p_0·c_in`.
fn carry_in_net(b: &mut NetlistBuilder, p: &[NetId], g: &[NetId], cin: NetId) -> NetId {
    let k = p.len();
    if k == 0 {
        return cin;
    }
    let mut terms: Vec<NetId> = Vec::with_capacity(k + 1);
    terms.push(g[k - 1]);
    // Suffix products of p, built incrementally: p_{k-1}, p_{k-1}p_{k-2}, …
    let mut prefix = p[k - 1];
    for j in (0..k - 1).rev() {
        terms.push(b.and(prefix, g[j]));
        prefix = b.and(prefix, p[j]);
    }
    terms.push(b.and(prefix, cin));
    b.or_tree(&terms)
}

/// A complete n-bit carry-lookahead adder netlist (4-bit groups):
/// inputs `a`, `b`; outputs `sum` and `cout`.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn cla(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("cla{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let zero = b.constant(false);
    let (sum, cout) = cla_into(&mut b, &a, &bb, zero);
    b.output("sum", &sum);
    b.output("cout", &[cout]);
    b.finish()
}

/// Appends a carry-save-structured adder computing `a + b + cin`.
///
/// Stage 1 is a row of 3:2 compressors in half-adder form (`s_i =
/// a_i ⊕ b_i`, `c_i = a_i · b_i`); stage 2 merges the sum and shifted
/// carry vectors on a ripple chain whose low bit folds in `cin` via a
/// half adder. The two-stage structure (and its different stuck-at
/// population) is the third adder realisation used by the
/// implementation-independence cross-validation, next to ripple-carry
/// and carry-lookahead.
pub fn csa_into(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), bb.len(), "operand width mismatch");
    let n = a.len();
    // Stage 1: 3:2 compress (third operand is zero, so HA per bit).
    let s: Vec<NetId> = (0..n).map(|i| b.xor(a[i], bb[i])).collect();
    let c: Vec<NetId> = (0..n).map(|i| b.and(a[i], bb[i])).collect();
    // Stage 2: merge s with (c << 1), carry-in on bit 0.
    let mut sum = Vec::with_capacity(n);
    let mut carry = cin;
    for i in 0..n {
        if i == 0 {
            // s0 + cin: half adder.
            sum.push(b.xor(s[0], carry));
            carry = b.and(s[0], carry);
        } else {
            let (sm, co, _) = fa_into(b, s[i], c[i - 1], carry);
            sum.push(sm);
            carry = co;
        }
    }
    let cout = if n > 0 { b.or(carry, c[n - 1]) } else { carry };
    (sum, cout)
}

/// A complete n-bit carry-save-structured adder netlist: inputs `a`,
/// `b`; outputs `sum` and `cout`.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn csa(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("csa{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let zero = b.constant(false);
    let (sum, cout) = csa_into(&mut b, &a, &bb, zero);
    b.output("sum", &sum);
    b.output("cout", &[cout]);
    b.finish()
}

/// An add/sub unit: inputs `a`, `b`, 1-bit `sub`; output `result`
/// (`a + b` when `sub = 0`, `a - b` when `sub = 1`). The subtrahend is
/// conditioned by XOR gates (the *g*-function) and `sub` drives the
/// carry-in (the *f*-function) — the same cells serve both operations,
/// the structural root of the paper's worst-case analysis.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn addsub(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("addsub{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let sub = b.input_bus("sub", 1);
    let conditioned: Vec<NetId> = bb.iter().map(|&n| b.xor(n, sub[0])).collect();
    let inst = rca_into(&mut b, &a, &conditioned, sub[0]);
    b.output("result", &inst.sum);
    b.output("cout", &[inst.cout]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;

    #[test]
    fn rca_matches_golden_exhaustive() {
        for w in [1u32, 2, 4, 5] {
            let nl = rca(w);
            for a in Word::all(w) {
                for b in Word::all(w) {
                    let out = nl.eval_words(&[a, b], &[]);
                    assert_eq!(out[0], a.wrapping_add(b), "w={w} {a:?}+{b:?}");
                    let full = a.to_u64() + b.to_u64();
                    assert_eq!(out[1].bits() != 0, full >> w != 0, "carry w={w}");
                }
            }
        }
    }

    #[test]
    fn cla_matches_rca_exhaustive() {
        for w in [1u32, 3, 4, 6, 8] {
            let r = rca(w);
            let c = cla(w);
            for a in Word::all(w.min(6)) {
                for b in Word::all(w.min(6)) {
                    let aw = Word::new(w, a.bits());
                    let bw = Word::new(w, b.bits());
                    assert_eq!(
                        r.eval_words(&[aw, bw], &[]),
                        c.eval_words(&[aw, bw], &[]),
                        "w={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn addsub_both_modes() {
        let nl = addsub(6);
        for a in Word::all(6).step_by(5) {
            for b in Word::all(6).step_by(3) {
                let add = nl.eval_words(&[a, b, Word::new(1, 0)], &[]);
                assert_eq!(add[0], a.wrapping_add(b));
                let sub = nl.eval_words(&[a, b, Word::new(1, 1)], &[]);
                assert_eq!(sub[0], a.wrapping_sub(b));
            }
        }
    }

    #[test]
    fn fa_site_mapping_reproduces_functional_faults() {
        // A gate-level stuck-at injected through FaCells::sites must
        // change the FA outputs exactly as FaGateFault::eval does.
        use scdp_fault::FaGateFault;
        let mut b = NetlistBuilder::new("fa");
        let x = b.input_bus("x", 3);
        let (s, c, cells) = super::fa_into(&mut b, x[0], x[1], x[2]);
        b.output("o", &[s, c]);
        let nl = b.finish();
        for site in FaSite::ALL {
            for stuck in [false, true] {
                let f = FaGateFault::new(site, stuck);
                let injections: Vec<_> = cells
                    .sites(site)
                    .into_iter()
                    .map(|s| crate::StuckAtLine::new(s, stuck))
                    .collect();
                for row in 0u8..8 {
                    let bits = [row & 1 != 0, row & 2 != 0, row & 4 != 0];
                    let nets = nl.eval_nets(&bits, &injections);
                    let expect = f.eval(bits[0], bits[1], bits[2]);
                    let got = (nets[s.index()], nets[c.index()]);
                    assert_eq!(got, expect, "{site:?} sa{} row {row:03b}", u8::from(stuck));
                }
            }
        }
    }

    #[test]
    fn gate_counts_scale() {
        assert_eq!(rca(8).logic_gate_count(), 8 * 5);
        assert!(cla(8).logic_gate_count() > 8 * 3);
    }
}
