//! Hardware/software partitioning under an area budget.

/// Implementation estimates for one task, produced by the flow.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskEstimate {
    /// Task name.
    pub name: String,
    /// Latency if implemented in hardware (e.g. microseconds or cycles —
    /// any consistent unit).
    pub hw_latency: f64,
    /// Hardware area cost (CLB slices).
    pub hw_area: f64,
    /// Latency if implemented in software.
    pub sw_latency: f64,
}

/// A partitioning problem: tasks plus the available hardware area.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionProblem {
    /// The tasks to map.
    pub tasks: Vec<TaskEstimate>,
    /// Available area budget (CLB slices).
    pub area_budget: f64,
}

/// The chosen implementation per task.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mapping {
    /// Implement in hardware.
    Hardware,
    /// Implement in software.
    Software,
}

/// Exhaustively chooses the mapping minimising total latency (tasks run
/// sequentially) subject to the area budget.
///
/// Exhaustive search is exact and fine for the handful of tasks an
/// embedded specification has; it mirrors the two-level partitioning
/// role of the framework the paper builds on (Bolchini et al., JETTA
/// 2002).
///
/// Returns `(mappings, total_latency, used_area)`.
///
/// # Panics
///
/// Panics if more than 20 tasks are given (2^n search).
#[must_use]
pub fn partition(problem: &PartitionProblem) -> (Vec<Mapping>, f64, f64) {
    let n = problem.tasks.len();
    assert!(n <= 20, "exhaustive partitioner limited to 20 tasks");
    let mut best: Option<(Vec<Mapping>, f64, f64)> = None;
    for mask in 0u32..(1 << n) {
        let mut latency = 0.0;
        let mut area = 0.0;
        let mut mapping = Vec::with_capacity(n);
        for (i, t) in problem.tasks.iter().enumerate() {
            if mask & (1 << i) != 0 {
                latency += t.hw_latency;
                area += t.hw_area;
                mapping.push(Mapping::Hardware);
            } else {
                latency += t.sw_latency;
                mapping.push(Mapping::Software);
            }
        }
        if area > problem.area_budget {
            continue;
        }
        let better = match &best {
            None => true,
            Some((_, bl, ba)) => latency < *bl || (latency == *bl && area < *ba),
        };
        if better {
            best = Some((mapping, latency, area));
        }
    }
    best.expect("the all-software mapping always fits")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, hw_latency: f64, hw_area: f64, sw_latency: f64) -> TaskEstimate {
        TaskEstimate {
            name: name.into(),
            hw_latency,
            hw_area,
            sw_latency,
        }
    }

    #[test]
    fn all_software_when_no_budget() {
        let p = PartitionProblem {
            tasks: vec![task("a", 1.0, 100.0, 5.0), task("b", 2.0, 200.0, 4.0)],
            area_budget: 0.0,
        };
        let (m, lat, area) = partition(&p);
        assert_eq!(m, vec![Mapping::Software, Mapping::Software]);
        assert_eq!(lat, 9.0);
        assert_eq!(area, 0.0);
    }

    #[test]
    fn budget_spent_on_best_speedup() {
        let p = PartitionProblem {
            tasks: vec![
                task("small_gain", 4.0, 100.0, 5.0),
                task("big_gain", 1.0, 100.0, 50.0),
            ],
            area_budget: 100.0,
        };
        let (m, lat, _) = partition(&p);
        assert_eq!(m, vec![Mapping::Software, Mapping::Hardware]);
        assert_eq!(lat, 6.0);
    }

    #[test]
    fn everything_in_hardware_when_it_fits() {
        let p = PartitionProblem {
            tasks: vec![task("a", 1.0, 10.0, 5.0), task("b", 1.0, 10.0, 5.0)],
            area_budget: 100.0,
        };
        let (m, lat, area) = partition(&p);
        assert_eq!(m, vec![Mapping::Hardware, Mapping::Hardware]);
        assert_eq!(lat, 2.0);
        assert_eq!(area, 20.0);
    }
}
