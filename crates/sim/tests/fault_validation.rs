//! Typed fault-spec validation and shard-scoped iteration.
//!
//! Malformed fault specs used to `panic!` from inside the packed
//! evaluation loop, aborting whole campaigns; they are now rejected up
//! front as [`SimError`]s and the evaluation loops are total. The
//! `fault_range` knob restricts a campaign to a universe subrange and
//! must reproduce the corresponding slice of an unrestricted run bit
//! for bit — the engine-level basis of sharded campaigns.

use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
use scdp_netlist::{FaultDuration, NetlistBuilder, StuckAtLine, StuckSite};
use scdp_sim::{
    DropPolicy, Engine, EngineCampaign, InputPlan, SeqCampaign, SeqEngine, SeqFaultGroup, SimError,
};

fn add_engine() -> (Engine, Vec<Vec<StuckAtLine>>) {
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Both,
        width: 3,
    });
    let engine = Engine::new(&dp.netlist);
    let mut groups = Vec::new();
    for site in dp.local_sites() {
        for value in [false, true] {
            groups.push(dp.correlated_fault(site, value));
        }
    }
    (engine, groups)
}

#[test]
fn malformed_pin_specs_are_typed_errors_not_panics() {
    let (engine, _) = add_engine();
    let bad_pin = StuckAtLine::new(
        StuckSite {
            gate: 10,
            pin: Some(7),
        },
        true,
    );
    assert_eq!(
        engine.check_faults(&[bad_pin]),
        Err(SimError::PinOutOfRange {
            gate: 10,
            pin: 7,
            pins: 2,
        })
    );
    let bad_gate = StuckAtLine::new(
        StuckSite {
            gate: usize::MAX,
            pin: None,
        },
        false,
    );
    assert!(matches!(
        engine.check_faults(&[bad_gate]),
        Err(SimError::GateOutOfRange { .. })
    ));
    // The campaign-level check finds the bad group wherever it hides.
    let mut groups = add_engine().1;
    groups.insert(groups.len() / 2, vec![bad_pin]);
    let campaign = EngineCampaign::over(&engine, groups);
    assert!(matches!(
        campaign.check(),
        Err(SimError::PinOutOfRange { pin: 7, .. })
    ));
}

#[test]
fn pin_faults_on_one_input_gates_are_rejected() {
    let mut b = NetlistBuilder::new("inv");
    let x = b.input_bus("x", 1);
    let y = b.not(x[0]);
    b.output("y", &[y]);
    let engine = Engine::new(&b.finish());
    let bad = StuckAtLine::new(
        StuckSite {
            gate: 1,
            pin: Some(1),
        },
        true,
    );
    assert_eq!(
        engine.check_faults(&[bad]),
        Err(SimError::PinOutOfRange {
            gate: 1,
            pin: 1,
            pins: 1,
        })
    );
    // Defensive totality: even if the line bypasses validation through
    // the raw batch API, evaluation ignores it rather than aborting.
    let batch = InputPlan::Exhaustive.stream(1).next().unwrap();
    let faulty = engine.eval_batch(&batch, &[bad]);
    let clean = engine.eval_batch(&batch, &[]);
    assert_eq!(faulty, clean, "an impossible pin has no effect");
}

#[test]
fn sequential_groups_are_validated_too() {
    let mut b = NetlistBuilder::new("shift");
    let x = b.input_bus("x", 1);
    let s0 = b.dff();
    b.connect_dff(s0, x[0]);
    b.output("y", &[s0]);
    let nl = b.finish();
    let engine = SeqEngine::try_new(&nl).expect("valid netlist compiles");
    let bad = SeqFaultGroup::new(
        vec![StuckAtLine::new(
            StuckSite {
                gate: 1,
                pin: Some(3),
            },
            true,
        )],
        FaultDuration::Permanent,
    );
    assert_eq!(
        engine.check_group(&bad),
        Err(SimError::PinOutOfRange {
            gate: 1,
            pin: 3,
            pins: 1,
        })
    );
    let campaign = SeqCampaign::new(&engine, vec![bad.clone()], 3);
    assert!(campaign.check().is_err());
    // Defensive totality on the sequential path as well.
    let batch = InputPlan::Exhaustive.stream(1).next().unwrap();
    let (mut values, mut state) = (Vec::new(), Vec::new());
    let out = engine.run_batch_into(&batch, Some(&bad), 3, &mut values, &mut state);
    assert_eq!(out.alarm, 0, "impossible pin never fires an alarm");
}

#[test]
fn fault_range_matches_the_slice_of_a_full_run() {
    let (engine, groups) = add_engine();
    let n = groups.len();
    let full = EngineCampaign::over(&engine, groups.clone())
        .drop_policy(DropPolicy::OnDetect)
        .threads(2)
        .run();
    for (start, end) in [(0, n / 3), (n / 3, n - 1), (n - 1, n), (n, n)] {
        let shard = EngineCampaign::over(&engine, groups.clone())
            .drop_policy(DropPolicy::OnDetect)
            .fault_range(start..end)
            .threads(3)
            .run();
        assert_eq!(shard.per_fault.len(), end - start);
        for (s, f) in shard.per_fault.iter().zip(&full.per_fault[start..end]) {
            assert_eq!(s.tally, f.tally);
            assert_eq!(s.detected, f.detected);
            assert_eq!(s.escaped, f.escaped);
            assert_eq!(s.dropped_after, f.dropped_after);
        }
    }
}

#[test]
fn seq_fault_range_matches_the_slice_of_a_full_run() {
    let mut b = NetlistBuilder::new("quiet");
    let s0 = b.dff();
    let s1 = b.dff();
    let zero = b.constant(false);
    b.connect_dff(s0, zero);
    b.connect_dff(s1, s0);
    let x = b.input_bus("x", 2);
    let y = b.xor(x[0], x[1]);
    b.output("y", &[y]);
    b.output("error", &[s1]);
    let nl = b.finish();
    let engine = SeqEngine::new(&nl);
    let groups: Vec<SeqFaultGroup> = (0..nl.gate_count())
        .map(|gate| {
            SeqFaultGroup::new(
                vec![StuckAtLine::new(StuckSite { gate, pin: None }, true)],
                FaultDuration::Permanent,
            )
        })
        .collect();
    let full = SeqCampaign::new(&engine, groups.clone(), 4)
        .threads(2)
        .run();
    let (start, end) = (2, groups.len() - 1);
    let shard = SeqCampaign::new(&engine, groups, 4)
        .fault_range(start..end)
        .threads(3)
        .run();
    assert_eq!(shard.per_fault.len(), end - start);
    for (s, f) in shard.per_fault.iter().zip(&full.per_fault[start..end]) {
        assert_eq!(s.outcome.tally, f.outcome.tally);
        assert_eq!(s.first_detect, f.first_detect);
    }
}
