//! "Other circuits are now taken into consideration" (§5): the Table 3
//! analysis applied to the companion workloads — an IIR biquad (denser
//! multiplier traffic), a streaming dot product, and a matrix–vector row
//! with a running average (exercising the divider).
//!
//! Usage:
//!   other_circuits

use scdp_bench::timed;
use scdp_codesign::CodesignFlow;
use scdp_fir::{dot_body_dfg, iir_biquad_dfg, matvec_row_dfg};

fn main() {
    let flow = CodesignFlow::default();
    for body in [iir_biquad_dfg(), dot_body_dfg(), matvec_row_dfg()] {
        let name = body.name().to_string();
        let report = timed(&name, || flow.table3(&body));
        println!("=== {name} ===");
        print!("{report}");
        println!();
    }
    println!("The FIR conclusions generalise: min-area checking costs cycles and");
    println!("clock; min-latency hides the checks on dedicated units; area orders");
    println!("plain < embedded < full for every workload.");
}
