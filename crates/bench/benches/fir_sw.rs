//! Criterion bench for Table 3's software rows: wall-clock cost of the
//! plain, SCK-typed and embedded-check FIR implementations (the measured
//! counterpart of the paper's 6.83 / 10.02 / 7.90 seconds).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scdp_fir::{EmbeddedFir, PlainFir, SckFir};
use std::hint::black_box;

fn coeffs(taps: usize) -> Vec<i32> {
    (0..taps as i32).map(|i| (i * 7 % 23) - 11).collect()
}

fn samples(n: usize) -> Vec<i32> {
    (0..n as i64).map(|i| ((i * 31) % 201 - 100) as i32).collect()
}

fn bench_fir(c: &mut Criterion) {
    let taps = 64;
    let xs = samples(4096);
    let mut group = c.benchmark_group("fir_sw");
    group.bench_function("plain", |b| {
        b.iter_batched(
            || PlainFir::new(coeffs(taps)),
            |mut f| black_box(f.process_block(&xs)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("sck", |b| {
        b.iter_batched(
            || SckFir::new(coeffs(taps)) as SckFir,
            |mut f| black_box(f.process_block(&xs)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("embedded", |b| {
        b.iter_batched(
            || EmbeddedFir::new(coeffs(taps)),
            |mut f| black_box(f.process_block(&xs)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fir
}
criterion_main!(benches);
