//! Companion workloads exercising the self-checking data type.
//!
//! The paper closes §5 with "other circuits are now taken into
//! consideration"; these generic kernels serve as those follow-on
//! workloads in examples and benchmarks. Each is generic over the value
//! type so the *same source* runs plain (`i32`) or self-checking
//! (`Sck<i32>`) — the transparency property.

use std::ops::{Add, Mul, Sub};

/// Dot product `Σ a[k]·b[k]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use scdp_core::sck;
/// use scdp_fir::dot;
///
/// let a = [1i32, 2, 3].map(sck);
/// let b = [4i32, 5, 6].map(sck);
/// let d = dot(&a, &b, sck(0));
/// assert_eq!(d.value(), 32);
/// assert!(!d.error());
/// ```
pub fn dot<T>(a: &[T], b: &[T], zero: T) -> T
where
    T: Copy + Add<Output = T> + Mul<Output = T>,
{
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).fold(zero, |acc, (&x, &y)| acc + x * y)
}

/// One direct-form-I biquad IIR step:
/// `y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2`.
///
/// Returns the output sample; the caller shifts its own state.
#[allow(clippy::too_many_arguments)]
pub fn iir<T>(b: [T; 3], a: [T; 2], x: T, x1: T, x2: T, y1: T, y2: T) -> T
where
    T: Copy + Add<Output = T> + Sub<Output = T> + Mul<Output = T>,
{
    b[0] * x + b[1] * x1 + b[2] * x2 - a[0] * y1 - a[1] * y2
}

/// Matrix–vector product `y = M·x` for a row-major square matrix.
///
/// # Panics
///
/// Panics if `m.len() != x.len() * x.len()`.
pub fn matvec<T>(m: &[T], x: &[T], zero: T) -> Vec<T>
where
    T: Copy + Add<Output = T> + Mul<Output = T>,
{
    let n = x.len();
    assert_eq!(m.len(), n * n, "matrix must be n x n");
    (0..n)
        .map(|r| dot(&m[r * n..(r + 1) * n], x, zero))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::{sck, Sck};

    #[test]
    fn dot_plain_and_sck_agree() {
        let a = [3i32, -4, 5, 7];
        let b = [2i32, 8, -1, 0];
        let plain = dot(&a, &b, 0);
        let checked = dot(&a.map(sck), &b.map(sck), sck(0));
        assert_eq!(plain, checked.value());
        assert!(!checked.error());
    }

    #[test]
    fn iir_plain_and_sck_agree() {
        let plain = iir([1, 2, 3], [4, 5], 10, 9, 8, 7, 6);
        let checked = iir(
            [sck(1), sck(2), sck(3)],
            [sck(4), sck(5)],
            sck(10),
            sck(9),
            sck(8),
            sck(7),
            sck(6),
        );
        assert_eq!(plain, checked.value());
        assert!(!checked.error());
    }

    #[test]
    fn matvec_identity() {
        let m = [1, 0, 0, 0, 1, 0, 0, 0, 1];
        let x = [7, -3, 2];
        assert_eq!(matvec(&m, &x, 0), x.to_vec());
        let ms: Vec<Sck<i32>> = m.iter().copied().map(sck).collect();
        let xs: Vec<Sck<i32>> = x.iter().copied().map(sck).collect();
        let y = matvec(&ms, &xs, sck(0));
        assert_eq!(y.iter().map(|v| v.value()).collect::<Vec<_>>(), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1i32], &[1i32, 2], 0);
    }
}
