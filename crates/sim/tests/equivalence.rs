//! The engine's ground-truth contract: bit-parallel batched evaluation
//! is bit-for-bit equivalent to the scalar oracle
//! `Netlist::eval_nets` — across random netlists, random stuck-at
//! faults (stems and pins, single and correlated-multiple) and random
//! input batches.

use scdp_netlist::{GateKind, Netlist, NetlistBuilder, StuckAtLine, StuckSite};
use scdp_rng::{Rng, Xoshiro256StarStar};
use scdp_sim::{Engine, InputPlan};

/// Builds a random combinational netlist: `inputs` primary bits, then
/// `gates` random gates wired to arbitrary existing nets (the builder
/// enforces topological order by construction), with a random slice of
/// nets exposed as the `ris` output bus and a random net as `error`.
fn random_netlist(rng: &mut impl Rng, inputs: u32, gates: usize) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let x = b.input_bus("x", inputs);
    let mut nets: Vec<_> = x;
    for _ in 0..gates {
        let kind = rng.gen_range(9);
        let a = nets[rng.gen_range(nets.len() as u64) as usize];
        let c = nets[rng.gen_range(nets.len() as u64) as usize];
        let n = match kind {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            7 => b.buf(a),
            _ => b.constant(rng.gen_bool()),
        };
        nets.push(n);
    }
    let out: Vec<_> = (0..4)
        .map(|_| nets[rng.gen_range(nets.len() as u64) as usize])
        .collect();
    b.output("ris", &out);
    let err = nets[rng.gen_range(nets.len() as u64) as usize];
    b.output("error", &[err]);
    b.finish()
}

/// Draws a random set of stuck-at faults valid for `nl`, sorted by
/// gate as the engine requires.
fn random_faults(rng: &mut impl Rng, nl: &Netlist, count: usize) -> Vec<StuckAtLine> {
    let gates = nl.gates();
    let mut faults: Vec<StuckAtLine> = (0..count)
        .map(|_| {
            let gate = rng.gen_range(gates.len() as u64) as usize;
            let pins = gates[gate].kind.pins();
            let pin = if pins > 0 && rng.gen_bool() {
                Some(rng.gen_range(u64::from(pins)) as u8)
            } else {
                None
            };
            StuckAtLine::new(StuckSite { gate, pin }, rng.gen_bool())
        })
        .collect();
    faults.sort_by_key(|f| (f.site.gate, f.site.pin));
    faults.dedup_by_key(|f| f.site);
    faults
}

#[test]
fn bit_parallel_equals_scalar_on_random_netlists() {
    let mut rng = Xoshiro256StarStar::from_seed(0xE9_0137);
    for case in 0..60 {
        let inputs = 1 + rng.gen_range(8) as u32;
        let gates = 20 + rng.gen_range(60) as usize;
        let nl = random_netlist(&mut rng, inputs, gates);
        let engine = Engine::new(&nl);
        let n_faults = rng.gen_range(4) as usize;
        let faults = random_faults(&mut rng, &nl, n_faults);
        let plan = if inputs <= 6 {
            InputPlan::Exhaustive
        } else {
            InputPlan::Sampled {
                vectors: 128,
                seed: 0xBA7C4 ^ case,
            }
        };
        for batch in plan.stream(engine.input_bits()) {
            let packed = engine.eval_batch(&batch, &faults);
            for lane in 0..batch.len {
                let scalar = nl.eval_nets(&batch.lane_bits(lane), &faults);
                for (net, word) in packed.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 != 0,
                        scalar[net],
                        "case {case}: net {net}, lane {lane}, faults {faults:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn correlated_multi_fault_groups_match_scalar() {
    use scdp_core::{Operator, Technique};
    use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
    let mut rng = Xoshiro256StarStar::from_seed(0xC0_44E1);
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Both,
        width: 4,
    });
    let engine = Engine::new(&dp.netlist);
    let sites = dp.local_sites();
    for _ in 0..24 {
        let site = sites[rng.gen_range(sites.len() as u64) as usize];
        let mut faults = dp.correlated_fault(site, rng.gen_bool());
        faults.sort_by_key(|f| (f.site.gate, f.site.pin));
        let plan = InputPlan::Sampled {
            vectors: 96,
            seed: rng.next_u64(),
        };
        for batch in plan.stream(engine.input_bits()) {
            let packed = engine.eval_batch(&batch, &faults);
            for lane in 0..batch.len {
                let scalar = dp.netlist.eval_nets(&batch.lane_bits(lane), &faults);
                for (net, word) in packed.iter().enumerate() {
                    assert_eq!((word >> lane) & 1 != 0, scalar[net], "{site:?}");
                }
            }
        }
    }
}

#[test]
fn inputs_and_constants_round_trip() {
    // Degenerate netlists: only inputs/constants, output straight out.
    let mut b = NetlistBuilder::new("thin");
    let x = b.input_bus("x", 3);
    let c = b.constant(true);
    b.output("ris", &[x[0], c, x[2]]);
    let nl = b.finish();
    let engine = Engine::new(&nl);
    assert_eq!(engine.net_count(), nl.gates().len());
    for batch in InputPlan::Exhaustive.stream(3) {
        let packed = engine.eval_batch(&batch, &[]);
        for lane in 0..batch.len {
            let scalar = nl.eval_nets(&batch.lane_bits(lane), &[]);
            for (net, word) in packed.iter().enumerate() {
                assert_eq!((word >> lane) & 1 != 0, scalar[net]);
            }
        }
    }
    // GateKind is re-exported for consumers building engines generically.
    assert_eq!(GateKind::Const(true).pins(), 0);
}
