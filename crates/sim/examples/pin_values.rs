//! Prints the exact width-4 campaign tallies used by the
//! `xval_regression` test pins. Re-run after an intentional generator
//! change to refresh the expected values:
//!
//! ```text
//! cargo run --release -p scdp-sim --example pin_values
//! ```

use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{
    self_checking, self_checking_add_with, AdderRealisation, SelfCheckingSpec,
};
use scdp_sim::{correlated_coverage, InputPlan};

fn main() {
    for real in AdderRealisation::ALL {
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            let dp = self_checking_add_with(4, tech, real);
            let r = correlated_coverage(&dp, InputPlan::Exhaustive, 1);
            let t = r.tally;
            println!(
                "{} {:?}: sites={} cs={} cd={} ed={} eu={} total={}",
                real.label(),
                tech,
                r.sites,
                t.correct_silent,
                t.correct_detected,
                t.error_detected,
                t.error_undetected,
                t.total()
            );
        }
    }
    for tech in [Technique::Tech1, Technique::Both] {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Mul,
            technique: tech,
            width: 4,
        });
        let r = correlated_coverage(&dp, InputPlan::Exhaustive, 1);
        let t = r.tally;
        println!(
            "MUL {:?}: sites={} cs={} cd={} ed={} eu={} total={}",
            tech,
            r.sites,
            t.correct_silent,
            t.correct_detected,
            t.error_detected,
            t.error_undetected,
            t.total()
        );
    }
}
