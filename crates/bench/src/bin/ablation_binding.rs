//! Ablation (E8): the reliability/area trade-off of binding the checker
//! operations onto the *same* functional units as the nominal ones
//! versus dedicated checker units — the design choice behind the paper's
//! §2.1 dichotomy and its stated future work ("allow the designer to
//! select the desired level of reliability while keeping area overhead …
//! within an acceptable limit").
//!
//! For each technique it reports:
//!  * worst-case coverage with a shared unit (from the exhaustive
//!    functional campaign, 8-bit adder);
//!  * coverage with a dedicated checker unit (always 100%);
//!  * the FIR datapath area with shared-allowed vs reliability-aware
//!    binding.

use scdp_bench::pct;
use scdp_codesign::CodesignFlow;
use scdp_core::{Allocation, Operator, Technique};
use scdp_coverage::{CampaignBuilder, OperatorKind, TechIndex};
use scdp_fir::fir_body_dfg;
use scdp_hls::{area, bind, expand_sck, sched, BindOptions, ErrorHandling, ResourceSet, SckStyle};
use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
use scdp_sim::{correlated_coverage, dedicated_coverage, par, InputPlan};

fn main() {
    println!("Reliability-aware binding ablation (8-bit adder campaigns, FIR datapath)\n");
    println!(
        "{:<10} {:>16} {:>16}",
        "technique", "shared-unit cov", "dedicated cov"
    );
    for (tech, idx) in [
        (Technique::Tech1, TechIndex::Tech1),
        (Technique::Tech2, TechIndex::Tech2),
        (Technique::Both, TechIndex::Both),
    ] {
        let shared = CampaignBuilder::new(OperatorKind::Add, 8)
            .allocation(Allocation::SingleUnit)
            .run();
        let dedicated = CampaignBuilder::new(OperatorKind::Add, 8)
            .allocation(Allocation::Dedicated)
            .run();
        println!(
            "{:<10} {:>16} {:>16}",
            tech.to_string(),
            pct(shared.coverage(idx)),
            pct(dedicated.coverage(idx))
        );
    }

    // Gate-level cross-check on the bit-parallel engine: the same
    // shared-vs-dedicated dichotomy measured on the generated
    // structural datapath (correlated faults = shared binding, nominal
    // only = dedicated checker units).
    println!("\nGate-level cross-check (4-bit structural adder, bit-parallel engine):");
    println!(
        "{:<10} {:>16} {:>16}",
        "technique", "correlated cov", "dedicated cov"
    );
    for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: tech,
            width: 4,
        });
        let threads = par::default_threads();
        let shared = correlated_coverage(&dp, InputPlan::Exhaustive, threads);
        let dedicated = dedicated_coverage(&dp, InputPlan::Exhaustive, threads);
        assert_eq!(
            dedicated.tally.error_undetected, 0,
            "dedicated checkers must catch every observable error"
        );
        println!(
            "{:<10} {:>16} {:>16}",
            tech.to_string(),
            pct(shared.coverage()),
            pct(dedicated.coverage())
        );
    }

    println!("\nFIR embedded-SCK datapath, min-area resources:");
    let flow = CodesignFlow::default();
    let expanded = expand_sck(&fir_body_dfg(), Technique::Tech1, SckStyle::Embedded);
    let schedule = sched::list_schedule(&expanded, &flow.library, &ResourceSet::min_area());
    for (label, opts) in [
        (
            "share checker with nominal (cheap, lossy)",
            BindOptions {
                separate_checkers: false,
                no_sharing: false,
            },
        ),
        (
            "reliability-aware (dedicated checker units)",
            BindOptions {
                separate_checkers: true,
                no_sharing: false,
            },
        ),
    ] {
        let binding = bind(&expanded, &schedule, &flow.library, opts);
        let report = area::area(
            &expanded,
            &schedule,
            &binding,
            &flow.library,
            ErrorHandling::SingleFlag,
        );
        println!("  {label:<45} {report}");
    }
    println!("\nShared binding reuses the nominal units (smaller) but exposes the");
    println!("worst-case masking above; reliability-aware binding buys back 100%");
    println!("coverage with the extra checker units.");
}
