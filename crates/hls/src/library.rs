//! Component library: per-operation timing and area characterisation.

use crate::dfg::OpKind;

/// Timing of one operation class.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OpTiming {
    /// Latency in clock cycles (0 for chained checker logic).
    pub latency: u32,
    /// Combinational delay contribution in nanoseconds.
    pub delay_ns: f64,
}

/// Resource classes a scheduled operation can occupy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Adder/subtractor (ALU).
    Alu,
    /// Multiplier.
    Mult,
    /// Divider.
    Div,
    /// Memory port.
    Mem,
}

/// Resource constraints for list scheduling.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResourceSet {
    /// Number of ALUs.
    pub alus: usize,
    /// Number of multipliers.
    pub mults: usize,
    /// Number of dividers.
    pub divs: usize,
    /// Number of memory ports.
    pub mem_ports: usize,
}

impl ResourceSet {
    /// The paper's minimum-area resource set: one unit of each class.
    #[must_use]
    pub fn min_area() -> Self {
        Self {
            alus: 1,
            mults: 1,
            divs: 1,
            mem_ports: 1,
        }
    }

    /// A latency-oriented resource set: enough units that the schedule is
    /// dependence-bound rather than resource-bound.
    #[must_use]
    pub fn min_latency() -> Self {
        Self {
            alus: 4,
            mults: 2,
            divs: 1,
            mem_ports: 2,
        }
    }

    /// Capacity of one class.
    #[must_use]
    pub fn of(&self, class: FuClass) -> usize {
        match class {
            FuClass::Alu => self.alus,
            FuClass::Mult => self.mults,
            FuClass::Div => self.divs,
            FuClass::Mem => self.mem_ports,
        }
    }
}

/// Area/timing characterisation of datapath components, in CLB slices
/// and nanoseconds.
///
/// The default [`ComponentLibrary::virtex16`] is calibrated so that the
/// paper's plain FIR (min-area goal) lands near its reported 412 CLB
/// slices at 20 MHz; all *relative* results (extra units, registers,
/// multiplexer and controller growth, clock degradation from chained
/// checkers) follow structurally from scheduling and binding. See
/// EXPERIMENTS.md for the calibration narrative.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentLibrary {
    /// Data width in bits.
    pub width: u32,
    /// ALU slices.
    pub alu_slices: f64,
    /// Multiplier slices.
    pub mult_slices: f64,
    /// Divider slices.
    pub div_slices: f64,
    /// Memory-port interface slices.
    pub mem_slices: f64,
    /// Comparator slices (checker).
    pub cmp_slices: f64,
    /// Register slices per stored word.
    pub reg_slices: f64,
    /// Multiplexer slices per (word-wide) input leg.
    pub mux_slices_per_input: f64,
    /// Controller slices per FSM state.
    pub ctrl_slices_per_state: f64,
    /// Fixed infrastructure (I/O, status) slices.
    pub base_slices: f64,
    /// ALU combinational delay (ns).
    pub alu_delay: f64,
    /// Multiplier per-cycle delay (ns).
    pub mult_delay: f64,
    /// Divider per-cycle delay (ns).
    pub div_delay: f64,
    /// Memory access delay (ns).
    pub mem_delay: f64,
    /// Comparator (chained) delay (ns).
    pub cmp_delay: f64,
    /// Error-accumulation OR (chained) delay (ns).
    pub or_delay: f64,
    /// Register/control overhead per cycle (ns).
    pub seq_overhead: f64,
}

impl ComponentLibrary {
    /// A 16-bit library calibrated against the paper's FIR case study
    /// (Xilinx Virtex-class CLB slices).
    #[must_use]
    pub fn virtex16() -> Self {
        Self {
            width: 16,
            alu_slices: 18.0,
            mult_slices: 145.0,
            div_slices: 230.0,
            mem_slices: 40.0,
            cmp_slices: 10.0,
            reg_slices: 9.0,
            mux_slices_per_input: 8.0,
            ctrl_slices_per_state: 6.0,
            base_slices: 30.0,
            alu_delay: 18.0,
            mult_delay: 42.0,
            div_delay: 46.0,
            mem_delay: 25.0,
            cmp_delay: 10.0,
            or_delay: 5.0,
            seq_overhead: 8.0,
        }
    }

    /// The resource class an operation occupies, `None` for virtual or
    /// chained nodes.
    #[must_use]
    pub fn fu_class(kind: &OpKind) -> Option<FuClass> {
        match kind {
            OpKind::Add | OpKind::Sub | OpKind::Neg => Some(FuClass::Alu),
            OpKind::Mul => Some(FuClass::Mult),
            OpKind::Div | OpKind::Rem => Some(FuClass::Div),
            OpKind::Load { .. } | OpKind::Store { .. } => Some(FuClass::Mem),
            _ => None,
        }
    }

    /// Timing of one operation.
    #[must_use]
    pub fn timing(&self, kind: &OpKind) -> OpTiming {
        match kind {
            OpKind::Add | OpKind::Sub | OpKind::Neg => OpTiming {
                latency: 1,
                delay_ns: self.alu_delay,
            },
            OpKind::Mul => OpTiming {
                latency: 2,
                delay_ns: self.mult_delay,
            },
            OpKind::Div | OpKind::Rem => OpTiming {
                latency: 4,
                delay_ns: self.div_delay,
            },
            OpKind::Load { .. } | OpKind::Store { .. } => OpTiming {
                latency: 1,
                delay_ns: self.mem_delay,
            },
            OpKind::CmpNe => OpTiming {
                latency: 0,
                delay_ns: self.cmp_delay,
            },
            OpKind::OrBit => OpTiming {
                latency: 0,
                delay_ns: self.or_delay,
            },
            OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_) => OpTiming {
                latency: 0,
                delay_ns: 0.0,
            },
        }
    }

    /// Slices of one functional-unit class.
    #[must_use]
    pub fn fu_slices(&self, class: FuClass) -> f64 {
        match class {
            FuClass::Alu => self.alu_slices,
            FuClass::Mult => self.mult_slices,
            FuClass::Div => self.div_slices,
            FuClass::Mem => self.mem_slices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_timing() {
        let lib = ComponentLibrary::virtex16();
        assert_eq!(ComponentLibrary::fu_class(&OpKind::Add), Some(FuClass::Alu));
        assert_eq!(
            ComponentLibrary::fu_class(&OpKind::Mul),
            Some(FuClass::Mult)
        );
        assert_eq!(ComponentLibrary::fu_class(&OpKind::CmpNe), None);
        assert_eq!(lib.timing(&OpKind::Mul).latency, 2);
        assert_eq!(lib.timing(&OpKind::CmpNe).latency, 0);
        assert!(lib.timing(&OpKind::Div).delay_ns > lib.timing(&OpKind::Add).delay_ns);
    }

    #[test]
    fn resource_sets() {
        assert_eq!(ResourceSet::min_area().of(FuClass::Mult), 1);
        assert!(ResourceSet::min_latency().of(FuClass::Alu) > 1);
    }
}
