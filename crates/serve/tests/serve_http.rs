//! End-to-end exercise of the job server over real sockets: submit →
//! poll → fetch, the fingerprint-keyed cache, the resume-on-restart
//! path and the typed 4xx surface.

use scdp_campaign::{CampaignReport, CampaignRunner};
use scdp_serve::{client, job_id, jobspec, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

const POLL: Duration = Duration::from_millis(50);

/// A small, fast spec: gate-level add so the fault universe is real
/// but tiny, sharded 3 ways.
const SPEC: &str = r#"{"kind":"operator","op":"add","backend":"gate-level",
    "width":3,"samples":64,"threads":2,"shards":3}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scdp_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &Path) -> (scdp_serve::ServerHandle, String) {
    let handle = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        dir: dir.to_path_buf(),
        workers: 2,
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn submit_poll_fetch_and_cache_hit_round_trip() {
    let dir = temp_dir("cache");
    let (handle, addr) = start(&dir);

    // Liveness first: the CI smoke's first probe.
    let health = client::request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(
        (health.status, health.body.as_str()),
        (200, r#"{"status":"ok"}"#)
    );

    // First submission is a miss and runs for real.
    let first = client::submit(&addr, SPEC).expect("submit");
    assert_eq!(first.cache, "miss");
    let done = client::wait(&addr, &first.id, POLL).expect("job completes");
    assert_eq!((done.done, done.total), (3, 3), "all shards reported");

    // The served report is a real merged report, bit-identical to a
    // direct unsharded run of the same spec.
    let body = client::fetch_report(&addr, &first.id).expect("report");
    let report = CampaignReport::from_json(&body).expect("report parses");
    assert!(
        report.shard.is_none(),
        "served reports are merged, not partial"
    );
    let direct = jobspec::parse(SPEC)
        .expect("spec")
        .job
        .run()
        .expect("direct run");
    assert!(
        report.same_results(&direct),
        "server run matches a local run"
    );

    // Second submission of the same spec: cache hit, no re-run, and a
    // byte-identical report.
    let second = client::submit(&addr, SPEC).expect("resubmit");
    assert_eq!(
        (second.id.as_str(), second.cache.as_str()),
        (first.id.as_str(), "hit")
    );
    assert_eq!(second.status, "done");
    let cached = client::fetch_report(&addr, &first.id).expect("cached report");
    assert_eq!(cached, body, "cache hits serve byte-identical reports");

    // Semantically equal but textually different spec documents land
    // on the same content address.
    let respaced = SPEC.replace("\n    ", " ");
    assert_ne!(respaced, SPEC);
    let third = client::submit(&addr, &respaced).expect("respaced submit");
    assert_eq!((third.id, third.cache.as_str()), (first.id.clone(), "hit"));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_input_and_bad_routes_get_typed_errors() {
    let dir = temp_dir("errors");
    let (handle, addr) = start(&dir);

    // Broken JSON: a 400 carrying the parser's byte-offset message.
    let bad = client::request(&addr, "POST", "/jobs", Some(r#"{"kind":"#)).expect("response");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("parse error at byte"), "{}", bad.body);

    // Valid JSON, invalid spec: a 400 naming the offending field.
    let schema = client::request(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"kind":"operator","widht":3}"#),
    )
    .expect("response");
    assert_eq!(schema.status, 400);
    assert!(schema.body.contains("widht"), "{}", schema.body);

    // Unknown routes and ids are 404; wrong methods are 405.
    let missing = client::request(&addr, "GET", "/jobs/ffffffffffffffff", None).expect("resp");
    assert_eq!(missing.status, 404);
    assert_eq!(
        client::request(&addr, "GET", "/nope", None)
            .expect("resp")
            .status,
        404
    );
    assert_eq!(
        client::request(&addr, "DELETE", "/jobs", None)
            .expect("resp")
            .status,
        405
    );
    assert_eq!(
        client::request(&addr, "POST", "/jobs/abc", Some("{}"))
            .expect("resp")
            .status,
        405
    );

    // A body over the limit is refused before it is read.
    let huge = "x".repeat(scdp_serve::http::MAX_BODY + 1);
    let too_large = client::request(&addr, "POST", "/jobs", Some(&huge)).expect("response");
    assert_eq!(too_large.status, 413);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_restarted_server_resumes_interrupted_jobs_from_checkpoints() {
    let dir = temp_dir("resume");

    // Simulate a server killed mid-job: the job directory holds the
    // submitted spec and the checkpoints of one finished shard, but no
    // report.json.
    let spec = jobspec::parse(SPEC).expect("spec");
    let id = job_id(&spec.job);
    let job_dir = dir.join(&id);
    std::fs::create_dir_all(&job_dir).expect("job dir");
    std::fs::write(job_dir.join("spec.json"), SPEC).expect("persist spec");
    let partial = CampaignRunner::new(spec.job.clone(), spec.shards)
        .checkpoint_dir(&job_dir)
        .max_shards(1)
        .run()
        .expect("interrupted run");
    assert!(
        !partial.completed(),
        "the seeded run really was interrupted"
    );
    assert!(job_dir.join("shard-000.json").is_file());
    assert!(!job_dir.join("report.json").exists());

    // A fresh server scans the directory, re-enqueues the job and
    // finishes it without being asked.
    let (handle, addr) = start(&dir);
    let done = client::wait(&addr, &id, POLL).expect("resumed job completes");
    assert_eq!(done.status, "done");
    let body = client::fetch_report(&addr, &id).expect("report");
    let report = CampaignReport::from_json(&body).expect("parses");
    let direct = spec.job.run().expect("unsharded run");
    assert!(
        report.same_results(&direct),
        "a resumed sharded run merges bit-identical to an unsharded one"
    );

    // And the finished job now serves as a cache hit.
    let again = client::submit(&addr, SPEC).expect("resubmit");
    assert_eq!((again.id, again.cache.as_str()), (id, "hit"));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
