//! Cross-validation: gate-level stuck-at campaigns on generated
//! self-checking datapaths must reproduce the functional-level coverage
//! model of `scdp-arith` exactly (same five-gate full adder, same fault
//! universe, correlated across the time-multiplexed unit instances).

use scdp_arith::Word;
use scdp_core::{Operator, Technique};
use scdp_fault::FaSite;
use scdp_netlist::gen::{self_checking, FaCells, SelfCheckingSpec};
use scdp_netlist::StuckAtLine;

/// Local (instance-relative) cell map of full adder `i` in an RCA
/// instance: `rca_into` creates five gates per bit in a fixed order.
fn local_fa(i: usize) -> FaCells {
    FaCells {
        x1: 5 * i,
        x2: 5 * i + 1,
        a1: 5 * i + 2,
        a2: 5 * i + 3,
        o1: 5 * i + 4,
    }
}

/// Runs the shared-unit (worst-case) campaign on a generated add
/// datapath and returns `(total, undetected)` situations.
fn run_add_campaign(width: u32, technique: Technique) -> (u64, u64) {
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique,
        width,
    });
    let mut total = 0u64;
    let mut undetected = 0u64;
    for pos in 0..width as usize {
        let cells = local_fa(pos);
        for site in FaSite::ALL {
            for stuck in [false, true] {
                // Correlate the fault across nominal + checker instances:
                // the same physical unit executes every operation.
                let mut faults: Vec<StuckAtLine> = Vec::new();
                for local in cells.sites(site) {
                    faults.push(StuckAtLine::new(dp.nominal.globalize(local), stuck));
                    for c in &dp.checkers {
                        faults.push(StuckAtLine::new(c.globalize(local), stuck));
                    }
                }
                for a in Word::all(width) {
                    for b in Word::all(width) {
                        total += 1;
                        let out = dp.netlist.eval_words(&[a, b], &faults);
                        let observable = out[0] != a.wrapping_add(b);
                        let alarm = out[1].bits() != 0;
                        if observable && !alarm {
                            undetected += 1;
                        }
                    }
                }
            }
        }
    }
    (total, undetected)
}

/// The functional gate model's exhaustive numbers (see
/// `scdp-coverage`): situations 32·n·2^(2n); undetected per technique.
#[test]
fn gate_level_add_matches_functional_model_width1() {
    let (total, u1) = run_add_campaign(1, Technique::Tech1);
    assert_eq!(total, 128);
    assert_eq!(u1, 14);
    let (_, u2) = run_add_campaign(1, Technique::Tech2);
    assert_eq!(u2, 10);
    let (_, ub) = run_add_campaign(1, Technique::Both);
    assert_eq!(ub, 7);
}

#[test]
fn gate_level_add_matches_functional_model_width2() {
    let (total, u1) = run_add_campaign(2, Technique::Tech1);
    assert_eq!(total, 1024);
    assert_eq!(u1, 76);
    let (_, u2) = run_add_campaign(2, Technique::Tech2);
    assert_eq!(u2, 60);
    let (_, ub) = run_add_campaign(2, Technique::Both);
    assert_eq!(ub, 40);
}

/// With the checker on a *dedicated* unit (fault only in the nominal
/// instance), coverage is total — the paper's §2.1 claim, at gate level.
#[test]
fn gate_level_dedicated_add_has_full_coverage() {
    let width = 2;
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Tech1,
        width,
    });
    for pos in 0..width as usize {
        let cells = local_fa(pos);
        for site in FaSite::ALL {
            for stuck in [false, true] {
                let faults: Vec<StuckAtLine> = cells
                    .sites(site)
                    .into_iter()
                    .map(|local| StuckAtLine::new(dp.nominal.globalize(local), stuck))
                    .collect();
                for a in Word::all(width) {
                    for b in Word::all(width) {
                        let out = dp.netlist.eval_words(&[a, b], &faults);
                        if out[0] != a.wrapping_add(b) {
                            assert_eq!(out[1].bits(), 1, "{site:?} sa{stuck} {a:?}+{b:?}");
                        }
                    }
                }
            }
        }
    }
}

/// The multiplier datapath detects dedicated-unit faults on observable
/// errors too (sampled).
#[test]
fn gate_level_mul_dedicated_detects_observable() {
    let width = 4;
    let dp = self_checking(SelfCheckingSpec {
        op: Operator::Mul,
        technique: Technique::Tech1,
        width,
    });
    // Sample sites across the nominal instance.
    let sites = dp.local_sites();
    for site in sites.iter().step_by(7) {
        for stuck in [false, true] {
            let faults = dp.nominal_fault(*site, stuck);
            for a in Word::all(width).step_by(3) {
                for b in Word::all(width).step_by(5) {
                    let out = dp.netlist.eval_words(&[a, b], &faults);
                    if out[0] != a.wrapping_mul(b) {
                        assert_eq!(out[1].bits(), 1, "{site:?} sa{stuck} {a:?}*{b:?}");
                    }
                }
            }
        }
    }
}
