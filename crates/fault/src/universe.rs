//! Fault universes: all cell faults of a multi-cell functional unit.

use crate::{CellFault, CellKind};
use scdp_rng::Rng;
use std::fmt;

/// A cell fault placed at a specific cell position of a functional unit.
///
/// Positions are unit-specific dense indices assigned by the unit
/// implementation (for an n-bit ripple-carry adder, position `i` is the
/// full adder of bit `i`; array multipliers and dividers publish their own
/// cell maps).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitFault {
    position: usize,
    fault: CellFault,
}

impl UnitFault {
    /// Places `fault` at cell `position`.
    #[must_use]
    pub const fn new(position: usize, fault: CellFault) -> Self {
        Self { position, fault }
    }

    /// The cell position within the unit.
    #[must_use]
    pub const fn position(&self) -> usize {
        self.position
    }

    /// The truth-table fault applied at that position.
    #[must_use]
    pub const fn fault(&self) -> CellFault {
        self.fault
    }
}

impl fmt::Display for UnitFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}:{}", self.position, self.fault)
    }
}

/// The fault universe of a functional unit: one [`CellKind`] per cell
/// position.
///
/// A universe is just a site map; enumeration produces every
/// `(position, cell fault)` pair, matching the paper's fault-situation
/// accounting (`num_faults_1bit × n` faults for the n-bit ripple-carry
/// adder).
///
/// # Example
///
/// ```
/// use scdp_fault::{CellKind, FaultUniverse};
///
/// // A 4-bit ripple-carry adder: four full-adder sites.
/// let u = FaultUniverse::homogeneous(CellKind::FullAdder, 4);
/// assert_eq!(u.fault_count(), 32 * 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultUniverse {
    sites: Vec<CellKind>,
}

impl FaultUniverse {
    /// Builds a universe from an explicit per-position site list.
    #[must_use]
    pub fn new(sites: Vec<CellKind>) -> Self {
        Self { sites }
    }

    /// Builds a universe of `count` identical sites.
    #[must_use]
    pub fn homogeneous(kind: CellKind, count: usize) -> Self {
        Self {
            sites: vec![kind; count],
        }
    }

    /// Number of cell sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The cell kind at `position`, if in range.
    #[must_use]
    pub fn site(&self, position: usize) -> Option<CellKind> {
        self.sites.get(position).copied()
    }

    /// The per-position site kinds.
    #[must_use]
    pub fn sites(&self) -> &[CellKind] {
        &self.sites
    }

    /// Total number of faults in the universe.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.sites.iter().map(|k| u64::from(k.fault_count())).sum()
    }

    /// Enumerates every fault in a stable order (position-major).
    pub fn iter(&self) -> impl Iterator<Item = UnitFault> + '_ {
        self.sites.iter().enumerate().flat_map(|(pos, &kind)| {
            CellFault::enumerate(kind).map(move |f| UnitFault::new(pos, f))
        })
    }

    /// Draws one fault uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> UnitFault {
        assert!(!self.sites.is_empty(), "empty fault universe");
        // Uniform over faults, not over sites: weight sites by their
        // fault count (they differ between FA/HA/AND cells).
        let total = self.fault_count();
        let mut pick = rng.gen_range(total);
        for (pos, &kind) in self.sites.iter().enumerate() {
            let n = u64::from(kind.fault_count());
            if pick < n {
                let faults: Vec<CellFault> = CellFault::enumerate(kind).collect();
                return UnitFault::new(pos, faults[pick as usize]);
            }
            pick -= n;
        }
        unreachable!("pick < total by construction")
    }

    /// Draws `count` faults without replacement (or the full universe if
    /// `count` exceeds it), in shuffled order.
    #[must_use]
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<UnitFault> {
        let mut all: Vec<UnitFault> = self.iter().collect();
        rng.shuffle(&mut all);
        all.truncate(count);
        all
    }
}

/// Fault-situation accounting, as used in the paper's Table 2.
///
/// A *fault situation* is a `(fault, input combination)` pair; for an
/// n-bit two-operand unit the paper counts
/// `num_faults_1bit × n × 2^(2n)` situations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SituationCount {
    /// Number of faults in the universe.
    pub faults: u64,
    /// Number of input combinations per fault.
    pub inputs_per_fault: u128,
}

impl SituationCount {
    /// Situations of the paper's n-bit ripple-carry adder analysis:
    /// `32 · n · 2^(2n)`.
    #[must_use]
    pub fn rca(width: u32) -> Self {
        Self {
            faults: 32 * u64::from(width),
            inputs_per_fault: 1u128 << (2 * width),
        }
    }

    /// Total number of situations.
    #[must_use]
    pub fn total(&self) -> u128 {
        u128::from(self.faults) * self.inputs_per_fault
    }
}

impl fmt::Display for SituationCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_rng::Xoshiro256StarStar;

    #[test]
    fn rca_situation_counts_match_paper_formula() {
        // Table 2, rows where the paper follows its own formula.
        assert_eq!(SituationCount::rca(1).total(), 128);
        assert_eq!(SituationCount::rca(2).total(), 1024);
        assert_eq!(SituationCount::rca(3).total(), 6144);
        assert_eq!(SituationCount::rca(8).total(), 16 << 20);
    }

    #[test]
    fn rca_situation_counts_paper_typos() {
        // The paper prints 7808 for n=4 and 6×2^30 for n=16; the formula
        // it states gives these values instead. We follow the formula.
        assert_eq!(SituationCount::rca(4).total(), 32768);
        assert_eq!(SituationCount::rca(16).total(), 1 << 41);
    }

    #[test]
    fn homogeneous_universe_enumerates_fully() {
        let u = FaultUniverse::homogeneous(CellKind::FullAdder, 3);
        let all: Vec<_> = u.iter().collect();
        assert_eq!(all.len(), 96);
        assert_eq!(u.fault_count(), 96);
        // Stable order: first 32 are position 0.
        assert!(all[..32].iter().all(|f| f.position() == 0));
        assert!(all[32..64].iter().all(|f| f.position() == 1));
    }

    #[test]
    fn heterogeneous_universe_counts() {
        let u = FaultUniverse::new(vec![
            CellKind::And2,
            CellKind::FullAdder,
            CellKind::HalfAdder,
        ]);
        assert_eq!(u.fault_count(), 8 + 32 + 16);
        assert_eq!(u.iter().count() as u64, u.fault_count());
        assert_eq!(u.site(0), Some(CellKind::And2));
        assert_eq!(u.site(3), None);
    }

    #[test]
    fn sample_is_within_universe_and_deterministic() {
        let u = FaultUniverse::new(vec![CellKind::And2, CellKind::FullAdder]);
        let mut rng_a = Xoshiro256StarStar::from_seed(42);
        let mut rng_b = Xoshiro256StarStar::from_seed(42);
        for _ in 0..100 {
            let fa = u.sample(&mut rng_a);
            let fb = u.sample(&mut rng_b);
            assert_eq!(fa, fb);
            assert_eq!(u.site(fa.position()).unwrap(), fa.fault().kind());
        }
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let u = FaultUniverse::homogeneous(CellKind::FullAdder, 2);
        let mut rng = Xoshiro256StarStar::from_seed(7);
        let picks = u.sample_distinct(&mut rng, 40);
        assert_eq!(picks.len(), 40);
        let mut sorted = picks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        // Requesting more than the universe clamps.
        let all = u.sample_distinct(&mut rng, 1000);
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn sample_covers_all_sites_eventually() {
        let u = FaultUniverse::homogeneous(CellKind::FullAdder, 4);
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[u.sample(&mut rng).position()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
