//! Event sinks for `scdp run --trace/--progress` and the
//! `scdp trace summarize` aggregation.
//!
//! A trace file is JSONL: one [`ObsEvent`] object per line, written by
//! [`trace_sink`] in the stable `to_json_line` form. [`progress_sink`]
//! renders the same stream live on stderr (shard bar, faults/s, drop
//! rate, ETA), and [`summarize`] folds a saved trace back into a
//! human-readable report — per-shard outcome rows whose fault counts
//! sum to the merged campaign report's universe.

use scdp_campaign::json::{self, Json};
use scdp_campaign::{EventSink, ObsEvent};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A sink appending one JSONL line per event to `path` (truncating any
/// existing file). Safe to call from concurrent emitters.
///
/// # Errors
///
/// Returns a message when the file cannot be created.
pub fn trace_sink(path: &str) -> Result<EventSink, String> {
    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let file = Mutex::new(file);
    let path = path.to_string();
    Ok(Arc::new(move |event: &ObsEvent| {
        let mut line = event.to_json_line();
        line.push('\n');
        let mut f = file.lock().expect("trace file lock");
        if let Err(e) = f.write_all(line.as_bytes()) {
            eprintln!("trace: write {path}: {e}");
        }
    }))
}

/// Live-progress rendering state behind the [`progress_sink`] closure.
struct ProgressState {
    started: Instant,
    netlist_shown: bool,
    saw_shards: bool,
    done: u32,
    total: u32,
    faults: u64,
    dropped: u64,
    simulated: u64,
    shard_ms: u64,
}

/// A sink rendering live campaign progress on stderr: one line per
/// finished shard with a completion bar, cumulative faults-per-second,
/// drop rate and a wall-clock ETA (plus a netlist line up front and a
/// summary line for unsharded runs).
#[must_use]
pub fn progress_sink() -> EventSink {
    let state = Mutex::new(ProgressState {
        started: Instant::now(),
        netlist_shown: false,
        saw_shards: false,
        done: 0,
        total: 0,
        faults: 0,
        dropped: 0,
        simulated: 0,
        shard_ms: 0,
    });
    Arc::new(move |event: &ObsEvent| {
        let mut s = state.lock().expect("progress state lock");
        match event {
            ObsEvent::NetlistCompiled {
                name,
                gates,
                faults,
            } if !s.netlist_shown => {
                s.netlist_shown = true;
                eprintln!("progress: netlist `{name}` — {gates} gates, {faults} faults");
            }
            // A runner is driving: suppress the per-shard campaigns'
            // own finish lines in favour of the shard bar.
            ObsEvent::ShardStarted { .. } => s.saw_shards = true,
            ObsEvent::ShardFinished {
                of,
                state: outcome,
                faults,
                detected: _,
                dropped,
                simulated,
                elapsed_ms,
                ..
            } => {
                s.saw_shards = true;
                s.total = *of;
                s.done += 1;
                s.faults += faults;
                s.dropped += dropped;
                s.simulated += simulated;
                s.shard_ms += elapsed_ms;
                let bar = bar(s.done, s.total);
                let fps = if s.shard_ms > 0 {
                    format!(
                        "{:.0} faults/s",
                        s.faults as f64 * 1000.0 / s.shard_ms as f64
                    )
                } else {
                    "- faults/s".to_string()
                };
                let drop_rate = if s.faults > 0 {
                    format!("{:.1}%", s.dropped as f64 * 100.0 / s.faults as f64)
                } else {
                    "-".to_string()
                };
                let eta = if s.done < s.total {
                    let per_shard = s.started.elapsed().as_secs_f64() / f64::from(s.done);
                    format!("{:.1}s", per_shard * f64::from(s.total - s.done))
                } else {
                    "done".to_string()
                };
                eprintln!(
                    "progress: [{bar}] {}/{} shards ({outcome}) · {} situations · {fps} · drop {drop_rate} · ETA {eta}",
                    s.done, s.total, s.simulated,
                );
            }
            ObsEvent::CampaignFinished {
                simulated,
                elapsed_ms,
            } if !s.saw_shards => {
                eprintln!(
                    "progress: campaign finished — {simulated} situations in {elapsed_ms} ms"
                );
            }
            _ => {}
        }
    })
}

/// A 20-cell completion bar.
fn bar(done: u32, total: u32) -> String {
    const CELLS: u32 = 20;
    let filled = (done.min(total) * CELLS).checked_div(total).unwrap_or(0);
    (0..CELLS)
        .map(|i| if i < filled { '#' } else { '.' })
        .collect()
}

/// Fans one event stream out to several sinks; `None` when there are
/// none (so callers skip the plumbing entirely).
#[must_use]
pub fn fan_out(mut sinks: Vec<EventSink>) -> Option<EventSink> {
    match sinks.len() {
        0 => None,
        1 => sinks.pop(),
        _ => Some(Arc::new(move |event: &ObsEvent| {
            for sink in &sinks {
                sink(event);
            }
        })),
    }
}

/// One `shard_finished` trace record.
struct ShardRow {
    shard: u64,
    of: u64,
    state: String,
    faults: u64,
    detected: u64,
    dropped: u64,
    simulated: u64,
    elapsed_ms: u64,
}

/// Summarises a JSONL trace: event counts by kind, span totals, and a
/// per-shard outcome table whose fault counts sum to the campaign's
/// merged universe.
///
/// # Errors
///
/// Returns a message (with the line number) for unparseable lines or
/// lines without an `"event"` field.
pub fn summarize(text: &str) -> Result<String, String> {
    let mut kinds: Vec<(String, u64)> = Vec::new();
    let mut spans: Vec<(String, u64, u64)> = Vec::new();
    let mut shards: Vec<ShardRow> = Vec::new();
    let mut events = 0u64;
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        let kind = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: no \"event\" field", n + 1))?;
        events += 1;
        match kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, count)) => *count += 1,
            None => kinds.push((kind.to_string(), 1)),
        }
        let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        match kind {
            "span" => {
                let path = v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {}: span without path", n + 1))?
                    .to_string();
                let ns = num("elapsed_ns");
                match spans.iter_mut().find(|(p, ..)| *p == path) {
                    Some((_, count, total)) => {
                        *count += 1;
                        *total += ns;
                    }
                    None => spans.push((path, 1, ns)),
                }
            }
            "shard_finished" => shards.push(ShardRow {
                shard: num("shard"),
                of: num("of"),
                state: v
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                faults: num("faults"),
                detected: num("detected"),
                dropped: num("dropped"),
                simulated: num("simulated"),
                elapsed_ms: num("elapsed_ms"),
            }),
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{events} events");
    for (kind, count) in &kinds {
        let _ = writeln!(out, "  {count:>6} × {kind}");
    }
    if !spans.is_empty() {
        spans.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(out, "spans:");
        for (path, count, total_ns) in &spans {
            let _ = writeln!(
                out,
                "  {path:<24} {count:>4} × total {:.1} ms",
                *total_ns as f64 / 1e6
            );
        }
    }
    if !shards.is_empty() {
        shards.sort_by_key(|r| r.shard);
        let _ = writeln!(
            out,
            "shards:\n  {:<9} {:<8} {:>7} {:>9} {:>8} {:>10} {:>8}",
            "shard", "state", "faults", "detected", "dropped", "simulated", "ms"
        );
        let mut faults = 0u64;
        let mut detected = 0u64;
        let mut dropped = 0u64;
        let mut simulated = 0u64;
        let mut ms = 0u64;
        for r in &shards {
            let _ = writeln!(
                out,
                "  {:<9} {:<8} {:>7} {:>9} {:>8} {:>10} {:>8}",
                format!("{}/{}", r.shard, r.of),
                r.state,
                r.faults,
                r.detected,
                r.dropped,
                r.simulated,
                r.elapsed_ms
            );
            faults += r.faults;
            detected += r.detected;
            dropped += r.dropped;
            simulated += r.simulated;
            ms += r.elapsed_ms;
        }
        let fps = if ms > 0 {
            format!(", {:.0} faults/s", faults as f64 * 1000.0 / ms as f64)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "total: {faults} faults, {detected} detected, {dropped} dropped, \
             {simulated} situations{fps}"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_folds_spans_and_shards() {
        let trace = "\
{\"event\":\"campaign_started\",\"backend\":\"gate_level\",\"fault_model\":\"structural\"}
{\"event\":\"span\",\"path\":\"campaign/simulate\",\"elapsed_ns\":2000000}
{\"event\":\"span\",\"path\":\"campaign/simulate\",\"elapsed_ns\":1000000}
{\"event\":\"shard_finished\",\"shard\":0,\"of\":2,\"state\":\"ran\",\"faults\":10,\"detected\":8,\"dropped\":1,\"simulated\":640,\"elapsed_ms\":4}
{\"event\":\"shard_finished\",\"shard\":1,\"of\":2,\"state\":\"resumed\",\"faults\":12,\"detected\":9,\"dropped\":0,\"simulated\":768,\"elapsed_ms\":0}
";
        let out = summarize(trace).expect("valid trace");
        assert!(out.starts_with("5 events"), "{out}");
        assert!(out.contains("campaign/simulate"), "{out}");
        assert!(out.contains("2 × total 3.0 ms"), "{out}");
        assert!(
            out.contains("total: 22 faults, 17 detected, 1 dropped, 1408 situations"),
            "{out}"
        );
    }

    #[test]
    fn summarize_rejects_garbage_with_line_numbers() {
        let err = summarize("{\"event\":\"span\",\"path\":\"x\",\"elapsed_ns\":1}\nnot json\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = summarize("{\"no_event\": true}\n").unwrap_err();
        assert!(err.contains("no \"event\" field"), "{err}");
    }

    #[test]
    fn trace_sink_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("scdp_trace_{}.jsonl", std::process::id()));
        let path_s = path.display().to_string();
        {
            let sink = trace_sink(&path_s).expect("create");
            sink(&ObsEvent::SpanClosed {
                path: "campaign".into(),
                elapsed_ns: 42,
            });
            sink(&ObsEvent::ShardStarted {
                shard: 0,
                of: 1,
                faults: 0,
            });
        }
        let text = std::fs::read_to_string(&path).expect("trace written");
        assert_eq!(text.lines().count(), 2);
        summarize(&text).expect("round-trips through the summarizer");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0, 4), "....................");
        assert_eq!(bar(2, 4), "##########..........");
        assert_eq!(bar(4, 4), "####################");
        assert_eq!(bar(1, 0), "....................");
    }
}
