//! Thin wrapper: `table_datapath [ARGS]` ≡ `scdp sweep [ARGS]`.
//!
//! The datapath-level workload × technique sweep lives in the unified
//! `scdp` CLI now (`scdp_bench::scdp_cli`); this binary survives so
//! existing scripts and CI invocations keep working unchanged.

fn main() {
    let mut args = vec!["sweep".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(scdp_bench::scdp_cli::run(args));
}
