//! Adversarial input for [`scdp_campaign::json::parse`] — the
//! contract `scdp serve` relies on when it hands network bytes to the
//! parser: every hostile document yields a typed
//! [`CampaignError::Parse`]/[`CampaignError::Schema`], never a panic,
//! and every document that does parse re-serialises
//! (`write_compact`) to a document that re-parses equal.

use scdp_campaign::json::{self, Json, MAX_DEPTH};
use scdp_campaign::CampaignError;

/// Asserts `text` is rejected with a typed error (and a sane offset).
fn assert_typed_error(text: &str) {
    match json::parse(text) {
        Err(CampaignError::Parse { offset, .. }) => {
            assert!(
                offset <= text.len(),
                "offset {offset} beyond {} bytes",
                text.len()
            );
        }
        Err(CampaignError::Schema { field, .. }) => {
            assert_eq!(
                field, "json",
                "schema errors from the parser name the json field"
            );
        }
        Ok(v) => panic!("{text:?}: expected a typed error, parsed {v:?}"),
        Err(other) => panic!("{text:?}: unexpected error shape {other}"),
    }
}

/// The serialize/parse fixpoint: whatever parses must re-parse equal
/// from its own `write_compact` output.
fn assert_fixpoint(value: &Json) {
    let written = value.write_compact();
    let again = json::parse(&written)
        .unwrap_or_else(|e| panic!("write_compact output {written:?} must re-parse: {e}"));
    assert_eq!(&again, value, "round trip through {written:?}");
}

#[test]
fn every_truncation_of_a_representative_doc_errors_cleanly() {
    // Escapes, a surrogate pair, raw multibyte UTF-8 and both number
    // shapes — so truncation lands mid-escape, mid-pair, mid-token.
    let doc = concat!(
        r#"{"s":"x\u0041 héllo 😀","t":"\ud83d\ude00","#,
        r#""n":[1,-2.5e3,true,null]}"#
    );
    assert_fixpoint(&json::parse(doc).expect("the full document is valid"));
    // Character-boundary prefixes: the parser sees well-formed UTF-8
    // cut mid-document.
    for end in (0..doc.len()).filter(|&i| doc.is_char_boundary(i)) {
        assert_typed_error(&doc[..end]);
    }
    // Byte-level prefixes that happen to be valid UTF-8 (the others
    // cannot even become a `&str`, which is the point of the API).
    let bytes = doc.as_bytes();
    for end in 0..bytes.len() {
        if let Ok(prefix) = std::str::from_utf8(&bytes[..end]) {
            assert_typed_error(prefix);
        }
    }
}

#[test]
fn ten_thousand_deep_nesting_is_a_typed_error_not_a_stack_overflow() {
    let deep_arrays = format!("{}{}", "[".repeat(10_000), "]".repeat(10_000));
    assert_typed_error(&deep_arrays);
    let deep_objects = format!("{}1{}", r#"{"k":"#.repeat(10_000), "}".repeat(10_000));
    assert_typed_error(&deep_objects);
    // Unclosed towers die at the depth gate too, not at EOF.
    assert_typed_error(&"[".repeat(10_000));
    assert_typed_error(&r#"{"k":"#.repeat(10_000));
}

#[test]
fn nesting_boundary_sits_exactly_at_max_depth() {
    let at_limit = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert_fixpoint(&json::parse(&at_limit).expect("MAX_DEPTH nesting is legal"));
    let over = format!(
        "{}1{}",
        "[".repeat(MAX_DEPTH + 1),
        "]".repeat(MAX_DEPTH + 1)
    );
    assert_typed_error(&over);
}

#[test]
fn huge_exponents_overflow_with_typed_errors_and_boundary_values_round_trip() {
    for overflowing in [
        "1e999",
        "-1e999",
        "1e+999",
        "1e99999999999999999999",
        "[1e400]",
        r#"{"x":-1e309}"#,
        "123456789e999999999",
    ] {
        assert_typed_error(overflowing);
    }
    // Finite neighbours of the overflow boundary still parse — and
    // their serialisation re-parses.
    for finite in [
        "1e308",
        "-1e308",
        "1e-999",
        "0.0000000001e310",
        "2.5",
        "-0.0",
    ] {
        assert_fixpoint(&json::parse(finite).unwrap_or_else(|e| panic!("{finite}: {e}")));
    }
}

#[test]
fn lone_surrogates_nul_bytes_and_raw_controls_are_rejected() {
    for bad in [
        r#""\ud800""#,
        r#""\udc00""#,
        r#""\ud800\ud800""#,
        r#""\ud800x""#,
        r#""\udfff \ud800""#,
        r#"{"\uDEAD":1}"#,
    ] {
        assert_typed_error(bad);
    }
    // Raw NUL bytes: inside a string, as a key, and as stray bytes.
    assert_typed_error(&format!("{}\"a{}b\":1{}", '{', '\0', '}'));
    assert_typed_error(&format!("{}1", '\0'));
    assert_typed_error(&format!("[1,{}2]", '\0'));
    // Escaped NUL is legal JSON — and must serialise back as an
    // escape, never as a raw control byte.
    let nul = json::parse(r#""\u0000""#).expect("escaped NUL is legal");
    assert_eq!(nul, Json::Str(String::from('\0')));
    let written = nul.write_compact();
    assert!(written.is_ascii() && !written.contains('\0'), "{written:?}");
    assert_fixpoint(&nul);
}

#[test]
fn seeded_corpus_never_panics_and_every_ok_parse_is_a_fixpoint() {
    let corpus: &[&str] = &[
        "",
        " ",
        "\n\t ",
        "nul",
        "nulll",
        "tru",
        "truex",
        "falsehood",
        "-",
        "+1",
        "01",
        "0x10",
        "1.",
        ".5",
        "1e",
        "1e+",
        "1e-",
        "9999999999999999999999999999999999999999",
        "-170141183460469231731687303715884105729",
        "\"",
        "\"abc",
        r#""\""#,
        r#""\q""#,
        r#""\u""#,
        r#""\u12""#,
        r#""\uGGGG""#,
        r#""\u+123""#,
        r#""\uD83D\uDE00""#,
        "[",
        "[1,",
        "[1 2]",
        "[1,]",
        "{",
        r#"{"a"#,
        r#"{"a""#,
        r#"{"a":"#,
        r#"{"a":}"#,
        r#"{"a":1,}"#,
        r#"{"a":1 "b":2}"#,
        "{1:2}",
        "]",
        "}",
        ",",
        "123abc",
        "1 2",
        "Infinity",
        "-Infinity",
        "NaN",
        "\"a\tb\"",
        r#"{"a":[{"b":[{"c":"\ud83d\ude00"}]}],"z":1e2}"#,
        r#"[null,true,false,0,-0,1.5e-3,"end"]"#,
    ];
    for text in corpus {
        // The only contract: a typed result, never a panic...
        if let Ok(value) = json::parse(text) {
            // ...and Ok parses must survive their own serialisation.
            assert_fixpoint(&value);
        } else {
            assert_typed_error(text);
        }
    }
}
