//! The [`Recorder`] registry and its hierarchical [`Span`] timer.

use crate::event::{EventSink, ObsEvent};
use crate::metrics::{Counter, Histogram};
use crate::snapshot::{CounterSnapshot, HistogramSnapshot, SpanSnapshot, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Accumulated closures of one span path.
#[derive(Clone, Copy, Debug, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
}

/// The telemetry registry: named counters, histograms, and span
/// accumulators, snapshot on demand.
///
/// Instruments are interned on first use and shared by `Arc`, so hot
/// loops resolve a name once and then increment lock-free. The
/// registry maps are `BTreeMap`s behind mutexes — snapshots come out
/// name-ordered without a sort, and registration is far off any hot
/// path.
#[derive(Debug, Default)]
pub struct Recorder {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

impl Recorder {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The counter registered under `name`, created zeroed on first
    /// use. Names not ending in `_ns` must be thread-count and
    /// sharding invariant (see the crate-level determinism contract).
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name`, created empty on first
    /// use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Convenience: adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: records `value` into the histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Folds one closed span into the accumulator for `path`.
    fn record_span(&self, path: &str, elapsed_ns: u64) {
        let mut map = self.spans.lock().expect("span registry poisoned");
        let stat = map.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    }

    /// Opens a root span named `path` on this recorder. The span emits
    /// [`ObsEvent::SpanClosed`] to `sink` (if any) when closed.
    #[must_use]
    pub fn span(self: &Arc<Self>, path: &str, sink: Option<EventSink>) -> Span {
        Span {
            recorder: Arc::clone(self),
            path: path.to_string(),
            sink,
            start: Instant::now(),
            closed: false,
        }
    }

    /// Freezes the registry into an ordered, mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                buckets: h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(bucket, count)| crate::BucketCount { bucket, count })
                    .collect(),
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(path, stat)| SpanSnapshot {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
            })
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
            spans,
        }
    }
}

/// A hierarchical wall-clock timer.
///
/// Spans form a tree through [`Span::child`]; a child's path is
/// `parent_path/name`. Closing (explicitly via [`Span::close`] or
/// implicitly on drop) folds the elapsed time into the recorder under
/// the path and emits a [`ObsEvent::SpanClosed`] to the sink the span
/// was opened with. Explicit closing returns the elapsed nanoseconds,
/// which is how campaign reports derive `elapsed_ms` from the root
/// span instead of patching it in afterwards.
pub struct Span {
    recorder: Arc<Recorder>,
    path: String,
    sink: Option<EventSink>,
    start: Instant,
    closed: bool,
}

impl Span {
    /// The full `a/b/c` path of this span.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Opens a child span `self.path/name` sharing this span's
    /// recorder and sink.
    #[must_use]
    pub fn child(&self, name: &str) -> Span {
        Span {
            recorder: Arc::clone(&self.recorder),
            path: format!("{}/{name}", self.path),
            sink: self.sink.clone(),
            start: Instant::now(),
            closed: false,
        }
    }

    /// Nanoseconds since the span opened (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Closes the span and returns its elapsed nanoseconds.
    pub fn close(mut self) -> u64 {
        self.finish()
    }

    /// Runs `f` inside a child span (closed when `f` returns).
    pub fn scope<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let child = self.child(name);
        let out = f();
        child.close();
        out
    }

    fn finish(&mut self) -> u64 {
        if self.closed {
            return 0;
        }
        self.closed = true;
        let elapsed_ns = self.elapsed_ns();
        self.recorder.record_span(&self.path, elapsed_ns);
        if let Some(sink) = &self.sink {
            sink(&ObsEvent::SpanClosed {
                path: self.path.clone(),
                elapsed_ns,
            });
        }
        elapsed_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn instruments_are_interned_and_snapshots_sorted() {
        let r = Recorder::new();
        r.add("b.second", 2);
        r.add("a.first", 1);
        r.counter("a.first").add(9);
        r.record("lat", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].name, "a.first");
        assert_eq!(snap.counters[0].value, 10);
        assert_eq!(snap.counters[1].value, 2);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(
            snap.histograms[0].buckets,
            vec![crate::BucketCount {
                bucket: 2,
                count: 1
            }]
        );
    }

    #[test]
    fn spans_nest_accumulate_and_emit() {
        let r = Arc::new(Recorder::new());
        let events = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&events);
        let sink: EventSink = Arc::new(move |e| {
            if matches!(e, ObsEvent::SpanClosed { .. }) {
                seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        let root = r.span("campaign", Some(sink));
        root.scope("simulate", || std::hint::black_box(7));
        let child = root.child("tally");
        assert_eq!(child.path(), "campaign/tally");
        child.close();
        let ns = root.close();
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].path, "campaign");
        assert_eq!(snap.spans[0].count, 1);
        assert_eq!(snap.spans[0].total_ns, ns);
        assert_eq!(snap.spans[1].path, "campaign/simulate");
        assert_eq!(snap.spans[2].path, "campaign/tally");
        assert_eq!(events.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn dropping_a_span_closes_it_once() {
        let r = Arc::new(Recorder::new());
        {
            let s = r.span("only", None);
            drop(s);
        }
        let s = r.span("only", None);
        s.close();
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].count, 2);
    }
}
