//! Regression pins for the EXPERIMENTS.md Table 2 values: the exhaustive
//! campaigns are deterministic, so the exact undetected counts are part
//! of this repository's published claims and must never drift.
//!
//! Pins the engine-room path on purpose; the unified API's golden
//! tests live in `scdp-campaign`.

use scdp_core::Allocation;
use scdp_coverage::{AdderFaultModel, CampaignBuilder, OperatorKind, TechIndex};

/// `(width, total, undetected[tech1, tech2, both])` for the gate-level
/// fault model, worst case — the numbers behind EXPERIMENTS.md's E2
/// table.
const PINNED: [(u32, u64, [u64; 3]); 4] = [
    (1, 128, [14, 10, 7]),
    (2, 1024, [76, 60, 40]),
    (3, 6144, [384, 320, 208]),
    (4, 32768, [1856, 1600, 1024]),
];

#[test]
fn exhaustive_gate_model_counts_are_stable() {
    for (width, total, undetected) in PINNED {
        let r = CampaignBuilder::over(OperatorKind::Add, width)
            .adder_model(AdderFaultModel::Gate)
            .run();
        assert_eq!(r.total_situations(), total, "width {width}");
        for (i, t) in TechIndex::ALL.into_iter().enumerate() {
            assert_eq!(
                r.tally.of(t).error_undetected,
                undetected[i],
                "width {width} {t}"
            );
        }
    }
}

#[test]
fn cell_model_is_fully_covered() {
    // The alternative truth-table model: a documented finding — 100%
    // coverage because row-local faults cannot self-mask.
    for width in [1u32, 2, 3, 4] {
        let r = CampaignBuilder::over(OperatorKind::Add, width)
            .adder_model(AdderFaultModel::Cell)
            .run();
        for t in TechIndex::ALL {
            assert_eq!(r.tally.of(t).error_undetected, 0, "width {width} {t}");
        }
    }
}

#[test]
fn dedicated_unit_is_fully_covered_every_width() {
    for width in [1u32, 2, 3, 4, 5, 6] {
        let r = CampaignBuilder::over(OperatorKind::Add, width)
            .allocation(Allocation::Dedicated)
            .run();
        assert_eq!(r.tally.of(TechIndex::Both).error_undetected, 0);
        assert!(r.tally.of(TechIndex::Tech1).observable() > 0);
    }
}

#[test]
fn width8_summary_statistics() {
    // The 8-bit row (16.7M situations) — run once, pin the coverage to
    // the EXPERIMENTS.md precision.
    let r = CampaignBuilder::over(OperatorKind::Add, 8).run();
    let cov = |t| (r.coverage(t) * 10_000.0).round() / 100.0;
    assert_eq!(cov(TechIndex::Tech1), 95.21);
    assert_eq!(cov(TechIndex::Tech2), 95.61);
    assert_eq!(cov(TechIndex::Both), 97.27);
}
