//! Seeded random-DFG generation — the test support behind the
//! property-based differential harnesses.
//!
//! The four built-in workloads exercise a handful of hand-written graph
//! shapes; the differential tests (`tests/seq_vs_interp.rs` at the
//! workspace root) additionally sweep hundreds of *random* loop bodies
//! through the full synthesis pipeline — schedule, bind, elaborate,
//! simulate — and compare every elaboration against the word-level
//! interpreter. This module generates those graphs: bounded in size,
//! valid by construction (arguments always reference earlier nodes),
//! and fully determined by the seed, so a failing case reproduces from
//! its seed alone.

use crate::dfg::{Dfg, NodeId, OpKind};
use crate::library::ResourceSet;
use scdp_rng::{Rng, Xoshiro256StarStar};

/// Bounds on the generated graphs.
#[derive(Copy, Clone, Debug)]
pub struct DfgGenConfig {
    /// Maximum arithmetic operations (at least 1 is always generated).
    pub max_ops: usize,
    /// Allow `Div`/`Rem` nodes (divider cores are by far the largest,
    /// so width-heavy sweeps may want them off).
    pub allow_div: bool,
    /// Allow `Load` nodes (each adds a primary input bus) and a
    /// trailing `Store`.
    pub allow_mem: bool,
}

impl Default for DfgGenConfig {
    /// Up to 8 operations, everything allowed.
    fn default() -> Self {
        Self {
            max_ops: 8,
            allow_div: true,
            allow_mem: true,
        }
    }
}

/// Generates a random, valid loop-body DFG from `seed`.
///
/// The graph has 1–3 inputs, 0–2 constants, 1–`max_ops` arithmetic
/// operations drawn from the checkable and unary kinds (plus loads and
/// one store when `allow_mem`), and 1–2 named outputs — always
/// including the last operation, so no generated graph is trivially
/// empty after dead-code elimination.
#[must_use]
pub fn random_dfg(seed: u64, cfg: &DfgGenConfig) -> Dfg {
    let mut rng = Xoshiro256StarStar::from_seed(seed ^ 0xD1F6_0000);
    let mut d = Dfg::new(format!("rand{seed:x}"));
    let mut pool: Vec<NodeId> = Vec::new();
    let inputs = 1 + rng.gen_range(3) as usize;
    for i in 0..inputs {
        pool.push(d.input(format!("x{i}")));
    }
    for _ in 0..rng.gen_range(3) {
        // Small signed constants; zero stays legal (division follows
        // the restoring-divider convention).
        let v = rng.gen_range(9) as i64 - 4;
        pool.push(d.constant(v));
    }
    let ops = 1 + rng.gen_range(cfg.max_ops as u64) as usize;
    let pick = |rng: &mut Xoshiro256StarStar, pool: &[NodeId]| {
        pool[rng.gen_range(pool.len() as u64) as usize]
    };
    for _ in 0..ops {
        let roll = rng.gen_range(100);
        let node = if cfg.allow_mem && roll < 12 {
            let addr = pick(&mut rng, &pool);
            d.op(
                OpKind::Load {
                    bank: rng.gen_range(2) as usize,
                },
                &[addr],
            )
        } else {
            let kind = match roll % 20 {
                0..=5 => OpKind::Add,
                6..=10 => OpKind::Sub,
                11..=14 => OpKind::Mul,
                15..=16 => OpKind::Neg,
                17 if cfg.allow_div => OpKind::Div,
                18 if cfg.allow_div => OpKind::Rem,
                _ => OpKind::Add,
            };
            let a = pick(&mut rng, &pool);
            if kind == OpKind::Neg {
                d.op(kind, &[a])
            } else {
                let b = pick(&mut rng, &pool);
                d.op(kind, &[a, b])
            }
        };
        pool.push(node);
    }
    let last = *pool.last().expect("at least one op");
    d.output("y0", last);
    if rng.gen_range(2) == 1 {
        let extra = pick(&mut rng, &pool);
        d.output("y1", extra);
    }
    if cfg.allow_mem && rng.gen_range(4) == 0 {
        let addr = pick(&mut rng, &pool);
        let val = pick(&mut rng, &pool);
        let _ = d.op(OpKind::Store { bank: 0 }, &[addr, val]);
    }
    d
}

/// A random resource set from `seed`: min-area, min-latency or an
/// in-between point, so sweeps exercise both heavily shared and
/// parallel bindings.
#[must_use]
pub fn random_resources(seed: u64) -> ResourceSet {
    let mut rng = Xoshiro256StarStar::from_seed(seed ^ 0x9E50_0000);
    match rng.gen_range(3) {
        0 => ResourceSet::min_area(),
        1 => ResourceSet::min_latency(),
        _ => ResourceSet {
            alus: 2,
            mults: 1,
            divs: 1,
            mem_ports: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::ComponentLibrary;
    use crate::sched::list_schedule;
    use crate::{bind, BindOptions};

    #[test]
    fn generation_is_deterministic() {
        let cfg = DfgGenConfig::default();
        let a = random_dfg(42, &cfg);
        let b = random_dfg(42, &cfg);
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.args, y.args);
        }
        let c = random_dfg(43, &cfg);
        assert!(
            a.len() != c.len()
                || a.iter()
                    .zip(c.iter())
                    .any(|((_, x), (_, y))| x.kind != y.kind || x.args != y.args),
            "different seeds should differ"
        );
    }

    #[test]
    fn generated_graphs_survive_the_synthesis_pipeline() {
        let lib = ComponentLibrary::virtex16();
        for seed in 0..50 {
            let cfg = DfgGenConfig {
                max_ops: 6,
                allow_div: seed % 3 == 0,
                allow_mem: seed % 2 == 0,
            };
            let d = random_dfg(seed, &cfg);
            assert!(d.iter().any(|(_, n)| !n.kind.is_virtual()), "seed {seed}");
            let resources = random_resources(seed);
            let schedule = list_schedule(&d, &lib, &resources);
            let binding = bind(&d, &schedule, &lib, BindOptions::default());
            assert!(!binding.fus.is_empty(), "seed {seed}");
            for (id, n) in d.iter() {
                if !n.kind.is_virtual() && !n.kind.is_chained() {
                    assert!(
                        schedule.avail(id) > schedule.start(id),
                        "seed {seed}: node {id} takes no time"
                    );
                }
            }
        }
    }

    #[test]
    fn config_gates_are_respected() {
        let no_div = DfgGenConfig {
            max_ops: 12,
            allow_div: false,
            allow_mem: false,
        };
        for seed in 0..40 {
            let d = random_dfg(seed, &no_div);
            for (_, n) in d.iter() {
                assert!(
                    !matches!(
                        n.kind,
                        OpKind::Div | OpKind::Rem | OpKind::Load { .. } | OpKind::Store { .. }
                    ),
                    "seed {seed} violated config"
                );
            }
        }
    }
}
