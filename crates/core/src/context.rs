//! Thread-local execution context for self-checking operations.
//!
//! The paper's SCK mechanism is *transparent*: application code performs
//! plain arithmetic, and the data type hides the checking operations.
//! To keep Rust call sites equally plain (`a + b`, no extra parameter),
//! the operators of [`Sck`](crate::Sck) execute on an ambient
//! [`DataPath`] managed here.
//!
//! By default every thread uses the fault-free [`NativeDataPath`].
//! Fault-injection campaigns or counting instrumentation [`install`] a
//! different data path for a scope:
//!
//! ```
//! use scdp_core::{context, sck, CountingDataPath, NativeDataPath};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let dp = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
//! {
//!     let _guard = context::install(dp.clone());
//!     let z = sck(2i32) + sck(3i32);
//!     assert_eq!(z.value(), 5);
//! }
//! // One nominal add + one checking subtraction flowed through.
//! assert_eq!(dp.borrow().counts().adds, 1);
//! assert_eq!(dp.borrow().counts().subs, 1);
//! ```

use crate::{DataPath, NativeDataPath};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

thread_local! {
    static STACK: RefCell<Vec<Rc<RefCell<dyn DataPath>>>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`install`]; restores the previous data path when
/// dropped. Guards must be dropped in LIFO order (enforced by assertion).
#[derive(Debug)]
pub struct DataPathGuard {
    expected: *const RefCell<dyn DataPath>,
    // Context is thread-local; the guard must not cross threads.
    _not_send: PhantomData<*const ()>,
}

/// Installs `dp` as the current thread's data path until the returned
/// guard is dropped.
///
/// Nested installs shadow outer ones. The caller keeps its own `Rc`
/// handle, so instrumented data paths (counters, fault state) can be
/// inspected afterwards.
#[must_use]
pub fn install(dp: Rc<RefCell<dyn DataPath>>) -> DataPathGuard {
    let expected = Rc::as_ptr(&dp);
    STACK.with(|s| s.borrow_mut().push(dp));
    DataPathGuard {
        expected,
        _not_send: PhantomData,
    }
}

impl Drop for DataPathGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert!(
                popped.map(|p| std::ptr::addr_eq(Rc::as_ptr(&p), self.expected)) == Some(true),
                "DataPathGuard dropped out of LIFO order"
            );
        });
    }
}

/// Runs `f` with the current thread's data path (the innermost installed
/// one, or a fresh [`NativeDataPath`] if none is installed).
///
/// # Panics
///
/// Panics if called re-entrantly from within another `with` on the same
/// thread while a data path is installed (the context is mutably
/// borrowed for the duration of `f`).
pub fn with<R>(f: impl FnOnce(&mut dyn DataPath) -> R) -> R {
    let top = STACK.with(|s| s.borrow().last().cloned());
    match top {
        Some(dp) => {
            let mut dp = dp.borrow_mut();
            f(&mut *dp)
        }
        None => f(&mut NativeDataPath::new()),
    }
}

/// `true` if a non-default data path is installed on this thread.
#[must_use]
pub fn is_installed() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingDataPath, Slot};
    use scdp_arith::Word;

    #[test]
    fn default_is_native() {
        assert!(!is_installed());
        let out = with(|dp| dp.add(Slot::Nominal, Word::from_i64(8, 2), Word::from_i64(8, 3)));
        assert_eq!(out.to_i64(), 5);
    }

    #[test]
    fn install_shadows_and_restores() {
        let dp = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
        {
            let _g = install(dp.clone());
            assert!(is_installed());
            let _ = with(|d| d.add(Slot::Nominal, Word::from_i64(8, 1), Word::from_i64(8, 1)));
        }
        assert!(!is_installed());
        assert_eq!(dp.borrow().counts().adds, 1);
    }

    #[test]
    fn nested_installs_shadow() {
        let outer = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
        let inner = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
        let _g1 = install(outer.clone());
        {
            let _g2 = install(inner.clone());
            let _ = with(|d| d.add(Slot::Nominal, Word::from_i64(8, 1), Word::from_i64(8, 1)));
        }
        let _ = with(|d| d.sub(Slot::Nominal, Word::from_i64(8, 1), Word::from_i64(8, 1)));
        assert_eq!(inner.borrow().counts().adds, 1);
        assert_eq!(inner.borrow().counts().subs, 0);
        assert_eq!(outer.borrow().counts().subs, 1);
        assert_eq!(outer.borrow().counts().adds, 0);
    }
}
