//! Shared helpers for the table-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — overloading techniques & fault coverage per operator |
//! | `table2` | Table 2 — `+` coverage vs operand width (+ §4.1 statistics) |
//! | `table3` | Table 3 — FIR hardware/software cost & performance |
//! | `fig3_flow` | Figure 3 — the co-design flow, end to end |
//! | `gate_xval` | §4.1 "implementation independent" claim (RCA vs CLA at gate level) |
//! | `ablation_binding` | reliability-aware binding ablation (future-work trade-off) |

#![warn(missing_docs)]

use std::time::Instant;

/// Runs `f`, printing the elapsed wall time afterwards.
pub fn timed<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

/// Formats a fraction as the paper's percentage style.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Parses `--flag value`-style options very simply.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `true` if a bare flag is present.
#[must_use]
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--width", "8", "--fast"].map(String::from).to_vec();
        assert_eq!(arg_value(&args, "--width").as_deref(), Some("8"));
        assert_eq!(arg_value(&args, "--seed"), None);
        assert!(has_flag(&args, "--fast"));
        assert!(!has_flag(&args, "--slow"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.9711), "97.11%");
    }
}
