//! Per-situation outcomes and campaign tallies.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Index of a technique column in campaign results.
///
/// Campaigns evaluate Tech1, Tech2 and their combination in a single pass
/// (the nominal computation is shared), so results carry three parallel
/// tallies.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechIndex {
    /// Table 1 column "Tech1".
    Tech1 = 0,
    /// Table 1 column "Tech2".
    Tech2 = 1,
    /// Table 1 column "Both" / Table 2 column "Tech 1&2".
    Both = 2,
}

impl TechIndex {
    /// All three columns in table order.
    pub const ALL: [TechIndex; 3] = [TechIndex::Tech1, TechIndex::Tech2, TechIndex::Both];
}

impl fmt::Display for TechIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechIndex::Tech1 => f.write_str("Tech1"),
            TechIndex::Tech2 => f.write_str("Tech2"),
            TechIndex::Both => f.write_str("Tech 1&2"),
        }
    }
}

/// Classification of one fault situation under one technique.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Result correct, checks silent.
    CorrectSilent,
    /// Result correct, but a check fired — the fault is *detected before
    /// it produces an erroneous result*.
    CorrectDetected,
    /// Result wrong and a check fired.
    ErrorDetected,
    /// Result wrong and every check passed: the uncovered case.
    ErrorUndetected,
}

impl Outcome {
    /// Builds an outcome from observability and detection flags.
    #[inline]
    #[must_use]
    pub fn new(observable: bool, detected: bool) -> Self {
        match (observable, detected) {
            (false, false) => Outcome::CorrectSilent,
            (false, true) => Outcome::CorrectDetected,
            (true, true) => Outcome::ErrorDetected,
            (true, false) => Outcome::ErrorUndetected,
        }
    }

    /// `true` if the situation is covered (result correct or alarmed).
    #[must_use]
    pub fn is_covered(self) -> bool {
        !matches!(self, Outcome::ErrorUndetected)
    }
}

/// Situation counts for one technique.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TechTally {
    /// Result correct, checks silent.
    pub correct_silent: u64,
    /// Result correct, check fired (early detection).
    pub correct_detected: u64,
    /// Result wrong, check fired.
    pub error_detected: u64,
    /// Result wrong, checks silent (coverage loss).
    pub error_undetected: u64,
}

impl TechTally {
    /// Records one outcome.
    #[inline]
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::CorrectSilent => self.correct_silent += 1,
            Outcome::CorrectDetected => self.correct_detected += 1,
            Outcome::ErrorDetected => self.error_detected += 1,
            Outcome::ErrorUndetected => self.error_undetected += 1,
        }
    }

    /// Total situations tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.correct_silent + self.correct_detected + self.error_detected + self.error_undetected
    }

    /// Situations with an observable error (wrong result).
    #[must_use]
    pub fn observable(&self) -> u64 {
        self.error_detected + self.error_undetected
    }

    /// Situations where any check fired.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.correct_detected + self.error_detected
    }

    /// Fault coverage: fraction of situations where the result is correct
    /// or an alarm is raised (the paper's Table 2 metric).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.error_undetected as f64 / total as f64
    }
}

impl Add for TechTally {
    type Output = TechTally;

    fn add(self, rhs: TechTally) -> TechTally {
        TechTally {
            correct_silent: self.correct_silent + rhs.correct_silent,
            correct_detected: self.correct_detected + rhs.correct_detected,
            error_detected: self.error_detected + rhs.error_detected,
            error_undetected: self.error_undetected + rhs.error_undetected,
        }
    }
}

impl AddAssign for TechTally {
    fn add_assign(&mut self, rhs: TechTally) {
        *self = *self + rhs;
    }
}

/// Aggregated tallies of a campaign: one [`TechTally`] per technique
/// column, evaluated over the same situations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Tallies indexed by [`TechIndex`].
    pub tech: [TechTally; 3],
}

impl Tally {
    /// The tally for one technique column.
    #[must_use]
    pub fn of(&self, t: TechIndex) -> &TechTally {
        &self.tech[t as usize]
    }

    /// Records one situation given observability and per-technique
    /// detection flags `[tech1, tech2]` (the Both column is derived).
    #[inline]
    pub fn record(&mut self, observable: bool, det1: bool, det2: bool) {
        self.tech[0].record(Outcome::new(observable, det1));
        self.tech[1].record(Outcome::new(observable, det2));
        self.tech[2].record(Outcome::new(observable, det1 || det2));
    }
}

impl Add for Tally {
    type Output = Tally;

    fn add(self, rhs: Tally) -> Tally {
        Tally {
            tech: [
                self.tech[0] + rhs.tech[0],
                self.tech[1] + rhs.tech[1],
                self.tech[2] + rhs.tech[2],
            ],
        }
    }
}

impl AddAssign for Tally {
    fn add_assign(&mut self, rhs: Tally) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert_eq!(Outcome::new(false, false), Outcome::CorrectSilent);
        assert_eq!(Outcome::new(false, true), Outcome::CorrectDetected);
        assert_eq!(Outcome::new(true, true), Outcome::ErrorDetected);
        assert_eq!(Outcome::new(true, false), Outcome::ErrorUndetected);
        assert!(Outcome::CorrectSilent.is_covered());
        assert!(Outcome::ErrorDetected.is_covered());
        assert!(!Outcome::ErrorUndetected.is_covered());
    }

    #[test]
    fn tally_coverage_math() {
        let mut t = TechTally::default();
        for _ in 0..96 {
            t.record(Outcome::CorrectSilent);
        }
        for _ in 0..2 {
            t.record(Outcome::ErrorUndetected);
        }
        t.record(Outcome::ErrorDetected);
        t.record(Outcome::CorrectDetected);
        assert_eq!(t.total(), 100);
        assert_eq!(t.observable(), 3);
        assert_eq!(t.alarms(), 2);
        assert!((t.coverage() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn both_column_is_or_of_detections() {
        let mut tally = Tally::default();
        tally.record(true, true, false);
        tally.record(true, false, true);
        tally.record(true, false, false);
        assert_eq!(tally.of(TechIndex::Tech1).error_detected, 1);
        assert_eq!(tally.of(TechIndex::Tech2).error_detected, 1);
        assert_eq!(tally.of(TechIndex::Both).error_detected, 2);
        assert_eq!(tally.of(TechIndex::Both).error_undetected, 1);
    }

    #[test]
    fn tallies_merge() {
        let mut a = Tally::default();
        a.record(true, true, true);
        let mut b = Tally::default();
        b.record(false, false, false);
        let c = a + b;
        assert_eq!(c.of(TechIndex::Both).total(), 2);
        let mut d = Tally::default();
        d += c;
        assert_eq!(d.of(TechIndex::Tech1).total(), 2);
    }

    #[test]
    fn empty_tally_is_full_coverage() {
        assert!((TechTally::default().coverage() - 1.0).abs() < f64::EPSILON);
    }
}
