//! Typed simulation errors.
//!
//! The engines used to `panic!` from deep inside the packed evaluation
//! loop when a fault spec named a pin the gate does not have, and
//! `expect` on unconnected Dff cells during compilation. A single
//! malformed fault group would then abort a whole campaign — fatal for
//! sharded sweeps where one shard's bad spec must not lose the other
//! shards' work. Validation now happens *before* simulation
//! ([`crate::Engine::check_faults`], [`crate::SeqEngine::check_group`])
//! and reports failures as values; the evaluation loops themselves are
//! total (an out-of-range pin can no longer be reached after
//! validation, and is ignored defensively if one is injected through
//! the raw batch API).

use std::error::Error;
use std::fmt;

/// Why a netlist could not be compiled, a fault spec rejected, or a
/// parallel campaign aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A fault names a gate index beyond the compiled netlist.
    GateOutOfRange {
        /// The rejected gate index.
        gate: usize,
        /// Number of gates in the compiled netlist.
        gates: usize,
    },
    /// A fault names an input pin the gate does not have (e.g. pin 1 on
    /// an inverter, or any pin on a primary input).
    PinOutOfRange {
        /// The gate the fault is attached to.
        gate: usize,
        /// The rejected pin number.
        pin: u8,
        /// Number of input pins the gate actually has.
        pins: u8,
    },
    /// A Dff cell reached the sequential compiler without a connected D
    /// input (possible only on hand-built gate lists;
    /// `NetlistBuilder::finish` validates this for built netlists).
    UnconnectedDff {
        /// The offending Dff's gate index.
        gate: usize,
    },
    /// A worker thread in the parallel pool panicked. The pool stops
    /// handing out work, joins the remaining workers, and surfaces the
    /// first panic payload here instead of re-panicking on the caller's
    /// thread.
    WorkerPanicked {
        /// The panic payload, rendered to a string when it was one.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::GateOutOfRange { gate, gates } => {
                write!(
                    f,
                    "fault gate {gate} out of range: netlist has {gates} gates"
                )
            }
            SimError::PinOutOfRange { gate, pin, pins } => {
                write!(
                    f,
                    "fault pin {pin} out of range: gate {gate} has {pins} input pins"
                )
            }
            SimError::UnconnectedDff { gate } => {
                write!(f, "Dff at gate {gate} has no connected D input")
            }
            SimError::WorkerPanicked { message } => {
                write!(f, "campaign worker panicked: {message}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_std_errors() {
        let e = SimError::PinOutOfRange {
            gate: 3,
            pin: 7,
            pins: 2,
        };
        assert!(e.to_string().contains("pin 7"));
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().contains("out of range"));
        assert!(SimError::UnconnectedDff { gate: 1 }
            .to_string()
            .contains("Dff"));
        assert!(SimError::GateOutOfRange { gate: 9, gates: 4 }
            .to_string()
            .contains("9"));
        let p = SimError::WorkerPanicked {
            message: "index out of bounds".into(),
        };
        assert!(p.to_string().contains("worker panicked"));
        assert!(p.to_string().contains("index out of bounds"));
    }
}
