//! The frozen, mergeable form of a [`Recorder`](crate::Recorder):
//! plain ordered data, embedded by `scdp-campaign` as the `telemetry`
//! report section and aggregated across shards by report merge.

/// One counter at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name (`_ns` suffix marks wall-clock values exempt
    /// from the determinism contract).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One non-empty histogram bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Log2 bucket index (see [`bucket_floor`](crate::bucket_floor)).
    pub bucket: u32,
    /// Samples in the bucket.
    pub count: u64,
}

/// One histogram at snapshot time (non-empty buckets only, in bucket
/// order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Non-empty `(bucket, count)` pairs.
    pub buckets: Vec<BucketCount>,
}

/// Accumulated closures of one span path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Hierarchical `a/b/c` path.
    pub path: String,
    /// Number of closures.
    pub count: u64,
    /// Total wall-clock nanoseconds across closures.
    pub total_ns: u64,
}

/// A frozen telemetry registry: name-ordered counters, histograms,
/// and span accumulators.
///
/// The ordering invariant (counters, histograms by `name`; spans by
/// `path`; buckets by index) is established by
/// [`Recorder::snapshot`](crate::Recorder::snapshot) and preserved by
/// [`TelemetrySnapshot::merge`], which is what makes the report
/// serialisation byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Counters, ordered by name.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms, ordered by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span accumulators, ordered by path.
    pub spans: Vec<SpanSnapshot>,
}

impl TelemetrySnapshot {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// The value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The span accumulator at `path`, if present.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The count-typed counters — every counter whose name neither
    /// ends in `_ns` (wall-clock values) nor starts with `pool.`
    /// (work-stealing schedule observations: block counts, steals,
    /// per-worker busy time — all legitimately thread-count or
    /// scheduling dependent). These are the values the determinism
    /// contract covers: identical across thread counts, scheduling
    /// orders and lane widths, and shard-merged sums equal the
    /// unsharded run's.
    #[must_use]
    pub fn deterministic_counters(&self) -> Vec<CounterSnapshot> {
        self.counters
            .iter()
            .filter(|c| !c.name.ends_with("_ns") && !c.name.starts_with("pool."))
            .cloned()
            .collect()
    }

    /// Folds `other` into `self`: counters and span accumulators sum
    /// by name/path, histograms sum bucket-wise. Ordering invariants
    /// are preserved, so merging is associative and commutative on the
    /// snapshot's serialised form.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for c in &other.counters {
            match self
                .counters
                .binary_search_by(|probe| probe.name.as_str().cmp(&c.name))
            {
                Ok(i) => self.counters[i].value += c.value,
                Err(i) => self.counters.insert(i, c.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|probe| probe.name.as_str().cmp(&h.name))
            {
                Ok(i) => merge_buckets(&mut self.histograms[i].buckets, &h.buckets),
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
        for s in &other.spans {
            match self
                .spans
                .binary_search_by(|probe| probe.path.as_str().cmp(&s.path))
            {
                Ok(i) => {
                    self.spans[i].count += s.count;
                    self.spans[i].total_ns = self.spans[i].total_ns.saturating_add(s.total_ns);
                }
                Err(i) => self.spans.insert(i, s.clone()),
            }
        }
    }
}

fn merge_buckets(into: &mut Vec<BucketCount>, from: &[BucketCount]) {
    for b in from {
        match into.binary_search_by_key(&b.bucket, |probe| probe.bucket) {
            Ok(i) => into[i].count += b.count,
            Err(i) => into.insert(i, *b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)]) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: counters
                .iter()
                .map(|&(name, value)| CounterSnapshot {
                    name: name.into(),
                    value,
                })
                .collect(),
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn merge_sums_counters_and_keeps_order() {
        let mut a = snap(&[("alpha", 1), ("gamma", 3)]);
        let b = snap(&[("alpha", 9), ("beta", 2)]);
        a.merge(&b);
        let names: Vec<&str> = a.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert_eq!(a.counter("alpha"), Some(10));
        assert_eq!(a.counter("beta"), Some(2));
    }

    #[test]
    fn merge_sums_histograms_bucketwise_and_spans() {
        let mut a = TelemetrySnapshot {
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                buckets: vec![BucketCount {
                    bucket: 1,
                    count: 2,
                }],
            }],
            spans: vec![SpanSnapshot {
                path: "root".into(),
                count: 1,
                total_ns: 100,
            }],
            ..TelemetrySnapshot::default()
        };
        let b = TelemetrySnapshot {
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                buckets: vec![
                    BucketCount {
                        bucket: 0,
                        count: 5,
                    },
                    BucketCount {
                        bucket: 1,
                        count: 1,
                    },
                ],
            }],
            spans: vec![SpanSnapshot {
                path: "root".into(),
                count: 2,
                total_ns: 50,
            }],
            ..TelemetrySnapshot::default()
        };
        a.merge(&b);
        assert_eq!(
            a.histograms[0].buckets,
            vec![
                BucketCount {
                    bucket: 0,
                    count: 5
                },
                BucketCount {
                    bucket: 1,
                    count: 3
                },
            ]
        );
        assert_eq!(a.spans[0].count, 3);
        assert_eq!(a.spans[0].total_ns, 150);
    }

    #[test]
    fn deterministic_counters_drop_ns_names() {
        let s = snap(&[
            ("engine.batches", 4),
            ("engine.busy_ns", 999),
            ("pool.blocks", 7),
            ("pool.steals", 3),
        ]);
        let det = s.deterministic_counters();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].name, "engine.batches");
        assert!(!s.is_empty());
        assert!(TelemetrySnapshot::default().is_empty());
    }
}
