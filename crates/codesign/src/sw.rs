//! Software cost model: the g++ path of the co-design flow.

use scdp_hls::{Dfg, OpKind, SckStyle};

/// Instruction-level cost model of a scalar in-order processor.
///
/// The paper's software rows (execution time and executable size) are
/// dominated by the extra arithmetic the overloading introduces; the
/// model counts operator-level instructions per loop iteration. Wall
/// clock on real hardware is measured separately by the Criterion
/// benches over `scdp-fir`.
#[derive(Clone, Debug, PartialEq)]
pub struct SwCostModel {
    /// Cycles of an ALU instruction (add/sub/neg/compare).
    pub alu_cycles: u64,
    /// Cycles of a multiply.
    pub mul_cycles: u64,
    /// Cycles of a divide/remainder.
    pub div_cycles: u64,
    /// Cycles of a load or store.
    pub mem_cycles: u64,
    /// Per-iteration loop overhead (branch, bookkeeping).
    pub loop_overhead: u64,
    /// Bytes per emitted instruction (RISC-style fixed width).
    pub bytes_per_instr: u64,
    /// Fixed executable size (runtime, libraries) in bytes.
    pub base_bytes: u64,
}

impl Default for SwCostModel {
    fn default() -> Self {
        Self {
            alu_cycles: 1,
            mul_cycles: 3,
            div_cycles: 20,
            mem_cycles: 2,
            loop_overhead: 2,
            bytes_per_instr: 4,
            base_bytes: 888 * 1024,
        }
    }
}

/// Estimated software implementation of a loop body.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SwImplementation {
    /// Cycles per loop iteration.
    pub cycles_per_iteration: u64,
    /// Instructions per loop iteration.
    pub instructions_per_iteration: u64,
    /// Estimated executable size in bytes (body + fixed runtime).
    pub code_bytes: u64,
    /// The SCK style the estimate was produced for.
    pub style_tag: &'static str,
}

impl SwCostModel {
    /// Estimates one loop iteration of `dfg` (already SCK-expanded or
    /// plain).
    #[must_use]
    pub fn estimate(&self, dfg: &Dfg, style: SckStyle) -> SwImplementation {
        let mut cycles = self.loop_overhead;
        let mut instrs = 0u64;
        for (_, node) in dfg.iter() {
            let c = match &node.kind {
                OpKind::Add | OpKind::Sub | OpKind::Neg | OpKind::CmpNe | OpKind::OrBit => {
                    self.alu_cycles
                }
                OpKind::Mul => self.mul_cycles,
                OpKind::Div | OpKind::Rem => self.div_cycles,
                OpKind::Load { .. } | OpKind::Store { .. } => self.mem_cycles,
                OpKind::Input(_) | OpKind::Const(_) | OpKind::Output(_) => continue,
            };
            cycles += c;
            instrs += 1;
        }
        SwImplementation {
            cycles_per_iteration: cycles,
            instructions_per_iteration: instrs,
            code_bytes: self.base_bytes + instrs * self.bytes_per_instr,
            style_tag: match style {
                SckStyle::Plain => "plain",
                SckStyle::Full => "sck",
                SckStyle::Embedded => "embedded",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::Technique;
    use scdp_hls::{expand_sck, OpKind};

    fn body() -> Dfg {
        let mut d = Dfg::new("body");
        let i = d.input("i");
        let acc = d.input("acc");
        let one = d.constant(1);
        let i2 = d.op(OpKind::Add, &[i, one]);
        d.output("_i", i2);
        let c = d.op(OpKind::Load { bank: 0 }, &[i]);
        let x = d.op(OpKind::Load { bank: 1 }, &[i]);
        let t = d.op(OpKind::Mul, &[c, x]);
        let s = d.op(OpKind::Add, &[acc, t]);
        d.output("acc", s);
        d
    }

    #[test]
    fn plain_estimate() {
        let m = SwCostModel::default();
        let e = m.estimate(&body(), SckStyle::Plain);
        // 2 adds + 1 mul + 2 loads = 1+1+3+2+2 = 9 (+2 loop) cycles.
        assert_eq!(e.cycles_per_iteration, 11);
        assert_eq!(e.instructions_per_iteration, 5);
    }

    #[test]
    fn sck_slowdown_is_moderate_and_size_delta_small() {
        // The paper: exe time 6.83 -> 10.02 s (~1.47x), size 889 -> 893 KB.
        let m = SwCostModel::default();
        let plain = m.estimate(&body(), SckStyle::Plain);
        let full = m.estimate(
            &expand_sck(&body(), Technique::Tech1, SckStyle::Full),
            SckStyle::Full,
        );
        let emb = m.estimate(
            &expand_sck(&body(), Technique::Tech1, SckStyle::Embedded),
            SckStyle::Embedded,
        );
        let slow_full = full.cycles_per_iteration as f64 / plain.cycles_per_iteration as f64;
        let slow_emb = emb.cycles_per_iteration as f64 / plain.cycles_per_iteration as f64;
        assert!(slow_full > slow_emb && slow_emb > 1.0);
        assert!(slow_full < 3.5, "slowdown {slow_full}");
        // Code size: within ~1% as in the paper.
        let delta = full.code_bytes - plain.code_bytes;
        assert!(delta * 100 < plain.code_bytes, "delta {delta}");
    }
}
