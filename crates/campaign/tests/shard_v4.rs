//! Sharded-campaign correctness: `scdp.campaign.report/v4` schema
//! round-trips, and — the acceptance bar of the orchestrator layer —
//! merged shard reports **bit-identical** to the unsharded run for all
//! three backends (gate, datapath, sequential), at several shard
//! counts and thread counts, including through JSON (the resume path).

use scdp_campaign::{
    Backend, CampaignError, CampaignReport, DatapathScenario, DfgSource, ExecPolicy, FaultDuration,
    InputSpace, Scenario, REPORT_SCHEMA_V4,
};
use scdp_core::{Operator, Technique};

/// Serialises with the wall clock zeroed: everything else in the
/// schema must match bit for bit between a merged and a fresh run.
fn canonical_json(report: &CampaignReport) -> String {
    let mut r = report.clone();
    r.elapsed_ms = 0;
    r.to_json()
}

/// Runs `run(shard)` for every shard of a `count`-way plan, merges,
/// and checks bit-identity against `full` — both in memory and after a
/// JSON round trip of every partial report (the checkpoint/resume
/// path).
fn assert_sharded_merge_is_bit_identical(
    full: &CampaignReport,
    count: u32,
    run: impl Fn(u32, u32) -> CampaignReport,
) {
    let shards: Vec<CampaignReport> = (0..count).map(|i| run(i, count)).collect();
    for (i, s) in shards.iter().enumerate() {
        let info = s.shard.expect("partial reports carry the shard section");
        assert_eq!((info.index, info.count), (i as u32, count));
        assert_eq!(info.total_faults, full.fault_count());
        assert!(canonical_json(s).contains(REPORT_SCHEMA_V4));
    }
    // In-memory merge (shards deliberately out of order).
    let mut shuffled = shards.clone();
    shuffled.reverse();
    let merged = CampaignReport::merge(&shuffled).expect("merge");
    assert!(merged.same_results(full), "{count}-way merge diverged");
    assert_eq!(canonical_json(&merged), canonical_json(full), "{count}-way");
    // Through the serialised checkpoints.
    let parsed: Vec<CampaignReport> = shards
        .iter()
        .map(|s| CampaignReport::from_json(&s.to_json()).expect("v4 parses"))
        .collect();
    let merged = CampaignReport::merge(&parsed).expect("merge parsed");
    assert_eq!(
        canonical_json(&merged),
        canonical_json(full),
        "{count}-way through JSON"
    );
}

#[test]
fn gate_backend_shards_merge_bit_identical() {
    let spec = |threads: usize| {
        Scenario::new(Operator::Add, 4)
            .technique(Technique::Tech1)
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(threads))
    };
    let full = spec(2).run().expect("full run");
    for count in [1, 2, 3, 5] {
        // Thread count varies per shard on purpose: results must not
        // depend on it.
        assert_sharded_merge_is_bit_identical(&full, count, |i, n| {
            spec(1 + (i as usize) % 3).shard(i, n).run().expect("shard")
        });
    }
}

#[test]
fn functional_backend_shards_merge_bit_identical() {
    let spec = || {
        Scenario::new(Operator::Mul, 3)
            .campaign()
            .exec(ExecPolicy::new().threads(2))
    };
    let full = spec().run().expect("full run");
    for count in [2, 4] {
        assert_sharded_merge_is_bit_identical(&full, count, |i, n| {
            spec().shard(i, n).run().expect("shard")
        });
    }
}

#[test]
fn datapath_shards_merge_bit_identical_per_fu_included() {
    let scenario = || DatapathScenario::new(DfgSource::Dot, 2).technique(Technique::Tech1);
    let space = InputSpace::Sampled {
        per_fault: 128,
        seed: 0xDA7E,
    };
    let full = scenario()
        .campaign()
        .input_space(space)
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("full run");
    for count in [2, 3] {
        assert_sharded_merge_is_bit_identical(&full, count, |i, n| {
            scenario()
                .campaign()
                .input_space(space)
                .exec(ExecPolicy::new().threads(1 + (i as usize) % 2))
                .shard(i, n)
                .run()
                .expect("shard")
        });
    }
    // Per-FU fault counts in each shard sum to the unsharded counts.
    let shard0 = scenario()
        .campaign()
        .input_space(space)
        .shard(0, 2)
        .run()
        .expect("shard 0");
    let (full_dp, shard_dp) = (
        full.datapath.as_ref().unwrap(),
        shard0.datapath.as_ref().unwrap(),
    );
    let full_faults: u64 = full_dp.per_fu.iter().map(|f| f.faults).sum();
    let shard_faults: u64 = shard_dp.per_fu.iter().map(|f| f.faults).sum();
    assert_eq!(full_faults, full.fault_count());
    assert_eq!(shard_faults, shard0.fault_count());
    assert!(shard_faults < full_faults);
}

#[test]
fn sequential_shards_merge_bit_identical_latency_hist_included() {
    let spec = || {
        DatapathScenario::new(DfgSource::Fir, 3)
            .technique(Technique::Tech1)
            .seq_campaign()
            .duration(FaultDuration::Permanent)
            .input_space(InputSpace::Sampled {
                per_fault: 256,
                seed: 0x5E9,
            })
            .exec(ExecPolicy::new().threads(2))
    };
    let full = spec().run().expect("full run");
    for count in [2, 4] {
        assert_sharded_merge_is_bit_identical(&full, count, |i, n| {
            spec().shard(i, n).run().expect("shard")
        });
    }
    // The merged latency histogram is the element-wise sum — pinned by
    // the byte-identity above, spelled out here for clarity.
    let shards: Vec<CampaignReport> = (0..2).map(|i| spec().shard(i, 2).run().unwrap()).collect();
    let merged = CampaignReport::merge(&shards).unwrap();
    let sum: Vec<u64> = shards[0]
        .sequential
        .as_ref()
        .unwrap()
        .first_detect_hist
        .iter()
        .zip(&shards[1].sequential.as_ref().unwrap().first_detect_hist)
        .map(|(a, b)| a + b)
        .collect();
    assert_eq!(merged.sequential.as_ref().unwrap().first_detect_hist, sum);
    assert_eq!(
        merged.sequential.as_ref().unwrap().first_detect_hist,
        full.sequential.as_ref().unwrap().first_detect_hist
    );
}

#[test]
fn shard_validation_is_typed() {
    let base = || Scenario::new(Operator::Add, 3).campaign();
    assert!(matches!(
        base().shard(0, 0).run(),
        Err(CampaignError::ZeroShards)
    ));
    assert!(matches!(
        base().shard(3, 3).run(),
        Err(CampaignError::ShardIndexOutOfRange { index: 3, count: 3 })
    ));
    let seq = DatapathScenario::new(DfgSource::Dot, 2)
        .seq_campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 16,
            seed: 1,
        });
    assert!(matches!(
        seq.clone().shard(9, 4).run(),
        Err(CampaignError::ShardIndexOutOfRange { index: 9, count: 4 })
    ));
    assert!(matches!(
        seq.shard(0, 0).run(),
        Err(CampaignError::ZeroShards)
    ));
}

#[test]
fn merges_reject_inconsistent_partials() {
    let spec = |seed: u64| {
        Scenario::new(Operator::Add, 3)
            .campaign()
            .backend(Backend::GateLevel)
            .input_space(InputSpace::Sampled {
                per_fault: 64,
                seed,
            })
    };
    let shards: Vec<CampaignReport> = (0..3).map(|i| spec(7).shard(i, 3).run().unwrap()).collect();
    // Complete and consistent: merges.
    assert!(CampaignReport::merge(&shards).is_ok());
    // Missing a shard.
    assert!(matches!(
        CampaignReport::merge(&shards[..2]),
        Err(CampaignError::ShardMerge { .. })
    ));
    // Duplicate shard.
    let dup = vec![shards[0].clone(), shards[0].clone(), shards[2].clone()];
    assert!(matches!(
        CampaignReport::merge(&dup),
        Err(CampaignError::ShardMerge { .. })
    ));
    // A shard from a different campaign (different seed → different
    // fingerprint).
    let alien = spec(8).shard(1, 3).run().unwrap();
    let mixed = vec![shards[0].clone(), alien, shards[2].clone()];
    match CampaignReport::merge(&mixed) {
        Err(CampaignError::ShardMerge { message }) => {
            assert!(message.contains("fingerprint"), "{message}");
        }
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
    // A full (non-shard) report cannot participate.
    let full = spec(7).run().unwrap();
    assert!(matches!(
        CampaignReport::merge(&[full]),
        Err(CampaignError::ShardMerge { .. })
    ));
    // Empty input.
    assert!(matches!(
        CampaignReport::merge(&[]),
        Err(CampaignError::ShardMerge { .. })
    ));
}

#[test]
fn v4_schema_and_shard_section_must_agree() {
    let shard = Scenario::new(Operator::Add, 2)
        .campaign()
        .backend(Backend::GateLevel)
        .shard(0, 2)
        .run()
        .unwrap();
    let mut canonical = shard.clone();
    canonical.elapsed_ms = 0;
    let v4 = canonical.to_json();
    assert!(v4.contains(REPORT_SCHEMA_V4));
    assert!(v4.contains("\"shard\": {\"index\": 0, \"count\": 2"));
    let parsed = CampaignReport::from_json(&v4).expect("v4 parses");
    assert_eq!(parsed.shard, shard.shard);
    assert_eq!(parsed.to_json(), v4, "serialisation is a fixpoint");

    // v4 tag without the section: typed error.
    let stripped = {
        let start = v4.find("  \"shard\":").expect("section present");
        let end = v4[start..].find("},\n").expect("section end") + start + 3;
        format!("{}{}", &v4[..start], &v4[end..])
    };
    assert!(matches!(
        CampaignReport::from_json(&stripped),
        Err(CampaignError::Schema { field: "shard", .. })
    ));
    // v1 tag with the section: typed error.
    let mislabelled = v4.replace("scdp.campaign.report/v4", "scdp.campaign.report/v1");
    assert!(matches!(
        CampaignReport::from_json(&mislabelled),
        Err(CampaignError::Schema { field: "shard", .. })
    ));
    // Malformed members and geometry: typed errors.
    for (from, to) in [
        ("\"index\": 0", "\"index\": true"),
        ("\"index\": 0, \"count\": 2", "\"index\": 5, \"count\": 2"),
        ("\"total_faults\": ", "\"total_faults\": 1, \"was\": "),
    ] {
        let bad = v4.replacen(from, to, 1);
        assert_ne!(bad, v4, "{from}: replacement did not apply");
        assert!(
            matches!(
                CampaignReport::from_json(&bad),
                Err(CampaignError::Schema { field: "shard", .. })
            ),
            "{from} -> {to} must be a shard schema error"
        );
    }
}

#[test]
fn malformed_fault_specs_surface_as_typed_campaign_errors() {
    // The engine-level validators are re-exported through the unified
    // error type; the library paths that used to panic now return
    // `CampaignError::FaultSpec` (exercised directly at the sim layer
    // in `scdp-sim`'s tests; here we pin the campaign-level Display).
    let err = CampaignError::FaultSpec {
        message: "fault pin 7 out of range: gate 3 has 2 input pins".into(),
    };
    assert_eq!(
        err.to_string(),
        "malformed fault spec: fault pin 7 out of range: gate 3 has 2 input pins"
    );
    assert_eq!(
        CampaignError::ZeroShards.to_string(),
        "shard plans need at least one shard"
    );
    assert_eq!(
        CampaignError::ShardIndexOutOfRange { index: 4, count: 4 }.to_string(),
        "shard index 4 out of range 0..4"
    );
}
