//! Deductive fault pre-classification: untestability proofs.
//!
//! [`PrunedUniverse`] classifies every fault group of a campaign
//! universe *before a single vector is simulated*, using only the
//! constant-propagation lattice (see [`mod@crate::lint`]) and the netlist
//! DAG structure. A group proven untestable behaves exactly like the
//! fault-free machine on **every** input vector (and, for sequential
//! netlists, on every cycle), so a campaign can skip it and fill in the
//! fault-free baseline outcome verbatim — bit-identical to simulating
//! it, at zero cost (`scdp-campaign`'s `.prune(true)`).
//!
//! Two proof tiers run per group:
//!
//! 1. **No-op proofs** (`Redundant`/`Blocked`) — every line of the
//!    group is individually a no-op: either it sticks a net at the
//!    constant value the net already holds, or it sits on an input pin
//!    of an AND/OR/NAND/NOR gate whose *other* pin is proven constant
//!    at the gate's controlling value, so the forced pin can never
//!    influence the output. By induction over topological order (and
//!    over cycles, for Dff-bearing netlists), all nets then hold their
//!    fault-free values under the whole group.
//! 2. **Observability-cone proofs** (`Unobservable`) — the group's
//!    possible disturbance, seeded at the outputs of every gate a group
//!    line touches, is closed forward over the reader graph
//!    (Dff-aware: a disturbed D net disturbs the Q output in the next
//!    cycle). Propagation through an AND/OR/NAND/NOR reader is blocked
//!    when its other pin is proven constant at the controlling value
//!    *and* that pin is itself outside the disturbance closure. If the
//!    blocked closure never reaches a primary-output or alarm net, no
//!    vector can ever expose the group.
//!
//! Both proofs are deliberately conservative: `MustSimulate` means
//! "not proven", never "testable". The soundness obligation — every
//! `ProvenUntestable` verdict is exhaustively brute-force-checked on
//! seeded random netlists — lives in `tests/deduce_prop.rs`.

use scdp_netlist::{GateKind, Netlist, StuckAtLine};
use std::collections::HashMap;

/// Why a fault group is provably untestable.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UntestableReason {
    /// Every line sticks a net at the constant value it already holds:
    /// the faulty function *is* the fault-free function.
    Redundant,
    /// Every line is a no-op, at least one because the other pin of its
    /// gate is proven constant at the controlling value (the classic
    /// "blocked path": the faulted pin can never drive the output).
    Blocked,
    /// The group can disturb nets, but its disturbance cone — closed
    /// forward over the DAG with constant-blocked side inputs pruned —
    /// never reaches a primary output or checker alarm.
    Unobservable,
}

/// Pre-simulation verdict for one fault group.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The group provably behaves like the fault-free machine on every
    /// vector; campaigns may settle it with the baseline outcome.
    ProvenUntestable(UntestableReason),
    /// No proof found — the group must be simulated.
    MustSimulate,
}

/// How a single line was proven dead, if it was.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Kill {
    Redundant,
    Blocked,
}

/// The deductive layer over a campaign's fault-group universe: one
/// [`Verdict`] per group, in the order the groups were given.
#[derive(Clone, Debug)]
pub struct PrunedUniverse {
    verdicts: Vec<Verdict>,
    untestable: usize,
}

impl PrunedUniverse {
    /// Classifies every group of `groups` against `netlist`.
    ///
    /// Groups may hold any number of lines (the proofs are sound for
    /// multi-line groups and for sequential netlists — transient
    /// faults included, since a per-cycle no-op stays a no-op). An
    /// empty group *is* the fault-free machine and classifies as
    /// `Redundant`.
    #[must_use]
    pub fn build(netlist: &Netlist, groups: &[Vec<StuckAtLine>]) -> Self {
        let gates = netlist.gates();
        let readers = netlist.readers();
        let consts = crate::lint::propagate_constants(netlist);
        let observable: Vec<bool> = (0..gates.len()).map(|n| netlist.is_output_net(n)).collect();
        // Tier-2 verdicts depend only on the set of touched gates, and
        // campaign universes repeat those heavily (both polarities of a
        // site, correlated FU groups), so the closure is memoised.
        let mut cone_cache: HashMap<Vec<usize>, bool> = HashMap::new();
        let mut untestable = 0usize;
        let verdicts = groups
            .iter()
            .map(|group| {
                let v = classify(
                    netlist,
                    &readers,
                    &consts,
                    &observable,
                    group,
                    &mut cone_cache,
                );
                if matches!(v, Verdict::ProvenUntestable(_)) {
                    untestable += 1;
                }
                v
            })
            .collect();
        PrunedUniverse {
            verdicts,
            untestable,
        }
    }

    /// Verdict for group `i` (panics if out of range).
    #[must_use]
    pub fn verdict(&self, i: usize) -> Verdict {
        self.verdicts[i]
    }

    /// All verdicts, in group order.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Indices of every group proven untestable.
    #[must_use]
    pub fn untestable_indices(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v, Verdict::ProvenUntestable(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of groups proven untestable.
    #[must_use]
    pub fn untestable_count(&self) -> usize {
        self.untestable
    }

    /// Number of groups classified.
    #[must_use]
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// `true` when no groups were classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

fn classify(
    netlist: &Netlist,
    readers: &[Vec<(usize, u8)>],
    consts: &[Option<bool>],
    observable: &[bool],
    group: &[StuckAtLine],
    cone_cache: &mut HashMap<Vec<usize>, bool>,
) -> Verdict {
    // Tier 1: every line individually a no-op.
    let kills: Vec<Option<Kill>> = group
        .iter()
        .map(|line| kill_of(netlist, consts, line))
        .collect();
    if kills.iter().all(Option::is_some) {
        let reason = if kills.contains(&Some(Kill::Blocked)) {
            UntestableReason::Blocked
        } else {
            UntestableReason::Redundant
        };
        return Verdict::ProvenUntestable(reason);
    }
    // Tier 2: the whole group's disturbance cone is blind. Seeded at
    // every gate a line touches — deliberately ignoring per-line kills,
    // which keeps the closure sound without conditional reasoning.
    let mut sources: Vec<usize> = group.iter().map(|l| l.site.gate).collect();
    sources.sort_unstable();
    sources.dedup();
    let blind = *cone_cache
        .entry(sources.clone())
        .or_insert_with(|| cone_is_blind(netlist, readers, consts, observable, &sources));
    if blind {
        Verdict::ProvenUntestable(UntestableReason::Unobservable)
    } else {
        Verdict::MustSimulate
    }
}

/// Proof that a single line can never change any net value, or `None`.
fn kill_of(netlist: &Netlist, consts: &[Option<bool>], line: &StuckAtLine) -> Option<Kill> {
    let gates = netlist.gates();
    let g = line.site.gate;
    let Some(p) = line.site.pin else {
        // Stem fault: redundant iff the net is proven constant at the
        // stuck value. (Holds for Dff outputs too — `consts` never
        // proves a Dff net, so this simply never fires there.)
        return (consts[g] == Some(line.value)).then_some(Kill::Redundant);
    };
    let gate = &gates[g];
    let src = if p == 0 { gate.a } else { gate.b }?;
    if consts[src.index()] == Some(line.value) {
        // The pin already reads the stuck value on every vector (for a
        // Dff D pin: every captured value is the constant, and the
        // reset state is irrelevant to what the fault could change).
        return Some(Kill::Redundant);
    }
    let controlling = match gate.kind {
        GateKind::And | GateKind::Nand => false,
        GateKind::Or | GateKind::Nor => true,
        _ => return None,
    };
    let other = if p == 0 { gate.b } else { gate.a }?;
    (consts[other.index()] == Some(controlling)).then_some(Kill::Blocked)
}

/// `true` when no disturbance seeded at `sources` can reach an output
/// or alarm net. Two forward closures over the reader graph:
///
/// * `tainted` — the unrestricted closure: a conservative superset of
///   every net the group could *possibly* disturb (on any vector, in
///   any cycle — Dff edges carry taint across cycles).
/// * the blocked closure — like `tainted`, but a side-controlled
///   AND/OR/NAND/NOR reader stops propagation when its other pin is
///   proven constant at the controlling value and is *not* itself
///   tainted (a tainted "constant" pin can no longer be trusted).
///
/// Any net outside `tainted` provably holds its fault-free value on
/// every vector and cycle, which is what makes the blocking test
/// valid; the truly-disturbed set is then contained in the blocked
/// closure, so if that closure avoids all output nets the group is
/// invisible.
fn cone_is_blind(
    netlist: &Netlist,
    readers: &[Vec<(usize, u8)>],
    consts: &[Option<bool>],
    observable: &[bool],
    sources: &[usize],
) -> bool {
    let gates = netlist.gates();
    let mut tainted = vec![false; gates.len()];
    let mut stack: Vec<usize> = sources.to_vec();
    for &s in sources {
        tainted[s] = true;
    }
    while let Some(n) = stack.pop() {
        for &(h, _) in &readers[n] {
            if !tainted[h] {
                tainted[h] = true;
                stack.push(h);
            }
        }
    }
    let mut reached = vec![false; gates.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &s in sources {
        if observable[s] {
            return false;
        }
        reached[s] = true;
        stack.push(s);
    }
    while let Some(n) = stack.pop() {
        for &(h, p) in &readers[n] {
            if reached[h] {
                continue;
            }
            let gate = &gates[h];
            let blocked = match gate.kind {
                GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                    let controlling = matches!(gate.kind, GateKind::Or | GateKind::Nor);
                    let other = if p == 0 { gate.b } else { gate.a };
                    other.is_some_and(|o| {
                        consts[o.index()] == Some(controlling) && !tainted[o.index()]
                    })
                }
                _ => false,
            };
            if !blocked {
                if observable[h] {
                    return false;
                }
                reached[h] = true;
                stack.push(h);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::{NetlistBuilder, StuckSite};

    fn stem(gate: usize, value: bool) -> StuckAtLine {
        StuckAtLine::new(StuckSite { gate, pin: None }, value)
    }

    fn pin(gate: usize, pin: u8, value: bool) -> StuckAtLine {
        StuckAtLine::new(
            StuckSite {
                gate,
                pin: Some(pin),
            },
            value,
        )
    }

    fn singletons(n: &Netlist) -> Vec<Vec<StuckAtLine>> {
        n.fault_lines().iter().map(|&l| vec![l]).collect()
    }
    use scdp_netlist::Netlist;

    /// Sticking a zero-tied net at 0 is redundant; at 1 it is live.
    #[test]
    fn constant_nets_yield_redundant_verdicts() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let z = b.constant(false);
        let y = b.or(a, z);
        b.output("y", &[y]);
        let n = b.finish();
        let pu = PrunedUniverse::build(
            &n,
            &[vec![stem(z.index(), false)], vec![stem(z.index(), true)]],
        );
        assert_eq!(
            pu.verdict(0),
            Verdict::ProvenUntestable(UntestableReason::Redundant)
        );
        assert_eq!(pu.verdict(1), Verdict::MustSimulate);
    }

    /// A pin behind a controlling-constant side input is blocked: the
    /// AND's other pin is tied to 0, so the faulted pin never matters.
    #[test]
    fn controlling_side_constant_blocks_a_pin() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let z = b.constant(false);
        let y = b.and(a, z);
        let w = b.or(y, a);
        b.output("w", &[w]);
        let n = b.finish();
        // Pin 0 of the AND reads `a` (not constant): s-a-1 on it is a
        // no-op only because pin 1 is tied to the controlling 0.
        let pu = PrunedUniverse::build(&n, &[vec![pin(y.index(), 0, true)]]);
        assert_eq!(
            pu.verdict(0),
            Verdict::ProvenUntestable(UntestableReason::Blocked)
        );
    }

    /// A fault whose only path to the outputs runs through a
    /// controlling-constant gate is unobservable even though the fault
    /// itself genuinely disturbs its net.
    #[test]
    fn blocked_path_yields_unobservable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let z = b.constant(false);
        let x = b.xor(a[0], a[1]); // genuinely live net…
        let y = b.and(x, z); // …read only through a killed AND
        let w = b.or(y, a[0]);
        b.output("w", &[w]);
        let n = b.finish();
        let pu = PrunedUniverse::build(&n, &[vec![stem(x.index(), true)]]);
        assert_eq!(
            pu.verdict(0),
            Verdict::ProvenUntestable(UntestableReason::Unobservable)
        );
    }

    /// The blocking test must refuse a "constant" side pin that the
    /// group itself taints: un-consting the side input re-opens the
    /// path, and the combined fault *is* detectable (a0=a1=0 shows
    /// out 0→1), so claiming `Unobservable` here would be unsound.
    #[test]
    fn tainted_side_constant_does_not_block() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let z = b.constant(false);
        let w = b.buf(z); // proven constant 0 — until the group taints z
        let x = b.xor(a[0], a[1]);
        let y = b.and(x, w);
        let out = b.or(y, a[0]);
        b.output("out", &[out]);
        let n = b.finish();
        // Alone, x s-a-1 is unobservable (the AND is killed by w=0)…
        let pu = PrunedUniverse::build(
            &n,
            &[
                vec![stem(x.index(), true)],
                vec![stem(x.index(), true), stem(z.index(), true)],
            ],
        );
        assert_eq!(
            pu.verdict(0),
            Verdict::ProvenUntestable(UntestableReason::Unobservable)
        );
        // …but grouped with z s-a-1 the side pin is tainted: no proof.
        assert_eq!(pu.verdict(1), Verdict::MustSimulate);
    }

    /// Dff-aware closure: a disturbance captured by a Dff re-emerges at
    /// Q next cycle and must still count as reaching the output.
    #[test]
    fn disturbance_propagates_through_dffs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let q = b.dff();
        let x = b.not(a);
        b.connect_dff(q, x);
        let y = b.buf(q);
        b.output("y", &[y]);
        let n = b.finish();
        let pu = PrunedUniverse::build(&n, &[vec![stem(x.index(), true)]]);
        assert_eq!(pu.verdict(0), Verdict::MustSimulate);
    }

    /// Whole-universe sweep on a mux-with-dead-leg shape: the verdict
    /// split matches the constant structure.
    #[test]
    fn dead_mux_leg_universe_splits_as_expected() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let z = b.constant(false);
        let dead = b.and(a[0], z); // dead leg: constantly 0
        let y = b.or(dead, a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let pu = PrunedUniverse::build(&n, &singletons(&n));
        assert_eq!(pu.len(), n.fault_lines().len());
        assert!(pu.untestable_count() >= 4, "dead-leg lines must prune");
        assert_eq!(pu.untestable_indices().len(), pu.untestable_count());
    }

    /// An empty group is the fault-free machine.
    #[test]
    fn empty_group_is_redundant() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        b.output("y", &[a]);
        let n = b.finish();
        let pu = PrunedUniverse::build(&n, &[vec![]]);
        assert_eq!(
            pu.verdict(0),
            Verdict::ProvenUntestable(UntestableReason::Redundant)
        );
    }
}
