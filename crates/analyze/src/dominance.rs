//! Dominator chains: the consumer of
//! [`CollapsedUniverse::dominance_edges`].
//!
//! A dominance edge `(dominator stem, dominated pin)` is stronger than
//! textbook detectability containment: on any vector where the
//! dominated pin fault perturbs its gate at all, both faults force the
//! *same* gate-output value, so the two faulty machines agree
//! net-for-net on that vector. Chaining such edges through the
//! equivalence-chase rewrites (which preserve the faulty function
//! exactly) yields, per line, a chain `l → e₁ → … → eₖ` where each
//! step carries the same guarantee.
//!
//! That supports exactly one deductive move, used by `scdp-campaign`'s
//! `.prune(true)`: if the chain's **root** `eₖ` simulates *completely
//! silent* — its outcome over the whole vector stream equals the
//! fault-free baseline — then by downward induction every `eᵢ` and
//! finally `l` is silent with the identical (baseline) outcome. On any
//! vector where `l` perturbed, its machine would equal `e₁`'s, whose
//! outputs equal the fault-free ones by induction; on all other
//! vectors `l`'s machine *is* the fault-free machine. If the root is
//! anything but silent, nothing can be concluded and the dominated
//! line must be simulated after all — pruning stays bit-identical
//! either way, it only saves work when the root stays quiet.
//!
//! Chains are only built over single-fault semantics (campaigns apply
//! them to singleton groups on combinational netlists); the argument
//! is per-vector, so it does not survive sequential state divergence
//! across cycles, and `scdp-campaign` never uses chains there.

use crate::collapse::{line_key, CollapsedUniverse};
use scdp_netlist::{Netlist, StuckAtLine};
use std::collections::HashMap;

/// Per-line dominator chains closed over a netlist's dominance edges
/// and equivalence-chase links.
#[derive(Clone, Debug)]
pub struct DominatorChains {
    /// `line_key` → (chain from the line to its root, `true` when at
    /// least one hop is a real dominance edge rather than a chase).
    chains: HashMap<usize, (Vec<StuckAtLine>, bool)>,
}

impl DominatorChains {
    /// Builds the chain for every line of `netlist`'s fault universe,
    /// consuming `cu`'s dominance edges.
    #[must_use]
    pub fn build(netlist: &Netlist, cu: &CollapsedUniverse) -> Self {
        let edge_of: HashMap<usize, StuckAtLine> = cu
            .dominance_edges()
            .iter()
            .map(|&(dominator, dominated)| (line_key(&dominated), dominator))
            .collect();
        let mut chains = HashMap::new();
        for &line in &netlist.fault_lines() {
            let mut chain = Vec::new();
            let mut dominated_hop = false;
            let mut seen = vec![line_key(&line)];
            let mut cur = line;
            loop {
                // Exact-equivalence move first: it never loses
                // information and exposes the pin form the edge table
                // is keyed on.
                let chased = cu.chased(cur);
                if line_key(&chased) != line_key(&cur) && !seen.contains(&line_key(&chased)) {
                    seen.push(line_key(&chased));
                    chain.push(chased);
                    cur = chased;
                    continue;
                }
                match edge_of.get(&line_key(&cur)) {
                    Some(&dom) if !seen.contains(&line_key(&dom)) => {
                        seen.push(line_key(&dom));
                        chain.push(dom);
                        dominated_hop = true;
                        cur = dom;
                    }
                    _ => break,
                }
            }
            if !chain.is_empty() {
                chains.insert(line_key(&line), (chain, dominated_hop));
            }
        }
        DominatorChains { chains }
    }

    /// The full chain from `line` (exclusive) to its root (inclusive);
    /// empty when the line is its own fixpoint.
    #[must_use]
    pub fn chain_of(&self, line: StuckAtLine) -> &[StuckAtLine] {
        self.chains
            .get(&line_key(&line))
            .map_or(&[], |(c, _)| c.as_slice())
    }

    /// The chain root whose silence settles `line`, or `None` when the
    /// chain contains no true dominance hop (pure-equivalence chains
    /// are the collapse pass's job, not a deferral win).
    #[must_use]
    pub fn deferrable_root(&self, line: StuckAtLine) -> Option<StuckAtLine> {
        self.chains
            .get(&line_key(&line))
            .filter(|(_, dominated)| *dominated)
            .and_then(|(c, _)| c.last().copied())
    }

    /// Number of lines with a deferrable (dominance-carrying) chain.
    #[must_use]
    pub fn deferrable_count(&self) -> usize {
        self.chains.values().filter(|(_, d)| *d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::{NetlistBuilder, StuckSite};

    fn stem(gate: usize, value: bool) -> StuckAtLine {
        StuckAtLine::new(StuckSite { gate, pin: None }, value)
    }

    fn pin(gate: usize, pin: u8, value: bool) -> StuckAtLine {
        StuckAtLine::new(
            StuckSite {
                gate,
                pin: Some(pin),
            },
            value,
        )
    }

    /// On a bare AND, pin s-a-1 is dominated by stem s-a-1; the stem
    /// has no outgoing move, so it roots the chain.
    #[test]
    fn and_pin_sa1_chains_to_stem_sa1() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.and(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let dc = DominatorChains::build(&n, &cu);
        let g = y.index();
        assert_eq!(dc.deferrable_root(pin(g, 0, true)), Some(stem(g, true)));
        // The root itself is never deferrable — settle order is acyclic.
        assert_eq!(dc.deferrable_root(stem(g, true)), None);
        // Input stems chase onto the pins first, then take the edge.
        assert_eq!(
            dc.deferrable_root(stem(a[0].index(), true)),
            Some(stem(g, true))
        );
    }

    /// Chains compose across gates: the AND's dominator stem feeds an
    /// OR through a fanout-free net, so the chase carries it onto the
    /// OR pin and (for the right polarity) a second dominance hop lands
    /// on the OR stem.
    #[test]
    fn chains_compose_through_fanout_free_regions() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 3);
        let x = b.and(a[0], a[1]);
        let y = b.or(x, a[2]);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let dc = DominatorChains::build(&n, &cu);
        // pin0-of-AND s-a-0 ≡ AND stem s-a-0 ≡ OR pin0 s-a-0, which is
        // dominated by OR stem s-a-0: a mixed chase/dominance chain.
        let chain = dc.chain_of(pin(x.index(), 0, false));
        assert_eq!(chain.last(), Some(&stem(y.index(), false)));
        assert_eq!(
            dc.deferrable_root(pin(x.index(), 0, false)),
            Some(stem(y.index(), false))
        );
    }

    /// Pure-equivalence chains (inverter pairs) are not deferrable.
    #[test]
    fn pure_equivalence_chains_are_not_deferrable() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", &[y]);
        let n = b.finish();
        let cu = CollapsedUniverse::build(&n);
        let dc = DominatorChains::build(&n, &cu);
        assert_eq!(dc.deferrable_count(), 0);
        assert!(!dc.chain_of(stem(a.index(), false)).is_empty());
        assert_eq!(dc.deferrable_root(stem(a.index(), false)), None);
    }
}
