//! Sequential datapath elaboration: lowering a scheduled, bound
//! dataflow graph onto one **cycle-accurate** shared-FU netlist.
//!
//! [`super::elaborate_datapath`] flattens the schedule into unrolled
//! combinational instances; faults that persist in a physical unit
//! across control steps are only *approximated* there by correlated
//! injection, and single-cycle transients cannot be modelled at all.
//! This module builds the machine the paper actually describes: **one
//! physical instance per bound functional unit**, time-multiplexed by
//! a generated controller, with operand/result registers ([`Dff`]
//! cells) carrying values between control steps.
//!
//! # The machine
//!
//! * **Controller** — a one-hot state chain: `state[c]` is high exactly
//!   in cycle `c` (a `started` flip-flop distinguishes cycle 0; each
//!   further state bit delays the previous one). The schedule is static,
//!   so this chain *is* the FSM controller ROM: every mux select and
//!   register enable is a fixed OR over state lines.
//! * **Functional units** — one structural instance per bound unit:
//!   operand mux chains (identical gate structure to the unrolled
//!   elaboration, but steered by dynamic select lines instead of
//!   per-instance constants) followed by the arithmetic core. The
//!   carry-in is muxed per leg the same way.
//! * **Registers** — every operation result is captured into its own
//!   `width`-bit register at the last cycle the operation occupies its
//!   unit (`state[avail-1]` enables a keep/capture mux in front of each
//!   Dff). Primary inputs are held constant for the whole iteration,
//!   so they need no registers.
//! * **Checkers** — comparators read registered values and are *gated*
//!   by the state line of the cycle all their operands become valid in;
//!   each comparator feeds a sticky alarm flip-flop. The `error` output
//!   ORs the sticky bits with the current cycle's gated comparisons, so
//!   a detection is visible in the cycle it happens — the basis of
//!   per-cycle detection-latency measurement.
//!
//! The machine runs for [`SeqDatapath::total_cycles`] =
//! `schedule_length + 1` cycles (states `0..=L`); result buses read the
//! registered values and are valid at the final cycle.
//!
//! # Fault universe
//!
//! Because each unit exists exactly once, a permanent stuck-at in a
//! shared unit corrupts every operation executed on it *by
//! construction* — no correlated injection needed. The per-FU local
//! sites enumerate the unit's span (mux chains + core) exactly like the
//! unrolled elaboration, so site `k` here corresponds to site `k` in
//! every unrolled instance of the same unit: the basis of the
//! cross-elaboration equivalence tests.

use super::adder::rca_into;
use super::compare::neq_into;
use super::datapath::{class_label, FuFaultRange};
use super::divider::restoring_divider_into;
use super::mult::array_mult_into;
use super::UnitInstance;
use crate::{GateKind, NetId, Netlist, NetlistBuilder, StuckAtLine, StuckSite};
use scdp_hls::{Binding, Dfg, FuClass, NodeId, OpKind, Role, Schedule};

/// One physical functional unit of the sequential datapath: binding
/// metadata plus its single structural instance (absent for memory
/// ports, which elaborate to primary inputs/outputs rather than gates).
#[derive(Clone, Debug)]
pub struct SeqFuSpan {
    /// Instance name, `<class><index>` (e.g. `alu0`, `mult1`).
    pub name: String,
    /// The unit's resource class.
    pub class: FuClass,
    /// Role partition of the operations bound here (first op's role
    /// when the binding mixes roles on one unit).
    pub role: Role,
    /// The operations executed on this unit with their start cycles,
    /// in schedule order — the mux-leg order of the operand chains.
    pub ops: Vec<(NodeId, u32)>,
    /// The unit's one gate span (mux chains + core).
    pub instance: Option<UnitInstance>,
    /// Gates of the operand mux chains at the start of the span; local
    /// sites below this offset sit in the steering logic, whose fault
    /// behaviour legitimately differs from the unrolled elaboration
    /// (dynamic select lines vs per-instance constants).
    pub mux_gates: usize,
}

impl SeqFuSpan {
    /// Gate count of the instance (0 for memory ports).
    #[must_use]
    pub fn instance_gates(&self) -> usize {
        self.instance.as_ref().map_or(0, UnitInstance::len)
    }
}

/// The result of the sequential elaboration: one cycle-accurate netlist
/// plus the per-FU spans defining the datapath's fault universe.
#[derive(Clone, Debug)]
pub struct SeqDatapath {
    /// The elaborated sequential netlist (`error` output = alarm bus,
    /// live every cycle; result buses valid at the final cycle).
    pub netlist: Netlist,
    /// One span per bound functional unit, binding order.
    pub fus: Vec<SeqFuSpan>,
    /// Operand width in bits.
    pub width: u32,
    /// Node count of the elaborated DFG (for reports).
    pub nodes: usize,
    /// Schedule length in cycles.
    pub schedule_length: u32,
    /// Cycles one evaluation must run: `schedule_length + 1` (states
    /// `0..=schedule_length`; the extra state lets comparisons of
    /// values registered in the last schedule cycle raise the alarm).
    pub total_cycles: u32,
    /// Word-wide registers of the binding (for reports; the structural
    /// register count is [`SeqDatapath::dffs`]).
    pub registers: usize,
    /// Word-wide mux input legs of the binding.
    pub mux_legs: usize,
    /// State bits (Dff cells) of the elaborated netlist: controller
    /// chain + result registers + sticky alarm bits.
    pub dffs: usize,
}

impl SeqDatapath {
    /// Enumerates every stuck-at site local to the instance of FU `fu`
    /// (empty for memory ports) — offset-compatible with
    /// [`super::ElaboratedDatapath::fu_local_sites`] for the same
    /// binding.
    ///
    /// # Panics
    ///
    /// Panics if `fu` is out of range.
    #[must_use]
    pub fn fu_local_sites(&self, fu: usize) -> Vec<StuckSite> {
        let span = &self.fus[fu];
        let Some(inst) = &span.instance else {
            return Vec::new();
        };
        let gates = self.netlist.gates();
        let mut sites = Vec::new();
        for offset in 0..inst.len() {
            let g = gates[inst.start + offset];
            sites.push(StuckSite {
                gate: offset,
                pin: None,
            });
            for pin in 0..g.kind.pins() {
                sites.push(StuckSite {
                    gate: offset,
                    pin: Some(pin),
                });
            }
        }
        sites
    }

    /// The fault groups of one FU: every instance-local site, both
    /// polarities. Each group is a single line — the physical unit
    /// exists once, so time-multiplexed corruption happens naturally
    /// across cycles instead of via correlated multi-site injection.
    ///
    /// # Panics
    ///
    /// Panics if `fu` is out of range.
    #[must_use]
    pub fn fu_fault_groups(&self, fu: usize) -> Vec<Vec<StuckAtLine>> {
        let span = &self.fus[fu];
        let mut groups = Vec::new();
        if let Some(inst) = &span.instance {
            for site in self.fu_local_sites(fu) {
                for value in [false, true] {
                    groups.push(vec![StuckAtLine::new(inst.globalize(site), value)]);
                }
            }
        }
        groups
    }

    /// The whole datapath's fault universe: every FU's groups in binding
    /// order plus per-FU group-index ranges — index-compatible with
    /// [`super::ElaboratedDatapath::fault_universe`] for the same
    /// binding.
    #[must_use]
    pub fn fault_universe(&self) -> (Vec<Vec<StuckAtLine>>, Vec<FuFaultRange>) {
        let mut groups = Vec::new();
        let mut ranges = Vec::with_capacity(self.fus.len());
        for fu in 0..self.fus.len() {
            let start = groups.len();
            groups.extend(self.fu_fault_groups(fu));
            ranges.push(FuFaultRange {
                fu,
                start,
                end: groups.len(),
            });
        }
        (groups, ranges)
    }
}

/// The netlist value of one DFG node during elaboration.
#[derive(Clone, Debug, Default)]
enum Value {
    /// Virtual nodes with no bus (outputs, stores) or not yet lowered.
    #[default]
    None,
    /// A bus of nets.
    Bus(Vec<NetId>),
}

impl Value {
    fn bus(&self) -> &[NetId] {
        match self {
            Value::Bus(b) => b,
            Value::None => panic!("node has no bus value"),
        }
    }
}

/// The result nets of one elaborated functional unit.
struct FuOut {
    /// Sum / product / quotient bus.
    main: Vec<NetId>,
    /// Remainder bus (divider units only).
    rem: Option<Vec<NetId>>,
}

/// Elaborates a scheduled, bound DFG into one cycle-accurate shared-FU
/// netlist.
///
/// `binding` must come from [`scdp_hls::bind()`] over the same `dfg`
/// and `schedule`. Input buses, result buses and the fault universe are
/// ordered exactly like [`super::elaborate_datapath`]'s, so the two
/// elaborations are differential-testable against the same interpreter
/// and the same input vectors.
///
/// # Panics
///
/// Panics if `width` is 0 or above 32, or if the binding does not cover
/// the DFG.
#[must_use]
pub fn elaborate_seq_datapath(
    dfg: &Dfg,
    schedule: &Schedule,
    binding: &Binding,
    width: u32,
) -> SeqDatapath {
    assert!((1..=32).contains(&width), "width {width} out of range");
    let mut b = NetlistBuilder::new(format!("seq_dp_{}_{width}", dfg.name()));
    let length = schedule.length();

    // Per-node FU assignment: node index -> (fu index, leg position).
    let mut assignment: Vec<Option<(usize, usize)>> = vec![None; dfg.len()];
    let mut fus: Vec<SeqFuSpan> = Vec::new();
    let mut class_counts: std::collections::HashMap<&'static str, usize> =
        std::collections::HashMap::new();
    for fu in &binding.fus {
        let label = class_label(fu.class);
        let index = class_counts.entry(label).or_insert(0);
        let name = format!("{label}{index}");
        *index += 1;
        let mut ops: Vec<(NodeId, u32)> =
            fu.ops.iter().map(|&id| (id, schedule.start(id))).collect();
        ops.sort_by_key(|&(id, start)| (start, id.index()));
        for (leg, &(id, _)) in ops.iter().enumerate() {
            assignment[id.index()] = Some((fus.len(), leg));
        }
        fus.push(SeqFuSpan {
            name,
            class: fu.class,
            role: fu.role,
            ops,
            instance: None,
            mux_gates: 0,
        });
    }

    let zero = b.constant(false);
    let zeros: Vec<NetId> = vec![zero; width as usize];

    // --- Pass 1: value buses -----------------------------------------
    // Inputs and load data become primary input buses (held constant);
    // every sequential operation result becomes a register bus whose D
    // inputs are connected after the FU sections exist.
    let mut values: Vec<Value> = vec![Value::None; dfg.len()];
    for (id, node) in dfg.iter() {
        match &node.kind {
            OpKind::Input(name) => {
                values[id.index()] = Value::Bus(b.input_bus(name.clone(), width));
            }
            OpKind::Const(v) => {
                values[id.index()] =
                    Value::Bus((0..width).map(|i| b.constant((v >> i) & 1 != 0)).collect());
            }
            OpKind::Load { bank } => {
                let n = dfg
                    .iter()
                    .take(id.index())
                    .filter(|(_, m)| matches!(m.kind, OpKind::Load { .. }))
                    .count();
                values[id.index()] = Value::Bus(b.input_bus(format!("load{n}_b{bank}"), width));
            }
            OpKind::Add | OpKind::Sub | OpKind::Neg | OpKind::Mul | OpKind::Div | OpKind::Rem => {
                values[id.index()] = Value::Bus((0..width).map(|_| b.dff()).collect());
            }
            // Outputs/stores have no bus; chained checker logic is
            // lowered in pass 3 (its producers' buses already exist).
            OpKind::Output(_) | OpKind::Store { .. } | OpKind::CmpNe | OpKind::OrBit => {}
        }
    }

    // --- Pass 2: controller ------------------------------------------
    // One-hot state chain: state[c] high exactly in cycle c.
    let one = b.constant(true);
    let started = b.dff();
    b.connect_dff(started, one);
    let mut states: Vec<NetId> = vec![b.not(started)];
    for _ in 1..=length {
        let s = b.dff();
        b.connect_dff(s, states[states.len() - 1]);
        states.push(s);
    }

    // --- Pass 3: functional units ------------------------------------
    // One span per unit: per-leg conditioned operands and select lines
    // outside the span, then (mux chain a, mux chain b, core) inside —
    // the same structure, gate for gate, as one unrolled instance.
    let mut fu_outs: Vec<Option<FuOut>> = Vec::with_capacity(fus.len());
    for fu in &mut fus {
        if fu.class == FuClass::Mem {
            fu_outs.push(None);
            continue;
        }
        let mut port0_legs: Vec<Vec<NetId>> = Vec::with_capacity(fu.ops.len());
        let mut port1_legs: Vec<Vec<NetId>> = Vec::with_capacity(fu.ops.len());
        let mut cin_legs: Vec<bool> = Vec::with_capacity(fu.ops.len());
        for &(id, _) in &fu.ops {
            let node = dfg.node(id);
            let (p0, p1, cin) = match node.kind {
                OpKind::Sub => {
                    let y = values[node.args[1].index()].bus().to_vec();
                    let ny: Vec<NetId> = y.iter().map(|&n| b.not(n)).collect();
                    (values[node.args[0].index()].bus().to_vec(), ny, true)
                }
                OpKind::Neg => {
                    let x = values[node.args[0].index()].bus().to_vec();
                    let nx: Vec<NetId> = x.iter().map(|&n| b.not(n)).collect();
                    (nx, zeros.clone(), true)
                }
                _ => (
                    values[node.args[0].index()].bus().to_vec(),
                    values[node.args[1].index()].bus().to_vec(),
                    false,
                ),
            };
            port0_legs.push(p0);
            port1_legs.push(p1);
            cin_legs.push(cin);
        }
        // Select line of leg m (m >= 1): high while op m occupies the
        // unit. Leg 0 is the chain default, so it needs no select.
        let selects: Vec<NetId> = fu.ops[1..]
            .iter()
            .map(|&(id, start)| {
                let occupancy: Vec<NetId> = (start..schedule.avail(id))
                    .map(|c| states[c as usize])
                    .collect();
                b.or_tree(&occupancy)
            })
            .collect();
        let mut cin = b.constant(cin_legs[0]);
        for (m, &sel) in selects.iter().enumerate() {
            let leg_cin = b.constant(cin_legs[m + 1]);
            cin = b.mux(cin, leg_cin, sel);
        }

        let start = b.mark();
        let a_port = dyn_mux_chain(&mut b, &port0_legs, &selects);
        let b_port = dyn_mux_chain(&mut b, &port1_legs, &selects);
        fu.mux_gates = b.mark() - start;
        let out = match fu.class {
            FuClass::Alu => FuOut {
                main: rca_into(&mut b, &a_port, &b_port, cin).sum,
                rem: None,
            },
            FuClass::Mult => FuOut {
                main: array_mult_into(&mut b, &a_port, &b_port).0,
                rem: None,
            },
            FuClass::Div => {
                let (q, r) = restoring_divider_into(&mut b, &a_port, &b_port);
                FuOut {
                    main: q,
                    rem: Some(r),
                }
            }
            FuClass::Mem => unreachable!("memory ports carry no gates"),
        };
        fu.instance = Some(UnitInstance {
            name: fu.name.clone(),
            start,
            end: b.mark(),
        });
        fu_outs.push(Some(out));
    }

    // --- Pass 4: captures, checkers, outputs -------------------------
    let mut results: Vec<(String, Vec<NetId>)> = Vec::new();
    let mut alarms: Vec<NetId> = Vec::new();
    let mut load_count = 0usize;
    let mut store_count = 0usize;
    for (id, node) in dfg.iter() {
        match &node.kind {
            OpKind::Input(_) | OpKind::Const(_) => {}
            OpKind::Output(name) => {
                let bus = values[node.args[0].index()].bus().to_vec();
                if name == "error" || name.starts_with("_err") {
                    alarms.push(bus[0]);
                } else {
                    results.push((name.clone(), bus));
                }
            }
            OpKind::Load { .. } => {
                let addr = values[node.args[0].index()].bus().to_vec();
                results.push((format!("load{load_count}_addr"), addr));
                load_count += 1;
            }
            OpKind::Store { .. } => {
                let addr = values[node.args[0].index()].bus().to_vec();
                results.push((format!("store{store_count}_addr"), addr));
                if let Some(value) = node.args.get(1) {
                    let val = values[value.index()].bus().to_vec();
                    results.push((format!("store{store_count}_val"), val));
                }
                store_count += 1;
            }
            OpKind::CmpNe => {
                let x = values[node.args[0].index()].bus().to_vec();
                let y = values[node.args[1].index()].bus().to_vec();
                let raw = neq_into(&mut b, &x, &y);
                // Valid once every operand register has captured.
                let valid = node
                    .args
                    .iter()
                    .map(|a| schedule.avail(*a))
                    .max()
                    .unwrap_or(0);
                let gated = b.and(raw, states[valid as usize]);
                let sticky = b.dff();
                let alarm = b.or(sticky, gated);
                b.connect_dff(sticky, alarm);
                values[id.index()] = Value::Bus(vec![alarm]);
            }
            OpKind::OrBit => {
                let x = values[node.args[0].index()].bus()[0];
                let y = values[node.args[1].index()].bus()[0];
                values[id.index()] = Value::Bus(vec![b.or(x, y)]);
            }
            kind @ (OpKind::Add
            | OpKind::Sub
            | OpKind::Neg
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Rem) => {
                let (fu, _) = assignment[id.index()].expect("sequential node is bound");
                let out = fu_outs[fu].as_ref().expect("arithmetic unit has gates");
                let result = if matches!(kind, OpKind::Rem) {
                    out.rem.as_ref().expect("divider remainder tap")
                } else {
                    &out.main
                };
                let en = states[(schedule.avail(id) - 1) as usize];
                let q_bus = values[id.index()].bus().to_vec();
                for (&q, &r) in q_bus.iter().zip(result) {
                    let d = b.mux(q, r, en);
                    b.connect_dff(q, d);
                }
            }
        }
    }

    for (name, bus) in results {
        b.output(name, &bus);
    }
    let error = b.or_tree(&alarms);
    b.output("error", &[error]);

    let netlist = b.finish();
    let dffs = netlist
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Dff)
        .count();
    SeqDatapath {
        netlist,
        fus,
        width,
        nodes: dfg.len(),
        schedule_length: length,
        total_cycles: length + 1,
        registers: binding.registers,
        mux_legs: binding.mux_legs,
        dffs,
    }
}

/// The operand mux chain of one FU port with dynamic select lines: leg
/// 0 is the default; `selects[m - 1]` steers leg `m`. Creates the same
/// `4 × selects.len()` gates per bit, in the same order, as the
/// unrolled elaboration's constant-select chain — the basis of the
/// site-for-site correspondence between the two fault universes.
fn dyn_mux_chain(b: &mut NetlistBuilder, legs: &[Vec<NetId>], selects: &[NetId]) -> Vec<NetId> {
    let mut acc = legs[0].clone();
    for (m, &sel) in selects.iter().enumerate() {
        acc = acc
            .iter()
            .zip(&legs[m + 1])
            .map(|(&a, &l)| b.mux(a, l, sel))
            .collect();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::super::interp::interpret_dfg;
    use super::*;
    use crate::{SeqStuckAt, Word};
    use scdp_core::Technique;
    use scdp_hls::{bind, sched, BindOptions, ComponentLibrary, ResourceSet, SckStyle};

    fn elaborate(dfg: &Dfg, width: u32, opts: BindOptions) -> SeqDatapath {
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(dfg, &lib, &ResourceSet::min_area());
        let binding = bind(dfg, &schedule, &lib, opts);
        elaborate_seq_datapath(dfg, &schedule, &binding, width)
    }

    /// Fault-free cross-check of the sequential netlist against the
    /// shared interpreter, over a deterministic input sweep.
    fn check_fault_free(dfg: &Dfg, width: u32, opts: BindOptions) {
        let dp = elaborate(dfg, width, opts);
        let buses = dp.netlist.inputs().len();
        let mut seed = 0x5EED_05E9_u64;
        for _ in 0..16 {
            let inputs: Vec<Word> = (0..buses)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Word::new(width, (seed >> 24) & ((1 << width) - 1))
                })
                .collect();
            let out = dp.netlist.eval_seq_words(&inputs, dp.total_cycles, &[]);
            let ev = interpret_dfg(dfg, width, &inputs);
            assert!(!ev.alarm, "interpreter must be alarm-free fault-free");
            let n = out.len();
            assert_eq!(out[n - 1].bits(), 0, "fault-free alarm fired");
            for (i, e) in ev.results.iter().enumerate() {
                assert_eq!(out[i], *e, "{} result bus {i}", dfg.name());
            }
        }
    }

    fn mac_dfg() -> Dfg {
        let mut d = Dfg::new("mac");
        let c = d.input("c");
        let x = d.input("x");
        let acc = d.input("acc");
        let t = d.op(OpKind::Mul, &[c, x]);
        let s = d.op(OpKind::Add, &[acc, t]);
        d.output("acc_next", s);
        d
    }

    /// A FIR-like body (local copy; `scdp-fir` depends on this crate's
    /// dependents, not the reverse).
    fn scdp_test_fir() -> Dfg {
        let mut d = Dfg::new("fir_tap");
        let i = d.input("i");
        let acc = d.input("acc");
        let one = d.constant(1);
        let i_next = d.op(OpKind::Add, &[i, one]);
        d.output("_i", i_next);
        let c = d.op(OpKind::Load { bank: 0 }, &[i]);
        let x = d.op(OpKind::Load { bank: 1 }, &[i]);
        let t = d.op(OpKind::Mul, &[c, x]);
        let acc_next = d.op(OpKind::Add, &[acc, t]);
        d.output("acc", acc_next);
        let _shift = d.op(OpKind::Store { bank: 1 }, &[i_next, x]);
        d
    }

    #[test]
    fn mac_matches_interpreter() {
        check_fault_free(&mac_dfg(), 4, BindOptions::default());
    }

    #[test]
    fn expanded_fir_matches_interpreter_all_styles() {
        let body = scdp_test_fir();
        for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
            for tech in [Technique::Tech1, Technique::Both] {
                let g = scdp_hls::expand_sck(&body, tech, style);
                check_fault_free(&g, 4, BindOptions::default());
                check_fault_free(
                    &g,
                    3,
                    BindOptions {
                        separate_checkers: true,
                        no_sharing: false,
                    },
                );
            }
        }
    }

    #[test]
    fn divider_ops_elaborate() {
        let mut d = Dfg::new("divrem");
        let a = d.input("a");
        let b = d.input("b");
        let q = d.op(OpKind::Div, &[a, b]);
        let r = d.op(OpKind::Rem, &[a, b]);
        d.output("q", q);
        d.output("r", r);
        check_fault_free(&d, 4, BindOptions::default());
    }

    #[test]
    fn one_instance_per_unit_and_structural_parity_with_unrolled() {
        // The sequential FU span must be gate-for-gate identical in
        // kind to each unrolled instance of the same unit — that is
        // what makes local fault sites correspond across elaborations.
        let g = scdp_hls::expand_sck(&scdp_test_fir(), Technique::Tech1, SckStyle::Full);
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(&g, &lib, &ResourceSet::min_area());
        let binding = bind(&g, &schedule, &lib, BindOptions::default());
        let seq = elaborate_seq_datapath(&g, &schedule, &binding, 4);
        let unrolled = super::super::elaborate_datapath(&g, &schedule, &binding, 4);
        assert_eq!(seq.fus.len(), unrolled.fus.len());
        let mut shared_seen = false;
        for (sf, uf) in seq.fus.iter().zip(&unrolled.fus) {
            assert_eq!(sf.name, uf.name);
            assert_eq!(sf.ops, uf.ops);
            let Some(inst) = &sf.instance else {
                assert_eq!(sf.class, FuClass::Mem);
                continue;
            };
            if sf.ops.len() > 1 {
                shared_seen = true;
            }
            let first = uf.instances.first().expect("arithmetic unit instance");
            assert_eq!(inst.len(), first.len(), "{}", sf.name);
            for k in 0..inst.len() {
                assert_eq!(
                    seq.netlist.gates()[inst.start + k].kind,
                    unrolled.netlist.gates()[first.start + k].kind,
                    "gate kind mismatch at offset {k} in {}",
                    sf.name
                );
            }
            assert_eq!(sf.mux_gates, 8 * (sf.ops.len() - 1) * 4, "{}", sf.name);
        }
        assert!(shared_seen, "min-area FIR must share at least one FU");
        // Same input and result bus shapes, so the same vectors drive
        // both elaborations.
        let shape = |nl: &Netlist| -> Vec<(String, usize)> {
            nl.inputs()
                .iter()
                .chain(nl.outputs())
                .map(|(n, b)| (n.clone(), b.len()))
                .collect()
        };
        assert_eq!(shape(&seq.netlist), shape(&unrolled.netlist));
    }

    #[test]
    fn fault_universe_partitions_by_fu() {
        let g = scdp_hls::expand_sck(&scdp_test_fir(), Technique::Tech1, SckStyle::Full);
        let dp = elaborate(&g, 3, BindOptions::default());
        let (groups, ranges) = dp.fault_universe();
        assert_eq!(ranges.len(), dp.fus.len());
        let mut cursor = 0usize;
        for r in &ranges {
            assert_eq!(r.start, cursor, "ranges must tile the universe");
            cursor = r.end;
            let span = &dp.fus[r.fu];
            if span.class == FuClass::Mem {
                assert_eq!(r.start, r.end, "memory ports carry no faults");
            } else {
                assert!(r.end > r.start, "{} has no faults", span.name);
                for g in &groups[r.start..r.end] {
                    assert_eq!(g.len(), 1, "one physical site per group");
                }
            }
        }
        assert_eq!(cursor, groups.len());
    }

    #[test]
    fn permanent_fault_corrupts_every_use_of_the_unit() {
        // One ALU executing two adds in sequence: some stuck line in
        // the shared core must corrupt both registered results at once.
        let mut d = Dfg::new("two_adds");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[s1, b]);
        d.output("o1", s1);
        d.output("o2", s2);
        let dp = elaborate(&d, 3, BindOptions::default());
        let alu = dp
            .fus
            .iter()
            .position(|f| f.class == FuClass::Alu)
            .expect("alu");
        assert_eq!(dp.fus[alu].ops.len(), 2, "both adds share the ALU");
        let inst = dp.fus[alu].instance.clone().expect("alu span");
        let zero = Word::new(3, 0);
        let mut corrupted_both = false;
        for site in dp.fu_local_sites(alu) {
            for value in [false, true] {
                let fault = SeqStuckAt::permanent(StuckAtLine::new(inst.globalize(site), value));
                let out = dp
                    .netlist
                    .eval_seq_words(&[zero, zero], dp.total_cycles, &[fault]);
                if out[0].bits() != 0 && out[1].bits() != 0 {
                    corrupted_both = true;
                }
            }
        }
        assert!(corrupted_both, "some physical fault must hit both uses");
    }

    #[test]
    fn transient_fault_hits_only_the_operation_in_flight() {
        // Two independent adds serialized on one ALU; a transient on
        // the core's low sum bit during the second op's cycle corrupts
        // o2 but leaves o1 untouched — inexpressible in the unrolled
        // model.
        let mut d = Dfg::new("two_indep");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[b, a]);
        d.output("o1", s1);
        d.output("o2", s2);
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(&d, &lib, &ResourceSet::min_area());
        let binding = bind(&d, &schedule, &lib, BindOptions::default());
        let dp = elaborate_seq_datapath(&d, &schedule, &binding, 3);
        let alu = dp
            .fus
            .iter()
            .position(|f| f.class == FuClass::Alu)
            .expect("alu");
        assert_eq!(dp.fus[alu].ops.len(), 2);
        let inst = dp.fus[alu].instance.clone().expect("span");
        // Stem of the core's low-bit XOR: force the FU sum low bit to 1
        // with all-zero inputs. Find a core site whose transient at the
        // second op's capture cycle corrupts exactly o2.
        let (second_op, second_start) = dp.fus[alu].ops[1];
        let capture = schedule.avail(second_op) - 1;
        assert!(second_start > dp.fus[alu].ops[0].1, "serialized");
        let zero = Word::new(3, 0);
        let mut only_second = false;
        for site in dp.fu_local_sites(alu) {
            let fault =
                SeqStuckAt::transient(StuckAtLine::new(inst.globalize(site), true), capture);
            let out = dp
                .netlist
                .eval_seq_words(&[zero, zero], dp.total_cycles, &[fault]);
            if out[0].bits() == 0 && out[1].bits() != 0 {
                only_second = true;
                break;
            }
        }
        assert!(only_second, "a transient must be local to one control step");
    }

    #[test]
    fn total_cycles_is_schedule_length_plus_one() {
        let dp = elaborate(&mac_dfg(), 3, BindOptions::default());
        assert_eq!(dp.total_cycles, dp.schedule_length + 1);
        assert!(dp.dffs > 0);
        assert!(dp.netlist.is_sequential());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_is_rejected() {
        let d = mac_dfg();
        let lib = ComponentLibrary::virtex16();
        let s = sched::list_schedule(&d, &lib, &ResourceSet::min_area());
        let bnd = bind(&d, &s, &lib, BindOptions::default());
        let _ = elaborate_seq_datapath(&d, &s, &bnd, 0);
    }
}
