//! Thin wrapper: `table_seq [ARGS]` ≡ `scdp sweep --seq [ARGS]`.
//!
//! The cycle-accurate workload × technique × duration sweep lives in
//! the unified `scdp` CLI now (`scdp_bench::scdp_cli`); this binary
//! survives so existing scripts and CI invocations keep working
//! unchanged.

fn main() {
    let mut args = vec!["sweep".to_string(), "--seq".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(scdp_bench::scdp_cli::run(args));
}
