//! A miniature fault-coverage campaign (the paper's §4 analysis) from
//! the public API: exhaustively classify every (fault, input) situation
//! of a 4-bit self-checking adder under both allocations through the
//! unified `scdp::campaign` surface, then validate the functional
//! result at gate level on the same scenario.
//!
//! Run with: `cargo run --release --example fault_campaign`

use scdp::campaign::{Backend, FaultModel, Scenario, TechIndex};
use scdp::core::{Allocation, Operator};

fn main() {
    println!("4-bit self-checking adder, exhaustive campaign\n");
    for alloc in [Allocation::SingleUnit, Allocation::Dedicated] {
        let report = Scenario::new(Operator::Add, 4)
            .allocation(alloc)
            .campaign()
            .run()
            .expect("valid scenario");
        println!("allocation: {alloc:?}");
        println!("  situations: {}", report.total_situations());
        for tech in TechIndex::ALL {
            let t = report.column(tech).expect("functional fills all columns");
            println!(
                "  {tech:<9} coverage {:>7.2}%  (observable {}, undetected {}, early-detected {})",
                t.coverage() * 100.0,
                t.observable(),
                t.error_undetected,
                t.correct_detected,
            );
        }
        println!();
    }

    // The same scenario, same fault model, gate-level engine: the §4
    // "functional campaign, then gate-level validation" flow.
    let scenario = Scenario::new(Operator::Add, 4);
    let spec = scenario.campaign().fault_model(FaultModel::FaGate);
    let functional = spec.clone().run().expect("functional");
    let gate = spec.backend(Backend::GateLevel).run().expect("gate level");
    println!(
        "gate-level validation: functional {:.4}% vs gate {:.4}% — {}",
        functional.coverage() * 100.0,
        gate.coverage() * 100.0,
        if functional.same_results(&gate) {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );
    println!("\nDedicated checker units detect every observable error (§2.1);");
    println!("the shared unit exposes the worst-case masking of Table 2.");
}
