//! Execution-unit models: where checked operations actually run.

use scdp_arith::{ArrayMultiplier, RcaFault, RestoringDivider, RippleCarryAdder, Word};
use scdp_fault::{FaGateFault, UnitFault};
use std::fmt;

/// Which role an operation plays inside a checked operator.
///
/// The distinction drives the paper's worst-case analysis: with limited
/// resources (a monoprocessor, or a resource-shared datapath) the
/// *checking* operation executes on the **same** functional unit as the
/// nominal one and a fault may mask itself; with dedicated resources the
/// checker unit is fault-free and coverage is total (§2.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The nominal (user-visible) operation.
    Nominal,
    /// A hidden checking operation.
    Checker,
}

/// Resource-allocation policy for checking operations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Allocation {
    /// Nominal and checking operations share one functional unit per
    /// class (the paper's worst case: monoprocessor software or
    /// resource-limited hardware).
    SingleUnit,
    /// Checking operations run on dedicated, independent units
    /// (fault-free under the single-functional-unit failure model —
    /// yields 100% coverage).
    Dedicated,
}

/// The functional units a self-checking data path executes on.
///
/// `scdp-core` routes every overloaded operator of [`Sck`](crate::Sck)
/// through the ambient `DataPath` (see [`context`](crate::context)).
/// Implementations decide operand widths dynamically from the [`Word`]s
/// they receive.
///
/// Negation is *not* part of the trait: the paper's *g*-function (operand
/// complementing) is considered fault-free conditioning logic, performed
/// with [`Word::wrapping_neg`].
pub trait DataPath {
    /// Adds `a + b` (wrapping).
    fn add(&mut self, slot: Slot, a: Word, b: Word) -> Word;
    /// Subtracts `a - b` (wrapping).
    fn sub(&mut self, slot: Slot, a: Word, b: Word) -> Word;
    /// Multiplies `a × b` (wrapping, low bits).
    fn mul(&mut self, slot: Slot, a: Word, b: Word) -> Word;
    /// Divides `a / b` returning `(quotient, remainder)`, or `None` for a
    /// zero divisor.
    fn div_rem(&mut self, slot: Slot, a: Word, b: Word) -> Option<(Word, Word)>;
}

/// The fault-free reference data path (host arithmetic).
///
/// This is the default execution context: all checks trivially pass, and
/// the self-checking types behave exactly like plain integers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NativeDataPath;

impl NativeDataPath {
    /// Creates a native (golden) data path.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl DataPath for NativeDataPath {
    fn add(&mut self, _slot: Slot, a: Word, b: Word) -> Word {
        a.wrapping_add(b)
    }

    fn sub(&mut self, _slot: Slot, a: Word, b: Word) -> Word {
        a.wrapping_sub(b)
    }

    fn mul(&mut self, _slot: Slot, a: Word, b: Word) -> Word {
        a.wrapping_mul(b)
    }

    fn div_rem(&mut self, _slot: Slot, a: Word, b: Word) -> Option<(Word, Word)> {
        if b.bits() == 0 {
            None
        } else {
            Some(a.wrapping_div_rem(b))
        }
    }
}

/// The faulty functional unit of a [`FaultyDataPath`].
///
/// Exactly one unit class carries the fault — the single
/// functional-unit failure model. For the divider's checking operations
/// (which execute on the multiplier), sweeping `Multiplier` faults while
/// running division models the combined multiply-divide unit of a
/// monoprocessor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Fault in the adder/subtractor (they share cells through the
    /// *g*-function, as in the paper).
    Adder(RcaFault),
    /// Fault in the array multiplier.
    Multiplier(UnitFault),
    /// Fault in the restoring divider.
    Divider(UnitFault),
}

impl FaultSite {
    /// Convenience constructor: gate-level stuck-at in full adder
    /// `position` of the adder.
    #[must_use]
    pub fn adder_gate(position: usize, fault: FaGateFault) -> Self {
        FaultSite::Adder(RcaFault::Gate { position, fault })
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Adder(rf) => write!(f, "adder:{rf:?}"),
            FaultSite::Multiplier(uf) => write!(f, "mult:{uf}"),
            FaultSite::Divider(uf) => write!(f, "div:{uf}"),
        }
    }
}

/// A data path with one faulty functional unit, backed by the
/// cell-accurate units of `scdp-arith`.
///
/// Operations at widths other than the configured one run fault-free
/// (the faulty unit has a definite width). Whether a checking operation
/// sees the fault depends on the [`Allocation`] policy.
#[derive(Copy, Clone, Debug)]
pub struct FaultyDataPath {
    width: u32,
    site: FaultSite,
    allocation: Allocation,
    adder: RippleCarryAdder,
    mult: ArrayMultiplier,
    div: RestoringDivider,
}

impl FaultyDataPath {
    /// Creates a faulty data path for `width`-bit units.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=63`.
    #[must_use]
    pub fn new(width: u32, site: FaultSite, allocation: Allocation) -> Self {
        Self {
            width,
            site,
            allocation,
            adder: RippleCarryAdder::new(width),
            mult: ArrayMultiplier::new(width),
            div: RestoringDivider::new(width),
        }
    }

    /// The faulty unit.
    #[must_use]
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// The allocation policy.
    #[must_use]
    pub fn allocation(&self) -> Allocation {
        self.allocation
    }

    #[inline]
    fn active(&self, slot: Slot, width: u32) -> bool {
        width == self.width && (slot == Slot::Nominal || self.allocation == Allocation::SingleUnit)
    }
}

impl DataPath for FaultyDataPath {
    fn add(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        let fault = match self.site {
            FaultSite::Adder(rf) if self.active(slot, a.width()) => Some(rf),
            _ => None,
        };
        if a.width() == self.width {
            self.adder.add(a, b, fault)
        } else {
            a.wrapping_add(b)
        }
    }

    fn sub(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        let fault = match self.site {
            FaultSite::Adder(rf) if self.active(slot, a.width()) => Some(rf),
            _ => None,
        };
        if a.width() == self.width {
            self.adder.sub(a, b, fault)
        } else {
            a.wrapping_sub(b)
        }
    }

    fn mul(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        let fault = match self.site {
            FaultSite::Multiplier(uf) if self.active(slot, a.width()) => Some(uf),
            _ => None,
        };
        if a.width() == self.width {
            self.mult.mul(a, b, fault)
        } else {
            a.wrapping_mul(b)
        }
    }

    fn div_rem(&mut self, slot: Slot, a: Word, b: Word) -> Option<(Word, Word)> {
        if b.bits() == 0 {
            return None;
        }
        let fault = match self.site {
            FaultSite::Divider(uf) if self.active(slot, a.width()) => Some(uf),
            _ => None,
        };
        if a.width() == self.width {
            self.div
                .div_rem(a, b, fault)
                .map(|o| (o.quotient, o.remainder))
        } else {
            Some(a.wrapping_div_rem(b))
        }
    }
}

/// Per-class operation counters gathered by [`CountingDataPath`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions executed (nominal + checker).
    pub adds: u64,
    /// Subtractions executed.
    pub subs: u64,
    /// Multiplications executed.
    pub muls: u64,
    /// Divisions executed.
    pub divs: u64,
    /// Operations executed in [`Slot::Checker`] role.
    pub checker_ops: u64,
}

impl OpCounts {
    /// Total operator-level operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.subs + self.muls + self.divs
    }
}

/// A decorator that counts operations flowing through an inner data path.
///
/// Used by the software cost model of `scdp-codesign` to measure the
/// instruction-level overhead of the self-checking techniques (the
/// paper's Table 3, software rows).
///
/// # Example
///
/// ```
/// use scdp_core::{CountingDataPath, DataPath, NativeDataPath, Slot};
/// use scdp_arith::Word;
///
/// let mut dp = CountingDataPath::new(NativeDataPath::new());
/// let _ = dp.add(Slot::Nominal, Word::from_i64(8, 1), Word::from_i64(8, 2));
/// let _ = dp.sub(Slot::Checker, Word::from_i64(8, 3), Word::from_i64(8, 1));
/// assert_eq!(dp.counts().total(), 2);
/// assert_eq!(dp.counts().checker_ops, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CountingDataPath<D> {
    inner: D,
    counts: OpCounts,
}

impl<D: DataPath> CountingDataPath<D> {
    /// Wraps `inner`, starting all counters at zero.
    #[must_use]
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            counts: OpCounts::default(),
        }
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        self.counts = OpCounts::default();
    }

    /// Consumes the decorator, returning the inner data path.
    #[must_use]
    pub fn into_inner(self) -> D {
        self.inner
    }

    #[inline]
    fn tick(&mut self, slot: Slot) {
        if slot == Slot::Checker {
            self.counts.checker_ops += 1;
        }
    }
}

impl<D: DataPath> DataPath for CountingDataPath<D> {
    fn add(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        self.counts.adds += 1;
        self.tick(slot);
        self.inner.add(slot, a, b)
    }

    fn sub(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        self.counts.subs += 1;
        self.tick(slot);
        self.inner.sub(slot, a, b)
    }

    fn mul(&mut self, slot: Slot, a: Word, b: Word) -> Word {
        self.counts.muls += 1;
        self.tick(slot);
        self.inner.mul(slot, a, b)
    }

    fn div_rem(&mut self, slot: Slot, a: Word, b: Word) -> Option<(Word, Word)> {
        self.counts.divs += 1;
        self.tick(slot);
        self.inner.div_rem(slot, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_fault::FaSite;

    #[test]
    fn native_matches_word_golden() {
        let mut dp = NativeDataPath::new();
        let a = Word::from_i64(8, -5);
        let b = Word::from_i64(8, 3);
        assert_eq!(dp.add(Slot::Nominal, a, b).to_i64(), -2);
        assert_eq!(dp.sub(Slot::Nominal, a, b).to_i64(), -8);
        assert_eq!(dp.mul(Slot::Nominal, a, b).to_i64(), -15);
        let (q, r) = dp.div_rem(Slot::Nominal, a, b).unwrap();
        assert_eq!((q.to_i64(), r.to_i64()), (-1, -2));
        assert!(dp.div_rem(Slot::Nominal, a, Word::zero(8)).is_none());
    }

    #[test]
    fn faulty_adder_corrupts_nominal_add() {
        let site = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, false));
        let mut dp = FaultyDataPath::new(8, site, Allocation::Dedicated);
        let a = Word::from_i64(8, 1);
        let b = Word::from_i64(8, 0);
        // 1 + 0 = 1 but the bit-0 sum is stuck at 0.
        assert_eq!(dp.add(Slot::Nominal, a, b).to_i64(), 0);
        // The checker runs on a dedicated (fault-free) unit.
        assert_eq!(dp.sub(Slot::Checker, a, b).to_i64(), 1);
    }

    #[test]
    fn single_unit_allocation_faults_checker_too() {
        let site = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, false));
        let mut dp = FaultyDataPath::new(8, site, Allocation::SingleUnit);
        let a = Word::from_i64(8, 1);
        let b = Word::from_i64(8, 0);
        assert_eq!(dp.sub(Slot::Checker, a, b).to_i64(), 0);
    }

    #[test]
    fn other_widths_run_fault_free() {
        let site = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, false));
        let mut dp = FaultyDataPath::new(8, site, Allocation::SingleUnit);
        let a = Word::from_i64(16, 1);
        let b = Word::from_i64(16, 0);
        assert_eq!(dp.add(Slot::Nominal, a, b).to_i64(), 1);
    }

    #[test]
    fn fault_in_multiplier_leaves_adder_clean() {
        let mult = ArrayMultiplier::new(8);
        let uf = mult
            .universe()
            .iter()
            .find(|f| !f.fault().is_latent())
            .unwrap();
        let mut dp = FaultyDataPath::new(8, FaultSite::Multiplier(uf), Allocation::SingleUnit);
        let a = Word::from_i64(8, 7);
        let b = Word::from_i64(8, 9);
        assert_eq!(dp.add(Slot::Nominal, a, b).to_i64(), 16);
        assert_eq!(dp.sub(Slot::Checker, a, b).to_i64(), -2);
    }

    #[test]
    fn counting_decorator_counts() {
        let mut dp = CountingDataPath::new(NativeDataPath::new());
        let a = Word::from_i64(8, 6);
        let b = Word::from_i64(8, 3);
        let _ = dp.add(Slot::Nominal, a, b);
        let _ = dp.mul(Slot::Checker, a, b);
        let _ = dp.div_rem(Slot::Checker, a, b);
        assert_eq!(
            dp.counts(),
            OpCounts {
                adds: 1,
                subs: 0,
                muls: 1,
                divs: 1,
                checker_ops: 2
            }
        );
        dp.reset();
        assert_eq!(dp.counts().total(), 0);
        let _ = dp.into_inner();
    }

    use scdp_arith::{ArrayMultiplier, FaultableUnit};
}
