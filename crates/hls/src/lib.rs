//! High-level synthesis substrate for self-checking data-paths.
//!
//! The paper pushes concurrent error detection into the *specification*;
//! a hardware implementation is then obtained through a behavioural
//! synthesis flow (OFFIS SystemC-Plus synthesizer + Synopsys CoCentric in
//! the paper's Figure 3). This crate rebuilds the parts of that flow
//! needed to reproduce Table 3's hardware rows:
//!
//! * a **dataflow-graph IR** ([`Dfg`]) for loop bodies, with nominal and
//!   checker roles on nodes;
//! * the **SCK expansion pass** ([`transform::expand_sck`]) that rewrites
//!   checkable operators into operator + hidden inverse operations +
//!   comparators, in two styles: `Full` (the `SCK<T>` class template —
//!   every operator checked, no sharing across template instances) and
//!   `Embedded` (hand-embedded checks — selective checking, checker
//!   hardware shared);
//! * **scheduling** ([`sched`]): ASAP, ALAP, mobility and
//!   resource-constrained list scheduling with multi-cycle operations and
//!   zero-latency chained checker logic;
//! * **binding** ([`bind()`](bind())): functional-unit and register binding
//!   (left-edge), with a reliability-aware mode that keeps checker
//!   operations off their nominal unit (required for full coverage, §2.1
//!   of the paper);
//! * **area and timing models** ([`ComponentLibrary`], [`area`](mod@area),
//!   [`timing`]) in CLB slices and nanoseconds. Absolute slice constants
//!   are calibrated against the paper's plain-FIR data point; every
//!   relative effect (extra units, registers, multiplexers, controller
//!   states, longer clock period from chained checkers) is structural.
//!
//! # Example
//!
//! ```
//! use scdp_hls::{Dfg, OpKind, ResourceSet, ComponentLibrary, sched};
//!
//! // acc' = acc + c*x
//! let mut dfg = Dfg::new("mac");
//! let c = dfg.input("c");
//! let x = dfg.input("x");
//! let acc = dfg.input("acc");
//! let t = dfg.op(OpKind::Mul, &[c, x]);
//! let sum = dfg.op(OpKind::Add, &[acc, t]);
//! dfg.output("acc_next", sum);
//!
//! let lib = ComponentLibrary::virtex16();
//! let schedule = sched::list_schedule(&dfg, &lib, &ResourceSet::min_area());
//! assert!(schedule.length() >= 3); // 2-cycle multiply + 1-cycle add
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod bind;
mod dfg;
mod library;
pub mod sched;
pub mod testgen;
pub mod timing;
pub mod transform;

pub use area::{AreaReport, ErrorHandling};
pub use bind::{bind, BindOptions, Binding, FuClass};
pub use dfg::{Dfg, NodeId, OpKind, Role};
pub use library::{ComponentLibrary, OpTiming, ResourceSet};
pub use sched::Schedule;
pub use transform::{expand_sck, SckStyle};
