//! Input-space strategies shared by the functional campaigns here and
//! the bit-parallel gate-level campaigns in `scdp-sim`.

use scdp_arith::Word;
use scdp_rng::{Rng, Xoshiro256StarStar};

/// Input-space strategy of a coverage campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum InputSpace {
    /// Every `(op1, op2)` combination (`2^(2n)`; divisor ≠ 0 for `/`).
    Exhaustive,
    /// `per_fault` random combinations per fault, seeded reproducibly.
    Sampled {
        /// Input pairs drawn per fault.
        per_fault: u64,
        /// Base RNG seed (each fault derives its own stream).
        seed: u64,
    },
}

impl InputSpace {
    /// The standard campaign policy shared by every front-end:
    /// exhaustive while the pair space fits in `2^20` combinations
    /// (width ≤ 10), seeded Monte-Carlo sampling beyond. The batched
    /// twin is `InputPlan::auto` in `scdp-sim`; both use the same
    /// threshold so functional and gate-level campaigns switch at the
    /// same width.
    #[must_use]
    pub fn auto(width: u32, per_fault: u64, seed: u64) -> InputSpace {
        if 2 * width <= 20 {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled { per_fault, seed }
        }
    }

    /// A deterministic stream of operand pairs for one fault.
    ///
    /// `stream_id` decorrelates faults in sampled mode (ignored for
    /// exhaustive enumeration); `skip_zero_b` excludes zero second
    /// operands, as division campaigns require.
    ///
    /// # Panics
    ///
    /// Panics on exhaustive enumeration of 64-bit operands (the
    /// `2^128`-pair space overflows the counter; sample instead).
    #[must_use]
    pub fn pairs(&self, width: u32, stream_id: u64, skip_zero_b: bool) -> PairStream {
        match *self {
            InputSpace::Exhaustive => {
                assert!(
                    width < 64,
                    "exhaustive pair space too large; sample instead"
                );
                PairStream {
                    width,
                    skip_zero_b,
                    kind: PairKind::Exhaustive {
                        next: 0,
                        total: 1u128 << (2 * width),
                    },
                }
            }
            InputSpace::Sampled { per_fault, seed } => PairStream {
                width,
                skip_zero_b,
                kind: PairKind::Sampled {
                    rng: Xoshiro256StarStar::from_seed(seed ^ stream_id),
                    remaining: per_fault,
                },
            },
        }
    }
}

#[derive(Clone, Debug)]
enum PairKind {
    Exhaustive {
        next: u128,
        total: u128,
    },
    Sampled {
        rng: Xoshiro256StarStar,
        remaining: u64,
    },
}

/// Iterator over `(op1, op2)` operand pairs for one fault's situations.
#[derive(Clone, Debug)]
pub struct PairStream {
    width: u32,
    skip_zero_b: bool,
    kind: PairKind,
}

impl Iterator for PairStream {
    type Item = (Word, Word);

    fn next(&mut self) -> Option<(Word, Word)> {
        let width = self.width;
        let mask = Word::new(width, u64::MAX).bits();
        match &mut self.kind {
            PairKind::Exhaustive { next, total } => loop {
                if *next >= *total {
                    return None;
                }
                let idx = *next;
                *next += 1;
                let b_bits = (idx as u64) & mask;
                if self.skip_zero_b && b_bits == 0 {
                    continue;
                }
                let a = Word::new(width, (idx >> width) as u64);
                return Some((a, Word::new(width, b_bits)));
            },
            PairKind::Sampled { rng, remaining } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let a = Word::new(width, rng.next_u64() & mask);
                let mut b = Word::new(width, rng.next_u64() & mask);
                while self.skip_zero_b && b.bits() == 0 {
                    b = Word::new(width, rng.next_u64() & mask);
                }
                Some((a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_pairs_cover_the_square() {
        let pairs: Vec<_> = InputSpace::Exhaustive.pairs(2, 0, false).collect();
        assert_eq!(pairs.len(), 16);
        assert_eq!(pairs[0], (Word::new(2, 0), Word::new(2, 0)));
        assert_eq!(pairs[15], (Word::new(2, 3), Word::new(2, 3)));
    }

    #[test]
    fn zero_divisors_are_skipped() {
        let pairs: Vec<_> = InputSpace::Exhaustive.pairs(2, 0, true).collect();
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|(_, b)| b.bits() != 0));
    }

    #[test]
    fn auto_switches_to_sampling_beyond_width_10() {
        assert_eq!(InputSpace::auto(10, 99, 1), InputSpace::Exhaustive);
        assert_eq!(
            InputSpace::auto(11, 99, 1),
            InputSpace::Sampled {
                per_fault: 99,
                seed: 1
            }
        );
    }

    #[test]
    fn sampled_streams_are_per_fault_deterministic() {
        let space = InputSpace::Sampled {
            per_fault: 50,
            seed: 11,
        };
        let a: Vec<_> = space.pairs(8, 3, false).collect();
        let b: Vec<_> = space.pairs(8, 3, false).collect();
        let c: Vec<_> = space.pairs(8, 4, false).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct stream ids decorrelate faults");
        assert_eq!(a.len(), 50);
    }
}
