//! The unified campaign result and its stable JSON serialisation.

use crate::error::CampaignError;
use crate::json::{self, Json};
use crate::scenario::{
    allocation_from_label, allocation_label, op_from_label, realisation_from_label,
    realisation_label, technique_from_label, technique_label, Backend, FaultModel, Scenario,
};
use crate::shard::ShardInfo;
use scdp_coverage::{InputSpace, Tally, TechIndex, TechTally};
use scdp_netlist::FaultDuration;
use scdp_obs::{BucketCount, CounterSnapshot, HistogramSnapshot, SpanSnapshot, TelemetrySnapshot};
use scdp_sim::DropPolicy;
use std::fmt::Write as _;

/// Schema identifier of operator-scenario reports (no datapath
/// section).
pub const REPORT_SCHEMA: &str = "scdp.campaign.report/v1";

/// Schema identifier of datapath-campaign reports — a superset of v1
/// that adds the `datapath` section with per-FU four-way tallies.
/// Parsers accept both; the writer emits v2 exactly when a report
/// carries a [`DatapathDetails`] section.
pub const REPORT_SCHEMA_V2: &str = "scdp.campaign.report/v2";

/// Schema identifier of *sequential* datapath-campaign reports — a
/// superset of v2 that adds the `sequential` section (fault duration,
/// cycle count, first-detection latency histogram). Parsers accept all
/// three schemas; the writer emits v3 exactly when a report carries a
/// [`SequentialDetails`] section.
pub const REPORT_SCHEMA_V3: &str = "scdp.campaign.report/v3";

/// Schema identifier of *partial* (sharded) campaign reports — the
/// per-shard checkpoint documents of a partitioned sweep. A v4
/// document carries a `shard` section ([`ShardInfo`]: shard
/// index/count, covered fault range, plan fingerprint) on top of any
/// of the v1–v3 shapes; its tallies, per-fault rows and histograms
/// cover only the shard's fault range. Merging all shards of one plan
/// ([`CampaignReport::merge`]) yields a v1–v3 report bit-identical to
/// the unsharded run. The writer emits v4 exactly when a report
/// carries a [`ShardInfo`] section.
pub const REPORT_SCHEMA_V4: &str = "scdp.campaign.report/v4";

/// The sequential section of a `scdp.campaign.report/v3` document:
/// how the cycle-accurate campaign was run and when faults were first
/// detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequentialDetails {
    /// The injected fault duration.
    pub duration: FaultDuration,
    /// Clock cycles each situation ran (`schedule_length + 1`).
    pub total_cycles: u64,
    /// `first_detect_hist[c]` — situations whose alarm first fired in
    /// cycle `c`; exactly `total_cycles` entries. Sums to the number of
    /// detected situations (partial under fault dropping, like the
    /// tallies).
    pub first_detect_hist: Vec<u64>,
}

impl SequentialDetails {
    /// Mean first-detection latency in cycles over all detected
    /// situations (`None` when nothing was detected).
    #[must_use]
    pub fn mean_detection_latency(&self) -> Option<f64> {
        scdp_sim::mean_detection_latency(&self.first_detect_hist)
    }
}

/// Per-functional-unit outcome of a datapath campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuTally {
    /// Unit name (`alu0`, `mult1`, …).
    pub name: String,
    /// Resource-class label (`alu`, `mult`, `div`, `mem`).
    pub class: String,
    /// Role label of the bound operations (`nominal` / `checker`).
    pub role: String,
    /// Number of operations time-multiplexed onto the unit.
    pub ops: u64,
    /// Structural instances in the unrolled netlist (= `ops` for
    /// arithmetic units, 0 for memory ports).
    pub instances: u64,
    /// Gates per instance.
    pub instance_gates: u64,
    /// Fault groups injected into this unit.
    pub faults: u64,
    /// Aggregate four-way situation tallies over the unit's faults.
    pub tally: TechTally,
    /// Faults with at least one alarmed situation.
    pub detected: u64,
    /// Faults with at least one undetected erroneous situation.
    pub escaped: u64,
}

/// The datapath section of a `scdp.campaign.report/v2` document: what
/// was elaborated and how each physical functional unit fared.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatapathDetails {
    /// Source-DFG label (`fir`, `iir`, `dot`, `matvec`,
    /// `custom:<name>`).
    pub source: String,
    /// SCK expansion style label (`plain`, `full`, `embedded`).
    pub style: String,
    /// Node count of the expanded DFG.
    pub nodes: u64,
    /// Schedule length in cycles.
    pub schedule_length: u64,
    /// Word-wide registers of the binding.
    pub registers: u64,
    /// Word-wide multiplexer input legs of the binding.
    pub mux_legs: u64,
    /// Gate count of the elaborated netlist.
    pub gates: u64,
    /// One entry per bound functional unit, binding order.
    pub per_fu: Vec<FuTally>,
}

/// The deductive-pruning section of a report produced with
/// `ExecPolicy::prune(true)` (see `scdp_analyze::deduce`): how many
/// engine fault groups were settled without simulation and which
/// per-fault rows carry deduced verdicts. Presence-driven at every
/// schema version (like `telemetry`) and ignored by
/// [`CampaignReport::same_results`] — pruning never changes results,
/// only how they were obtained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeduceDetails {
    /// Engine fault groups settled by an untestability proof.
    pub untestable: u64,
    /// Engine fault groups settled by a provably dominating fault that
    /// simulated completely silent.
    pub dominated: u64,
    /// Engine fault groups that were actually simulated.
    pub simulated: u64,
    /// Indices into `per_fault` (shard-local) whose verdicts were
    /// deduced rather than simulated. With collapsing on top, a row is
    /// listed when its equivalence-class representative was deduced.
    pub rows: Vec<u64>,
}

/// Per-fault outcome of a campaign, for the scenario's check policy.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultRecord {
    /// Four-way situation tallies (exact under
    /// [`DropPolicy::Never`], partial up to the dropping batch
    /// otherwise).
    pub tally: TechTally,
    /// A check fired in at least one simulated situation.
    pub detected: bool,
    /// At least one simulated situation was an undetected error.
    pub escaped: bool,
    /// Situations simulated before the fault was dropped (`None` when it
    /// stayed live to the end of the input space).
    pub dropped_after: Option<u64>,
}

/// The result of one unified campaign run.
///
/// The *canonical* four-way tally ([`CampaignReport::four_way`]) is the
/// column of the scenario's check policy; it is what the JSON
/// serialisation carries and what cross-backend comparisons use. The
/// functional backend additionally fills the other technique columns
/// (it classifies all three in one pass), exposed via
/// [`CampaignReport::column`].
///
/// # Example
///
/// ```
/// use scdp_campaign::Scenario;
/// use scdp_core::{Operator, Technique};
///
/// let report = Scenario::new(Operator::Add, 2)
///     .technique(Technique::Tech1)
///     .campaign()
///     .run()
///     .expect("valid scenario");
/// // §4.1: at width 2 some observable errors escape Tech1.
/// assert_eq!(report.four_way().error_undetected, 76);
/// let json = report.to_json();
/// let parsed = scdp_campaign::CampaignReport::from_json(&json).unwrap();
/// assert!(parsed.same_results(&report));
/// ```
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The analysed scenario.
    pub scenario: Scenario,
    /// The engine that produced the result.
    pub backend: Backend,
    /// The injected fault model (already resolved, never
    /// [`FaultModel::Auto`]).
    pub fault_model: FaultModel,
    /// The input-space strategy used.
    pub space: InputSpace,
    /// The drop policy used.
    pub drop: DropPolicy,
    /// Technique-column tallies; only the columns in
    /// [`CampaignReport::filled`] are meaningful.
    pub tally: Tally,
    /// Which technique columns were evaluated.
    pub filled: Vec<TechIndex>,
    /// One record per fault, universe order, for the scenario's check
    /// policy.
    pub per_fault: Vec<FaultRecord>,
    /// Situations actually simulated for the canonical column (smaller
    /// than `faults × inputs` when faults were dropped).
    pub simulated: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Datapath-campaign section: present exactly when the report came
    /// from a [`DatapathScenario`](crate::DatapathScenario) run (the
    /// `scenario` field then records the campaign-wide knobs — width,
    /// technique, allocation — with a placeholder operator; the
    /// authoritative description lives here).
    pub datapath: Option<DatapathDetails>,
    /// Sequential-campaign section: present exactly when the report
    /// came from a cycle-accurate
    /// [`SeqDatapathCampaignSpec`](crate::SeqDatapathCampaignSpec) run
    /// (always together with the `datapath` section).
    pub sequential: Option<SequentialDetails>,
    /// Shard section: present exactly when the report is a *partial*
    /// result covering one shard of a partitioned universe; its
    /// tallies, `per_fault` rows and histograms then cover only
    /// `shard.fault_start..shard.fault_end`.
    pub shard: Option<ShardInfo>,
    /// Deductive-pruning section: present exactly when the run was
    /// executed with `ExecPolicy::prune(true)` on a gate-level backend.
    /// Presence-driven at every schema version; ignored by
    /// [`CampaignReport::same_results`]; aggregated across shards by
    /// [`CampaignReport::merge`] (counts sum, row indices shift by the
    /// shard's `fault_start`).
    pub deduce: Option<DeduceDetails>,
    /// Telemetry section: a frozen [`TelemetrySnapshot`] of the run's
    /// counters, histograms and span timings. Presence-driven at every
    /// schema version (a v1–v4 document with or without it parses and
    /// round-trips unchanged); ignored by
    /// [`CampaignReport::same_results`]; aggregated across shards by
    /// [`CampaignReport::merge`].
    pub telemetry: Option<TelemetrySnapshot>,
}

impl CampaignReport {
    /// The canonical four-way tally: the scenario's check-policy column.
    #[must_use]
    pub fn four_way(&self) -> &TechTally {
        self.tally.of(self.scenario.tech_index())
    }

    /// A technique column, if the run evaluated it.
    #[must_use]
    pub fn column(&self, t: TechIndex) -> Option<&TechTally> {
        self.filled.contains(&t).then(|| self.tally.of(t))
    }

    /// Coverage of the canonical column (the paper's Table 2 metric).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.four_way().coverage()
    }

    /// Coverage of one technique column, if evaluated.
    #[must_use]
    pub fn coverage_of(&self, t: TechIndex) -> Option<f64> {
        self.column(t).map(TechTally::coverage)
    }

    /// Number of faults in the campaign universe.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.per_fault.len() as u64
    }

    /// Situations evaluated in the canonical column.
    #[must_use]
    pub fn total_situations(&self) -> u64 {
        self.four_way().total()
    }

    /// `true` if the input space was sampled rather than exhaustive.
    #[must_use]
    pub fn sampled(&self) -> bool {
        matches!(self.space, InputSpace::Sampled { .. })
    }

    /// Fraction of faults with at least one alarmed situation.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| f.detected).count() as f64 / self.per_fault.len() as f64
    }

    /// Fraction of faults that never produced an undetected error.
    #[must_use]
    pub fn safe_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| !f.escaped).count() as f64 / self.per_fault.len() as f64
    }

    /// Range `(min, max)` of per-fault coverage for the canonical column
    /// — the paper's §4.1 "[81.90%, 99.87%]" style bound. Faults that
    /// were never excited contribute 100%; an empty universe degenerates
    /// to `(1.0, 1.0)`.
    #[must_use]
    pub fn per_fault_coverage_range(&self) -> (f64, f64) {
        let mut min = 1.0f64;
        let mut max = 1.0f64;
        for (i, f) in self.per_fault.iter().enumerate() {
            let c = f.tally.coverage();
            min = min.min(c);
            max = if i == 0 { c } else { max.max(c) };
        }
        (min, max)
    }

    /// `true` if `other` carries the same results: everything except the
    /// producing backend and wall-clock time, which legitimately differ
    /// between equivalent runs.
    #[must_use]
    pub fn same_results(&self, other: &CampaignReport) -> bool {
        self.scenario == other.scenario
            && self.fault_model == other.fault_model
            && self.space == other.space
            && self.drop == other.drop
            && *self.four_way() == *other.four_way()
            && self.per_fault == other.per_fault
            && self.simulated == other.simulated
            && self.datapath == other.datapath
            && self.sequential == other.sequential
            && self.shard == other.shard
    }

    /// Serialises the report to the stable `scdp.campaign.report/v1`
    /// JSON schema (see `docs/CAMPAIGN_API.md`). Only the canonical
    /// column is serialised; member order and number formatting are
    /// deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024 + self.per_fault.len() * 32);
        let t = self.four_way();
        o.push_str("{\n");
        let schema = if self.shard.is_some() {
            REPORT_SCHEMA_V4
        } else if self.sequential.is_some() {
            debug_assert!(
                self.datapath.is_some(),
                "sequential reports carry the datapath section too"
            );
            REPORT_SCHEMA_V3
        } else if self.datapath.is_some() {
            REPORT_SCHEMA_V2
        } else {
            REPORT_SCHEMA
        };
        let _ = writeln!(o, "  \"schema\": \"{schema}\",");
        let op = if self.datapath.is_some() {
            // The operator slot is not meaningful for whole-datapath
            // campaigns; the `datapath` section is authoritative.
            "datapath"
        } else {
            self.scenario.op_label()
        };
        let _ = writeln!(
            o,
            "  \"scenario\": {{\"op\": \"{op}\", \"width\": {}, \"technique\": \"{}\", \
             \"allocation\": \"{}\", \"realisation\": \"{}\"}},",
            self.scenario.width,
            technique_label(self.scenario.technique),
            allocation_label(self.scenario.allocation),
            realisation_label(self.scenario.realisation),
        );
        let _ = writeln!(o, "  \"backend\": \"{}\",", self.backend.label());
        let _ = writeln!(o, "  \"fault_model\": \"{}\",", self.fault_model.label());
        match self.space {
            InputSpace::Exhaustive => {
                o.push_str("  \"input_space\": {\"kind\": \"exhaustive\"},\n");
            }
            InputSpace::Sampled { per_fault, seed } => {
                let _ = writeln!(
                    o,
                    "  \"input_space\": {{\"kind\": \"sampled\", \"per_fault\": {per_fault}, \
                     \"seed\": {seed}}},"
                );
            }
        }
        let _ = writeln!(o, "  \"drop_policy\": \"{}\",", drop_label(self.drop));
        if let Some(sh) = &self.shard {
            let _ = writeln!(
                o,
                "  \"shard\": {{\"index\": {}, \"count\": {}, \"fault_start\": {}, \
                 \"fault_end\": {}, \"total_faults\": {}, \"plan_hash\": {}}},",
                sh.index, sh.count, sh.fault_start, sh.fault_end, sh.total_faults, sh.plan_hash
            );
        }
        let _ = writeln!(o, "  \"fault_count\": {},", self.per_fault.len());
        let _ = writeln!(o, "  \"simulated\": {},", self.simulated);
        let _ = writeln!(
            o,
            "  \"tally\": {{\"correct_silent\": {}, \"correct_detected\": {}, \
             \"error_detected\": {}, \"error_undetected\": {}}},",
            t.correct_silent, t.correct_detected, t.error_detected, t.error_undetected
        );
        for (name, v) in [
            ("coverage", t.coverage()),
            ("detection_rate", self.detection_rate()),
            ("safe_rate", self.safe_rate()),
        ] {
            let _ = write!(o, "  \"{name}\": ");
            json::write_f64(&mut o, v);
            o.push_str(",\n");
        }
        let _ = writeln!(o, "  \"elapsed_ms\": {},", self.elapsed_ms);
        if let Some(dp) = &self.datapath {
            // String members pass through write_escaped: the source
            // label embeds a user-controlled custom-DFG name.
            o.push_str("  \"datapath\": {\"source\": ");
            json::write_escaped(&mut o, &dp.source);
            o.push_str(", \"style\": ");
            json::write_escaped(&mut o, &dp.style);
            let _ = writeln!(
                o,
                ", \"nodes\": {}, \"schedule_length\": {}, \"registers\": {}, \
                 \"mux_legs\": {}, \"gates\": {}, \"per_fu\": [",
                dp.nodes, dp.schedule_length, dp.registers, dp.mux_legs, dp.gates
            );
            for (i, fu) in dp.per_fu.iter().enumerate() {
                o.push_str("    {\"name\": ");
                json::write_escaped(&mut o, &fu.name);
                o.push_str(", \"class\": ");
                json::write_escaped(&mut o, &fu.class);
                o.push_str(", \"role\": ");
                json::write_escaped(&mut o, &fu.role);
                let _ = write!(
                    o,
                    ", \"ops\": {}, \"instances\": {}, \"instance_gates\": {}, \"faults\": {}, \
                     \"tally\": {{\"correct_silent\": {}, \"correct_detected\": {}, \
                     \"error_detected\": {}, \"error_undetected\": {}}}, \
                     \"detected\": {}, \"escaped\": {}}}",
                    fu.ops,
                    fu.instances,
                    fu.instance_gates,
                    fu.faults,
                    fu.tally.correct_silent,
                    fu.tally.correct_detected,
                    fu.tally.error_detected,
                    fu.tally.error_undetected,
                    fu.detected,
                    fu.escaped,
                );
                o.push_str(if i + 1 < dp.per_fu.len() { ",\n" } else { "\n" });
            }
            o.push_str("  ]},\n");
        }
        if let Some(seq) = &self.sequential {
            o.push_str("  \"sequential\": {\"duration\": ");
            match seq.duration {
                FaultDuration::Permanent => o.push_str("{\"kind\": \"permanent\"}"),
                FaultDuration::Transient { cycle } => {
                    let _ = write!(o, "{{\"kind\": \"transient\", \"cycle\": {cycle}}}");
                }
            }
            let _ = write!(
                o,
                ", \"total_cycles\": {}, \"first_detect_hist\": [",
                seq.total_cycles
            );
            for (i, n) in seq.first_detect_hist.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                let _ = write!(o, "{n}");
            }
            o.push_str("]},\n");
        }
        if let Some(d) = &self.deduce {
            let _ = write!(
                o,
                "  \"deduce\": {{\"untestable\": {}, \"dominated\": {}, \"simulated\": {}, \
                 \"rows\": [",
                d.untestable, d.dominated, d.simulated
            );
            for (i, r) in d.rows.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                let _ = write!(o, "{r}");
            }
            o.push_str("]},\n");
        }
        if let Some(tel) = &self.telemetry {
            o.push_str("  \"telemetry\": {\"counters\": [");
            for (i, c) in tel.counters.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"name\": ");
                json::write_escaped(&mut o, &c.name);
                let _ = write!(o, ", \"value\": {}}}", c.value);
            }
            o.push_str("], \"histograms\": [");
            for (i, h) in tel.histograms.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"name\": ");
                json::write_escaped(&mut o, &h.name);
                o.push_str(", \"buckets\": [");
                for (j, b) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        o.push_str(", ");
                    }
                    let _ = write!(o, "[{}, {}]", b.bucket, b.count);
                }
                o.push_str("]}");
            }
            o.push_str("], \"spans\": [");
            for (i, s) in tel.spans.iter().enumerate() {
                if i > 0 {
                    o.push_str(", ");
                }
                o.push_str("{\"path\": ");
                json::write_escaped(&mut o, &s.path);
                let _ = write!(
                    o,
                    ", \"count\": {}, \"total_ns\": {}}}",
                    s.count, s.total_ns
                );
            }
            o.push_str("]},\n");
        }
        o.push_str("  \"per_fault\": [\n");
        for (i, f) in self.per_fault.iter().enumerate() {
            let _ = write!(
                o,
                "    [{}, {}, {}, {}, {}, {}, {}]",
                f.tally.correct_silent,
                f.tally.correct_detected,
                f.tally.error_detected,
                f.tally.error_undetected,
                u8::from(f.detected),
                u8::from(f.escaped),
                f.dropped_after.map_or(-1i64, |d| d as i64),
            );
            o.push_str(if i + 1 < self.per_fault.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  ]\n}\n");
        o
    }

    /// Parses a report serialised by [`CampaignReport::to_json`].
    ///
    /// The parsed report carries only the canonical column (the JSON
    /// schema does not serialise the functional backend's bonus
    /// columns), so `parsed.same_results(&original)` holds rather than
    /// full structural equality.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`] for malformed JSON and
    /// [`CampaignError::Schema`] for well-formed JSON that is not a
    /// `scdp.campaign.report/v1` document.
    pub fn from_json(text: &str) -> Result<CampaignReport, CampaignError> {
        let v = json::parse(text)?;
        let schema = require_str(&v, "schema")?;
        let version = match schema {
            s if s == REPORT_SCHEMA => 1u8,
            s if s == REPORT_SCHEMA_V2 => 2,
            s if s == REPORT_SCHEMA_V3 => 3,
            s if s == REPORT_SCHEMA_V4 => 4,
            other => {
                return Err(schema_err("schema", format!("unknown schema `{other}`")));
            }
        };

        let s = v
            .get("scenario")
            .ok_or_else(|| schema_err("scenario", "missing".into()))?;
        let op_label = require_str(s, "op")?;
        let op = if version >= 2 && op_label == "datapath" {
            // Whole-datapath reports carry no single operator; the
            // placeholder keeps the in-memory scenario well-formed.
            scdp_core::Operator::Add
        } else {
            op_from_label(op_label)
                .ok_or_else(|| schema_err("scenario.op", "unknown operator".into()))?
        };
        let width_raw = require_u64(s, "width")?;
        let max = u64::from(crate::spec::MAX_WIDTH);
        if width_raw == 0 || width_raw > max {
            return Err(schema_err(
                "scenario.width",
                format!("width {width_raw} out of range 1..={max}"),
            ));
        }
        let width = width_raw as u32;
        let technique = technique_from_label(require_str(s, "technique")?)
            .ok_or_else(|| schema_err("scenario.technique", "unknown technique".into()))?;
        let allocation = allocation_from_label(require_str(s, "allocation")?)
            .ok_or_else(|| schema_err("scenario.allocation", "unknown allocation".into()))?;
        let realisation = realisation_from_label(require_str(s, "realisation")?)
            .ok_or_else(|| schema_err("scenario.realisation", "unknown realisation".into()))?;
        let scenario = Scenario::new(op, width)
            .technique(technique)
            .allocation(allocation)
            .realisation(realisation);

        let backend = Backend::from_label(require_str(&v, "backend")?)
            .ok_or_else(|| schema_err("backend", "unknown backend".into()))?;
        let fault_model = FaultModel::from_label(require_str(&v, "fault_model")?)
            .ok_or_else(|| schema_err("fault_model", "unknown fault model".into()))?;

        let sp = v
            .get("input_space")
            .ok_or_else(|| schema_err("input_space", "missing".into()))?;
        let space = match require_str(sp, "kind")? {
            "exhaustive" => InputSpace::Exhaustive,
            "sampled" => InputSpace::Sampled {
                per_fault: require_u64(sp, "per_fault")?,
                seed: require_u64(sp, "seed")?,
            },
            other => {
                return Err(schema_err(
                    "input_space.kind",
                    format!("unknown kind `{other}`"),
                ))
            }
        };
        let drop = drop_from_label(require_str(&v, "drop_policy")?)
            .ok_or_else(|| schema_err("drop_policy", "unknown policy".into()))?;

        let selected = scenario.tech_index();
        let mut tally = Tally::default();
        let tj = v
            .get("tally")
            .ok_or_else(|| schema_err("tally", "missing".into()))?;
        tally.tech[selected as usize] = parse_tech_tally(tj, "tally")?;

        let simulated = require_u64(&v, "simulated")?;
        let elapsed_ms = require_u64(&v, "elapsed_ms")?;

        let pf = v
            .get("per_fault")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err("per_fault", "missing or not an array".into()))?;
        let mut per_fault = Vec::with_capacity(pf.len());
        for row in pf {
            let cells = row
                .as_arr()
                .filter(|c| c.len() == 7)
                .ok_or_else(|| schema_err("per_fault", "each entry must be a 7-array".into()))?;
            let num = |i: usize| {
                cells[i]
                    .as_u64()
                    .ok_or_else(|| schema_err("per_fault", format!("cell {i} not a count")))
            };
            let dropped = match &cells[6] {
                Json::Int(-1) => None,
                other => Some(other.as_u64().ok_or_else(|| {
                    schema_err("per_fault", "dropped_after must be -1 or a count".into())
                })?),
            };
            per_fault.push(FaultRecord {
                tally: TechTally {
                    correct_silent: num(0)?,
                    correct_detected: num(1)?,
                    error_detected: num(2)?,
                    error_undetected: num(3)?,
                },
                detected: num(4)? != 0,
                escaped: num(5)? != 0,
                dropped_after: dropped,
            });
        }
        let declared = require_u64(&v, "fault_count")?;
        if declared != per_fault.len() as u64 {
            return Err(schema_err(
                "fault_count",
                format!("declares {declared} but per_fault has {}", per_fault.len()),
            ));
        }

        // Section rules: v2/v3 *require* the datapath section and v3
        // the sequential one; v4 (a sharded checkpoint of any campaign
        // shape) carries them presence-driven, but a sequential section
        // still implies a datapath section.
        let requires_dp = version == 2 || version == 3;
        let datapath = match (version, v.get("datapath")) {
            (1, Some(_)) => {
                return Err(schema_err(
                    "datapath",
                    "v1 documents must not carry a datapath section".into(),
                ));
            }
            (_, None) if requires_dp => {
                return Err(schema_err(
                    "datapath",
                    format!("v{version} documents require the datapath section"),
                ));
            }
            (_, Some(dp)) => Some(parse_datapath(dp)?),
            (_, None) => None,
        };
        let sequential = match (version, v.get("sequential")) {
            (1 | 2, Some(_)) => {
                return Err(schema_err(
                    "sequential",
                    format!("v{version} documents must not carry a sequential section"),
                ));
            }
            (3, None) => {
                return Err(schema_err(
                    "sequential",
                    "v3 documents require the sequential section".into(),
                ));
            }
            (_, Some(seq)) => {
                if datapath.is_none() {
                    return Err(schema_err(
                        "sequential",
                        "a sequential section requires a datapath section".into(),
                    ));
                }
                Some(parse_sequential(seq)?)
            }
            (_, None) => None,
        };
        let shard = match (version, v.get("shard")) {
            (4, Some(sh)) => Some(parse_shard(sh)?),
            (4, None) => {
                return Err(schema_err(
                    "shard",
                    "v4 documents require the shard section".into(),
                ));
            }
            (_, Some(_)) => {
                return Err(schema_err(
                    "shard",
                    format!("v{version} documents must not carry a shard section"),
                ));
            }
            (_, None) => None,
        };
        if let Some(sh) = &shard {
            let covered = sh.fault_end - sh.fault_start;
            if covered != per_fault.len() as u64 {
                return Err(schema_err(
                    "shard",
                    format!(
                        "shard covers {covered} faults but per_fault has {}",
                        per_fault.len()
                    ),
                ));
            }
        }

        // The deduce and telemetry sections are presence-driven at
        // every version: pruning provenance and operational metadata,
        // not results.
        let deduce = match v.get("deduce") {
            Some(d) => Some(parse_deduce(d)?),
            None => None,
        };
        let telemetry = match v.get("telemetry") {
            Some(t) => Some(parse_telemetry(t)?),
            None => None,
        };

        Ok(CampaignReport {
            scenario,
            backend,
            fault_model,
            space,
            drop,
            tally,
            filled: vec![selected],
            per_fault,
            simulated,
            elapsed_ms,
            datapath,
            sequential,
            shard,
            deduce,
            telemetry,
        })
    }

    /// Recombines the partial reports of one shard plan into the report
    /// the unsharded campaign would have produced — **bit-identical**
    /// in everything the schema serialises except `elapsed_ms` (summed
    /// over shards) and the producing `backend`'s wall-clock: tallies,
    /// per-fault outcomes, per-FU tallies and detection-latency
    /// histograms are exact concatenations/sums because every fault's
    /// outcome is independent of its neighbours.
    ///
    /// Shards may be passed in any order; each index of the plan must
    /// appear exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::ShardMerge`] when the reports do not
    /// form one complete, consistent plan: missing/duplicate shard
    /// indices, differing plan fingerprints or configurations, or
    /// ranges that do not tile the universe.
    pub fn merge(shards: &[CampaignReport]) -> Result<CampaignReport, CampaignError> {
        let merge_err = |message: String| CampaignError::ShardMerge { message };
        let Some(first) = shards.first() else {
            return Err(merge_err("no shard reports given".into()));
        };
        let Some(head) = first.shard else {
            return Err(merge_err("report 0 has no shard section".into()));
        };
        if shards.len() != head.count as usize {
            return Err(merge_err(format!(
                "plan has {} shards but {} reports were given",
                head.count,
                shards.len()
            )));
        }
        let mut by_index: Vec<Option<&CampaignReport>> = vec![None; head.count as usize];
        for (k, r) in shards.iter().enumerate() {
            let Some(sh) = r.shard else {
                return Err(merge_err(format!("report {k} has no shard section")));
            };
            if sh.count != head.count || sh.total_faults != head.total_faults {
                return Err(merge_err(format!(
                    "report {k} belongs to a different plan \
                     ({}/{} faults vs {}/{})",
                    sh.count, sh.total_faults, head.count, head.total_faults
                )));
            }
            if sh.plan_hash != head.plan_hash {
                return Err(merge_err(format!(
                    "report {k} has a different configuration fingerprint \
                     ({:#018x} vs {:#018x})",
                    sh.plan_hash, head.plan_hash
                )));
            }
            if r.scenario != first.scenario
                || r.backend != first.backend
                || r.fault_model != first.fault_model
                || r.space != first.space
                || r.drop != first.drop
                || r.filled != first.filled
            {
                return Err(merge_err(format!(
                    "report {k} was produced by a different campaign configuration"
                )));
            }
            let slot = &mut by_index[sh.index as usize];
            if slot.is_some() {
                return Err(merge_err(format!("shard {} appears twice", sh.index)));
            }
            *slot = Some(r);
        }
        let ordered: Vec<&CampaignReport> = by_index
            .into_iter()
            .map(|s| s.expect("count slots, count unique indices"))
            .collect();

        let mut per_fault = Vec::with_capacity(head.total_faults as usize);
        let mut cursor = 0u64;
        let mut tally = Tally::default();
        let mut simulated = 0u64;
        let mut elapsed_ms = 0u64;
        for r in &ordered {
            let sh = r.shard.expect("checked above");
            if sh.fault_start != cursor {
                return Err(merge_err(format!(
                    "shard {} covers {}..{} but the previous shards end at {cursor}",
                    sh.index, sh.fault_start, sh.fault_end
                )));
            }
            if (sh.fault_end - sh.fault_start) != r.per_fault.len() as u64 {
                return Err(merge_err(format!(
                    "shard {} declares {} faults but carries {}",
                    sh.index,
                    sh.fault_end - sh.fault_start,
                    r.per_fault.len()
                )));
            }
            cursor = sh.fault_end;
            per_fault.extend_from_slice(&r.per_fault);
            for &t in &r.filled {
                tally.tech[t as usize] += *r.tally.of(t);
            }
            simulated += r.simulated;
            elapsed_ms += r.elapsed_ms;
        }
        if cursor != head.total_faults {
            return Err(merge_err(format!(
                "shards cover {cursor} of {} universe faults",
                head.total_faults
            )));
        }

        let datapath = merge_datapath(&ordered)?;
        let sequential = merge_sequential(&ordered)?;
        // Deduce sections aggregate over whichever shards carried them:
        // counts sum; shard-local row indices shift by the shard's
        // fault_start so they index the concatenated per_fault.
        let mut deduce: Option<DeduceDetails> = None;
        for r in &ordered {
            if let Some(d) = &r.deduce {
                let sh = r.shard.expect("checked above");
                let m = deduce.get_or_insert_with(DeduceDetails::default);
                m.untestable += d.untestable;
                m.dominated += d.dominated;
                m.simulated += d.simulated;
                m.rows
                    .extend(d.rows.iter().map(|&row| row + sh.fault_start));
            }
        }
        // Telemetry aggregates over whichever shards carried it:
        // counters and span accumulators sum, histograms sum
        // bucket-wise, so the merged counters equal an unsharded run's
        // for every count-typed metric.
        let mut telemetry: Option<TelemetrySnapshot> = None;
        for r in &ordered {
            if let Some(t) = &r.telemetry {
                telemetry
                    .get_or_insert_with(TelemetrySnapshot::default)
                    .merge(t);
            }
        }
        Ok(CampaignReport {
            scenario: first.scenario,
            backend: first.backend,
            fault_model: first.fault_model,
            space: first.space,
            drop: first.drop,
            tally,
            filled: first.filled.clone(),
            per_fault,
            simulated,
            elapsed_ms,
            datapath,
            sequential,
            shard: None,
            deduce,
            telemetry,
        })
    }
}

/// Merges the per-shard datapath sections (all-or-none; metadata must
/// agree, per-FU counters sum).
fn merge_datapath(ordered: &[&CampaignReport]) -> Result<Option<DatapathDetails>, CampaignError> {
    let merge_err = |message: String| CampaignError::ShardMerge { message };
    let Some(head) = &ordered[0].datapath else {
        if let Some(k) = ordered.iter().position(|r| r.datapath.is_some()) {
            return Err(merge_err(format!(
                "shard {k} carries a datapath section but shard 0 does not"
            )));
        }
        return Ok(None);
    };
    let mut merged = DatapathDetails {
        per_fu: head
            .per_fu
            .iter()
            .map(|fu| FuTally {
                faults: 0,
                tally: TechTally::default(),
                detected: 0,
                escaped: 0,
                ..fu.clone()
            })
            .collect(),
        ..head.clone()
    };
    for (k, r) in ordered.iter().enumerate() {
        let Some(dp) = &r.datapath else {
            return Err(merge_err(format!(
                "shard {k} is missing the datapath section"
            )));
        };
        let same_shape = dp.source == head.source
            && dp.style == head.style
            && dp.nodes == head.nodes
            && dp.schedule_length == head.schedule_length
            && dp.registers == head.registers
            && dp.mux_legs == head.mux_legs
            && dp.gates == head.gates
            && dp.per_fu.len() == head.per_fu.len();
        if !same_shape {
            return Err(merge_err(format!(
                "shard {k} describes a different elaborated datapath"
            )));
        }
        for (m, fu) in merged.per_fu.iter_mut().zip(&dp.per_fu) {
            let same_fu = fu.name == m.name
                && fu.class == m.class
                && fu.role == m.role
                && fu.ops == m.ops
                && fu.instances == m.instances
                && fu.instance_gates == m.instance_gates;
            if !same_fu {
                return Err(merge_err(format!(
                    "shard {k} describes functional unit `{}` differently",
                    m.name
                )));
            }
            m.faults += fu.faults;
            m.tally += fu.tally;
            m.detected += fu.detected;
            m.escaped += fu.escaped;
        }
    }
    Ok(Some(merged))
}

/// Merges the per-shard sequential sections (all-or-none; duration and
/// cycle count must agree, histograms sum element-wise).
fn merge_sequential(
    ordered: &[&CampaignReport],
) -> Result<Option<SequentialDetails>, CampaignError> {
    let merge_err = |message: String| CampaignError::ShardMerge { message };
    let Some(head) = &ordered[0].sequential else {
        if let Some(k) = ordered.iter().position(|r| r.sequential.is_some()) {
            return Err(merge_err(format!(
                "shard {k} carries a sequential section but shard 0 does not"
            )));
        }
        return Ok(None);
    };
    let mut merged = SequentialDetails {
        first_detect_hist: vec![0; head.first_detect_hist.len()],
        ..head.clone()
    };
    for (k, r) in ordered.iter().enumerate() {
        let Some(seq) = &r.sequential else {
            return Err(merge_err(format!(
                "shard {k} is missing the sequential section"
            )));
        };
        if seq.duration != head.duration
            || seq.total_cycles != head.total_cycles
            || seq.first_detect_hist.len() != head.first_detect_hist.len()
        {
            return Err(merge_err(format!(
                "shard {k} ran a different sequential configuration"
            )));
        }
        for (m, n) in merged
            .first_detect_hist
            .iter_mut()
            .zip(&seq.first_detect_hist)
        {
            *m += n;
        }
    }
    Ok(Some(merged))
}

/// Parses the `shard` section of a v4 document.
fn parse_shard(sh: &Json) -> Result<ShardInfo, CampaignError> {
    let num = |key: &str| {
        sh.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| schema_err("shard", format!("missing or malformed `{key}` member")))
    };
    let index = u32::try_from(num("index")?)
        .map_err(|_| schema_err("shard", "index out of range".into()))?;
    let count = u32::try_from(num("count")?)
        .map_err(|_| schema_err("shard", "count out of range".into()))?;
    let info = ShardInfo {
        index,
        count,
        fault_start: num("fault_start")?,
        fault_end: num("fault_end")?,
        total_faults: num("total_faults")?,
        plan_hash: num("plan_hash")?,
    };
    if info.count == 0 || info.index >= info.count {
        return Err(schema_err(
            "shard",
            format!("index {} out of range 0..{}", info.index, info.count),
        ));
    }
    if info.fault_start > info.fault_end || info.fault_end > info.total_faults {
        return Err(schema_err(
            "shard",
            format!(
                "range {}..{} does not fit a {}-fault universe",
                info.fault_start, info.fault_end, info.total_faults
            ),
        ));
    }
    Ok(info)
}

fn parse_sequential(seq: &Json) -> Result<SequentialDetails, CampaignError> {
    let d = seq
        .get("duration")
        .ok_or_else(|| schema_err("sequential.duration", "missing".into()))?;
    let duration = match require_str(d, "kind")
        .map_err(|_| schema_err("sequential.duration", "missing or malformed kind".into()))?
    {
        "permanent" => FaultDuration::Permanent,
        "transient" => {
            let cycle = require_u64(d, "cycle")
                .map_err(|_| schema_err("sequential.duration", "transient without cycle".into()))?;
            let cycle = u32::try_from(cycle).map_err(|_| {
                schema_err("sequential.duration", "transient cycle out of range".into())
            })?;
            FaultDuration::Transient { cycle }
        }
        other => {
            return Err(schema_err(
                "sequential.duration",
                format!("unknown kind `{other}`"),
            ))
        }
    };
    let total_cycles = require_u64(seq, "total_cycles")
        .map_err(|_| schema_err("sequential.total_cycles", "missing or not a count".into()))?;
    let hist_json = seq
        .get("first_detect_hist")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            schema_err(
                "sequential.first_detect_hist",
                "missing or not an array".into(),
            )
        })?;
    let mut first_detect_hist = Vec::with_capacity(hist_json.len());
    for cell in hist_json {
        first_detect_hist.push(cell.as_u64().ok_or_else(|| {
            schema_err(
                "sequential.first_detect_hist",
                "histogram cell is not a count".into(),
            )
        })?);
    }
    if first_detect_hist.len() as u64 != total_cycles {
        return Err(schema_err(
            "sequential.first_detect_hist",
            format!(
                "histogram has {} entries but total_cycles is {total_cycles}",
                first_detect_hist.len()
            ),
        ));
    }
    Ok(SequentialDetails {
        duration,
        total_cycles,
        first_detect_hist,
    })
}

fn parse_datapath(dp: &Json) -> Result<DatapathDetails, CampaignError> {
    let per_fu_json = dp
        .get("per_fu")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("datapath.per_fu", "missing or not an array".into()))?;
    let mut per_fu = Vec::with_capacity(per_fu_json.len());
    for fu in per_fu_json {
        let tally = fu
            .get("tally")
            .ok_or_else(|| schema_err("datapath.per_fu.tally", "missing".into()))?;
        per_fu.push(FuTally {
            name: require_str(fu, "name")
                .map_err(|_| schema_err("datapath.per_fu.name", "missing or not a string".into()))?
                .to_string(),
            class: require_str(fu, "class")
                .map_err(|_| schema_err("datapath.per_fu.class", "missing or not a string".into()))?
                .to_string(),
            role: require_str(fu, "role")
                .map_err(|_| schema_err("datapath.per_fu.role", "missing or not a string".into()))?
                .to_string(),
            ops: require_u64(fu, "ops")
                .map_err(|_| schema_err("datapath.per_fu.ops", "missing or not a count".into()))?,
            instances: require_u64(fu, "instances")
                .map_err(|_| schema_err("datapath.per_fu.instances", "not a count".into()))?,
            instance_gates: require_u64(fu, "instance_gates")
                .map_err(|_| schema_err("datapath.per_fu.instance_gates", "not a count".into()))?,
            faults: require_u64(fu, "faults").map_err(|_| {
                schema_err("datapath.per_fu.faults", "missing or not a count".into())
            })?,
            tally: parse_tech_tally(tally, "datapath.per_fu.tally").map_err(|_| {
                schema_err("datapath.per_fu.tally", "malformed four-way tally".into())
            })?,
            detected: require_u64(fu, "detected")
                .map_err(|_| schema_err("datapath.per_fu.detected", "not a count".into()))?,
            escaped: require_u64(fu, "escaped")
                .map_err(|_| schema_err("datapath.per_fu.escaped", "not a count".into()))?,
        });
    }
    Ok(DatapathDetails {
        source: require_str(dp, "source")
            .map_err(|_| schema_err("datapath.source", "missing or not a string".into()))?
            .to_string(),
        style: require_str(dp, "style")
            .map_err(|_| schema_err("datapath.style", "missing or not a string".into()))?
            .to_string(),
        nodes: require_u64(dp, "nodes")
            .map_err(|_| schema_err("datapath.nodes", "missing or not a count".into()))?,
        schedule_length: require_u64(dp, "schedule_length")
            .map_err(|_| schema_err("datapath.schedule_length", "not a count".into()))?,
        registers: require_u64(dp, "registers")
            .map_err(|_| schema_err("datapath.registers", "not a count".into()))?,
        mux_legs: require_u64(dp, "mux_legs")
            .map_err(|_| schema_err("datapath.mux_legs", "not a count".into()))?,
        gates: require_u64(dp, "gates")
            .map_err(|_| schema_err("datapath.gates", "not a count".into()))?,
        per_fu,
    })
}

/// Parses the presence-driven `telemetry` section. Element order is
/// preserved as written (snapshots serialise name-ordered), keeping
/// `to_json` a fixpoint of parse-then-serialise.
fn parse_telemetry(t: &Json) -> Result<TelemetrySnapshot, CampaignError> {
    let arr = |key: &'static str| {
        t.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err("telemetry", format!("missing or malformed `{key}` array")))
    };
    let mut counters = Vec::new();
    for c in arr("counters")? {
        counters.push(CounterSnapshot {
            name: require_str(c, "name")
                .map_err(|_| schema_err("telemetry", "counter without a name".into()))?
                .to_string(),
            value: require_u64(c, "value")
                .map_err(|_| schema_err("telemetry", "counter value is not a count".into()))?,
        });
    }
    let mut histograms = Vec::new();
    for h in arr("histograms")? {
        let name = require_str(h, "name")
            .map_err(|_| schema_err("telemetry", "histogram without a name".into()))?
            .to_string();
        let cells = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err("telemetry", "histogram without a buckets array".into()))?;
        let mut buckets = Vec::with_capacity(cells.len());
        for cell in cells {
            let pair = cell.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                schema_err("telemetry", "bucket must be a [index, count] pair".into())
            })?;
            let bucket = pair[0]
                .as_u64()
                .and_then(|b| u32::try_from(b).ok())
                .ok_or_else(|| schema_err("telemetry", "bucket index out of range".into()))?;
            let count = pair[1]
                .as_u64()
                .ok_or_else(|| schema_err("telemetry", "bucket count is not a count".into()))?;
            buckets.push(BucketCount { bucket, count });
        }
        histograms.push(HistogramSnapshot { name, buckets });
    }
    let mut spans = Vec::new();
    for s in arr("spans")? {
        spans.push(SpanSnapshot {
            path: require_str(s, "path")
                .map_err(|_| schema_err("telemetry", "span without a path".into()))?
                .to_string(),
            count: require_u64(s, "count")
                .map_err(|_| schema_err("telemetry", "span count is not a count".into()))?,
            total_ns: require_u64(s, "total_ns")
                .map_err(|_| schema_err("telemetry", "span total_ns is not a count".into()))?,
        });
    }
    Ok(TelemetrySnapshot {
        counters,
        histograms,
        spans,
    })
}

/// Parses the presence-driven `deduce` section.
fn parse_deduce(d: &Json) -> Result<DeduceDetails, CampaignError> {
    let num = |key: &'static str| {
        d.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| schema_err("deduce", format!("missing or malformed `{key}` member")))
    };
    let cells = d
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("deduce", "missing or malformed `rows` array".into()))?;
    let mut rows = Vec::with_capacity(cells.len());
    for cell in cells {
        rows.push(
            cell.as_u64()
                .ok_or_else(|| schema_err("deduce", "row index is not a count".into()))?,
        );
    }
    Ok(DeduceDetails {
        untestable: num("untestable")?,
        dominated: num("dominated")?,
        simulated: num("simulated")?,
        rows,
    })
}

fn schema_err(field: &'static str, message: String) -> CampaignError {
    CampaignError::Schema { field, message }
}

fn require_str<'a>(v: &'a Json, key: &'static str) -> Result<&'a str, CampaignError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err(key, "missing or not a string".into()))
}

fn require_u64(v: &Json, key: &'static str) -> Result<u64, CampaignError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| schema_err(key, "missing or not a non-negative integer".into()))
}

fn parse_tech_tally(v: &Json, field: &'static str) -> Result<TechTally, CampaignError> {
    let _ = field;
    Ok(TechTally {
        correct_silent: require_u64(v, "correct_silent")?,
        correct_detected: require_u64(v, "correct_detected")?,
        error_detected: require_u64(v, "error_detected")?,
        error_undetected: require_u64(v, "error_undetected")?,
    })
}

/// Stable serialisation label of a drop policy.
#[must_use]
pub fn drop_label(d: DropPolicy) -> &'static str {
    match d {
        DropPolicy::Never => "never",
        DropPolicy::OnDetect => "on-detect",
        DropPolicy::OnEscape => "on-escape",
    }
}

/// Parses a drop-policy serialisation label.
#[must_use]
pub fn drop_from_label(s: &str) -> Option<DropPolicy> {
    match s {
        "never" => Some(DropPolicy::Never),
        "on-detect" => Some(DropPolicy::OnDetect),
        "on-escape" => Some(DropPolicy::OnEscape),
        _ => None,
    }
}

/// Stable serialisation label of a fault duration (`permanent`,
/// `transient@<cycle>`).
#[must_use]
pub fn duration_label(d: FaultDuration) -> String {
    d.to_string()
}

/// Parses a fault-duration serialisation label.
#[must_use]
pub fn duration_from_label(s: &str) -> Option<FaultDuration> {
    if s == "permanent" {
        return Some(FaultDuration::Permanent);
    }
    let cycle = s.strip_prefix("transient@")?.parse().ok()?;
    Some(FaultDuration::Transient { cycle })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::Operator;

    fn tiny_report() -> CampaignReport {
        let scenario = Scenario::new(Operator::Add, 1);
        let selected = scenario.tech_index();
        let mut tally = Tally::default();
        tally.tech[selected as usize] = TechTally {
            correct_silent: 10,
            correct_detected: 3,
            error_detected: 2,
            error_undetected: 1,
        };
        CampaignReport {
            scenario,
            backend: Backend::GateLevel,
            fault_model: FaultModel::Structural,
            space: InputSpace::Sampled {
                per_fault: 16,
                seed: 42,
            },
            drop: DropPolicy::OnDetect,
            tally,
            filled: vec![selected],
            per_fault: vec![
                FaultRecord {
                    tally: TechTally {
                        correct_silent: 10,
                        correct_detected: 3,
                        error_detected: 2,
                        error_undetected: 1,
                    },
                    detected: true,
                    escaped: true,
                    dropped_after: Some(16),
                },
                FaultRecord::default(),
            ],
            simulated: 16,
            elapsed_ms: 7,
            datapath: None,
            sequential: None,
            shard: None,
            deduce: None,
            telemetry: None,
        }
    }

    #[test]
    fn json_round_trips_structurally() {
        let r = tiny_report();
        let text = r.to_json();
        let parsed = CampaignReport::from_json(&text).expect("round trip");
        assert!(parsed.same_results(&r));
        assert_eq!(parsed.backend, r.backend);
        assert_eq!(parsed.elapsed_ms, r.elapsed_ms);
        assert_eq!(parsed.to_json(), text, "serialisation is a fixpoint");
    }

    #[test]
    fn telemetry_section_round_trips_and_stays_optional() {
        let plain = tiny_report();
        assert!(
            !plain.to_json().contains("\"telemetry\""),
            "reports without telemetry must not grow a section"
        );

        let mut r = tiny_report();
        r.telemetry = Some(TelemetrySnapshot {
            counters: vec![
                CounterSnapshot {
                    name: "engine.faults".to_string(),
                    value: 2,
                },
                CounterSnapshot {
                    name: "engine.situations".to_string(),
                    value: 16,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "engine.fault_situations".to_string(),
                buckets: vec![BucketCount {
                    bucket: 4,
                    count: 2,
                }],
            }],
            spans: vec![
                SpanSnapshot {
                    path: "campaign".to_string(),
                    count: 1,
                    total_ns: 7_000_000,
                },
                SpanSnapshot {
                    path: "campaign/simulate".to_string(),
                    count: 1,
                    total_ns: 5_500_000,
                },
            ],
        });
        let text = r.to_json();
        let parsed = CampaignReport::from_json(&text).expect("round trip");
        assert_eq!(parsed.telemetry, r.telemetry);
        assert_eq!(
            parsed.to_json(),
            text,
            "telemetry serialisation is a fixpoint"
        );

        // Merging telemetry-carrying shards aggregates the sections.
        let mut a = r.clone();
        let mut b = r.clone();
        a.shard = Some(ShardInfo {
            index: 0,
            count: 2,
            fault_start: 0,
            fault_end: 2,
            total_faults: 4,
            plan_hash: 9,
        });
        b.shard = Some(ShardInfo {
            index: 1,
            count: 2,
            fault_start: 2,
            fault_end: 4,
            total_faults: 4,
            plan_hash: 9,
        });
        let merged = CampaignReport::merge(&[a, b]).expect("mergeable shards");
        let tel = merged.telemetry.expect("merged telemetry");
        assert_eq!(tel.counter("engine.faults"), Some(4));
        assert_eq!(tel.span("campaign/simulate").map(|s| s.count), Some(2));
    }

    #[test]
    fn deduce_section_round_trips_and_merges_with_offsets() {
        let plain = tiny_report();
        assert!(
            !plain.to_json().contains("\"deduce\""),
            "reports without pruning must not grow a section"
        );

        let mut r = tiny_report();
        r.deduce = Some(DeduceDetails {
            untestable: 1,
            dominated: 0,
            simulated: 1,
            rows: vec![1],
        });
        let text = r.to_json();
        let parsed = CampaignReport::from_json(&text).expect("round trip");
        assert_eq!(parsed.deduce, r.deduce);
        assert!(parsed.same_results(&plain), "deduce never changes results");
        assert_eq!(parsed.to_json(), text, "deduce serialisation is a fixpoint");

        // Merging shifts shard-local row indices by the shard's start.
        let mut a = r.clone();
        let mut b = r.clone();
        a.shard = Some(ShardInfo {
            index: 0,
            count: 2,
            fault_start: 0,
            fault_end: 2,
            total_faults: 4,
            plan_hash: 9,
        });
        b.shard = Some(ShardInfo {
            index: 1,
            count: 2,
            fault_start: 2,
            fault_end: 4,
            total_faults: 4,
            plan_hash: 9,
        });
        let merged = CampaignReport::merge(&[a, b]).expect("mergeable shards");
        let d = merged.deduce.expect("merged deduce");
        assert_eq!((d.untestable, d.dominated, d.simulated), (2, 0, 2));
        assert_eq!(d.rows, vec![1, 3]);
    }

    #[test]
    fn rates_and_ranges() {
        let r = tiny_report();
        assert_eq!(r.fault_count(), 2);
        assert_eq!(r.total_situations(), 16);
        assert!(r.sampled());
        assert!((r.detection_rate() - 0.5).abs() < 1e-12);
        assert!((r.safe_rate() - 0.5).abs() < 1e-12);
        let (lo, hi) = r.per_fault_coverage_range();
        assert!(lo <= hi && hi <= 1.0);
        assert_eq!(r.coverage_of(TechIndex::Tech1), None, "not filled");
        assert!(r.coverage_of(TechIndex::Both).is_some());
    }

    #[test]
    fn schema_violations_are_typed() {
        assert!(matches!(
            CampaignReport::from_json("{"),
            Err(CampaignError::Parse { .. })
        ));
        assert!(matches!(
            CampaignReport::from_json("{\"schema\": \"other/v9\"}"),
            Err(CampaignError::Schema {
                field: "schema",
                ..
            })
        ));
        let mut text = tiny_report().to_json();
        text = text.replace("\"fault_count\": 2", "\"fault_count\": 5");
        assert!(matches!(
            CampaignReport::from_json(&text),
            Err(CampaignError::Schema {
                field: "fault_count",
                ..
            })
        ));
    }

    #[test]
    fn out_of_range_widths_are_schema_errors() {
        let base = tiny_report().to_json();
        for bad in ["0", "99", "4294967300"] {
            let text = base.replace("\"width\": 1", &format!("\"width\": {bad}"));
            assert!(
                matches!(
                    CampaignReport::from_json(&text),
                    Err(CampaignError::Schema {
                        field: "scenario.width",
                        ..
                    })
                ),
                "width {bad} must be rejected"
            );
        }
    }

    #[test]
    fn empty_universe_coverage_range_is_degenerate() {
        let mut r = tiny_report();
        r.per_fault.clear();
        assert_eq!(r.per_fault_coverage_range(), (1.0, 1.0));
        let (lo, hi) = tiny_report().per_fault_coverage_range();
        assert!(lo <= hi, "range must be ordered for non-empty universes");
    }

    #[test]
    fn drop_labels_round_trip() {
        for d in [
            DropPolicy::Never,
            DropPolicy::OnDetect,
            DropPolicy::OnEscape,
        ] {
            assert_eq!(drop_from_label(drop_label(d)), Some(d));
        }
        assert_eq!(drop_from_label("nope"), None);
    }
}
