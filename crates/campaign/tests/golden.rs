//! Golden-file and cross-backend pins for the unified campaign API.
//!
//! * The width-4 Add/Tech1 report is pinned byte-for-byte against
//!   `tests/golden/add_tech1_w4.json` (regenerate with
//!   `REGEN_GOLDEN=1 cargo test -p scdp-campaign --test golden`).
//! * The same scenario run through the gate-level backend must produce
//!   the *same* report up to the backend label — the functional fault
//!   universe replayed structurally, bit for bit.

use scdp_campaign::{
    Backend, CampaignReport, CampaignSpec, ExecPolicy, FaultModel, InputSpace, Scenario,
};
use scdp_core::{Allocation, Operator, Technique};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/add_tech1_w4.json")
}

/// The pinned scenario: width-4 `+`, Tech1, worst case, the paper's
/// `32·n` fault universe, exhaustive inputs.
fn pinned_spec() -> CampaignSpec {
    Scenario::new(Operator::Add, 4)
        .technique(Technique::Tech1)
        .campaign()
        .fault_model(FaultModel::FaGate)
        .exec(ExecPolicy::new().threads(2))
}

fn canonical_json(mut report: CampaignReport) -> String {
    report.elapsed_ms = 0;
    report.to_json()
}

#[test]
fn width4_add_tech1_matches_the_golden_file() {
    let json = canonical_json(pinned_spec().run().expect("functional run"));
    let path = golden_path();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden file present");
    assert_eq!(
        json, golden,
        "the pinned width-4 Add/Tech1 report drifted; \
         REGEN_GOLDEN=1 only if the change is intentional"
    );
}

#[test]
fn golden_file_round_trips_through_the_parser() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    let parsed = CampaignReport::from_json(&golden).expect("golden parses");
    assert_eq!(parsed.to_json(), golden, "parse→serialise is the identity");
    assert_eq!(parsed.scenario.width, 4);
    assert_eq!(parsed.scenario.technique, Technique::Tech1);
    assert_eq!(parsed.fault_count(), 128);
    assert_eq!(parsed.total_situations(), 128 * 256);
}

#[test]
fn both_backends_produce_the_pinned_report() {
    let functional = pinned_spec().run().expect("functional run");
    let gate = pinned_spec()
        .backend(Backend::GateLevel)
        .run()
        .expect("gate-level run");
    // Bit-identical four-way tallies, per-fault records included.
    assert_eq!(functional.four_way(), gate.four_way());
    assert_eq!(functional.per_fault, gate.per_fault);
    assert!(functional.same_results(&gate));
    // Byte-identical JSON up to the backend label.
    let g =
        canonical_json(gate).replace("\"backend\": \"gate-level\"", "\"backend\": \"functional\"");
    assert_eq!(canonical_json(functional), g);
}

/// The cross-backend equality is not a Tech1 accident: every technique
/// column and the subtraction datapath agree bit for bit too.
#[test]
fn cross_backend_tallies_agree_for_all_techniques_and_sub() {
    for op in [Operator::Add, Operator::Sub] {
        for technique in Technique::ALL {
            let spec = Scenario::new(op, 3)
                .technique(technique)
                .campaign()
                .fault_model(FaultModel::FaGate);
            let functional = spec.clone().run().expect("functional");
            let gate = spec.backend(Backend::GateLevel).run().expect("gate");
            assert!(
                functional.same_results(&gate),
                "{op:?} {technique:?} diverged: functional {:?} vs gate {:?}",
                functional.four_way(),
                gate.four_way()
            );
        }
    }
}

#[test]
fn dedicated_allocation_agrees_across_backends_and_is_fully_covered() {
    let spec = Scenario::new(Operator::Add, 3)
        .allocation(Allocation::Dedicated)
        .campaign()
        .fault_model(FaultModel::FaGate);
    let functional = spec.clone().run().expect("functional");
    let gate = spec.backend(Backend::GateLevel).run().expect("gate");
    assert!(functional.same_results(&gate));
    assert_eq!(functional.four_way().error_undetected, 0);
    assert!(functional.four_way().error_detected > 0);
}

/// Sampled (Monte-Carlo) spaces flow through the unified surface and
/// serialise faithfully.
#[test]
fn sampled_campaign_report_round_trips() {
    let report = Scenario::new(Operator::Add, 6)
        .campaign()
        .backend(Backend::GateLevel)
        .input_space(InputSpace::Sampled {
            per_fault: 512,
            seed: 0xDA7E,
        })
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("sampled run");
    assert!(report.sampled());
    assert_eq!(report.total_situations(), report.fault_count() * 512);
    let parsed = CampaignReport::from_json(&report.to_json()).expect("parse");
    assert!(parsed.same_results(&report));
    assert_eq!(
        parsed.space,
        InputSpace::Sampled {
            per_fault: 512,
            seed: 0xDA7E
        }
    );
}
