//! `ExecPolicy::collapse` is an engine-side optimisation, never a result
//! change: every test here pins a collapsed campaign byte-for-byte
//! against its uncollapsed twin — per-fault rows, per-FU tallies,
//! latency histograms, shard sections and all.

use scdp_analyze::CollapsedUniverse;
use scdp_campaign::{
    Backend, CampaignError, CampaignJob, CampaignReport, CampaignRunner, DatapathScenario,
    DfgSource, ExecPolicy, FaultDuration, FaultModel, InputSpace, Scenario,
};
use scdp_core::{Operator, Technique};
use scdp_hls::testgen::{random_dfg, DfgGenConfig};

/// Byte-comparable form: wall clock zeroed, everything else verbatim.
/// Telemetry stays off in these runs, so the JSON covers every result
/// field of the report.
fn canonical(mut report: CampaignReport) -> String {
    report.elapsed_ms = 0;
    assert!(report.telemetry.is_none(), "comparisons run telemetry-free");
    report.to_json()
}

#[test]
fn gate_backend_collapse_is_bit_identical() {
    for (op, tech, model) in [
        (Operator::Add, Technique::Tech1, FaultModel::Structural),
        (Operator::Add, Technique::Both, FaultModel::FaGate),
        (Operator::Sub, Technique::Tech2, FaultModel::Structural),
    ] {
        let spec = Scenario::new(op, 3)
            .technique(tech)
            .campaign()
            .backend(Backend::GateLevel)
            .fault_model(model)
            .exec(ExecPolicy::new().threads(2));
        let plain = spec.clone().run().expect("uncollapsed");
        let collapsed = spec
            .exec(ExecPolicy::new().threads(2).collapse(true))
            .run()
            .expect("collapsed");
        assert_eq!(canonical(plain), canonical(collapsed), "{op:?}/{tech:?}");
    }
}

#[test]
fn functional_backend_rejects_collapse() {
    let err = Scenario::new(Operator::Add, 3)
        .campaign()
        .exec(ExecPolicy::new().collapse(true))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        CampaignError::UnsupportedCollapse {
            backend: Backend::Functional
        }
    ));
}

/// The acceptance pin: the golden-pinned width-4 Tech1 configurations
/// of all three spec shapes — operator gate-level, unrolled datapath,
/// cycle-accurate sequential — produce byte-identical reports with
/// collapsing on.
#[test]
fn golden_width4_tech1_campaigns_collapse_bit_identical() {
    // Operator shape, the golden add_tech1_w4 configuration on the
    // gate-level backend (the shape that supports collapsing).
    let op = Scenario::new(Operator::Add, 4)
        .technique(Technique::Tech1)
        .campaign()
        .backend(Backend::GateLevel)
        .fault_model(FaultModel::FaGate)
        .exec(ExecPolicy::new().threads(2));
    assert_eq!(
        canonical(op.clone().run().expect("op")),
        canonical(
            op.exec(ExecPolicy::new().threads(2).collapse(true))
                .run()
                .expect("op collapsed")
        )
    );

    // Unrolled FIR datapath.
    let space = InputSpace::Sampled {
        per_fault: 128,
        seed: 0xF1,
    };
    let dp = DatapathScenario::new(DfgSource::Fir, 4)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(space)
        .exec(ExecPolicy::new().threads(2));
    assert_eq!(
        canonical(dp.clone().run().expect("dp")),
        canonical(
            dp.exec(ExecPolicy::new().threads(2).collapse(true))
                .run()
                .expect("dp collapsed")
        )
    );

    // Cycle-accurate sequential FIR machine.
    let seq = DatapathScenario::new(DfgSource::Fir, 4)
        .technique(Technique::Tech1)
        .seq_campaign()
        .input_space(space)
        .exec(ExecPolicy::new().threads(2));
    let plain = seq.clone().run().expect("seq");
    let collapsed = seq
        .exec(ExecPolicy::new().threads(2).collapse(true))
        .run()
        .expect("seq collapsed");
    assert_eq!(plain.sequential, collapsed.sequential);
    assert_eq!(canonical(plain), canonical(collapsed));
}

#[test]
fn sequential_collapse_preserves_latency_histograms_for_transients() {
    let space = InputSpace::Sampled {
        per_fault: 64,
        seed: 0x7A,
    };
    for duration in [
        FaultDuration::Permanent,
        FaultDuration::Transient { cycle: 1 },
    ] {
        let spec = DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Both)
            .seq_campaign()
            .duration(duration)
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        let plain = spec.clone().run().expect("uncollapsed");
        let collapsed = spec
            .exec(ExecPolicy::new().threads(2).collapse(true))
            .run()
            .expect("collapsed");
        assert_eq!(canonical(plain), canonical(collapsed), "{duration:?}");
    }
}

/// Satellite: seeded random DFGs through the synthesis front half, both
/// datapath shapes, collapsed vs uncollapsed byte-identical.
#[test]
fn random_custom_dfg_campaigns_collapse_bit_identical() {
    let cfg = DfgGenConfig {
        max_ops: 4,
        allow_div: false,
        allow_mem: false,
    };
    let space = InputSpace::Sampled {
        per_fault: 32,
        seed: 0xC0,
    };
    for seed in 0..4u64 {
        let dfg = random_dfg(0x5CD9_0000 + seed, &cfg);
        let dp = DatapathScenario::new(DfgSource::Custom(dfg.clone()), 2)
            .technique(Technique::Tech1)
            .campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        assert_eq!(
            canonical(dp.clone().run().expect("dp")),
            canonical(
                dp.exec(ExecPolicy::new().threads(2).collapse(true))
                    .run()
                    .expect("dp collapsed")
            ),
            "datapath seed {seed}"
        );
        let seq = DatapathScenario::new(DfgSource::Custom(dfg), 2)
            .technique(Technique::Tech1)
            .seq_campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        assert_eq!(
            canonical(seq.clone().run().expect("seq")),
            canonical(
                seq.exec(ExecPolicy::new().threads(2).collapse(true))
                    .run()
                    .expect("seq collapsed")
            ),
            "sequential seed {seed}"
        );
    }
}

/// Collapse-then-shard == shard-then-collapse: collapsed shards merge
/// into the uncollapsed unsharded report, and the shard sections
/// themselves match their uncollapsed twins byte for byte (the
/// fingerprint excludes collapsing, so checkpoints interchange).
#[test]
fn collapse_composes_with_sharding() {
    let spec = Scenario::new(Operator::Add, 3)
        .technique(Technique::Tech1)
        .campaign()
        .backend(Backend::GateLevel)
        .exec(ExecPolicy::new().threads(2));
    let full = spec.clone().run().expect("unsharded");
    let mut shards = Vec::new();
    for index in 0..3 {
        let mut sharded = spec.clone().shard(index, 3);
        sharded.exec.collapse = true;
        let collapsed = sharded.run().expect("collapsed shard");
        let plain = spec.clone().shard(index, 3).run().expect("plain shard");
        assert_eq!(
            canonical(plain),
            canonical(collapsed.clone()),
            "shard {index}"
        );
        shards.push(collapsed);
    }
    let merged = CampaignReport::merge(&shards).expect("merge");
    assert_eq!(canonical(full), canonical(merged));
}

/// The runner passthrough: an in-memory sharded collapsed job merges
/// to the same report as the unsharded uncollapsed run — for the
/// sequential shape too, where the latency histogram must survive the
/// shard fan-out.
#[test]
fn runner_collapse_passthrough_reaches_every_shape() {
    let job = CampaignJob::Operator(
        Scenario::new(Operator::Add, 2)
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(2)),
    );
    let merged = CampaignRunner::new(job.clone().collapse(true), 3)
        .run()
        .expect("runs")
        .report
        .expect("complete");
    assert_eq!(canonical(job.run().expect("full")), canonical(merged));

    let seq = CampaignJob::Sequential(
        DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Tech1)
            .seq_campaign()
            .input_space(InputSpace::Sampled {
                per_fault: 64,
                seed: 0x5E9,
            })
            .exec(ExecPolicy::new().threads(2)),
    );
    let merged = CampaignRunner::new(seq.clone().collapse(true), 2)
        .run()
        .expect("runs")
        .report
        .expect("complete");
    assert_eq!(canonical(seq.run().expect("full")), canonical(merged));
}

/// Acceptance floor: the golden width-4 ripple-carry adder universe
/// collapses to at most 70 % of its stuck-at lines. Wider adders
/// approach the ~0.71 asymptote of the per-full-adder structure (the
/// constant carry-in only helps at bit 0), so they get a looser bound.
#[test]
fn rca_universe_collapses_below_seventy_percent() {
    let cu = CollapsedUniverse::build(&scdp_netlist::gen::rca(4));
    let ratio = cu.ratio();
    assert!(
        ratio <= 0.7,
        "rca(4): {} / {} = {ratio:.3} > 0.7",
        cu.sites_after(),
        cu.sites_before()
    );
    for width in [8u32, 16] {
        let cu = CollapsedUniverse::build(&scdp_netlist::gen::rca(width));
        assert!(cu.ratio() <= 0.72, "rca({width}): {:.3}", cu.ratio());
    }
}

#[test]
fn collapse_telemetry_counters_are_recorded() {
    let report = Scenario::new(Operator::Add, 3)
        .technique(Technique::Tech1)
        .campaign()
        .backend(Backend::GateLevel)
        .exec(ExecPolicy::new().threads(2).collapse(true).telemetry(true))
        .run()
        .expect("runs");
    let tel = report.telemetry.as_ref().expect("telemetry section");
    let before = tel.counter("collapse.sites_before").expect("sites_before");
    let after = tel.counter("collapse.sites_after").expect("sites_after");
    let classes = tel.counter("collapse.classes").expect("classes");
    assert_eq!(before, report.fault_count());
    assert!(after < before, "collapsing must shrink the universe");
    assert_eq!(classes, after, "unsharded: every class is simulated");
}
