//! The unified `scdp` command-line interface.
//!
//! One binary replaces the per-table binaries' duplicated argument and
//! report plumbing with four verbs over the unified campaign surface:
//!
//! * `scdp run` — one campaign (operator, datapath or sequential
//!   datapath), optionally sharded (`--shards N`) and checkpointed to
//!   a directory (`--dir D`). An interrupted sharded sweep resumes
//!   from its checkpoints on the next invocation; a completed one is
//!   merged into a report bit-identical to the unsharded run.
//! * `scdp merge` — recombine the `shard-NNN.json` checkpoints of one
//!   sweep into the full report.
//! * `scdp validate` — parse and schema-check report files (v1–v4).
//! * `scdp table` — render saved reports as a summary table.
//! * `scdp sweep` — the workload × technique sweeps formerly known as
//!   `table_datapath` (and, with `--seq`, `table_seq`); those binaries
//!   are now thin wrappers over this verb.
//!
//! The module lives in the library (rather than the binary) so the
//! wrapper binaries can delegate and tests can drive it directly.

use crate::cli::CliArgs;
use crate::pct;
use crate::trace;
use scdp_campaign::{
    drop_from_label, duration_from_label, duration_label, op_from_label, realisation_from_label,
    style_from_label, style_label, technique_from_label, Backend, CampaignJob, CampaignReport,
    CampaignRunner, DatapathScenario, DfgSource, ExecPolicy, FaultDuration, InputSpace, Lanes,
    Scenario, ShardState,
};
use scdp_core::{Allocation, Technique};
use scdp_hls::SckStyle;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bare flags (no value argument) of every subcommand — everything
/// else starting with `--` consumes the following argument.
const BARE_FLAGS: &[&str] = &[
    "--seq",
    "--dedicated",
    "--monte-carlo",
    "--exhaustive",
    "--quiet",
    "--per-fu",
    "--progress",
    "--telemetry",
    "--collapse",
    "--prune",
    "--strict",
    "--json",
    "--wait",
];

const USAGE: &str = "\
scdp — self-checking data-path campaigns

USAGE:
  scdp run [SCENARIO] [EXECUTION] [SHARDING] [OBSERVABILITY] [--report FILE]
  scdp merge (--dir DIR | FILE...) [--out FILE]
  scdp validate FILE...
  scdp table (--dir DIR | FILE...)
  scdp sweep [--seq] [SCENARIO] [EXECUTION] [--report-dir DIR]
  scdp lint [SCENARIO] [--strict] [--json]
  scdp analyze [SCENARIO] [--json]
  scdp trace summarize FILE...
  scdp serve [--addr A] [--dir DIR] [--jobs N]
  scdp submit SPEC.json [--addr A] [--wait] [--out FILE]

SCENARIO (pick an operator or a workload):
  --op add|sub|mul|div          checked operator scenario (default: add)
  --realisation rca|cla|csa     adder realisation (operator scenarios)
  --backend functional|gate-level  engine for operator scenarios
  --workload fir|iir|dot|matvec whole-datapath scenario
  --seq                         cycle-accurate sequential campaign
  --duration permanent|transient@C  fault duration (sequential)
  --width N  --technique tech1|tech2|both  --style plain|full|embedded
  --dedicated                   dedicated-checker allocation

EXECUTION:
  --samples N  --seed S  --monte-carlo  --exhaustive
  --threads N  --drop never|on-detect|on-escape
  --lanes auto|1|4|8  packed-engine lane width in 64-bit limbs
                    (results are bit-identical at every width)
  --collapse        simulate one representative per fault-equivalence
                    class and fan verdicts back out (bit-identical
                    reports, fewer simulated faults)
  --prune           settle deductively resolved faults (untestability
                    proofs, dominance deferral) from the baseline probe
                    instead of simulating them (bit-identical reports;
                    the `deduce` section records the provenance)

LINT (scdp lint — static netlist analysis, no simulation):
  lints the scenario's generated netlist (floating nets, combinational
  cycles, dead logic, unreachable checker alarms) and reports the
  fault-collapsing statistics; exits nonzero on lint errors
  --strict          escalate waived findings to warnings
  --json            machine-readable lint + collapse output

ANALYZE (scdp analyze — deductive pruning preview, no simulation):
  prints what `--prune` would settle on the scenario's stuck-at line
  universe: untestability proofs by reason (redundant, blocked,
  unobservable), dominance-deferrable lines, and the prune ratio
  --json            machine-readable breakdown

SHARDING (scdp run):
  --shards N        partition the fault universe into N shards
  --dir DIR         checkpoint each shard to DIR/shard-NNN.json; an
                    interrupted sweep resumes from DIR next invocation
  --max-shards K    stop after K fresh shards (deterministic interrupt)

SERVING (scdp serve / scdp submit):
  serve runs the campaign job server: POST /jobs, GET /jobs/<id>,
  GET /jobs/<id>/report, GET /healthz — results are cached by
  configuration fingerprint and interrupted jobs resume on restart
  --addr A          bind (serve) / connect (submit); default 127.0.0.1:7878
  --dir DIR         job-state directory (default scdp-jobs)
  --jobs N          concurrent campaign jobs (default 2)
  --wait            poll the submitted job until it finishes
  --out FILE        write the fetched report (implies --wait)

OBSERVABILITY (scdp run):
  --trace FILE      write every campaign/shard/span event to FILE as
                    JSONL (summarise later with `scdp trace summarize`)
  --progress        live progress on stderr: shard bar, faults/s,
                    drop rate, ETA
  --telemetry       embed a telemetry section (spans, counters,
                    histograms) in the report(s)
";

/// Entry point used by the `scdp` binary: parses the process
/// arguments and returns the exit code.
#[must_use]
pub fn main_from_env() -> i32 {
    run(std::env::args().skip(1).collect())
}

/// Runs one `scdp` invocation over an explicit argument vector
/// (exposed for the wrapper binaries and tests). Returns the process
/// exit code: 0 on success, 1 on campaign/report errors, 2 on usage
/// errors.
#[must_use]
pub fn run(raw: Vec<String>) -> i32 {
    let Some(verb) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return 2;
    };
    let rest: Vec<String> = raw[1..].to_vec();
    let files = positionals(&rest);
    let args = CliArgs::from_vec(rest);
    let outcome = match verb.as_str() {
        "run" => cmd_run(&args),
        "merge" => cmd_merge(&args, &files),
        "validate" => cmd_validate(&files),
        "table" => cmd_table(&args, &files),
        "sweep" => cmd_sweep(&args),
        "lint" => cmd_lint(&args),
        "analyze" => cmd_analyze(&args),
        "trace" => cmd_trace(&files),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args, &files),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return 0;
        }
        other => {
            eprintln!("unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return 2;
        }
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("scdp {verb}: {message}");
            1
        }
    }
}

/// The non-flag arguments (report file paths), skipping every flag's
/// value argument.
fn positionals(raw: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in raw {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            skip = !BARE_FLAGS.contains(&arg.as_str());
            continue;
        }
        out.push(arg.clone());
    }
    out
}

/// Parses a `--lanes auto|1|4|8` argument into a lane-width choice.
fn lanes_from_args(args: &CliArgs) -> Result<Lanes, String> {
    match args.value::<String>("--lanes") {
        None => Ok(Lanes::Auto),
        Some(s) if s == "auto" => Ok(Lanes::Auto),
        Some(s) => s
            .parse::<usize>()
            .ok()
            .and_then(Lanes::from_limbs)
            .ok_or(format!("unknown lane width `{s}` (auto|1|4|8)")),
    }
}

/// Builds the [`ExecPolicy`] a `run`/`sweep` invocation describes:
/// threads, lane width, drop policy and collapsing in one value.
fn exec_from_args(args: &CliArgs) -> Result<ExecPolicy, String> {
    let drop = match args.value::<String>("--drop") {
        None => scdp_campaign::DropPolicy::Never,
        Some(s) => drop_from_label(&s).ok_or(format!("unknown drop policy `{s}`"))?,
    };
    Ok(ExecPolicy::new()
        .threads(args.threads())
        .lanes(lanes_from_args(args)?)
        .drop_policy(drop)
        .collapse(args.flag("--collapse"))
        .prune(args.flag("--prune")))
}

/// Builds the campaign job a `run` invocation describes.
fn job_from_args(args: &CliArgs) -> Result<CampaignJob, String> {
    let width = args.width(4);
    let samples = args.samples(1024);
    let seed = args.seed();
    let exec = exec_from_args(args)?;
    let technique = match args.value::<String>("--technique") {
        None => Technique::Both,
        Some(s) => technique_from_label(&s).ok_or(format!("unknown technique `{s}`"))?,
    };
    let allocation = if args.flag("--dedicated") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };

    if let Some(workload) = args.value::<String>("--workload") {
        let source =
            DfgSource::from_label(&workload).ok_or(format!("unknown workload `{workload}`"))?;
        let style = match args.value::<String>("--style") {
            None => SckStyle::Full,
            Some(s) => style_from_label(&s).ok_or(format!("unknown style `{s}`"))?,
        };
        let space = if args.flag("--exhaustive") {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled {
                per_fault: samples,
                seed,
            }
        };
        let scenario = DatapathScenario::new(source, width)
            .technique(technique)
            .style(style)
            .allocation(allocation);
        if args.flag("--seq") || args.value::<String>("--duration").is_some() {
            let duration = match args.value::<String>("--duration") {
                None => FaultDuration::Permanent,
                Some(s) => duration_from_label(&s).ok_or(format!("unknown duration `{s}`"))?,
            };
            Ok(CampaignJob::Sequential(
                scenario
                    .seq_campaign()
                    .duration(duration)
                    .input_space(space)
                    .exec(exec),
            ))
        } else {
            Ok(CampaignJob::Datapath(
                scenario.campaign().input_space(space).exec(exec),
            ))
        }
    } else {
        let op_label = args
            .value::<String>("--op")
            .unwrap_or_else(|| "add".to_string());
        let op = op_from_label(&op_label).ok_or(format!("unknown operator `{op_label}`"))?;
        let backend = match args.value::<String>("--backend") {
            None => Backend::Functional,
            Some(s) => Backend::from_label(&s).ok_or(format!("unknown backend `{s}`"))?,
        };
        let mut scenario = Scenario::new(op, width)
            .technique(technique)
            .allocation(allocation);
        if let Some(r) = args.value::<String>("--realisation") {
            scenario = scenario.realisation(
                realisation_from_label(&r).ok_or(format!("unknown realisation `{r}`"))?,
            );
        }
        let space = if args.flag("--exhaustive") {
            InputSpace::Exhaustive
        } else {
            args.space(width, samples)
        };
        Ok(CampaignJob::Operator(
            scenario
                .campaign()
                .backend(backend)
                .input_space(space)
                .exec(exec),
        ))
    }
}

fn cmd_run(args: &CliArgs) -> Result<i32, String> {
    let mut job = job_from_args(args)?;
    let shards = args.value_or("--shards", 1u32);
    let dir = args.value::<String>("--dir");
    let quiet = args.flag("--quiet");
    let telemetry = args.flag("--telemetry");
    let trace_path = args.value::<String>("--trace");
    let mut sinks = Vec::new();
    if let Some(path) = &trace_path {
        sinks.push(trace::trace_sink(path)?);
    }
    if args.flag("--progress") {
        sinks.push(trace::progress_sink());
    }
    let sink = trace::fan_out(sinks);
    // Any explicit shard count (including the invalid 0, which the
    // runner rejects with a typed error) or a checkpoint directory
    // routes through the runner; only the plain single-shot case runs
    // directly.
    let report = if shards != 1 || dir.is_some() {
        let mut runner = CampaignRunner::new(job, shards);
        if let Some(sink) = sink {
            runner = runner.events(sink);
        }
        if telemetry {
            runner = runner.telemetry(true);
        }
        if !quiet {
            runner = runner.on_shard(Arc::new(|index, count, state| {
                let what = match state {
                    ShardState::Resumed => "resumed from checkpoint",
                    ShardState::Ran => "ran",
                    ShardState::Pending => "pending (fresh-shard budget reached)",
                };
                eprintln!("[shard {}/{count}] {what}", index + 1);
            }));
        }
        if let Some(d) = &dir {
            runner = runner.checkpoint_dir(d);
        }
        if let Some(max) = args.value::<u32>("--max-shards") {
            runner = runner.max_shards(max);
        }
        let outcome = runner.run().map_err(|e| e.to_string())?;
        let (resumed, ran, pending) = outcome.counts();
        match outcome.report {
            Some(report) => {
                if !quiet {
                    eprintln!("sweep complete: {ran} shard(s) ran, {resumed} resumed; merged");
                }
                report
            }
            None => {
                println!(
                    "interrupted: {}/{shards} shards checkpointed ({pending} pending); \
                     re-run with the same --dir to resume",
                    resumed + ran
                );
                return Ok(0);
            }
        }
    } else {
        if let Some(sink) = sink {
            job = job.events(sink);
        }
        if telemetry {
            job = job.telemetry(true);
        }
        job.run().map_err(|e| e.to_string())?
    };
    print_summary(&report, args.flag("--per-fu"));
    if let Some(path) = &trace_path {
        eprintln!("wrote trace {path}");
    }
    if let Some(path) = args.value::<String>("--report") {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(0)
}

/// Elaborates the netlist a `lint`/`analyze` invocation describes —
/// the same SCENARIO grammar as `run`, minus the input space (static
/// analysis needs no vectors).
fn netlist_from_args(args: &CliArgs) -> Result<scdp_netlist::Netlist, String> {
    use scdp_netlist::gen::{self_checking, self_checking_add_with, SelfCheckingSpec};

    let width = args.width(4);
    let technique = match args.value::<String>("--technique") {
        None => Technique::Both,
        Some(s) => technique_from_label(&s).ok_or(format!("unknown technique `{s}`"))?,
    };
    let netlist = if let Some(workload) = args.value::<String>("--workload") {
        let source =
            DfgSource::from_label(&workload).ok_or(format!("unknown workload `{workload}`"))?;
        let style = match args.value::<String>("--style") {
            None => SckStyle::Full,
            Some(s) => style_from_label(&s).ok_or(format!("unknown style `{s}`"))?,
        };
        let allocation = if args.flag("--dedicated") {
            Allocation::Dedicated
        } else {
            Allocation::SingleUnit
        };
        let scenario = DatapathScenario::new(source, width)
            .technique(technique)
            .style(style)
            .allocation(allocation);
        if args.flag("--seq") {
            scenario.elaborate_seq().netlist
        } else {
            scenario.elaborate().netlist
        }
    } else {
        let op_label = args
            .value::<String>("--op")
            .unwrap_or_else(|| "add".to_string());
        let op = op_from_label(&op_label).ok_or(format!("unknown operator `{op_label}`"))?;
        let realisation = match args.value::<String>("--realisation") {
            None => scdp_netlist::gen::AdderRealisation::RippleCarry,
            Some(r) => realisation_from_label(&r).ok_or(format!("unknown realisation `{r}`"))?,
        };
        match op {
            scdp_core::Operator::Add => self_checking_add_with(width, technique, realisation),
            scdp_core::Operator::Sub | scdp_core::Operator::Mul => {
                self_checking(SelfCheckingSpec {
                    op,
                    technique,
                    width,
                })
            }
            scdp_core::Operator::Div => {
                return Err("gate-level division checking is out of scope; \
                            analyse an add/sub/mul scenario or a --workload"
                    .to_string())
            }
        }
        .netlist
    };
    Ok(netlist)
}

/// `scdp lint` — static analysis of the scenario's generated netlist:
/// structural lints plus the fault-collapsing statistics, without
/// running a single simulation vector. Exits 1 when lint errors exist.
fn cmd_lint(args: &CliArgs) -> Result<i32, String> {
    use scdp_analyze::{lint, CollapsedUniverse, LintOptions};

    let netlist = netlist_from_args(args)?;
    let report = lint(
        &netlist,
        &LintOptions {
            strict: args.flag("--strict"),
        },
    );
    let cu = CollapsedUniverse::build(&netlist);
    if args.flag("--json") {
        println!(
            "{{\"lint\": {}, \"collapse\": {{\"sites_before\": {}, \"sites_after\": {}, \
             \"classes\": {}, \"ratio\": {:.4}}}}}",
            report.to_json(),
            cu.sites_before(),
            cu.sites_after(),
            cu.classes(),
            cu.ratio(),
        );
    } else {
        print!("{}", report.render());
        println!(
            "collapse: {} stuck-at lines -> {} equivalence classes (ratio {:.3})",
            cu.sites_before(),
            cu.sites_after(),
            cu.ratio(),
        );
    }
    Ok(i32::from(report.errors() > 0))
}

/// `scdp analyze` — the deductive-pruning preview: classifies the
/// scenario's stuck-at line universe without simulating and prints
/// what a `--prune` campaign would settle — untestability proofs by
/// reason, dominance-deferrable lines, and the resulting prune ratio.
fn cmd_analyze(args: &CliArgs) -> Result<i32, String> {
    use scdp_analyze::{
        CollapsedUniverse, DominatorChains, PrunedUniverse, UntestableReason, Verdict,
    };

    let netlist = netlist_from_args(args)?;
    let lines = netlist.fault_lines();
    let groups: Vec<Vec<scdp_netlist::StuckAtLine>> = lines.iter().map(|&l| vec![l]).collect();
    let pu = PrunedUniverse::build(&netlist, &groups);
    let cu = CollapsedUniverse::build(&netlist);

    let (mut redundant, mut blocked, mut unobservable) = (0usize, 0usize, 0usize);
    for v in pu.verdicts() {
        match v {
            Verdict::ProvenUntestable(UntestableReason::Redundant) => redundant += 1,
            Verdict::ProvenUntestable(UntestableReason::Blocked) => blocked += 1,
            Verdict::ProvenUntestable(UntestableReason::Unobservable) => unobservable += 1,
            Verdict::MustSimulate => {}
        }
    }
    let untestable = redundant + blocked + unobservable;

    // Dominance deferral is combinational-only; count live lines whose
    // chain ends in a distinct deferrable root, like the campaign does.
    let deferrable = if netlist.is_sequential() {
        0
    } else {
        let dc = DominatorChains::build(&netlist, &cu);
        lines
            .iter()
            .enumerate()
            .filter(|&(i, line)| {
                pu.verdict(i) == Verdict::MustSimulate
                    && dc.deferrable_root(*line).is_some_and(|root| root != *line)
            })
            .count()
    };

    let total = lines.len();
    let simulate = total - untestable - deferrable;
    let ratio = total as f64 / simulate.max(1) as f64;
    if args.flag("--json") {
        println!(
            "{{\"lines\": {total}, \"classes\": {}, \"untestable\": {{\"total\": {untestable}, \
             \"redundant\": {redundant}, \"blocked\": {blocked}, \
             \"unobservable\": {unobservable}}}, \"deferrable\": {deferrable}, \
             \"simulate\": {simulate}, \"prune_ratio\": {ratio:.4}}}",
            cu.classes(),
        );
    } else {
        println!(
            "analyze `{}`: {total} stuck-at lines, {} equivalence classes",
            netlist.name(),
            cu.classes(),
        );
        println!(
            "  untestable {untestable} (redundant {redundant}, blocked {blocked}, \
             unobservable {unobservable})"
        );
        println!("  deferrable {deferrable} (dominance chains with a distinct root)");
        println!("  simulate   {simulate} of {total} — prune ratio {ratio:.3}x");
    }
    Ok(0)
}

/// `scdp trace summarize FILE...` — fold a `--trace` JSONL file back
/// into event counts, span totals and a per-shard outcome table.
fn cmd_trace(files: &[String]) -> Result<i32, String> {
    let (action, files) = files
        .split_first()
        .ok_or("usage: scdp trace summarize FILE...")?;
    if action != "summarize" {
        return Err(format!(
            "unknown trace action `{action}` (expected `summarize`)"
        ));
    }
    if files.is_empty() {
        return Err("pass trace files to summarize".to_string());
    }
    for file in files {
        if files.len() > 1 {
            println!("== {file}");
        }
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        print!(
            "{}",
            trace::summarize(&text).map_err(|e| format!("{file}: {e}"))?
        );
    }
    Ok(0)
}

/// The `shard-NNN.json` checkpoints under `dir`, shard order.
fn shard_files(dir: &str) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {dir}: {e}"))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no shard-*.json checkpoints in {dir}"));
    }
    Ok(files)
}

fn load_report(path: &Path) -> Result<CampaignReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    CampaignReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_merge(args: &CliArgs, files: &[String]) -> Result<i32, String> {
    let paths: Vec<PathBuf> = match args.value::<String>("--dir") {
        Some(dir) => shard_files(&dir)?,
        None if files.is_empty() => return Err("pass shard report files or --dir DIR".to_string()),
        None => files.iter().map(PathBuf::from).collect(),
    };
    let reports: Vec<CampaignReport> = paths
        .iter()
        .map(|p| load_report(p))
        .collect::<Result<_, _>>()?;
    let merged = CampaignReport::merge(&reports).map_err(|e| e.to_string())?;
    eprintln!("merged {} shard report(s)", reports.len());
    print_summary(&merged, args.flag("--per-fu"));
    if let Some(path) = args.value::<String>("--out") {
        std::fs::write(&path, merged.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(0)
}

fn cmd_validate(files: &[String]) -> Result<i32, String> {
    if files.is_empty() {
        return Err("pass report files to validate".to_string());
    }
    let mut failures = 0usize;
    for file in files {
        match load_report(Path::new(file)) {
            Ok(report) => {
                let schema = schema_of(&report);
                println!(
                    "OK   {file}: {schema}, {} faults, coverage {}",
                    report.fault_count(),
                    pct(report.coverage()),
                );
            }
            Err(message) => {
                println!("FAIL {file}: {message}");
                failures += 1;
            }
        }
    }
    Ok(i32::from(failures > 0))
}

fn schema_of(report: &CampaignReport) -> &'static str {
    if report.shard.is_some() {
        scdp_campaign::REPORT_SCHEMA_V4
    } else if report.sequential.is_some() {
        scdp_campaign::REPORT_SCHEMA_V3
    } else if report.datapath.is_some() {
        scdp_campaign::REPORT_SCHEMA_V2
    } else {
        scdp_campaign::REPORT_SCHEMA
    }
}

fn cmd_table(args: &CliArgs, files: &[String]) -> Result<i32, String> {
    let paths: Vec<PathBuf> = match args.value::<String>("--dir") {
        Some(dir) => {
            let entries = std::fs::read_dir(&dir).map_err(|e| format!("read {dir}: {e}"))?;
            let mut v: Vec<PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            v.sort();
            v
        }
        None => files.iter().map(PathBuf::from).collect(),
    };
    if paths.is_empty() {
        return Err("pass report files or --dir DIR".to_string());
    }
    println!("{}", table_header());
    for path in &paths {
        let report = load_report(path)?;
        println!("{}", table_row(&report));
    }
    Ok(0)
}

fn table_header() -> String {
    format!(
        "{:<10} {:<6} {:>5} {:<12} {:>7} {:>7} {:>9} {:>10} {:>10} {:>8}",
        "scenario",
        "tech",
        "width",
        "duration",
        "shard",
        "faults",
        "coverage",
        "detection",
        "safe",
        "latency"
    )
}

fn table_row(report: &CampaignReport) -> String {
    let scenario = report.datapath.as_ref().map_or_else(
        || report.scenario.op_label().to_string(),
        |d| d.source.clone(),
    );
    let duration = report
        .sequential
        .as_ref()
        .map_or_else(|| "-".to_string(), |s| duration_label(s.duration));
    let shard = report
        .shard
        .map_or_else(|| "-".to_string(), |s| format!("{}/{}", s.index, s.count));
    let latency = report
        .sequential
        .as_ref()
        .and_then(SequentialLatency::new)
        .map_or_else(|| "-".to_string(), |l| l.0);
    format!(
        "{:<10} {:<6} {:>5} {:<12} {:>7} {:>7} {:>9} {:>10} {:>10} {:>8}",
        scenario,
        scdp_campaign::technique_label(report.scenario.technique),
        report.scenario.width,
        duration,
        shard,
        report.fault_count(),
        pct(report.coverage()),
        pct(report.detection_rate()),
        pct(report.safe_rate()),
        latency,
    )
}

/// Formats the mean detection latency of a sequential section.
struct SequentialLatency(String);

impl SequentialLatency {
    fn new(seq: &scdp_campaign::SequentialDetails) -> Option<SequentialLatency> {
        seq.mean_detection_latency()
            .map(|l| SequentialLatency(format!("{l:.2}c")))
    }
}

fn print_summary(report: &CampaignReport, per_fu: bool) {
    let scenario = report.datapath.as_ref().map_or_else(
        || report.scenario.op_label().to_string(),
        |d| d.source.clone(),
    );
    println!(
        "{} `{}` width {} technique {} — {} faults, {} situations",
        schema_of(report),
        scenario,
        report.scenario.width,
        scdp_campaign::technique_label(report.scenario.technique),
        report.fault_count(),
        report.simulated,
    );
    if let Some(sh) = report.shard {
        println!(
            "  shard {}/{} covering faults {}..{} of {}",
            sh.index, sh.count, sh.fault_start, sh.fault_end, sh.total_faults
        );
    }
    println!(
        "  coverage {}  detection {}  safe {}  ({} ms)",
        pct(report.coverage()),
        pct(report.detection_rate()),
        pct(report.safe_rate()),
        report.elapsed_ms,
    );
    if let Some(d) = &report.deduce {
        println!(
            "  deduce: {} untestable, {} dominated, {} simulated \
             ({} rows settled without simulation)",
            d.untestable,
            d.dominated,
            d.simulated,
            d.rows.len(),
        );
    }
    if let Some(tel) = &report.telemetry {
        println!(
            "  telemetry: {} counters, {} histograms, {} spans",
            tel.counters.len(),
            tel.histograms.len(),
            tel.spans.len(),
        );
    }
    if let Some(seq) = &report.sequential {
        let latency = seq
            .mean_detection_latency()
            .map_or_else(|| "-".to_string(), |l| format!("{l:.2}"));
        println!(
            "  sequential: {} over {} cycles, mean detection latency {latency} cycles",
            duration_label(seq.duration),
            seq.total_cycles,
        );
    }
    if per_fu {
        if let Some(dp) = &report.datapath {
            print_per_fu(dp);
        }
    }
}

/// The indented per-functional-unit breakdown shared by `run --per-fu`,
/// `merge --per-fu` and the unrolled `sweep` table.
fn print_per_fu(dp: &scdp_campaign::DatapathDetails) {
    for fu in dp.per_fu.iter().filter(|f| f.faults > 0) {
        println!(
            "    {:<6} {:<7} {:>2} ops {:>5} faults  cov {:>8}  det {:>4}/{:<4}",
            fu.name,
            fu.role,
            fu.ops,
            fu.faults,
            pct(fu.tally.coverage()),
            fu.detected,
            fu.faults,
        );
    }
}

/// The default server address shared by `scdp serve` and
/// `scdp submit`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7878";

/// `scdp serve` — run the campaign job server in the foreground until
/// killed. Jobs (specs, checkpoints and merged reports) persist under
/// `--dir`; interrupted jobs resume on the next start.
fn cmd_serve(args: &CliArgs) -> Result<i32, String> {
    let config = scdp_serve::ServerConfig {
        addr: args.value_or("--addr", DEFAULT_SERVE_ADDR.to_string()),
        dir: PathBuf::from(args.value_or("--dir", "scdp-jobs".to_string())),
        workers: args.value_or("--jobs", 2usize),
    };
    let handle = scdp_serve::Server::start(&config)
        .map_err(|e| format!("start server on {}: {e}", config.addr))?;
    eprintln!(
        "scdp serve: listening on http://{} ({} worker(s), jobs under {})",
        handle.addr(),
        config.workers.max(1),
        config.dir.display(),
    );
    handle.join();
    Ok(0)
}

/// `scdp submit` — POST a spec file to a running server, report the
/// cache verdict, and optionally wait for (and fetch) the result.
fn cmd_submit(args: &CliArgs, files: &[String]) -> Result<i32, String> {
    let Some(spec_path) = files.first() else {
        return Err("usage: scdp submit SPEC.json [--addr A] [--wait] [--out FILE]".to_string());
    };
    let addr = args.value_or("--addr", DEFAULT_SERVE_ADDR.to_string());
    let spec = std::fs::read_to_string(spec_path).map_err(|e| format!("read {spec_path}: {e}"))?;
    let submitted = scdp_serve::client::submit(&addr, &spec)?;
    println!(
        "job {}  cache: {}  status: {}",
        submitted.id, submitted.cache, submitted.status
    );
    let out = args.value::<String>("--out");
    if !args.flag("--wait") && out.is_none() {
        return Ok(0);
    }
    let done =
        scdp_serve::client::wait(&addr, &submitted.id, std::time::Duration::from_millis(300))?;
    println!(
        "job {}  done ({}/{} shards)",
        submitted.id, done.done, done.total
    );
    if let Some(path) = out {
        let report = scdp_serve::client::fetch_report(&addr, &submitted.id)?;
        std::fs::write(&path, report).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(0)
}

/// The workload × technique sweep: the former `table_datapath`
/// (unrolled) and, with `--seq`, `table_seq` (cycle-accurate with a
/// duration axis) binaries.
fn cmd_sweep(args: &CliArgs) -> Result<i32, String> {
    let seq = args.flag("--seq");
    let width = args.width(3).clamp(1, 16);
    let samples = args.samples(1024);
    let seed = args.seed();
    let exec = exec_from_args(args)?;
    let style = match args.value::<String>("--style") {
        None => SckStyle::Full,
        Some(s) => style_from_label(&s).ok_or(format!("unknown style `{s}`"))?,
    };
    let allocation = if args.flag("--dedicated") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };
    let report_dir = args.value::<String>("--report-dir");
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    }

    println!(
        "{} campaigns: width {width}, style {}, {} allocation, \
         {samples} vectors/fault (seed {seed:#x})",
        if seq {
            "Sequential datapath"
        } else {
            "Datapath"
        },
        style_label(style),
        if allocation == Allocation::Dedicated {
            "dedicated-checker"
        } else {
            "shared (worst-case)"
        },
    );
    if seq {
        println!(
            "{:<8} {:<6} {:<12} {:>7} {:>7} {:>10} {:>10} {:>10}",
            "workload", "tech", "duration", "cycles", "faults", "coverage", "detection", "latency"
        );
    } else {
        println!(
            "{:<8} {:<6} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10}",
            "workload", "tech", "gates", "cycles", "faults", "coverage", "detection", "safe"
        );
    }

    for source in DfgSource::BUILTIN {
        for technique in Technique::ALL {
            let label = source.label();
            let scenario = DatapathScenario::new(source.clone(), width)
                .technique(technique)
                .style(style)
                .allocation(allocation);
            let space = InputSpace::Sampled {
                per_fault: samples,
                seed,
            };
            let tech = format!("{technique:?}").to_lowercase();
            if seq {
                // One elaboration per scenario, shared by all
                // durations: permanent defects plus two single-cycle
                // upsets (early and mid-schedule).
                let machine = scenario.elaborate_seq();
                let durations = [
                    FaultDuration::Permanent,
                    FaultDuration::Transient { cycle: 1 },
                    FaultDuration::Transient {
                        cycle: machine.total_cycles / 2,
                    },
                ];
                for duration in durations {
                    let report = scenario
                        .clone()
                        .seq_campaign()
                        .duration(duration)
                        .input_space(space)
                        .exec(exec)
                        .run_on(&machine)
                        .map_err(|e| e.to_string())?;
                    let details = report.sequential.as_ref().ok_or_else(|| {
                        format!(
                            "sweep {label}/{tech}: sequential campaign report is \
                             missing its sequential section"
                        )
                    })?;
                    let latency = details
                        .mean_detection_latency()
                        .map_or("-".to_string(), |l| format!("{l:.2}c"));
                    println!(
                        "{:<8} {:<6} {:<12} {:>7} {:>7} {:>10} {:>10} {:>10}",
                        label,
                        tech,
                        duration_label(duration),
                        details.total_cycles,
                        report.fault_count(),
                        pct(report.coverage()),
                        pct(report.detection_rate()),
                        latency,
                    );
                    if let Some(dir) = &report_dir {
                        let path = format!(
                            "{dir}/seq_{label}_{tech}_{}.json",
                            duration_label(duration).replace('@', "_"),
                        );
                        std::fs::write(&path, report.to_json())
                            .map_err(|e| format!("write {path}: {e}"))?;
                        eprintln!("    wrote {path}");
                    }
                }
            } else {
                let report = scenario
                    .campaign()
                    .input_space(space)
                    .exec(exec)
                    .run()
                    .map_err(|e| e.to_string())?;
                let details = report.datapath.as_ref().ok_or_else(|| {
                    format!(
                        "sweep {label}/{tech}: datapath campaign report is \
                         missing its datapath section"
                    )
                })?;
                println!(
                    "{:<8} {:<6} {:>6} {:>7} {:>7} {:>10} {:>10} {:>10}",
                    label,
                    tech,
                    details.gates,
                    details.schedule_length,
                    report.fault_count(),
                    pct(report.coverage()),
                    pct(report.detection_rate()),
                    pct(report.safe_rate()),
                );
                print_per_fu(details);
                if let Some(dir) = &report_dir {
                    let path = format!("{dir}/dp_{label}_{tech}.json");
                    std::fs::write(&path, report.to_json())
                        .map_err(|e| format!("write {path}: {e}"))?;
                    eprintln!("    wrote {path}");
                }
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn positionals_skip_flag_values_but_keep_files() {
        let raw = strings(&[
            "--dir",
            "ckpt",
            "a.json",
            "--seq",
            "b.json",
            "--samples",
            "64",
        ]);
        assert_eq!(positionals(&raw), strings(&["a.json", "b.json"]));
    }

    #[test]
    fn unknown_verbs_and_empty_invocations_are_usage_errors() {
        assert_eq!(run(strings(&["frobnicate"])), 2);
        assert_eq!(run(Vec::new()), 2);
        assert_eq!(run(strings(&["help"])), 0);
    }

    #[test]
    fn bad_scenario_flags_are_reported_not_panicked() {
        assert_eq!(run(strings(&["run", "--workload", "nope"])), 1);
        assert_eq!(run(strings(&["run", "--op", "nope"])), 1);
        assert_eq!(run(strings(&["run", "--technique", "nope"])), 1);
        assert_eq!(run(strings(&["validate"])), 1);
        assert_eq!(run(strings(&["merge"])), 1);
    }

    #[test]
    fn job_construction_covers_all_three_shapes() {
        let op = job_from_args(&CliArgs::from_vec(strings(&[
            "--op", "add", "--width", "3",
        ])));
        assert!(matches!(op, Ok(CampaignJob::Operator(_))));
        let dp = job_from_args(&CliArgs::from_vec(strings(&["--workload", "dot"])));
        assert!(matches!(dp, Ok(CampaignJob::Datapath(_))));
        let seq = job_from_args(&CliArgs::from_vec(strings(&[
            "--workload",
            "fir",
            "--seq",
            "--duration",
            "transient@2",
        ])));
        match seq {
            Ok(CampaignJob::Sequential(spec)) => {
                assert_eq!(spec.duration, FaultDuration::Transient { cycle: 2 });
            }
            other => panic!("expected sequential job, got {other:?}"),
        }
    }

    #[test]
    fn lint_verb_runs_over_scenarios_and_workloads() {
        assert_eq!(run(strings(&["lint", "--op", "add", "--width", "3"])), 0);
        assert_eq!(
            run(strings(&[
                "lint",
                "--workload",
                "dot",
                "--width",
                "2",
                "--seq",
                "--json"
            ])),
            0
        );
        assert_eq!(run(strings(&["lint", "--workload", "nope"])), 1);
        assert_eq!(run(strings(&["lint", "--op", "div"])), 1);
    }

    #[test]
    fn analyze_verb_runs_over_scenarios_and_workloads() {
        assert_eq!(run(strings(&["analyze", "--op", "add", "--width", "3"])), 0);
        assert_eq!(
            run(strings(&[
                "analyze",
                "--workload",
                "fir",
                "--width",
                "3",
                "--technique",
                "tech1",
                "--json"
            ])),
            0
        );
        assert_eq!(run(strings(&["analyze", "--workload", "dot", "--seq"])), 0);
        assert_eq!(run(strings(&["analyze", "--workload", "nope"])), 1);
        assert_eq!(run(strings(&["analyze", "--op", "div"])), 1);
    }

    #[test]
    fn prune_flag_reaches_the_job_and_preserves_results() {
        let scenario = strings(&[
            "--workload",
            "fir",
            "--technique",
            "tech1",
            "--width",
            "3",
            "--samples",
            "64",
            "--threads",
            "2",
        ]);
        let mut with = scenario.clone();
        with.push("--prune".to_string());
        let exec = exec_from_args(&CliArgs::from_vec(with.clone())).expect("parses");
        assert!(exec.prune, "--prune reaches the policy");
        let plain = job_from_args(&CliArgs::from_vec(scenario))
            .expect("job")
            .run()
            .expect("runs");
        let pruned = job_from_args(&CliArgs::from_vec(with))
            .expect("job")
            .run()
            .expect("runs");
        assert!(plain.same_results(&pruned));
        assert_eq!(plain.per_fault, pruned.per_fault);
        let d = pruned.deduce.as_ref().expect("pruned runs carry deduce");
        assert!(d.untestable + d.dominated > 0, "the FIR datapath deduces");
    }

    #[test]
    fn collapse_flag_reaches_the_job_and_preserves_results() {
        let scenario = strings(&[
            "--workload",
            "dot",
            "--width",
            "2",
            "--samples",
            "64",
            "--threads",
            "2",
        ]);
        let mut with = scenario.clone();
        with.push("--collapse".to_string());
        let plain = job_from_args(&CliArgs::from_vec(scenario))
            .expect("job")
            .run()
            .expect("runs");
        let collapsed = job_from_args(&CliArgs::from_vec(with))
            .expect("job")
            .run()
            .expect("runs");
        assert!(plain.same_results(&collapsed));
        assert_eq!(plain.per_fault, collapsed.per_fault);
    }

    #[test]
    fn lanes_flag_parses_and_preserves_results() {
        // Parsing: auto and the explicit widths resolve; junk is a
        // usage error.
        for (arg, lanes) in [
            ("auto", Lanes::Auto),
            ("1", Lanes::L1),
            ("4", Lanes::L4),
            ("8", Lanes::L8),
        ] {
            let exec =
                exec_from_args(&CliArgs::from_vec(strings(&["--lanes", arg]))).expect("parses");
            assert_eq!(exec.lanes, lanes, "--lanes {arg}");
        }
        for bad in ["2", "16", "wide"] {
            assert!(exec_from_args(&CliArgs::from_vec(strings(&["--lanes", bad]))).is_err());
        }

        // Semantics: lane width never moves a result.
        let base = strings(&["--workload", "dot", "--width", "2", "--samples", "64"]);
        let narrow = {
            let mut a = base.clone();
            a.extend(strings(&["--lanes", "1"]));
            job_from_args(&CliArgs::from_vec(a))
                .expect("job")
                .run()
                .expect("runs")
        };
        let wide = {
            let mut a = base;
            a.extend(strings(&["--lanes", "8"]));
            job_from_args(&CliArgs::from_vec(a))
                .expect("job")
                .run()
                .expect("runs")
        };
        assert!(narrow.same_results(&wide));
        assert_eq!(narrow.per_fault, wide.per_fault);
    }

    #[test]
    fn sharded_trace_sums_to_the_merged_report_and_matches_unsharded_telemetry() {
        use scdp_campaign::json::{self, Json};
        let dir = std::env::temp_dir().join(format!("scdp_cli_trace_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace_path = dir.join("t.jsonl").display().to_string();
        let merged_path = dir.join("merged.json").display().to_string();
        let scenario = &[
            "--workload",
            "fir",
            "--technique",
            "tech1",
            "--width",
            "4",
            "--samples",
            "64",
            "--threads",
            "2",
        ];
        let mut argv = strings(&["run"]);
        argv.extend(strings(scenario));
        argv.extend(strings(&[
            "--shards",
            "4",
            "--trace",
            &trace_path,
            "--progress",
            "--telemetry",
            "--report",
            &merged_path,
            "--quiet",
        ]));
        assert_eq!(run(argv), 0);

        // The trace carries span and shard events...
        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        assert!(text.contains("\"event\":\"span\""), "spans traced");
        assert!(
            text.contains("\"event\":\"shard_finished\""),
            "shards traced"
        );
        // ...whose per-shard fault counts sum to the merged universe.
        let merged = load_report(Path::new(&merged_path)).expect("merged report");
        let traced: u64 = text
            .lines()
            .filter_map(|l| {
                let v = json::parse(l).expect("trace lines parse");
                (v.get("event").and_then(Json::as_str) == Some("shard_finished"))
                    .then(|| v.get("faults").and_then(Json::as_u64).unwrap_or(0))
            })
            .sum();
        assert_eq!(traced, merged.fault_count());

        // The merged telemetry's count-typed counters equal an
        // unsharded run's.
        let tel = merged.telemetry.as_ref().expect("merged telemetry");
        let full = job_from_args(&CliArgs::from_vec(strings(scenario)))
            .expect("job")
            .telemetry(true)
            .run()
            .expect("unsharded run");
        let full_tel = full.telemetry.as_ref().expect("unsharded telemetry");
        assert_eq!(
            tel.deterministic_counters(),
            full_tel.deterministic_counters()
        );

        assert_eq!(run(strings(&["trace", "summarize", &trace_path])), 0);
        assert_eq!(run(strings(&["trace", "summarize"])), 1);
        assert_eq!(run(strings(&["trace", "frobnicate", &trace_path])), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_verb_round_trips_against_a_live_server() {
        let dir = std::env::temp_dir().join(format!("scdp_cli_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let handle = scdp_serve::Server::start(&scdp_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            dir: dir.join("jobs"),
            workers: 1,
        })
        .expect("bind");
        let addr = handle.addr().to_string();
        let spec_path = dir.join("spec.json").display().to_string();
        std::fs::write(
            &spec_path,
            r#"{"kind":"operator","op":"add","backend":"gate-level",
                "width":3,"samples":64,"shards":2}"#,
        )
        .expect("spec file");
        let out = dir.join("report.json").display().to_string();

        // Usage and connection errors are errors, not panics.
        assert_eq!(run(strings(&["submit"])), 1);
        assert_eq!(
            run(strings(&["submit", &spec_path, "--addr", "127.0.0.1:1"])),
            1
        );

        // Submit, wait, fetch; the fetched report validates.
        assert_eq!(
            run(strings(&[
                "submit", &spec_path, "--addr", &addr, "--out", &out
            ])),
            0
        );
        assert_eq!(run(strings(&["validate", &out])), 0);
        // Resubmission is a cache hit (the report is already there).
        assert_eq!(
            run(strings(&["submit", &spec_path, "--addr", &addr, "--wait"])),
            0
        );

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_merge_validate_table_round_trip_through_a_checkpoint_dir() {
        let dir = std::env::temp_dir().join(format!("scdp_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.display().to_string();
        let merged = dir.join("merged.json");
        let merged_s = merged.display().to_string();
        // Sharded, checkpointed, interrupted after 2 shards...
        assert_eq!(
            run(strings(&[
                "run",
                "--workload",
                "dot",
                "--seq",
                "--width",
                "2",
                "--samples",
                "64",
                "--threads",
                "2",
                "--shards",
                "4",
                "--dir",
                &dir_s,
                "--max-shards",
                "2",
                "--quiet",
            ])),
            0
        );
        assert!(dir.join("shard-001.json").is_file());
        assert!(!dir.join("shard-002.json").exists());
        // ...resumed to completion with a merged report...
        assert_eq!(
            run(strings(&[
                "run",
                "--workload",
                "dot",
                "--seq",
                "--width",
                "2",
                "--samples",
                "64",
                "--threads",
                "2",
                "--shards",
                "4",
                "--dir",
                &dir_s,
                "--report",
                &merged_s,
                "--quiet",
            ])),
            0
        );
        assert!(merged.is_file());
        let text = std::fs::read_to_string(&merged).expect("merged report");
        assert!(text.contains("scdp.campaign.report/v3"), "merged is full");
        let shard0 = std::fs::read_to_string(dir.join("shard-000.json")).expect("checkpoint");
        assert!(
            shard0.contains("scdp.campaign.report/v4"),
            "checkpoints are v4"
        );
        // ...merge/validate/table accept what run wrote.
        assert_eq!(run(strings(&["merge", "--dir", &dir_s])), 0);
        assert_eq!(run(strings(&["validate", &merged_s])), 0);
        assert_eq!(run(strings(&["table", &merged_s])), 0);
        assert_eq!(run(strings(&["validate", "/nonexistent.json"])), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
