//! Comparators, zero detectors, and two-rail checkers.

use crate::{NetId, Netlist, NetlistBuilder};

/// Appends a disequality detector: output is 1 iff the buses differ
/// (per-bit XOR into an OR tree). This is the fault-free checker hardware
/// of the paper's comparisons (`op2 == op2'` etc.).
///
/// # Panics
///
/// Panics if the buses have different lengths.
pub fn neq_into(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId]) -> NetId {
    assert_eq!(x.len(), y.len(), "bus width mismatch");
    let diffs: Vec<NetId> = x.iter().zip(y).map(|(&xi, &yi)| b.xor(xi, yi)).collect();
    b.or_tree(&diffs)
}

/// Appends a zero detector: output is 1 iff every bit of `x` is 0.
pub fn is_zero_into(b: &mut NetlistBuilder, x: &[NetId]) -> NetId {
    let any = b.or_tree(x);
    b.not(any)
}

/// A complete equality comparator netlist: inputs `a`, `b`; output `eq`.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn equal(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("eq{width}"));
    let x = b.input_bus("a", width);
    let y = b.input_bus("b", width);
    let ne = neq_into(&mut b, &x, &y);
    let eq = b.not(ne);
    b.output("eq", &[eq]);
    b.finish()
}

/// A tree of two-rail checker cells, the classic totally self-checking
/// comparator used in self-checking design (the "standard technology"
/// the paper's checkers would be realised with).
///
/// Inputs are `pairs` two-rail-encoded signals `a` (rail0) and `b`
/// (rail1), each pair valid iff rails differ. Outputs `z` is a two-rail
/// pair that is valid (rails differ) iff **every** input pair is valid.
///
/// Each cell combines two pairs `(x0,x1),(y0,y1)` into
/// `z0 = x0·y0 + x1·y1`, `z1 = x0·y1 + x1·y0`.
///
/// # Panics
///
/// Panics if `pairs` is zero.
#[must_use]
pub fn two_rail_checker(pairs: u32) -> Netlist {
    assert!(pairs > 0, "need at least one pair");
    let mut b = NetlistBuilder::new(format!("trc{pairs}"));
    let rail0 = b.input_bus("a", pairs);
    let rail1 = b.input_bus("b", pairs);
    let mut level: Vec<(NetId, NetId)> = rail0.into_iter().zip(rail1).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if let [(x0, x1), (y0, y1)] = *pair {
                let p00 = b.and(x0, y0);
                let p11 = b.and(x1, y1);
                let z0 = b.or(p00, p11);
                let p01 = b.and(x0, y1);
                let p10 = b.and(x1, y0);
                let z1 = b.or(p01, p10);
                next.push((z0, z1));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let (z0, z1) = level[0];
    b.output("z", &[z0, z1]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;

    #[test]
    fn equal_is_equality() {
        let nl = equal(4);
        for a in Word::all(4) {
            for b in Word::all(4) {
                let out = nl.eval_words(&[a, b], &[]);
                assert_eq!(out[0].bits() != 0, a == b);
            }
        }
    }

    #[test]
    fn two_rail_checker_validity() {
        for pairs in [1u32, 2, 3, 5, 8] {
            let nl = two_rail_checker(pairs);
            // All-valid inputs (rails complementary) => valid output.
            for pattern in 0..(1u64 << pairs) {
                let rail0 = Word::new(pairs, pattern);
                let rail1 = Word::new(pairs, !pattern);
                let out = nl.eval_words(&[rail0, rail1], &[]);
                let z = out[0];
                assert_ne!(z.bit(0), z.bit(1), "valid in, valid out p={pairs}");
            }
            // Any single invalid pair (equal rails) => invalid output.
            if pairs >= 1 {
                for bad in 0..pairs {
                    let rail0 = Word::new(pairs, 0);
                    // rail1 complementary except at `bad`.
                    let rail1 = Word::new(pairs, (1 << pairs) - 1).with_bit(bad, false);
                    let out = nl.eval_words(&[rail0, rail1], &[]);
                    let z = out[0];
                    assert_eq!(z.bit(0), z.bit(1), "invalid pair {bad} must propagate");
                }
            }
        }
    }

    #[test]
    fn zero_detector() {
        let mut b = NetlistBuilder::new("z");
        let x = b.input_bus("x", 3);
        let z = is_zero_into(&mut b, &x);
        b.output("z", &[z]);
        let nl = b.finish();
        for v in Word::all(3) {
            let out = nl.eval_words(&[v], &[]);
            assert_eq!(out[0].bits() != 0, v.bits() == 0);
        }
    }
}
