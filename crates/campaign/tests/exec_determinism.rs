//! The execution layer is invisible in the results: every
//! [`ExecPolicy`] combination of worker threads × SIMD lane width ×
//! fault-equivalence collapsing produces reports bit-identical to the
//! single-thread scalar reference — tallies, per-fault rows, per-FU
//! tallies and detection-latency histograms alike — on all three
//! campaign shapes (gate-level operator, unrolled datapath,
//! cycle-accurate sequential).
//!
//! Thread counts include a prime (7) so block boundaries never align
//! with the universe size, and exceed this machine's core count, so
//! the work-stealing path (not just the home-block path) is on trial.

use scdp_campaign::{
    Backend, CampaignReport, DatapathScenario, DfgSource, ExecPolicy, FaultDuration, InputSpace,
    Lanes, Scenario,
};
use scdp_core::{Operator, Technique};

const THREADS: [usize; 4] = [1, 2, 4, 7];
const LANES: [Lanes; 3] = [Lanes::L1, Lanes::L4, Lanes::L8];

/// Byte-comparable form: wall clock zeroed, everything else verbatim.
fn canonical(mut report: CampaignReport) -> String {
    report.elapsed_ms = 0;
    assert!(report.telemetry.is_none(), "comparisons run telemetry-free");
    report.to_json()
}

/// Runs `build` under every threads × lanes × collapse combination and
/// pins each report byte-for-byte against the single-thread scalar
/// uncollapsed reference.
fn assert_exec_invariant(shape: &str, build: impl Fn(ExecPolicy) -> CampaignReport) {
    let reference = canonical(build(ExecPolicy::new().threads(1).lanes(Lanes::L1)));
    for threads in THREADS {
        for lanes in LANES {
            for collapse in [false, true] {
                let exec = ExecPolicy::new()
                    .threads(threads)
                    .lanes(lanes)
                    .collapse(collapse);
                assert_eq!(
                    reference,
                    canonical(build(exec)),
                    "{shape}: {threads} threads, {lanes:?}, collapse={collapse}"
                );
            }
        }
    }
}

#[test]
fn gate_level_operator_reports_are_execution_invariant() {
    assert_exec_invariant("gate", |exec| {
        Scenario::new(Operator::Add, 3)
            .technique(Technique::Both)
            .campaign()
            .backend(Backend::GateLevel)
            .exec(exec)
            .run()
            .expect("gate campaign")
    });
}

#[test]
fn datapath_reports_are_execution_invariant() {
    let space = InputSpace::Sampled {
        per_fault: 96,
        seed: 0xD1CE,
    };
    assert_exec_invariant("datapath", |exec| {
        DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Tech1)
            .campaign()
            .input_space(space)
            .exec(exec)
            .run()
            .expect("datapath campaign")
    });
}

#[test]
fn sequential_reports_are_execution_invariant() {
    let space = InputSpace::Sampled {
        per_fault: 64,
        seed: 0x5EA,
    };
    assert_exec_invariant("sequential", |exec| {
        DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Both)
            .seq_campaign()
            .duration(FaultDuration::Permanent)
            .input_space(space)
            .exec(exec)
            .run()
            .expect("sequential campaign")
    });
}

/// The latency histogram is the sequential shape's most
/// execution-order-sensitive field: transient faults detected at
/// different cycles per vector batch would scramble it under any
/// nondeterministic merge. Pin it explicitly across the grid.
#[test]
fn sequential_transient_latency_histograms_are_execution_invariant() {
    let space = InputSpace::Sampled {
        per_fault: 64,
        seed: 0x7AB5,
    };
    assert_exec_invariant("transient", |exec| {
        DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Tech1)
            .seq_campaign()
            .duration(FaultDuration::Transient { cycle: 1 })
            .input_space(space)
            .exec(exec)
            .run()
            .expect("transient campaign")
    });
}

/// Drop policies interact with lane width (a dropped fault stops
/// consuming batches mid-stream): the drop point must land on the
/// same batch index at every lane width and thread count.
#[test]
fn drop_policies_are_execution_invariant() {
    use scdp_campaign::DropPolicy;
    for drop in [DropPolicy::OnDetect, DropPolicy::OnEscape] {
        let reference = canonical(
            Scenario::new(Operator::Add, 3)
                .campaign()
                .backend(Backend::GateLevel)
                .exec(
                    ExecPolicy::new()
                        .threads(1)
                        .lanes(Lanes::L1)
                        .drop_policy(drop),
                )
                .run()
                .expect("reference"),
        );
        for threads in THREADS {
            for lanes in LANES {
                let exec = ExecPolicy::new()
                    .threads(threads)
                    .lanes(lanes)
                    .drop_policy(drop);
                let report = Scenario::new(Operator::Add, 3)
                    .campaign()
                    .backend(Backend::GateLevel)
                    .exec(exec)
                    .run()
                    .expect("gate campaign");
                assert_eq!(
                    reference,
                    canonical(report),
                    "{drop:?}: {threads} threads, {lanes:?}"
                );
            }
        }
    }
}
