//! Regenerates **Table 1** of the paper: the overloading techniques for
//! `+`, `−`, `×`, `/` and their local fault coverage under the
//! worst-case (shared-unit) allocation.
//!
//! The paper does not state the operand width used for its Table 1
//! percentages; we default to 8 bits (exhaustive for `+`/`−`, sampled
//! for `×`/`/` whose cell universes are large) and print the checking
//! recipe next to each coverage figure, as the paper's table does.
//!
//! All campaigns go through the unified `scdp-campaign` API: one
//! functional [`Scenario`] per operator yields every technique column in
//! a single pass, and `--gate` re-runs the same scenarios on the
//! bit-parallel gate-level backend.
//!
//! Usage:
//!   table1 [--width N] [--samples N] [--seed S] [--exhaustive] [--gate]

use scdp_bench::{pct, timed, CliArgs};
use scdp_campaign::{Backend, ExecPolicy, InputSpace, Scenario, TechIndex};
use scdp_core::{Operator, Technique};

const PAPER: [(Operator, f64, f64, Option<f64>); 4] = [
    (Operator::Add, 97.25, 98.81, Some(99.11)),
    (Operator::Sub, 96.85, 94.01, Some(99.58)),
    (Operator::Mul, 96.22, 96.38, Some(97.43)),
    (Operator::Div, 94.33, 97.16, None),
];

fn main() {
    let args = CliArgs::parse();
    let width = args.width(8);
    let samples = args.samples(1 << 14);
    let seed = args.seed();
    let exhaustive = args.flag("--exhaustive");

    println!("Table 1 — overloading techniques and fault coverage ({width}-bit, worst case)");
    for (op, p1, p2, pboth) in PAPER {
        // +/- have compact universes: exhaustive. x and / are sampled
        // unless --exhaustive.
        let space = if exhaustive || matches!(op, Operator::Add | Operator::Sub) {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled {
                per_fault: samples,
                seed,
            }
        };
        let r = timed(&format!("{op}"), || {
            Scenario::new(op, width)
                .campaign()
                .input_space(space)
                .run()
                .expect("valid Table 1 scenario")
        });
        println!("\n{op}  (ris = op1 {op} op2; {} faults)", r.fault_count());
        for (tech, idx, paper) in [
            (Technique::Tech1, TechIndex::Tech1, Some(p1)),
            (Technique::Tech2, TechIndex::Tech2, Some(p2)),
            (Technique::Both, TechIndex::Both, pboth),
        ] {
            let paper_s = paper.map_or("   -  ".to_string(), |p| format!("{p:.2}%"));
            println!(
                "  {:<9} {:<44} cov {:>7}  (paper {paper_s})",
                tech.to_string(),
                tech.describe(op),
                pct(r.coverage_of(idx).expect("functional fills all columns")),
            );
        }
    }
    println!("\n(the paper's Div row evaluates Tech1/Tech2 only)");

    if args.flag("--gate") {
        gate_section(&args, width.min(8));
    }
}

/// Gate-level companion rows: the same worst-case (correlated
/// shared-unit) analysis run on generated structural datapaths through
/// the gate-level backend of the unified API.
fn gate_section(args: &CliArgs, width: u32) {
    let space = args.space(width, 1 << 14);
    let threads = args.threads();
    println!("\nGate-level structural campaigns ({width}-bit, bit-parallel engine):");
    for op in [Operator::Add, Operator::Sub, Operator::Mul] {
        let mut cells = Vec::new();
        for tech in Technique::ALL {
            let r = timed(&format!("gate {op} {tech}"), || {
                Scenario::new(op, width)
                    .technique(tech)
                    .campaign()
                    .backend(Backend::GateLevel)
                    .input_space(space)
                    .exec(ExecPolicy::new().threads(threads))
                    .run()
                    .expect("valid gate scenario")
            });
            cells.push(format!("{tech} {}", pct(r.coverage())));
        }
        println!("  {op}  {}", cells.join("   "));
    }
}
