//! Array multiplier generator (low-n-bit product, wrapping semantics).

use super::adder::FaCells;
use crate::{NetId, Netlist, NetlistBuilder};

/// Appends an n-bit row-ripple array multiplier producing the low n bits
/// of `a × b` — the structural twin of `scdp_arith::ArrayMultiplier`
/// (same cell topology: AND partial products, full-adder ripple rows).
///
/// Returns `(product, fa_cells)` where `fa_cells` lists the full-adder
/// cell maps in the same order as the functional unit's fault universe
/// (rows `j = 1..n`, each `n − j` adders).
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths.
pub fn array_mult_into(
    b: &mut NetlistBuilder,
    a: &[NetId],
    bb: &[NetId],
) -> (Vec<NetId>, Vec<FaCells>) {
    assert_eq!(a.len(), bb.len(), "operand width mismatch");
    let n = a.len();
    // Partial products, row-major (i + j < n).
    let mut pp: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for (j, &bj) in bb.iter().enumerate() {
        let row: Vec<NetId> = (0..n - j).map(|i| b.and(a[i], bj)).collect();
        pp.push(row);
    }
    // Accumulator starts as row 0.
    let mut acc: Vec<NetId> = pp[0].clone();
    let mut fas = Vec::new();
    for j in 1..n {
        let mut carry = b.constant(false);
        for k in 0..(n - j) {
            let x1 = b.xor(acc[j + k], pp[j][k]);
            let x2 = b.xor(x1, carry);
            let a1 = b.and(acc[j + k], pp[j][k]);
            let a2 = b.and(x1, carry);
            let o1 = b.or(a1, a2);
            fas.push(FaCells {
                x1: x1.index(),
                x2: x2.index(),
                a1: a1.index(),
                a2: a2.index(),
                o1: o1.index(),
            });
            acc[j + k] = x2;
            carry = o1;
        }
    }
    (acc, fas)
}

/// A complete n-bit array multiplier netlist: inputs `a`, `b`; output
/// `product` (low n bits).
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn array_mult(width: u32) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!("mult{width}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let (product, _) = array_mult_into(&mut b, &a, &bb);
    b.output("product", &product);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;

    #[test]
    fn mult_matches_golden_exhaustive() {
        for w in [1u32, 2, 3, 4, 5] {
            let nl = array_mult(w);
            for a in Word::all(w) {
                for b in Word::all(w) {
                    let out = nl.eval_words(&[a, b], &[]);
                    assert_eq!(out[0], a.wrapping_mul(b), "w={w} {a:?}*{b:?}");
                }
            }
        }
    }

    #[test]
    fn mult_matches_functional_unit_sampled() {
        use scdp_arith::ArrayMultiplier;
        let w = 8;
        let nl = array_mult(w);
        let unit = ArrayMultiplier::new(w);
        for a in (-128i64..128).step_by(11) {
            for b in (-128i64..128).step_by(7) {
                let aw = Word::from_i64(w, a);
                let bw = Word::from_i64(w, b);
                assert_eq!(nl.eval_words(&[aw, bw], &[])[0], unit.mul(aw, bw, None));
            }
        }
    }

    #[test]
    fn cell_count_matches_functional_model() {
        use scdp_arith::ArrayMultiplier;
        let mut b = NetlistBuilder::new("m");
        let a = b.input_bus("a", 8);
        let bb = b.input_bus("b", 8);
        let (_, fas) = array_mult_into(&mut b, &a, &bb);
        assert_eq!(fas.len(), ArrayMultiplier::new(8).fa_cells());
    }
}
