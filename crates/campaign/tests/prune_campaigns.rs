//! `ExecPolicy::prune` is an engine-side optimisation, never a result
//! change: every test here pins a pruned campaign byte-for-byte against
//! its unpruned twin — per-fault rows, per-FU tallies, latency
//! histograms, shard sections and all. The only permitted delta is the
//! presence-driven `deduce` section, which records how the same rows
//! were obtained.

use scdp_campaign::{
    Backend, CampaignError, CampaignReport, DatapathScenario, DfgSource, DropPolicy, ExecPolicy,
    FaultDuration, FaultModel, InputSpace, Scenario,
};
use scdp_core::{Operator, Technique};
use scdp_hls::testgen::{random_dfg, DfgGenConfig};

/// Byte-comparable form: wall clock zeroed and the provenance-only
/// `deduce` section stripped; everything else verbatim. Telemetry stays
/// off in these runs, so the JSON covers every result field.
fn canonical(mut report: CampaignReport) -> String {
    report.elapsed_ms = 0;
    report.deduce = None;
    assert!(report.telemetry.is_none(), "comparisons run telemetry-free");
    report.to_json()
}

/// The deduce section must be present, internally consistent, and its
/// rows must index the per-fault table.
fn check_deduce(report: &CampaignReport) -> (u64, u64, u64) {
    let d = report.deduce.as_ref().expect("pruned runs carry deduce");
    assert_eq!(
        d.rows.len() as u64,
        d.untestable + d.dominated,
        "every settled engine group must fan out to at least itself"
    );
    for &row in &d.rows {
        assert!(row < report.fault_count(), "row {row} out of range");
    }
    (d.untestable, d.dominated, d.simulated)
}

#[test]
fn gate_backend_prune_is_bit_identical() {
    for (op, tech, model, drop) in [
        (
            Operator::Add,
            Technique::Tech1,
            FaultModel::Structural,
            DropPolicy::Never,
        ),
        (
            Operator::Add,
            Technique::Both,
            FaultModel::FaGate,
            DropPolicy::OnDetect,
        ),
        (
            Operator::Sub,
            Technique::Tech2,
            FaultModel::Structural,
            DropPolicy::OnEscape,
        ),
    ] {
        let spec = Scenario::new(op, 3)
            .technique(tech)
            .campaign()
            .backend(Backend::GateLevel)
            .fault_model(model)
            .exec(ExecPolicy::new().threads(2).drop_policy(drop));
        let plain = spec.clone().run().expect("unpruned");
        let pruned = spec
            .exec(ExecPolicy::new().threads(2).drop_policy(drop).prune(true))
            .run()
            .expect("pruned");
        check_deduce(&pruned);
        assert_eq!(canonical(plain), canonical(pruned), "{op:?}/{tech:?}");
    }
}

#[test]
fn functional_backend_rejects_prune() {
    let err = Scenario::new(Operator::Add, 3)
        .campaign()
        .exec(ExecPolicy::new().prune(true))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        CampaignError::UnsupportedPrune {
            backend: Backend::Functional
        }
    ));
}

/// The acceptance pin: the golden-pinned width-4 Tech1 configurations
/// of all three spec shapes — operator gate-level, unrolled datapath,
/// cycle-accurate sequential — produce byte-identical reports with
/// pruning on, and the datapath shapes actually save work (the
/// time-multiplexed muxes carry zero-tied legs the constant lattice
/// kills).
#[test]
fn golden_width4_tech1_campaigns_prune_bit_identical() {
    let op = Scenario::new(Operator::Add, 4)
        .technique(Technique::Tech1)
        .campaign()
        .backend(Backend::GateLevel)
        .fault_model(FaultModel::FaGate)
        .exec(ExecPolicy::new().threads(2));
    assert_eq!(
        canonical(op.clone().run().expect("op")),
        canonical(
            op.exec(ExecPolicy::new().threads(2).prune(true))
                .run()
                .expect("op pruned")
        )
    );

    let space = InputSpace::Sampled {
        per_fault: 128,
        seed: 0xF1,
    };
    let dp = DatapathScenario::new(DfgSource::Fir, 4)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(space)
        .exec(ExecPolicy::new().threads(2));
    let plain = dp.clone().run().expect("dp");
    let pruned = dp
        .exec(ExecPolicy::new().threads(2).prune(true))
        .run()
        .expect("dp pruned");
    let (untestable, dominated, simulated) = check_deduce(&pruned);
    assert!(
        untestable + dominated > 0,
        "the FIR datapath universe must yield deductions \
         ({untestable} untestable, {dominated} dominated, {simulated} simulated)"
    );
    assert_eq!(canonical(plain), canonical(pruned));

    let seq = DatapathScenario::new(DfgSource::Fir, 4)
        .technique(Technique::Tech1)
        .seq_campaign()
        .input_space(space)
        .exec(ExecPolicy::new().threads(2));
    let plain = seq.clone().run().expect("seq");
    let pruned = seq
        .exec(ExecPolicy::new().threads(2).prune(true))
        .run()
        .expect("seq pruned");
    let (_, dominated, _) = check_deduce(&pruned);
    assert_eq!(
        dominated, 0,
        "sequential campaigns settle untestability only"
    );
    assert_eq!(plain.sequential, pruned.sequential);
    assert_eq!(canonical(plain), canonical(pruned));
}

#[test]
fn sequential_prune_preserves_latency_histograms_for_transients() {
    let space = InputSpace::Sampled {
        per_fault: 64,
        seed: 0x7A,
    };
    for duration in [
        FaultDuration::Permanent,
        FaultDuration::Transient { cycle: 1 },
    ] {
        let spec = DatapathScenario::new(DfgSource::Dot, 2)
            .technique(Technique::Both)
            .seq_campaign()
            .duration(duration)
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        let plain = spec.clone().run().expect("unpruned");
        let pruned = spec
            .exec(ExecPolicy::new().threads(2).prune(true))
            .run()
            .expect("pruned");
        assert_eq!(canonical(plain), canonical(pruned), "{duration:?}");
    }
}

/// Satellite: seeded random DFGs through the synthesis front half, both
/// datapath shapes, pruned vs unpruned byte-identical.
#[test]
fn random_custom_dfg_campaigns_prune_bit_identical() {
    let cfg = DfgGenConfig {
        max_ops: 4,
        allow_div: false,
        allow_mem: false,
    };
    let space = InputSpace::Sampled {
        per_fault: 32,
        seed: 0xC0,
    };
    for seed in 0..4u64 {
        let dfg = random_dfg(0x5CD9_1000 + seed, &cfg);
        let dp = DatapathScenario::new(DfgSource::Custom(dfg.clone()), 2)
            .technique(Technique::Tech1)
            .campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        assert_eq!(
            canonical(dp.clone().run().expect("dp")),
            canonical(
                dp.exec(ExecPolicy::new().threads(2).prune(true))
                    .run()
                    .expect("dp pruned")
            ),
            "datapath seed {seed}"
        );
        let seq = DatapathScenario::new(DfgSource::Custom(dfg), 2)
            .technique(Technique::Tech1)
            .seq_campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(2));
        assert_eq!(
            canonical(seq.clone().run().expect("seq")),
            canonical(
                seq.exec(ExecPolicy::new().threads(2).prune(true))
                    .run()
                    .expect("seq pruned")
            ),
            "sequential seed {seed}"
        );
    }
}

/// Prune-then-shard == shard-then-prune: shard geometry is computed on
/// the original universe before any deduction, so pruned shards match
/// their unpruned twins byte for byte (fingerprints interchange) and
/// merge back into the unsharded report with summed deduce counts.
#[test]
fn prune_composes_with_sharding() {
    let spec = DatapathScenario::new(DfgSource::Fir, 3)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 0x5A,
        })
        .exec(ExecPolicy::new().threads(2));
    let full = spec.clone().run().expect("unsharded");
    let mut shards = Vec::new();
    let mut untestable_sum = 0u64;
    for index in 0..3 {
        let mut sharded = spec.clone().shard(index, 3);
        sharded.exec.prune = true;
        let pruned = sharded.run().expect("pruned shard");
        untestable_sum += check_deduce(&pruned).0;
        let plain = spec.clone().shard(index, 3).run().expect("plain shard");
        assert_eq!(canonical(plain), canonical(pruned.clone()), "shard {index}");
        shards.push(pruned);
    }
    let merged = CampaignReport::merge(&shards).expect("merge");
    let d = merged.deduce.as_ref().expect("merged deduce");
    assert_eq!(d.untestable, untestable_sum, "counts sum across shards");
    for w in d.rows.windows(2) {
        assert!(w[0] < w[1], "merged rows stay strictly increasing");
    }
    assert_eq!(canonical(full), canonical(merged));
}

/// Pruning composes with equivalence collapsing: deductions then apply
/// to the representative groups, and the fan-out marks every member of
/// a deduced class.
#[test]
fn prune_composes_with_collapse() {
    let spec = DatapathScenario::new(DfgSource::Fir, 3)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 0xCC,
        })
        .exec(ExecPolicy::new().threads(2));
    let plain = spec.clone().run().expect("plain");
    let both = spec
        .exec(ExecPolicy::new().threads(2).collapse(true).prune(true))
        .run()
        .expect("collapsed+pruned");
    let d = both.deduce.as_ref().expect("deduce");
    assert!(
        d.rows.len() as u64 >= d.untestable + d.dominated,
        "fan-out may only widen the deduced row set"
    );
    for &row in &d.rows {
        assert!(row < both.fault_count());
    }
    assert_eq!(canonical(plain), canonical(both));
}

#[test]
fn prune_telemetry_counters_are_recorded() {
    let report = DatapathScenario::new(DfgSource::Fir, 3)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 32,
            seed: 0x7E,
        })
        .exec(ExecPolicy::new().threads(2).prune(true).telemetry(true))
        .run()
        .expect("runs");
    let tel = report.telemetry.as_ref().expect("telemetry section");
    let untestable = tel.counter("deduce.untestable").expect("untestable");
    let dominated = tel.counter("deduce.dominated").expect("dominated");
    let simulated = tel.counter("deduce.simulated").expect("simulated");
    let d = report.deduce.as_ref().expect("deduce section");
    assert_eq!(
        (untestable, dominated, simulated),
        (d.untestable, d.dominated, d.simulated),
        "telemetry counters mirror the report section"
    );
    assert_eq!(
        untestable + dominated + simulated,
        report.fault_count(),
        "unsharded, uncollapsed: engine units are the fault universe"
    );
    assert!(untestable + dominated > 0, "the FIR datapath must deduce");
}
