//! CI smoke for the unified campaign surface: run one scenario through
//! *both* backends, check the tallies are bit-identical, write the
//! report as `scdp.campaign.report/v1` JSON, re-parse it and validate
//! the schema round-trips. Exits non-zero (panics) on any violation.
//!
//! Run with: `cargo run --release -p scdp-campaign --example validate_report`

use scdp_campaign::{Backend, CampaignReport, FaultModel, Scenario, REPORT_SCHEMA};
use scdp_core::{Operator, Technique};

fn main() {
    let spec = Scenario::new(Operator::Add, 4)
        .technique(Technique::Tech1)
        .campaign()
        .fault_model(FaultModel::FaGate);
    let functional = spec.clone().run().expect("functional campaign");
    let gate = spec
        .clone()
        .backend(Backend::GateLevel)
        .run()
        .expect("gate-level campaign");

    assert!(
        functional.same_results(&gate),
        "backends diverged: functional {:?} vs gate {:?}",
        functional.four_way(),
        gate.four_way()
    );

    let json = functional.to_json();
    assert!(json.contains(REPORT_SCHEMA), "schema tag missing");
    for field in [
        "\"scenario\"",
        "\"backend\"",
        "\"fault_model\"",
        "\"input_space\"",
        "\"drop_policy\"",
        "\"fault_count\"",
        "\"simulated\"",
        "\"tally\"",
        "\"coverage\"",
        "\"detection_rate\"",
        "\"safe_rate\"",
        "\"elapsed_ms\"",
        "\"per_fault\"",
    ] {
        assert!(
            json.contains(field),
            "field {field} missing from report JSON"
        );
    }
    let parsed = CampaignReport::from_json(&json).expect("report JSON parses");
    assert!(parsed.same_results(&functional), "round trip lost results");
    assert_eq!(parsed.to_json(), json, "serialisation is not a fixpoint");

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &json).expect("write report");
        eprintln!("wrote {path}");
    }
    println!(
        "validate_report OK: {} faults, {} situations, coverage {:.4}%, \
         backends bit-identical, JSON schema round-trips",
        functional.fault_count(),
        functional.total_situations(),
        functional.coverage() * 100.0
    );
}
