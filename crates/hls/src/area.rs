//! Area model: CLB-slice estimate from schedule + binding.

use crate::bind::Binding;
use crate::dfg::{Dfg, OpKind, Role};
use crate::library::ComponentLibrary;
use crate::sched::Schedule;
use std::fmt;

/// How the error information is materialised (drives register and
/// error-logic overhead).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ErrorHandling {
    /// No checking hardware (plain design).
    None,
    /// The `SCK<T>` class template: every value carries its own error
    /// bit, propagated by every operator (one OR per operation, one
    /// extra bit per register).
    PerValue,
    /// Hand-embedded checking: a single sticky error flag accumulates
    /// all comparator outputs.
    SingleFlag,
}

/// Per-category CLB-slice breakdown.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AreaReport {
    /// Functional units (ALUs, multipliers, dividers, memory ports).
    pub fu_slices: f64,
    /// Word-wide registers.
    pub reg_slices: f64,
    /// Multiplexers in front of shared units and registers.
    pub mux_slices: f64,
    /// FSM controller (proportional to schedule length).
    pub ctrl_slices: f64,
    /// Checker hardware: comparators, error bits, error ORs.
    pub checker_slices: f64,
    /// Fixed infrastructure.
    pub base_slices: f64,
}

impl AreaReport {
    /// Total slices.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fu_slices
            + self.reg_slices
            + self.mux_slices
            + self.ctrl_slices
            + self.checker_slices
            + self.base_slices
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} slices (fu {:.0}, reg {:.0}, mux {:.0}, ctrl {:.0}, chk {:.0}, base {:.0})",
            self.total(),
            self.fu_slices,
            self.reg_slices,
            self.mux_slices,
            self.ctrl_slices,
            self.checker_slices,
            self.base_slices
        )
    }
}

/// Estimates the design's area.
///
/// Structural inputs: bound functional units, register count, mux legs,
/// schedule length (controller states) and the number of checker
/// comparators/ORs in the DFG. The per-component slice constants come
/// from the [`ComponentLibrary`].
#[must_use]
pub fn area(
    dfg: &Dfg,
    schedule: &Schedule,
    binding: &Binding,
    lib: &ComponentLibrary,
    err: ErrorHandling,
) -> AreaReport {
    let fu_slices: f64 = binding.fus.iter().map(|f| lib.fu_slices(f.class)).sum();
    let reg_slices = binding.registers as f64 * lib.reg_slices;
    let mux_slices = binding.mux_legs as f64 * lib.mux_slices_per_input;
    let ctrl_slices = f64::from(schedule.length()) * lib.ctrl_slices_per_state;

    let cmp_count = dfg
        .iter()
        .filter(|(_, n)| matches!(n.kind, OpKind::CmpNe))
        .count();
    let or_count = dfg
        .iter()
        .filter(|(_, n)| matches!(n.kind, OpKind::OrBit))
        .count();
    let checked_values = dfg.iter().filter(|(_, n)| n.role == Role::Checker).count();
    let checker_slices = match err {
        ErrorHandling::None => 0.0,
        ErrorHandling::PerValue => {
            // Comparators + an error bit and propagation OR per register
            // + per-operation propagation logic.
            cmp_count as f64 * lib.cmp_slices
                + binding.registers as f64 * 1.5
                + checked_values as f64 * 1.0
                + or_count as f64 * 0.5
        }
        ErrorHandling::SingleFlag => {
            cmp_count as f64 * lib.cmp_slices + 2.0 + or_count as f64 * 0.5
        }
    };

    AreaReport {
        fu_slices,
        reg_slices,
        mux_slices,
        ctrl_slices,
        checker_slices,
        base_slices: lib.base_slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{bind, BindOptions};
    use crate::library::ResourceSet;
    use crate::sched::list_schedule;

    fn mac() -> Dfg {
        let mut d = Dfg::new("mac");
        let a = d.input("a");
        let b = d.input("b");
        let acc = d.input("acc");
        let m = d.op(OpKind::Mul, &[a, b]);
        let s = d.op(OpKind::Add, &[acc, m]);
        d.output("acc", s);
        d
    }

    #[test]
    fn plain_area_breakdown() {
        let d = mac();
        let lib = ComponentLibrary::virtex16();
        let sch = list_schedule(&d, &lib, &ResourceSet::min_area());
        let bnd = bind(&d, &sch, &lib, BindOptions::default());
        let a = area(&d, &sch, &bnd, &lib, ErrorHandling::None);
        assert!(a.fu_slices >= lib.mult_slices + lib.alu_slices);
        assert_eq!(a.checker_slices, 0.0);
        assert!(a.total() > a.fu_slices);
    }

    #[test]
    fn per_value_error_handling_costs_more_than_single_flag() {
        let mut d = mac();
        // Attach a checking subtraction + comparator to the add.
        let s = crate::dfg::NodeId(4);
        let acc = crate::dfg::NodeId(2);
        let c = d.checker_op(OpKind::Sub, &[s, acc], s);
        let m = crate::dfg::NodeId(3);
        let ne = d.checker_op(OpKind::CmpNe, &[c, m], s);
        d.output("err", ne);
        let lib = ComponentLibrary::virtex16();
        let sch = list_schedule(&d, &lib, &ResourceSet::min_area());
        let bnd = bind(&d, &sch, &lib, BindOptions::default());
        let pv = area(&d, &sch, &bnd, &lib, ErrorHandling::PerValue);
        let sf = area(&d, &sch, &bnd, &lib, ErrorHandling::SingleFlag);
        assert!(pv.checker_slices > sf.checker_slices);
        assert!(pv.total() > sf.total());
    }

    #[test]
    fn longer_schedules_cost_controller_area() {
        let d = mac();
        let lib = ComponentLibrary::virtex16();
        let tight = list_schedule(&d, &lib, &ResourceSet::min_area());
        let a1 = {
            let bnd = bind(&d, &tight, &lib, BindOptions::default());
            area(&d, &tight, &bnd, &lib, ErrorHandling::None)
        };
        assert!(
            (a1.ctrl_slices - f64::from(tight.length()) * lib.ctrl_slices_per_state).abs() < 1e-9
        );
    }
}
