//! Seeded property tests: on random netlists, every collapsed line's
//! faulty function must be *pointwise identical* to its
//! representative's — the exact property `scdp-campaign` relies on to
//! fan simulation verdicts back out bit-identically.

use scdp_analyze::CollapsedUniverse;
use scdp_netlist::{Netlist, NetlistBuilder, SeqStuckAt, StuckAtLine};
use scdp_rng::{Rng, Xoshiro256StarStar};

/// Builds a random flat (combinational) netlist: a DAG of random
/// 1/2-input gates over random already-defined nets, plus a few
/// constants, with a random subset of nets exported as outputs.
fn random_flat(rng: &mut Xoshiro256StarStar) -> Netlist {
    let mut b = NetlistBuilder::new("rand_flat");
    let width = 2 + rng.gen_range(4) as u32;
    let mut nets = b.input_bus("in", width);
    if rng.gen_bool() {
        nets.push(b.constant(rng.gen_bool()));
    }
    let gates = 6 + rng.gen_range(20) as usize;
    for _ in 0..gates {
        let a = nets[rng.gen_range(nets.len() as u64) as usize];
        let c = nets[rng.gen_range(nets.len() as u64) as usize];
        let n = match rng.gen_range(8) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            _ => b.buf(a),
        };
        nets.push(n);
    }
    // Export a random suffix so plenty of internal nets stay
    // non-output (the interesting case for FFR chaining).
    let keep = 1 + rng.gen_range(3) as usize;
    let out: Vec<_> = nets[nets.len() - keep..].to_vec();
    b.output("y", &out);
    b.finish()
}

/// Random sequential netlist: same DAG plus a few Dffs whose D inputs
/// are connected to late nets (exercising forward references).
fn random_seq(rng: &mut Xoshiro256StarStar) -> Netlist {
    let mut b = NetlistBuilder::new("rand_seq");
    let width = 2 + rng.gen_range(3) as u32;
    let mut nets = b.input_bus("in", width);
    let dffs: Vec<_> = (0..1 + rng.gen_range(3)).map(|_| b.dff()).collect();
    nets.extend(&dffs);
    let gates = 6 + rng.gen_range(16) as usize;
    for _ in 0..gates {
        let a = nets[rng.gen_range(nets.len() as u64) as usize];
        let c = nets[rng.gen_range(nets.len() as u64) as usize];
        let n = match rng.gen_range(8) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            _ => b.buf(a),
        };
        nets.push(n);
    }
    for &q in &dffs {
        let d = nets[nets.len() - 1 - rng.gen_range(4) as usize];
        b.connect_dff(q, d);
    }
    let out: Vec<_> = nets[nets.len() - 2..].to_vec();
    b.output("y", &out);
    b.finish()
}

fn random_bits(rng: &mut Xoshiro256StarStar, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool()).collect()
}

fn outputs_of(n: &Netlist, values: &[bool]) -> Vec<bool> {
    n.outputs()
        .iter()
        .flat_map(|(_, bus)| bus.iter().map(|net| values[net.index()]))
        .collect()
}

/// 64 random flat netlists × every line in the universe × 16 vectors:
/// single-fault evaluation through the representative matches the
/// original line on every output bit.
#[test]
fn collapsed_line_matches_representative_on_flat_netlists() {
    let mut rng = Xoshiro256StarStar::from_seed(0x5cdb_0001);
    for case in 0..64 {
        let n = random_flat(&mut rng);
        let cu = CollapsedUniverse::build(&n);
        let lines = n.fault_lines();
        assert!(cu.sites_after() <= cu.sites_before());
        for &line in &lines {
            let rep = cu.representative(line);
            assert_eq!(cu.representative(rep), rep, "rep is a fixpoint");
            if rep == line {
                continue;
            }
            for _ in 0..16 {
                let bits = random_bits(&mut rng, n.input_bits());
                let a = outputs_of(&n, &n.eval_nets(&bits, &[line]));
                let b = outputs_of(&n, &n.eval_nets(&bits, &[rep]));
                assert_eq!(a, b, "case {case}: {line:?} vs rep {rep:?}");
            }
        }
    }
}

/// Random multi-line groups: two groups with the same canonical form
/// must have identical faulty functions (checked by evaluating both on
/// random vectors); conflicting groups stay singleton classes.
#[test]
fn collapsed_groups_share_faulty_functions() {
    let mut rng = Xoshiro256StarStar::from_seed(0x5cdb_0002);
    for _ in 0..64 {
        let n = random_flat(&mut rng);
        let cu = CollapsedUniverse::build(&n);
        let lines = n.fault_lines();
        let groups: Vec<Vec<StuckAtLine>> = (0..24)
            .map(|_| {
                (0..1 + rng.gen_range(3))
                    .map(|_| lines[rng.gen_range(lines.len() as u64) as usize])
                    .collect()
            })
            .collect();
        let cg = cu.collapse_groups(&groups);
        assert_eq!(cg.class_of.len(), groups.len());
        for (i, group) in groups.iter().enumerate() {
            let rep_group = &cg.rep_groups[cg.class_of[i]];
            for _ in 0..8 {
                let bits = random_bits(&mut rng, n.input_bits());
                let a = outputs_of(&n, &n.eval_nets(&bits, group));
                let b = outputs_of(&n, &n.eval_nets(&bits, rep_group));
                assert_eq!(a, b, "group {group:?} vs rep group {rep_group:?}");
            }
        }
    }
}

/// Sequential variant: permanent and single-cycle-transient faults on
/// random Dff-bearing netlists agree with their representatives across
/// a multi-cycle evaluation.
#[test]
fn collapsed_line_matches_representative_on_seq_netlists() {
    let mut rng = Xoshiro256StarStar::from_seed(0x5cdb_0003);
    for case in 0..64 {
        let n = random_seq(&mut rng);
        let cu = CollapsedUniverse::build(&n);
        let cycles = 3 + rng.gen_range(3) as u32;
        for &line in &n.fault_lines() {
            let rep = cu.representative(line);
            if rep == line {
                continue;
            }
            let faults = |l: StuckAtLine| -> Vec<SeqStuckAt> {
                if rng_clone_bool(case) {
                    vec![SeqStuckAt::permanent(l)]
                } else {
                    vec![SeqStuckAt::transient(l, case as u32 % cycles)]
                }
            };
            for _ in 0..8 {
                let bits = random_bits(&mut rng, n.input_bits());
                let ta = n.eval_seq_nets(&bits, cycles, &faults(line));
                let tb = n.eval_seq_nets(&bits, cycles, &faults(rep));
                for (va, vb) in ta.iter().zip(&tb) {
                    assert_eq!(
                        outputs_of(&n, va),
                        outputs_of(&n, vb),
                        "case {case}: seq {line:?} vs rep {rep:?}"
                    );
                }
            }
        }
    }
}

/// Alternate permanent/transient deterministically by case index.
fn rng_clone_bool(case: usize) -> bool {
    case % 2 == 0
}
