//! Datapath-campaign regression pins and `scdp.campaign.report/v1` →
//! `v2` schema compatibility.
//!
//! * The width-4 FIR/Tech1 aggregate four-way tally is pinned (seeded
//!   Monte-Carlo, thread-count independent by construction).
//! * v1 documents still parse; v2 documents round-trip byte for byte;
//!   a malformed per-FU section is a typed [`CampaignError`], never a
//!   panic.

use scdp_campaign::{
    CampaignError, CampaignReport, DatapathScenario, DfgSource, ExecPolicy, InputSpace,
    REPORT_SCHEMA, REPORT_SCHEMA_V2,
};
use scdp_core::Technique;

/// The pinned scenario: width-4 FIR, Tech1, full SCK expansion, shared
/// (worst-case) allocation, 2048 seeded Monte-Carlo vectors.
fn pinned_report() -> CampaignReport {
    DatapathScenario::new(DfgSource::Fir, 4)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 2048,
            seed: 0xDA7E_2005,
        })
        .exec(ExecPolicy::new().threads(2))
        .run()
        .expect("datapath campaign runs")
}

#[test]
fn width4_fir_tech1_aggregate_tally_is_pinned() {
    let r = pinned_report();
    let t = r.four_way();
    assert_eq!(
        (
            t.correct_silent,
            t.correct_detected,
            t.error_detected,
            t.error_undetected,
        ),
        (1_376_223, 479_489, 962_591, 93_953),
        "the width-4 FIR/Tech1 datapath tally drifted — elaboration, \
         scheduling, binding or the engine changed behaviour"
    );
    assert_eq!(r.fault_count(), 1422);
    assert_eq!(r.simulated, 2_912_256);
    let dp = r.datapath.as_ref().expect("datapath section");
    assert_eq!(dp.gates, 1330);
    assert_eq!(dp.schedule_length, 7);
    // One shared ALU (6 ops), one shared multiplier (2 ops), one
    // memory port (no gates).
    let alu = dp.per_fu.iter().find(|f| f.name == "alu0").expect("alu0");
    assert_eq!((alu.ops, alu.faults), (6, 1000));
    let mult = dp.per_fu.iter().find(|f| f.name == "mult0").expect("mult0");
    assert_eq!((mult.ops, mult.faults), (2, 422));
    let mem = dp.per_fu.iter().find(|f| f.class == "mem").expect("mem0");
    assert_eq!(mem.faults, 0);
}

#[test]
fn v2_report_round_trips_byte_for_byte() {
    let mut r = pinned_report();
    r.elapsed_ms = 0;
    let json = r.to_json();
    assert!(json.contains(REPORT_SCHEMA_V2), "v2 schema tag missing");
    assert!(json.contains("\"datapath\""), "datapath section missing");
    assert!(json.contains("\"op\": \"datapath\""));
    let parsed = CampaignReport::from_json(&json).expect("v2 parses");
    assert!(parsed.same_results(&r));
    assert_eq!(parsed.datapath, r.datapath);
    assert_eq!(parsed.to_json(), json, "serialisation is a fixpoint");
}

#[test]
fn v1_documents_still_parse() {
    // A live operator-scenario report is still v1.
    let r = scdp_campaign::Scenario::new(scdp_core::Operator::Add, 2)
        .campaign()
        .run()
        .expect("operator campaign");
    let json = r.to_json();
    assert!(json.contains(REPORT_SCHEMA));
    assert!(!json.contains("\"datapath\""));
    let parsed = CampaignReport::from_json(&json).expect("v1 parses");
    assert!(parsed.same_results(&r));
    assert!(parsed.datapath.is_none());
    // The committed golden file is a v1 document too.
    let golden = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/add_tech1_w4.json"),
    )
    .expect("golden file present");
    let parsed = CampaignReport::from_json(&golden).expect("golden v1 parses");
    assert!(parsed.datapath.is_none());
}

#[test]
fn schema_and_section_must_agree() {
    let mut r = pinned_report();
    r.elapsed_ms = 0;
    let v2 = r.to_json();
    // v1-labelled document with a datapath section: typed error.
    let bad = v2.replace(REPORT_SCHEMA_V2, REPORT_SCHEMA);
    match CampaignReport::from_json(&bad) {
        Err(CampaignError::Schema { field, .. }) => {
            assert!(
                field == "datapath" || field == "scenario.op",
                "unexpected field {field}"
            );
        }
        other => panic!("expected schema error, got {other:?}"),
    }
    // v2-labelled document without the section: typed error.
    let v1 = scdp_campaign::Scenario::new(scdp_core::Operator::Add, 1)
        .campaign()
        .run()
        .expect("run")
        .to_json();
    let bad = v1.replace(REPORT_SCHEMA, REPORT_SCHEMA_V2);
    assert!(matches!(
        CampaignReport::from_json(&bad),
        Err(CampaignError::Schema {
            field: "datapath",
            ..
        })
    ));
}

#[test]
fn malformed_per_fu_sections_are_typed_errors() {
    let mut r = pinned_report();
    r.elapsed_ms = 0;
    let good = r.to_json();
    for (needle, replacement, expect_field) in [
        // per_fu not an array.
        (
            "\"per_fu\": [",
            "\"per_fu\": 7, \"x\": [",
            "datapath.per_fu",
        ),
        // A per-FU tally cell that is not a count.
        ("\"name\": \"alu0\"", "\"name\": 13", "datapath.per_fu.name"),
        // Missing faults member on the first unit.
        ("\"faults\": 1000,", "", "datapath.per_fu.faults"),
        // Malformed nested tally (member renamed away; the needle is
        // anchored on the faults count so the aggregate tally object is
        // untouched).
        (
            "1000, \"tally\": {\"correct_silent\"",
            "1000, \"tally\": {\"zz\"",
            "datapath.per_fu.tally",
        ),
    ] {
        let bad = good.replacen(needle, replacement, 1);
        assert_ne!(bad, good, "replacement `{needle}` did not apply");
        match CampaignReport::from_json(&bad) {
            Err(CampaignError::Schema { field, .. }) => {
                assert_eq!(field, expect_field, "for `{needle}`");
            }
            other => panic!("`{needle}` must be a typed schema error, got {other:?}"),
        }
    }
    // Structurally broken JSON inside the section parses as a Parse
    // error, still typed.
    let bad = good.replacen("\"per_fu\": [", "\"per_fu\": [[", 1);
    assert!(CampaignReport::from_json(&bad).is_err());
}
