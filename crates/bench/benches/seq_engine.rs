//! The sequential-engine benchmark: the cycle-accurate shared-FU FIR
//! machine on the packed multi-cycle engine vs the scalar
//! `Netlist::eval_seq_nets` path, single-threaded and parallel.
//!
//! Writes `BENCH_seq_engine.json`. Two kinds of metrics land in its
//! `metrics` array:
//!
//! * `seq_speedup_1thread_vs_scalar` — machine-relative ratio, gated by
//!   `bench_check`'s hard floor;
//! * `seq_mcycles_per_sec` — absolute throughput (million gate-netlist
//!   cycles simulated per second), informational across machines
//!   (`*_per_sec` metrics demote to warnings in `--cross-machine`
//!   mode).

use scdp_bench::Bench;
use scdp_campaign::{DatapathScenario, DfgSource};
use scdp_core::Technique;
use scdp_netlist::{FaultDuration, SeqStuckAt};
use scdp_obs::Recorder;
use scdp_sim::{par, InputPlan, SeqCampaign, SeqEngine, SeqFaultGroup};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let width = 4u32;
    let scenario = DatapathScenario::new(DfgSource::Fir, width).technique(Technique::Tech1);
    let dp = scenario.elaborate_seq();
    let (groups, _) = dp.fault_universe();
    let cycles = dp.total_cycles;
    let vectors = 512u64;
    let plan = InputPlan::Sampled {
        vectors,
        seed: 0xBEEF,
    };
    let situations = groups.len() as u64 * vectors;
    // Netlist-cycles simulated per campaign: every situation runs the
    // whole machine for `cycles` clock cycles.
    let netlist_cycles = situations * u64::from(cycles);

    let seq_groups: Vec<SeqFaultGroup> = groups
        .iter()
        .map(|lines| SeqFaultGroup::new(lines.clone(), FaultDuration::Permanent))
        .collect();
    let engine = SeqEngine::new(&dp.netlist);

    let mut bench = Bench::new("seq_engine");

    // Scalar reference on a slice of the universe (the full universe
    // would blow the bench budget), normalised per situation below.
    let scalar_faults = 8usize.min(groups.len());
    let scalar_vectors = 32u64;
    let input_bits = dp.netlist.input_bits();
    let scalar_work = scalar_faults as u64 * scalar_vectors * u64::from(cycles);
    let scalar_ns = bench.sample_elements("scalar_eval_seq_w4", 3, scalar_work, &mut || {
        let mut acc = 0usize;
        for lines in groups.iter().take(scalar_faults) {
            let faults: Vec<SeqStuckAt> = lines
                .iter()
                .map(|&line| SeqStuckAt::permanent(line))
                .collect();
            let mut seed = 0x5EED_u64;
            for _ in 0..scalar_vectors {
                let bits: Vec<bool> = (0..input_bits)
                    .map(|_| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        seed >> 63 != 0
                    })
                    .collect();
                let trace = dp.netlist.eval_seq_nets(&bits, cycles, &faults);
                acc += usize::from(trace.last().unwrap()[0]);
            }
        }
        black_box(acc)
    });

    let packed_ns = bench.sample_elements("seq_1thread_w4", 5, situations, &mut || {
        black_box(
            SeqCampaign::new(&engine, seq_groups.clone(), cycles)
                .plan(plan)
                .threads(1)
                .run()
                .tally,
        )
    });
    // Floor of 4 workers: exercises the work-stealing pool's
    // multi-worker merge even on smaller machines (idle workers steal
    // nothing and park); the actual count lands in `parallel_threads`.
    let threads = par::default_threads().max(4);
    bench.sample_elements("seq_parallel_w4", 5, situations, &mut || {
        black_box(
            SeqCampaign::new(&engine, seq_groups.clone(), cycles)
                .plan(plan)
                .threads(threads)
                .run()
                .tally,
        )
    });
    bench.sample_elements("seq_dropping_w4", 5, situations, &mut || {
        black_box(
            SeqCampaign::new(&engine, seq_groups.clone(), cycles)
                .plan(plan)
                .drop_policy(scdp_sim::DropPolicy::OnDetect)
                .threads(1)
                .run()
                .simulated,
        )
    });

    // Deductive pruning on the same universe: sequential campaigns
    // settle untestability proofs only (dominance deferral needs a
    // combinational netlist), so the ratio is informational here — the
    // gated floor lives on the combinational bench.
    let pu = scdp_analyze::PrunedUniverse::build(&dp.netlist, &groups);
    let skip = pu.untestable_indices();
    let seq_untestable = skip.len() as u64;
    let seq_simulated_groups = groups.len() as u64 - seq_untestable;
    let seq_prune_ratio = groups.len() as f64 / seq_simulated_groups as f64;
    bench.sample_elements("seq_pruned_w4", 5, situations, &mut || {
        black_box(
            SeqCampaign::new(&engine, seq_groups.clone(), cycles)
                .plan(plan)
                .threads(1)
                .skip_resolved(skip.clone())
                .run()
                .tally,
        )
    });
    eprintln!(
        "prune: {} groups -> {seq_simulated_groups} simulated \
         ({seq_untestable} untestable); ratio {seq_prune_ratio:.2}x",
        groups.len()
    );

    // Per-situation-cycle rates: scalar measured on its slice, packed
    // on the full campaign.
    let scalar_ns_per_cycle = scalar_ns / scalar_work as f64;
    let packed_ns_per_cycle = packed_ns / netlist_cycles as f64;
    let speedup = scalar_ns_per_cycle / packed_ns_per_cycle;
    let mcycles_per_sec = 1e3 / packed_ns_per_cycle; // 1e9 ns/s ÷ ns/cycle ÷ 1e6
    eprintln!(
        "sequential engine: {speedup:.1}x over scalar, {mcycles_per_sec:.2} Mcycles/s \
         single-thread"
    );
    // Telemetry-derived metrics: one instrumented parallel campaign.
    // `seq.busy_ns` sums the workers' in-chunk time, so busy ÷
    // (threads × wall) is the parallel utilisation.
    let recorder = Arc::new(Recorder::new());
    let start = Instant::now();
    let summary = SeqCampaign::new(&engine, seq_groups.clone(), cycles)
        .plan(plan)
        .threads(threads)
        .recorder(Arc::clone(&recorder))
        .run();
    black_box(summary.simulated);
    let wall_ns = start.elapsed().as_nanos() as f64;
    let busy_ns = recorder.snapshot().counter("seq.busy_ns").unwrap_or(0) as f64;
    let busy_fraction = busy_ns / (threads as f64 * wall_ns);
    let faults_per_sec = seq_groups.len() as f64 * 1e9 / wall_ns;
    eprintln!("parallel run: busy fraction {busy_fraction:.2}, {faults_per_sec:.0} faults/s");

    bench.metric("seq_speedup_1thread_vs_scalar", speedup);
    bench.metric("seq_mcycles_per_sec", mcycles_per_sec);
    bench.metric("seq_parallel_busy_fraction", busy_fraction);
    bench.metric("seq_faults_per_sec", faults_per_sec);
    bench.metric("parallel_threads", threads as f64);
    bench.metric("simd_lanes", scdp_sim::Lanes::Auto.limbs() as f64);
    bench.metric("seq_prune_ratio", seq_prune_ratio);
    bench.metric("deduce.untestable", seq_untestable as f64);
    bench.metric("deduce.simulated", seq_simulated_groups as f64);
    bench.finish();
    assert!(
        speedup >= 8.0,
        "acceptance: sequential packed engine must be >=8x over scalar \
         (measured {speedup:.1}x)"
    );
}
