//! The self-checking data type `Sck<T, P>` (the paper's `SCK<TYPE>`).

use crate::checked::{checked_add, checked_div_rem, checked_mul, checked_sub};
use crate::{context, Technique};
use scdp_arith::Word;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::{Product, Sum};
use std::marker::PhantomData;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};

mod private {
    pub trait Sealed {}
}

/// Integer value types usable inside [`Sck`].
///
/// This trait is sealed: the synthesizable value set is fixed to the
/// primitive integers (the paper's restriction — "the limitation to
/// integers depends on SystemC ability to synthesize only this type").
pub trait SckValue: private::Sealed + Copy + PartialEq + fmt::Debug + 'static {
    /// The operand width in bits.
    const WIDTH: u32;
    /// Converts the value into a fixed-width word.
    fn to_word(self) -> Word;
    /// Converts a word back into the value (two's-complement reinterpret).
    fn from_word(w: Word) -> Self;
}

macro_rules! impl_sck_value {
    ($($t:ty => $w:expr),* $(,)?) => {$(
        impl private::Sealed for $t {}
        impl SckValue for $t {
            const WIDTH: u32 = $w;
            #[inline]
            fn to_word(self) -> Word {
                Word::from_i64($w, self as i64)
            }
            #[inline]
            fn from_word(w: Word) -> Self {
                w.to_i64() as $t
            }
        }
    )*};
}

impl_sck_value! {
    i8 => 8, i16 => 16, i32 => 32, i64 => 64,
    u8 => 8, u16 => 16, u32 => 32, u64 => 64,
}

/// Per-operator technique selection for [`Sck`].
///
/// Implementations are zero-sized marker types; the paper's "extensible
/// reliability library" where "the designer can select different
/// self-checking approaches depending on the trade-off" maps to choosing
/// (or defining) a policy type.
pub trait CheckPolicy: 'static {
    /// Technique for `+`.
    const ADD: Technique;
    /// Technique for `-` (also used for unary negation).
    const SUB: Technique;
    /// Technique for `*`.
    const MUL: Technique;
    /// Technique for `/` and `%`.
    const DIV: Technique;
}

/// Table 1's first column for every operator (lowest cost).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tech1Policy;

impl CheckPolicy for Tech1Policy {
    const ADD: Technique = Technique::Tech1;
    const SUB: Technique = Technique::Tech1;
    const MUL: Technique = Technique::Tech1;
    const DIV: Technique = Technique::Tech1;
}

/// Table 1's second column for every operator.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tech2Policy;

impl CheckPolicy for Tech2Policy {
    const ADD: Technique = Technique::Tech2;
    const SUB: Technique = Technique::Tech2;
    const MUL: Technique = Technique::Tech2;
    const DIV: Technique = Technique::Tech2;
}

/// Both checks per operator (highest coverage, highest cost). Division
/// uses Tech1 only, matching Table 1's "-" entry for Div/Both.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BothPolicy;

impl CheckPolicy for BothPolicy {
    const ADD: Technique = Technique::Both;
    const SUB: Technique = Technique::Both;
    const MUL: Technique = Technique::Both;
    const DIV: Technique = Technique::Tech1;
}

/// The default policy (Tech1, as in the paper's Figure 2 class).
pub type DefaultPolicy = Tech1Policy;

/// Wraps a value in a default-policy [`Sck`].
///
/// Convenience constructor that pins the policy parameter so type
/// inference works at call sites: `sck(3) + sck(4)`.
///
/// # Example
///
/// ```
/// use scdp_core::sck;
///
/// let z = sck(3i32) + sck(4i32);
/// assert_eq!(z.value(), 7);
/// ```
#[must_use]
pub fn sck<T: SckValue>(value: T) -> Sck<T, DefaultPolicy> {
    Sck::new(value)
}

/// Error reported by [`Sck::into_result`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SckError {
    /// A hidden checking operation disagreed with the nominal result —
    /// a hardware fault was detected.
    FaultDetected,
    /// The computation overflowed its width (reported separately from
    /// fault detection, as in the paper).
    Overflow,
}

impl fmt::Display for SckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SckError::FaultDetected => {
                f.write_str("hardware fault detected by inverse-operation check")
            }
            SckError::Overflow => f.write_str("arithmetic overflow"),
        }
    }
}

impl std::error::Error for SckError {}

/// A self-checking integer: the paper's `SCK<TYPE>` class template.
///
/// `Sck<T, P>` wraps an integer `T` together with a sticky **error bit**
/// (`E` in the paper's Figure 1) and a sticky **overflow bit**. Every
/// arithmetic operator is overloaded to perform the hidden inverse
/// operations selected by the [`CheckPolicy`] `P`, raising the error bit
/// when a check fails and propagating the bits of both operands into the
/// result ("operators are designed to propagate also the error bit
/// value").
///
/// Comparison and hashing are by value only, so `Sck<T>` is a drop-in
/// replacement in arithmetic code; inspect [`error`](Sck::error) (the
/// paper's `GetError`) or convert with [`into_result`](Sck::into_result)
/// at the system boundary.
///
/// # Example
///
/// ```
/// use scdp_core::{Sck, BothPolicy};
///
/// // The paper's FIR inner step: acc += c * x, self-checking.
/// let c = Sck::<i32, BothPolicy>::new(7);
/// let x = Sck::<i32, BothPolicy>::new(-3);
/// let mut acc = Sck::<i32, BothPolicy>::new(100);
/// acc += c * x;
/// assert_eq!(acc.value(), 79);
/// assert!(!acc.error());
/// ```
pub struct Sck<T, P = DefaultPolicy> {
    value: T,
    error: bool,
    overflow: bool,
    _policy: PhantomData<fn() -> P>,
}

impl<T: SckValue, P: CheckPolicy> Sck<T, P> {
    /// Wraps a value with clear error/overflow bits.
    #[must_use]
    pub fn new(value: T) -> Self {
        Self {
            value,
            error: false,
            overflow: false,
            _policy: PhantomData,
        }
    }

    /// The wrapped value (the paper's `GetID`).
    #[must_use]
    pub fn value(&self) -> T {
        self.value
    }

    /// The error bit (the paper's `GetError`): `true` if any checking
    /// operation along this value's data-flow history failed.
    #[must_use]
    pub fn error(&self) -> bool {
        self.error
    }

    /// The overflow bit: `true` if any operation along this value's
    /// history overflowed its width. Kept separate from the error bit, as
    /// in the paper.
    #[must_use]
    pub fn overflow(&self) -> bool {
        self.overflow
    }

    /// `true` if no fault was detected (overflow permitted).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        !self.error
    }

    /// Converts to a `Result`, reporting a detected fault first, then an
    /// overflow.
    ///
    /// # Errors
    ///
    /// [`SckError::FaultDetected`] if the error bit is set;
    /// [`SckError::Overflow`] if only the overflow bit is set.
    pub fn into_result(self) -> Result<T, SckError> {
        if self.error {
            Err(SckError::FaultDetected)
        } else if self.overflow {
            Err(SckError::Overflow)
        } else {
            Ok(self.value)
        }
    }

    /// Returns a copy with both sticky bits cleared (e.g. after an error
    /// has been handled at a recovery point).
    #[must_use]
    pub fn cleared(self) -> Self {
        Self::new(self.value)
    }

    /// Re-wraps with explicit flags; used by checked-operator plumbing.
    #[inline]
    fn with_flags(value: T, error: bool, overflow: bool) -> Self {
        Self {
            value,
            error,
            overflow,
            _policy: PhantomData,
        }
    }
}

impl<T: SckValue, P> Copy for Sck<T, P> {}

impl<T: SckValue, P> Clone for Sck<T, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: SckValue + Default, P: CheckPolicy> Default for Sck<T, P> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: SckValue, P: CheckPolicy> From<T> for Sck<T, P> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: SckValue, P> fmt::Debug for Sck<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sck")
            .field("value", &self.value)
            .field("error", &self.error)
            .field("overflow", &self.overflow)
            .finish()
    }
}

impl<T: SckValue + fmt::Display, P> fmt::Display for Sck<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.value, f)
    }
}

impl<T: SckValue, P> PartialEq for Sck<T, P> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<T: SckValue + Eq, P> Eq for Sck<T, P> {}

impl<T: SckValue, P> PartialEq<T> for Sck<T, P> {
    fn eq(&self, other: &T) -> bool {
        self.value == *other
    }
}

impl<T: SckValue + PartialOrd, P> PartialOrd for Sck<T, P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.value.partial_cmp(&other.value)
    }
}

impl<T: SckValue + Ord, P> Ord for Sck<T, P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value.cmp(&other.value)
    }
}

impl<T: SckValue + Hash, P> Hash for Sck<T, P> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident,
     $checked:ident, $tech:ident) => {
        impl<T: SckValue, P: CheckPolicy> $trait for Sck<T, P> {
            type Output = Sck<T, P>;

            fn $method(self, rhs: Sck<T, P>) -> Sck<T, P> {
                let (a, b) = (self.value.to_word(), rhs.value.to_word());
                // Fast path: with no installed data path the checks run
                // inline on host arithmetic (the common, healthy case),
                // keeping the overloading overhead close to the paper's
                // compiled-C++ figures.
                let c = if context::is_installed() {
                    context::with(|dp| $checked(dp, P::$tech, a, b))
                } else {
                    $checked(&mut crate::NativeDataPath::new(), P::$tech, a, b)
                };
                Sck::with_flags(
                    T::from_word(c.value),
                    self.error | rhs.error | c.error,
                    self.overflow | rhs.overflow | c.overflow,
                )
            }
        }

        impl<T: SckValue, P: CheckPolicy> $trait<T> for Sck<T, P> {
            type Output = Sck<T, P>;

            fn $method(self, rhs: T) -> Sck<T, P> {
                self.$method(Sck::new(rhs))
            }
        }

        impl<T: SckValue, P: CheckPolicy> $assign_trait for Sck<T, P> {
            fn $assign_method(&mut self, rhs: Sck<T, P>) {
                *self = (*self).$method(rhs);
            }
        }

        impl<T: SckValue, P: CheckPolicy> $assign_trait<T> for Sck<T, P> {
            fn $assign_method(&mut self, rhs: T) {
                *self = (*self).$method(rhs);
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, checked_add, ADD);
impl_binop!(Sub, sub, SubAssign, sub_assign, checked_sub, SUB);
impl_binop!(Mul, mul, MulAssign, mul_assign, checked_mul, MUL);

impl<T: SckValue, P: CheckPolicy> Div for Sck<T, P> {
    type Output = Sck<T, P>;

    /// Checked division. A zero divisor sets the error bit and yields 0.
    fn div(self, rhs: Sck<T, P>) -> Sck<T, P> {
        let (a, b) = (self.value.to_word(), rhs.value.to_word());
        let (c, _r) = if context::is_installed() {
            context::with(|dp| checked_div_rem(dp, P::DIV, a, b))
        } else {
            checked_div_rem(&mut crate::NativeDataPath::new(), P::DIV, a, b)
        };
        Sck::with_flags(
            T::from_word(c.value),
            self.error | rhs.error | c.error,
            self.overflow | rhs.overflow | c.overflow,
        )
    }
}

impl<T: SckValue, P: CheckPolicy> Div<T> for Sck<T, P> {
    type Output = Sck<T, P>;

    fn div(self, rhs: T) -> Sck<T, P> {
        self / Sck::new(rhs)
    }
}

impl<T: SckValue, P: CheckPolicy> DivAssign for Sck<T, P> {
    fn div_assign(&mut self, rhs: Sck<T, P>) {
        *self = *self / rhs;
    }
}

impl<T: SckValue, P: CheckPolicy> DivAssign<T> for Sck<T, P> {
    fn div_assign(&mut self, rhs: T) {
        *self = *self / rhs;
    }
}

impl<T: SckValue, P: CheckPolicy> Rem for Sck<T, P> {
    type Output = Sck<T, P>;

    /// Checked remainder (from the same checked division unit).
    fn rem(self, rhs: Sck<T, P>) -> Sck<T, P> {
        let (a, b) = (self.value.to_word(), rhs.value.to_word());
        let (c, r) = if context::is_installed() {
            context::with(|dp| checked_div_rem(dp, P::DIV, a, b))
        } else {
            checked_div_rem(&mut crate::NativeDataPath::new(), P::DIV, a, b)
        };
        Sck::with_flags(
            T::from_word(r),
            self.error | rhs.error | c.error,
            self.overflow | rhs.overflow | c.overflow,
        )
    }
}

impl<T: SckValue, P: CheckPolicy> Rem<T> for Sck<T, P> {
    type Output = Sck<T, P>;

    fn rem(self, rhs: T) -> Sck<T, P> {
        self % Sck::new(rhs)
    }
}

impl<T: SckValue, P: CheckPolicy> RemAssign for Sck<T, P> {
    fn rem_assign(&mut self, rhs: Sck<T, P>) {
        *self = *self % rhs;
    }
}

impl<T: SckValue, P: CheckPolicy> RemAssign<T> for Sck<T, P> {
    fn rem_assign(&mut self, rhs: T) {
        *self = *self % rhs;
    }
}

impl<T: SckValue, P: CheckPolicy> Neg for Sck<T, P> {
    type Output = Sck<T, P>;

    /// Checked negation, realised as `0 - self` with the SUB technique.
    fn neg(self) -> Sck<T, P> {
        Sck::with_flags(
            T::from_word(Word::zero(T::WIDTH)),
            self.error,
            self.overflow,
        ) - self
    }
}

impl<T: SckValue, P: CheckPolicy> Sum for Sck<T, P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(
            Sck::with_flags(T::from_word(Word::zero(T::WIDTH)), false, false),
            Add::add,
        )
    }
}

impl<T: SckValue, P: CheckPolicy> Product for Sck<T, P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        let one = T::from_word(Word::from_i64(T::WIDTH, 1));
        iter.fold(Sck::new(one), Mul::mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{context, Allocation, CountingDataPath, FaultSite, FaultyDataPath, NativeDataPath};
    use scdp_fault::{FaGateFault, FaSite};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn behaves_like_plain_integers_fault_free() {
        let a = sck(17i32);
        let b = sck(5i32);
        assert_eq!((a + b).value(), 22);
        assert_eq!((a - b).value(), 12);
        assert_eq!((a * b).value(), 85);
        assert_eq!((a / b).value(), 3);
        assert_eq!((a % b).value(), 2);
        assert_eq!((-a).value(), -17);
        assert!(!(a + b).error());
        assert!(!(a * b).overflow());
    }

    #[test]
    fn mixed_operand_forms() {
        let a = sck(10i16);
        assert_eq!((a + 5).value(), 15);
        assert_eq!((a * 3).value(), 30);
        let mut acc = sck(0i16);
        acc += 7;
        acc -= 2;
        acc *= 4;
        acc /= 5;
        acc %= 3;
        assert_eq!(acc.value(), (((7 - 2) * 4) / 5) % 3);
    }

    #[test]
    fn overflow_is_sticky_and_separate() {
        let a = sck(i8::MAX);
        let b = a + sck(1i8);
        assert!(b.overflow());
        assert!(!b.error(), "overflow must not raise the error bit");
        assert_eq!(b.value(), i8::MIN); // wrapping
        let c = b - sck(1i8);
        assert!(c.overflow(), "overflow bit propagates");
        assert_eq!(c.into_result(), Err(SckError::Overflow));
    }

    #[test]
    fn error_bit_propagates_through_chains() {
        let site = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, false));
        let dp = Rc::new(RefCell::new(FaultyDataPath::new(
            32,
            site,
            Allocation::Dedicated,
        )));
        let poisoned = {
            let _g = context::install(dp);
            sck(1i32) + sck(0i32) // 1+0: bit0 sum stuck at 0
        };
        assert!(poisoned.error());
        assert_eq!(poisoned.value(), 0, "bit-0 sum stuck at 0 corrupts 1+0");
        // Back on the native path, the error bit still propagates.
        let downstream = poisoned * sck(10i32) + sck(3i32);
        assert!(downstream.error());
        assert_eq!(downstream.into_result(), Err(SckError::FaultDetected));
        // Clearing drops the sticky bits but of course cannot restore the
        // corrupted value.
        assert_eq!(downstream.cleared().into_result(), Ok(3));
    }

    #[test]
    fn division_by_zero_sets_error() {
        let q = sck(5i32) / sck(0i32);
        assert!(q.error());
        assert_eq!(q.value(), 0);
    }

    #[test]
    fn comparisons_are_by_value() {
        let a = sck(4i32);
        let b = sck(4i32);
        let c = sck(9i32);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a, 4i32);
        assert_eq!(a.max(c).value(), 9);
    }

    #[test]
    fn sum_and_product() {
        let xs = [1i32, 2, 3, 4].map(Sck::<i32>::new);
        let s: Sck<i32> = xs.into_iter().sum();
        assert_eq!(s.value(), 10);
        let p: Sck<i32> = xs.into_iter().product();
        assert_eq!(p.value(), 24);
    }

    #[test]
    fn policies_change_hidden_op_counts() {
        let dp = Rc::new(RefCell::new(CountingDataPath::new(NativeDataPath::new())));
        {
            let _g = context::install(dp.clone());
            let _ = Sck::<i32, Tech1Policy>::new(3) + Sck::new(4);
        }
        let tech1 = dp.borrow().counts();
        dp.borrow_mut().reset();
        {
            let _g = context::install(dp.clone());
            let _ = Sck::<i32, BothPolicy>::new(3) + Sck::new(4);
        }
        let both = dp.borrow().counts();
        assert_eq!(tech1.subs, 1, "Tech1 add: one checking subtraction");
        assert_eq!(both.subs, 2, "Both add: two checking subtractions");
        assert_eq!(tech1.adds, 1);
        assert_eq!(both.adds, 1);
    }

    #[test]
    fn unsigned_values_round_trip() {
        let a = sck(250u8);
        let b = a + sck(10u8); // wraps
        assert_eq!(b.value(), 4u8);
        assert!(!b.error());
        let c = sck(200u16) * sck(4u16);
        assert_eq!(c.value(), 800);
    }

    #[test]
    fn display_and_debug() {
        let a = sck(-3i32);
        assert_eq!(a.to_string(), "-3");
        let dbg = format!("{a:?}");
        assert!(dbg.contains("value: -3"), "{dbg}");
        assert!(dbg.contains("error: false"), "{dbg}");
    }

    #[test]
    fn default_and_from() {
        let d: Sck<i32> = Sck::default();
        assert_eq!(d.value(), 0);
        let f: Sck<i64> = 42i64.into();
        assert_eq!(f.value(), 42);
    }

    #[test]
    fn neg_of_min_overflows() {
        let a = sck(i8::MIN);
        let n = -a;
        assert_eq!(n.value(), i8::MIN); // wraps
        assert!(n.overflow());
    }
}
