//! Minimal fork-join helper over `std::thread`.
//!
//! The campaign driver needs exactly one parallel shape: *partition a
//! slice into contiguous chunks, map each chunk on its own worker,
//! splice the results back in order*. `rayon`'s `par_chunks` would
//! express this directly, but the build environment is offline, so this
//! module provides the same semantics on scoped threads. Chunking is
//! deterministic (`ceil(len / threads)` contiguous pieces), which keeps
//! campaign output independent of scheduling.

/// A sensible default worker count: the machine's available
/// parallelism, 1 if it cannot be queried.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over contiguous chunks of `items` on up to `threads`
/// workers and concatenates the per-chunk outputs in input order.
///
/// `f` runs on the calling thread when a single chunk suffices, so
/// small workloads pay no spawn cost.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads);
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| s.spawn(|| f(slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 7, 64] {
            let doubled = map_chunks(&items, threads, |chunk| {
                chunk.iter().map(|x| x * 2).collect()
            });
            assert_eq!(doubled.len(), 1000);
            assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out = map_chunks(&[] as &[u8], 4, |c| c.to_vec());
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
