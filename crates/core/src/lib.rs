//! Self-checking data types with inverse-operation concurrent error
//! detection.
//!
//! This crate is a Rust reproduction of the central contribution of
//! C. Bolchini, F. Salice, D. Sciuto, L. Pomante, *Reliable System
//! Specification for Self-Checking Data-Paths* (DATE 2005): the
//! `SCK<TYPE>` class template whose overloaded operators transparently
//! verify every arithmetic result through one or more *hidden inverse
//! operations*, raising and propagating an error bit on mismatch.
//!
//! # The mechanism
//!
//! For `z = x + y`, the overloaded `+` also computes `w = z - x` and
//! checks `w == y` (the paper's Tech1). The designer writes ordinary
//! arithmetic; the data type performs concurrent error detection (CED)
//! against the **single functional-unit failure** fault model.
//!
//! * [`Sck`] is the self-checking wrapper type: `Sck<i32>` behaves like
//!   `i32` but carries a sticky error bit (and a separately-handled
//!   overflow bit, per the paper's "overflows are separately dealt
//!   with").
//! * [`Technique`] catalogues the paper's Table 1 overloading techniques
//!   per operator; a [`CheckPolicy`] selects one per operator at the type
//!   level.
//! * [`DataPath`] abstracts the execution units. The default is the
//!   fault-free [`NativeDataPath`]; fault-injection campaigns install a
//!   [`FaultyDataPath`] (backed by the `scdp-arith` cell-level units) via
//!   [`context::install`], so the *same application code* can be run on
//!   healthy or faulty hardware models — the transparency property the
//!   paper claims.
//!
//! # Quick start
//!
//! ```
//! use scdp_core::sck;
//!
//! let x = sck(21i32);
//! let y = sck(2i32);
//! let z = x * y + sck(0);
//! assert_eq!(z.value(), 42);
//! assert!(!z.error()); // no fault, no alarm
//! ```
//!
//! Detecting an injected fault:
//!
//! ```
//! use scdp_core::{context, sck, Allocation, FaultSite, FaultyDataPath};
//! use scdp_fault::{FaGateFault, FaSite};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! // Break the sum output of bit 0 of the 32-bit adder.
//! let fault = FaultSite::adder_gate(0, FaGateFault::new(FaSite::Sum, false));
//! let dp = Rc::new(RefCell::new(FaultyDataPath::new(
//!     32,
//!     fault,
//!     Allocation::Dedicated,
//! )));
//! let _guard = context::install(dp);
//!
//! let z = sck(1i32) + sck(2i32);
//! assert!(z.error(), "the checking subtraction flags the corrupted sum");
//! ```

#![warn(missing_docs)]

mod checked;
pub mod context;
mod datapath;
mod sck;
mod technique;

pub use checked::{checked_add, checked_div_rem, checked_mul, checked_sub, Checked};
pub use datapath::{
    Allocation, CountingDataPath, DataPath, FaultSite, FaultyDataPath, NativeDataPath, OpCounts,
    Slot,
};
pub use sck::{
    sck, BothPolicy, CheckPolicy, DefaultPolicy, Sck, SckError, SckValue, Tech1Policy, Tech2Policy,
};
pub use technique::{Operator, Technique};
