//! Datapath elaboration: lowering a scheduled, bound dataflow graph
//! onto one flat structural netlist.
//!
//! The paper's flow ends where `scdp-hls` stops: a scheduled `Dfg` with
//! a functional-unit [`Binding`]. This module closes the remaining gap
//! to the gate level — it *elaborates* that triple into a single
//! combinational [`Netlist`] on which the bit-parallel stuck-at engine
//! of `scdp-sim` can run whole-datapath fault campaigns (the paper's
//! system-level reliability validation, not just lone operators).
//!
//! # The unrolled-time model
//!
//! The netlist IR is combinational, so the schedule is unrolled in
//! time: every operation bound to a physical functional unit becomes
//! one structural **instance** of that unit's template (operand mux
//! chains + arithmetic core). All instances of one FU are gate-for-gate
//! identical, which is exactly what makes time-multiplexing matter for
//! reliability: a stuck-at fault in the physical unit corrupts *every*
//! operation executed on it, modelled here by injecting the same
//! instance-local site into every instance of the FU
//! ([`ElaboratedDatapath::fu_fault_groups`]). Registers degrade to
//! wires under unrolling (their faults are out of scope); the
//! multiplexer trees in front of shared units are real gates with real
//! fault sites, steered by per-instance constant selects (the decoded
//! controller state of the cycle the operation executes in). Inactive
//! mux legs are tied to zero — the unrolled model's don't-care.
//!
//! # Operation lowering
//!
//! | DFG node | Hardware |
//! |----------|----------|
//! | `Add`/`Sub`/`Neg` | shared ripple-carry core; operand conditioning (inverters, carry-in) outside the instance, as in the paper's fault-free *g*/*f* functions |
//! | `Mul` | array-multiplier core |
//! | `Div`/`Rem` | unrolled restoring-divider core (quotient / remainder tap) |
//! | `Load` | a fresh primary input bus (memory contents are unknowable combinationally); its address is exported as a result bus so address corruption is observable |
//! | `Store` | address and value exported as result buses |
//! | `CmpNe`/`OrBit` | fault-free chained checker logic (disequality comparator / alarm OR), outside every instance |
//! | `Output` | a result bus — except `error`/`_err*` outputs, which are collected into the single 1-bit `error` alarm bus |

use super::adder::rca_into;
use super::compare::neq_into;
use super::divider::restoring_divider_into;
use super::mult::array_mult_into;
use super::UnitInstance;
use crate::{NetId, Netlist, NetlistBuilder, StuckAtLine, StuckSite};
use scdp_hls::{Binding, Dfg, FuClass, NodeId, OpKind, Role, Schedule};

/// One elaborated physical functional unit: its binding metadata plus
/// the structurally identical netlist instances created for each
/// operation it executes (empty for memory ports, which elaborate to
/// primary inputs/outputs rather than gates).
#[derive(Clone, Debug)]
pub struct FuSpan {
    /// Instance name, `<class><index>` (e.g. `alu0`, `mult1`).
    pub name: String,
    /// The unit's resource class.
    pub class: FuClass,
    /// Role partition of the operations bound here (first op's role
    /// when the binding mixes roles on one unit).
    pub role: Role,
    /// The operations executed on this unit with their start cycles,
    /// in schedule order — the mux-leg order of the operand chains.
    pub ops: Vec<(NodeId, u32)>,
    /// One gate span per operation, in the same order as `ops`.
    pub instances: Vec<UnitInstance>,
}

impl FuSpan {
    /// Gate count of one instance (0 for memory ports).
    #[must_use]
    pub fn instance_gates(&self) -> usize {
        self.instances.first().map_or(0, UnitInstance::len)
    }
}

/// Group-index range of one FU inside the universe returned by
/// [`ElaboratedDatapath::fault_universe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuFaultRange {
    /// Index of the FU in [`ElaboratedDatapath::fus`].
    pub fu: usize,
    /// First group index of this FU's faults.
    pub start: usize,
    /// One past the last group index.
    pub end: usize,
}

/// The result of elaborating a `(Dfg, Schedule, Binding)` triple: one
/// flat netlist plus the per-FU gate spans that define the datapath's
/// fault universe.
#[derive(Clone, Debug)]
pub struct ElaboratedDatapath {
    /// The elaborated netlist (`error` output = alarm bus).
    pub netlist: Netlist,
    /// One span per bound functional unit, binding order.
    pub fus: Vec<FuSpan>,
    /// Operand width in bits.
    pub width: u32,
    /// Node count of the elaborated DFG (for reports).
    pub nodes: usize,
    /// Schedule length in cycles (for reports).
    pub schedule_length: u32,
    /// Word-wide registers of the binding (transparent wires under
    /// unrolling; recorded for reports).
    pub registers: usize,
    /// Word-wide mux input legs of the binding.
    pub mux_legs: usize,
}

impl ElaboratedDatapath {
    /// Enumerates every stuck-at site local to one instance of FU
    /// `fu` (empty for memory ports).
    ///
    /// # Panics
    ///
    /// Panics if `fu` is out of range.
    #[must_use]
    pub fn fu_local_sites(&self, fu: usize) -> Vec<StuckSite> {
        let span = &self.fus[fu];
        let Some(first) = span.instances.first() else {
            return Vec::new();
        };
        let gates = self.netlist.gates();
        let mut sites = Vec::new();
        for offset in 0..first.len() {
            let g = gates[first.start + offset];
            sites.push(StuckSite {
                gate: offset,
                pin: None,
            });
            for pin in 0..g.kind.pins() {
                sites.push(StuckSite {
                    gate: offset,
                    pin: Some(pin),
                });
            }
        }
        sites
    }

    /// The fault groups of one FU: every instance-local site, both
    /// polarities, each correlated across **all** instances of the unit
    /// (a physical fault corrupts every operation time-multiplexed onto
    /// the unit).
    ///
    /// # Panics
    ///
    /// Panics if `fu` is out of range.
    #[must_use]
    pub fn fu_fault_groups(&self, fu: usize) -> Vec<Vec<StuckAtLine>> {
        let span = &self.fus[fu];
        let mut groups = Vec::new();
        for site in self.fu_local_sites(fu) {
            for value in [false, true] {
                groups.push(
                    span.instances
                        .iter()
                        .map(|inst| StuckAtLine::new(inst.globalize(site), value))
                        .collect(),
                );
            }
        }
        groups
    }

    /// The whole datapath's fault universe: the concatenation of every
    /// FU's groups in binding order, plus the group-index range of each
    /// FU (the basis of per-FU campaign tallies).
    #[must_use]
    pub fn fault_universe(&self) -> (Vec<Vec<StuckAtLine>>, Vec<FuFaultRange>) {
        let mut groups = Vec::new();
        let mut ranges = Vec::with_capacity(self.fus.len());
        for fu in 0..self.fus.len() {
            let start = groups.len();
            groups.extend(self.fu_fault_groups(fu));
            ranges.push(FuFaultRange {
                fu,
                start,
                end: groups.len(),
            });
        }
        (groups, ranges)
    }
}

/// The netlist value of one DFG node during elaboration.
#[derive(Clone, Debug, Default)]
enum Value {
    /// Virtual nodes with no bus (outputs, stores).
    #[default]
    None,
    /// A bus of nets (operation results, inputs, constants: `width`
    /// bits; comparators and alarm bits: 1 bit).
    Bus(Vec<NetId>),
}

impl Value {
    fn bus(&self) -> &[NetId] {
        match self {
            Value::Bus(b) => b,
            Value::None => panic!("node has no bus value"),
        }
    }
}

/// Elaborates a scheduled, bound DFG into one flat structural netlist.
///
/// `binding` must come from [`scdp_hls::bind()`] over the same `dfg` and
/// `schedule`; every non-virtual, non-chained node must be bound to
/// exactly one functional unit.
///
/// # Panics
///
/// Panics if `width` is 0 or above 32, or if the binding does not cover
/// the DFG.
#[must_use]
pub fn elaborate_datapath(
    dfg: &Dfg,
    schedule: &Schedule,
    binding: &Binding,
    width: u32,
) -> ElaboratedDatapath {
    assert!((1..=32).contains(&width), "width {width} out of range");
    let mut b = NetlistBuilder::new(format!("dp_{}_{width}", dfg.name()));

    // Per-node FU assignment: node index -> (fu index, leg position).
    let mut assignment: Vec<Option<(usize, usize)>> = vec![None; dfg.len()];
    let mut fus: Vec<FuSpan> = Vec::new();
    let mut class_counts: std::collections::HashMap<&'static str, usize> =
        std::collections::HashMap::new();
    for fu in &binding.fus {
        let label = class_label(fu.class);
        let index = class_counts.entry(label).or_insert(0);
        let name = format!("{label}{index}");
        *index += 1;
        let mut ops: Vec<(NodeId, u32)> =
            fu.ops.iter().map(|&id| (id, schedule.start(id))).collect();
        ops.sort_by_key(|&(id, start)| (start, id.index()));
        for (leg, &(id, _)) in ops.iter().enumerate() {
            assignment[id.index()] = Some((fus.len(), leg));
        }
        fus.push(FuSpan {
            name,
            class: fu.class,
            role: fu.role,
            ops,
            instances: Vec::new(),
        });
    }

    let zero = b.constant(false);
    let zeros: Vec<NetId> = vec![zero; width as usize];
    let mut values: Vec<Value> = Vec::with_capacity(dfg.len());
    let mut results: Vec<(String, Vec<NetId>)> = Vec::new();
    let mut alarms: Vec<NetId> = Vec::new();
    let mut load_count = 0usize;
    let mut store_count = 0usize;

    for (id, node) in dfg.iter() {
        let value = match &node.kind {
            OpKind::Input(name) => Value::Bus(b.input_bus(name.clone(), width)),
            OpKind::Const(v) => Value::Bus(const_bus(&mut b, *v, width)),
            OpKind::Output(name) => {
                let bus = values[node.args[0].index()].bus().to_vec();
                if name == "error" || name.starts_with("_err") {
                    alarms.push(bus[0]);
                } else {
                    results.push((name.clone(), bus));
                }
                Value::None
            }
            OpKind::Load { bank } => {
                let addr = values[node.args[0].index()].bus().to_vec();
                results.push((format!("load{load_count}_addr"), addr));
                let data = b.input_bus(format!("load{load_count}_b{bank}"), width);
                load_count += 1;
                Value::Bus(data)
            }
            OpKind::Store { .. } => {
                let addr = values[node.args[0].index()].bus().to_vec();
                results.push((format!("store{store_count}_addr"), addr));
                if let Some(value) = node.args.get(1) {
                    let val = values[value.index()].bus().to_vec();
                    results.push((format!("store{store_count}_val"), val));
                }
                store_count += 1;
                Value::None
            }
            OpKind::CmpNe => {
                let x = values[node.args[0].index()].bus().to_vec();
                let y = values[node.args[1].index()].bus().to_vec();
                Value::Bus(vec![neq_into(&mut b, &x, &y)])
            }
            OpKind::OrBit => {
                let x = values[node.args[0].index()].bus()[0];
                let y = values[node.args[1].index()].bus()[0];
                Value::Bus(vec![b.or(x, y)])
            }
            kind @ (OpKind::Add
            | OpKind::Sub
            | OpKind::Neg
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Rem) => {
                let (fu, leg) = assignment[id.index()].expect("sequential node is bound");
                // Operand conditioning outside the instance (the
                // paper's fault-free g/f functions).
                let (port0, port1, cin) = match kind {
                    OpKind::Add => (
                        values[node.args[0].index()].bus().to_vec(),
                        values[node.args[1].index()].bus().to_vec(),
                        false,
                    ),
                    OpKind::Sub => {
                        let y = values[node.args[1].index()].bus().to_vec();
                        let ny: Vec<NetId> = y.iter().map(|&n| b.not(n)).collect();
                        (values[node.args[0].index()].bus().to_vec(), ny, true)
                    }
                    OpKind::Neg => {
                        let x = values[node.args[0].index()].bus().to_vec();
                        let nx: Vec<NetId> = x.iter().map(|&n| b.not(n)).collect();
                        (nx, zeros.clone(), true)
                    }
                    _ => (
                        values[node.args[0].index()].bus().to_vec(),
                        values[node.args[1].index()].bus().to_vec(),
                        false,
                    ),
                };
                let legs = fus[fu].ops.len();
                // Per-instance constant selects and carry-in, created
                // outside the span so every instance keeps identical
                // gate kinds at identical offsets.
                let selects: Vec<NetId> = (1..legs).map(|m| b.constant(m == leg)).collect();
                let cin_net = b.constant(cin);
                let start = b.mark();
                let a_port = mux_chain(&mut b, &port0, &zeros, leg, &selects);
                let b_port = mux_chain(&mut b, &port1, &zeros, leg, &selects);
                let out = match fus[fu].class {
                    FuClass::Alu => rca_into(&mut b, &a_port, &b_port, cin_net).sum,
                    FuClass::Mult => array_mult_into(&mut b, &a_port, &b_port).0,
                    FuClass::Div => {
                        let (q, r) = restoring_divider_into(&mut b, &a_port, &b_port);
                        if matches!(kind, OpKind::Rem) {
                            r
                        } else {
                            q
                        }
                    }
                    FuClass::Mem => unreachable!("memory ops elaborate to IO"),
                };
                let inst_name = format!("{}@{}", fus[fu].name, fus[fu].ops[leg].1);
                fus[fu].instances.push(UnitInstance {
                    name: inst_name,
                    start,
                    end: b.mark(),
                });
                Value::Bus(out)
            }
        };
        values.push(value);
    }

    for (name, bus) in results {
        b.output(name, &bus);
    }
    let error = b.or_tree(&alarms);
    b.output("error", &[error]);

    ElaboratedDatapath {
        netlist: b.finish(),
        fus,
        width,
        nodes: dfg.len(),
        schedule_length: schedule.length(),
        registers: binding.registers,
        mux_legs: binding.mux_legs,
    }
}

/// The short serialisation label of a resource class.
#[must_use]
pub fn class_label(class: FuClass) -> &'static str {
    match class {
        FuClass::Alu => "alu",
        FuClass::Mult => "mult",
        FuClass::Div => "div",
        FuClass::Mem => "mem",
    }
}

/// A constant bus holding the low `width` bits of `v` (two's
/// complement).
fn const_bus(b: &mut NetlistBuilder, v: i64, width: u32) -> Vec<NetId> {
    (0..width).map(|i| b.constant((v >> i) & 1 != 0)).collect()
}

/// The operand mux chain of one FU port: `legs.len() + 1` legs where
/// leg `own` carries `bus` and every other leg is tied to `dead`
/// (zeros). `selects[m - 1]` steers leg `m`; exactly one is the true
/// constant (or none when `own == 0`). Creates `4 × selects.len()`
/// gates regardless of `own`, keeping instances structurally identical.
fn mux_chain(
    b: &mut NetlistBuilder,
    bus: &[NetId],
    dead: &[NetId],
    own: usize,
    selects: &[NetId],
) -> Vec<NetId> {
    if selects.is_empty() {
        return bus.to_vec();
    }
    let mut acc: Vec<NetId> = if own == 0 {
        bus.to_vec()
    } else {
        dead.to_vec()
    };
    for (m, &sel) in selects.iter().enumerate() {
        let leg: &[NetId] = if m + 1 == own { bus } else { dead };
        acc = acc
            .iter()
            .zip(leg)
            .map(|(&a, &l)| b.mux(a, l, sel))
            .collect();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;
    use scdp_core::Technique;
    use scdp_hls::{bind, sched, BindOptions, ComponentLibrary, ResourceSet, SckStyle};

    fn mac_dfg() -> Dfg {
        let mut d = Dfg::new("mac");
        let c = d.input("c");
        let x = d.input("x");
        let acc = d.input("acc");
        let t = d.op(OpKind::Mul, &[c, x]);
        let s = d.op(OpKind::Add, &[acc, t]);
        d.output("acc_next", s);
        d
    }

    fn elaborate(dfg: &Dfg, width: u32, opts: BindOptions) -> ElaboratedDatapath {
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(dfg, &lib, &ResourceSet::min_area());
        let binding = bind(dfg, &schedule, &lib, opts);
        elaborate_datapath(dfg, &schedule, &binding, width)
    }

    /// Fault-free cross-check of an elaborated netlist against the
    /// shared interpreter, over a deterministic input sweep.
    fn check_fault_free(dfg: &Dfg, width: u32, opts: BindOptions) {
        let dp = elaborate(dfg, width, opts);
        let buses = dp.netlist.inputs().len();
        let mut seed = 0x5EED_1234_u64;
        for _ in 0..24 {
            let inputs: Vec<Word> = (0..buses)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Word::new(width, (seed >> 24) & ((1 << width) - 1))
                })
                .collect();
            let out = dp.netlist.eval_words(&inputs, &[]);
            let ev = super::super::interp::interpret_dfg(dfg, width, &inputs);
            assert!(!ev.alarm, "interpreter must be alarm-free fault-free");
            let n = out.len();
            assert_eq!(out[n - 1].bits(), 0, "fault-free alarm fired");
            for (i, e) in ev.results.iter().enumerate() {
                assert_eq!(out[i], *e, "{} result bus {i}", dfg.name());
            }
        }
    }

    #[test]
    fn mac_elaborates_and_matches_interpreter() {
        check_fault_free(&mac_dfg(), 4, BindOptions::default());
    }

    #[test]
    fn expanded_fir_matches_interpreter_all_styles() {
        let body = scdp_test_fir();
        for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
            for tech in [Technique::Tech1, Technique::Both] {
                let g = scdp_hls::expand_sck(&body, tech, style);
                check_fault_free(&g, 4, BindOptions::default());
                check_fault_free(
                    &g,
                    3,
                    BindOptions {
                        separate_checkers: true,
                        no_sharing: false,
                    },
                );
            }
        }
    }

    /// A FIR-like body (local copy; `scdp-fir` depends on this crate's
    /// dependents, not the reverse).
    fn scdp_test_fir() -> Dfg {
        let mut d = Dfg::new("fir_tap");
        let i = d.input("i");
        let acc = d.input("acc");
        let one = d.constant(1);
        let i_next = d.op(OpKind::Add, &[i, one]);
        d.output("_i", i_next);
        let c = d.op(OpKind::Load { bank: 0 }, &[i]);
        let x = d.op(OpKind::Load { bank: 1 }, &[i]);
        let t = d.op(OpKind::Mul, &[c, x]);
        let acc_next = d.op(OpKind::Add, &[acc, t]);
        d.output("acc", acc_next);
        let _shift = d.op(OpKind::Store { bank: 1 }, &[i_next, x]);
        d
    }

    #[test]
    fn divider_ops_elaborate() {
        let mut d = Dfg::new("divrem");
        let a = d.input("a");
        let b = d.input("b");
        let q = d.op(OpKind::Div, &[a, b]);
        let r = d.op(OpKind::Rem, &[a, b]);
        d.output("q", q);
        d.output("r", r);
        check_fault_free(&d, 4, BindOptions::default());
    }

    #[test]
    fn fu_instances_are_structurally_identical() {
        let g = scdp_hls::expand_sck(&scdp_test_fir(), Technique::Tech1, SckStyle::Full);
        let dp = elaborate(&g, 4, BindOptions::default());
        let gates = dp.netlist.gates();
        let mut shared_fu_seen = false;
        for span in &dp.fus {
            let Some(first) = span.instances.first() else {
                assert_eq!(span.class, FuClass::Mem);
                continue;
            };
            if span.instances.len() > 1 {
                shared_fu_seen = true;
            }
            for inst in &span.instances {
                assert_eq!(inst.len(), first.len(), "{}", span.name);
                for k in 0..inst.len() {
                    assert_eq!(
                        gates[first.start + k].kind,
                        gates[inst.start + k].kind,
                        "gate kind mismatch at offset {k} in {}",
                        span.name
                    );
                }
            }
        }
        assert!(shared_fu_seen, "min-area FIR must share at least one FU");
    }

    #[test]
    fn fault_universe_partitions_by_fu() {
        let g = scdp_hls::expand_sck(&scdp_test_fir(), Technique::Tech1, SckStyle::Full);
        let dp = elaborate(&g, 3, BindOptions::default());
        let (groups, ranges) = dp.fault_universe();
        assert_eq!(ranges.len(), dp.fus.len());
        let mut cursor = 0usize;
        for r in &ranges {
            assert_eq!(r.start, cursor, "ranges must tile the universe");
            cursor = r.end;
            let span = &dp.fus[r.fu];
            if span.class == FuClass::Mem {
                assert_eq!(r.start, r.end, "memory ports carry no faults");
            } else {
                assert!(r.end > r.start, "{} has no faults", span.name);
                // Each group correlates the site across every instance.
                for g in &groups[r.start..r.end] {
                    assert_eq!(g.len(), span.instances.len());
                }
            }
        }
        assert_eq!(cursor, groups.len());
    }

    #[test]
    fn correlated_fault_corrupts_every_use_of_the_unit() {
        // One ALU executing two adds: a stem fault forced onto the
        // ALU's sum bit must corrupt both results at once.
        let mut d = Dfg::new("two_adds");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[s1, b]);
        d.output("o1", s1);
        d.output("o2", s2);
        let dp = elaborate(&d, 3, BindOptions::default());
        let alu = dp
            .fus
            .iter()
            .position(|f| f.class == FuClass::Alu)
            .expect("alu");
        assert_eq!(dp.fus[alu].instances.len(), 2, "both adds share the ALU");
        // Stuck the low sum bit of the core at 1 across both instances:
        // with a = b = 0 both results must read 1 — and differ from the
        // dedicated case where only the first instance is faulted.
        let sites = dp.fu_local_sites(alu);
        let mut corrupted_both = false;
        for site in sites {
            for value in [false, true] {
                let group: Vec<StuckAtLine> = dp.fus[alu]
                    .instances
                    .iter()
                    .map(|i| StuckAtLine::new(i.globalize(site), value))
                    .collect();
                let zero = Word::new(3, 0);
                let out = dp.netlist.eval_words(&[zero, zero], &group);
                if out[0].bits() != 0 && out[1].bits() != 0 {
                    corrupted_both = true;
                }
            }
        }
        assert!(corrupted_both, "some physical fault must hit both uses");
    }

    #[test]
    fn mux_width_matches_binding_sharing() {
        // A shared FU with k ops must elaborate k instances whose gate
        // count includes the mux chains: (k-1) legs x 4 gates x 2 ports
        // on top of the bare core.
        let mut d = Dfg::new("three_adds");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[s1, b]);
        let s3 = d.op(OpKind::Add, &[s2, a]);
        d.output("o", s3);
        let w = 4u32;
        let dp = elaborate(&d, w, BindOptions::default());
        let alu = dp
            .fus
            .iter()
            .position(|f| f.class == FuClass::Alu)
            .expect("alu");
        let k = dp.fus[alu].instances.len();
        assert_eq!(k, 3);
        let core = 5 * w as usize;
        let muxes = 2 * (k - 1) * 4 * w as usize;
        assert_eq!(dp.fus[alu].instance_gates(), core + muxes);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_is_rejected() {
        let d = mac_dfg();
        let lib = ComponentLibrary::virtex16();
        let s = sched::list_schedule(&d, &lib, &ResourceSet::min_area());
        let bnd = bind(&d, &s, &lib, BindOptions::default());
        let _ = elaborate_datapath(&d, &s, &bnd, 0);
    }
}
