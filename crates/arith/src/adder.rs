//! Ripple-carry adder built from full-adder cells.

use crate::{FaultableUnit, Word};
use scdp_fault::{CellFault, CellKind, FaGateFault, FaultUniverse, UnitFault};

/// Evaluates one full-adder cell, optionally corrupted by a truth-table
/// cell fault. Returns `(sum, carry_out)`.
#[inline]
pub(crate) fn full_adder(a: bool, b: bool, cin: bool, fault: Option<&CellFault>) -> (bool, bool) {
    let row = u8::from(a) | (u8::from(b) << 1) | (u8::from(cin) << 2);
    let mut s = a ^ b ^ cin;
    let mut c = (a & b) | (a & cin) | (b & cin);
    if let Some(f) = fault {
        s = f.apply(row, 0, s);
        c = f.apply(row, 1, c);
    }
    (s, c)
}

/// A fault injected into one full adder of a ripple-carry chain.
///
/// Two models are supported, matching the two interpretations of the
/// paper's `num_faults_1bit = 32`:
///
/// * [`RcaFault::Cell`] — a truth-table entry of the cell is stuck
///   (row-local; 32 faults per cell counting latent polarities);
/// * [`RcaFault::Gate`] — a gate-level stuck-at inside the five-gate full
///   adder (line-global; 16 sites × 2 polarities = 32 faults per cell).
///
/// The gate model is the one that reproduces Table 2 of the paper (a
/// row-local fault cannot mask across the nominal addition and its
/// checking subtraction at width 1, but the paper reports < 100% coverage
/// there).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RcaFault {
    /// Truth-table cell fault at a bit position.
    Cell(UnitFault),
    /// Gate-level stuck-at inside the full adder at `position`.
    Gate {
        /// Bit position of the faulty full adder.
        position: usize,
        /// The stuck-at fault inside that adder.
        fault: FaGateFault,
    },
}

impl RcaFault {
    /// The affected bit position.
    #[must_use]
    pub const fn position(&self) -> usize {
        match self {
            RcaFault::Cell(uf) => uf.position(),
            RcaFault::Gate { position, .. } => *position,
        }
    }

    /// Evaluates the faulty full adder at the fault's position.
    #[inline]
    #[must_use]
    fn eval(&self, a: bool, b: bool, cin: bool) -> (bool, bool) {
        match self {
            RcaFault::Cell(uf) => {
                let f = uf.fault();
                full_adder(a, b, cin, Some(&f))
            }
            RcaFault::Gate { fault, .. } => fault.eval(a, b, cin),
        }
    }
}

impl From<UnitFault> for RcaFault {
    fn from(uf: UnitFault) -> Self {
        RcaFault::Cell(uf)
    }
}

impl From<(usize, FaGateFault)> for RcaFault {
    fn from((position, fault): (usize, FaGateFault)) -> Self {
        RcaFault::Gate { position, fault }
    }
}

/// An n-bit ripple-carry adder made of `n` full-adder cells.
///
/// This is the paper's running example (§2.1, §4.1). Subtraction is
/// executed on the **same cells**: `x - y = x + !y + 1` (the *g*-function
/// produces the 1's complement and the *f*-function — the adder — receives
/// a forced carry-in of 1). Consequently a fault injected into the adder
/// perturbs both an addition and the inverse subtraction used to check it,
/// which is exactly the worst-case situation analysed in Table 2.
///
/// Cell position `i` of the fault universe is the full adder of bit `i`.
///
/// # Example
///
/// ```
/// use scdp_arith::{RippleCarryAdder, Word};
/// use scdp_fault::{FaGateFault, FaSite};
///
/// let adder = RippleCarryAdder::new(4);
/// let a = Word::from_i64(4, 3);
/// let b = Word::from_i64(4, 2);
/// assert_eq!(adder.add(a, b, None).to_i64(), 5);
///
/// // Stuck the sum output of bit 0 at 0:
/// let fault = (0usize, FaGateFault::new(FaSite::Sum, false)).into();
/// let faulty = adder.add(a, b, Some(fault));
/// assert_eq!(faulty.to_i64(), 4);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RippleCarryAdder {
    width: u32,
}

impl RippleCarryAdder {
    /// Creates an adder for `width`-bit operands.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        Self { width }
    }

    /// Adds `a + b` with explicit carry-in, under an optional fault.
    ///
    /// Returns the sum word; the final carry-out is dropped (wrapping
    /// two's-complement semantics, as in the paper's integer data types).
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ from the unit width.
    #[must_use]
    pub fn add_cin(&self, a: Word, b: Word, cin: bool, fault: Option<RcaFault>) -> Word {
        assert_eq!(a.width(), self.width, "operand width mismatch");
        assert_eq!(b.width(), self.width, "operand width mismatch");
        let mut carry = cin;
        let mut out = 0u64;
        let fault_pos = fault.map_or(usize::MAX, |f| f.position());
        for i in 0..self.width {
            let (s, c) = if i as usize == fault_pos {
                fault
                    .as_ref()
                    .expect("position matched")
                    .eval(a.bit(i), b.bit(i), carry)
            } else {
                full_adder(a.bit(i), b.bit(i), carry, None)
            };
            if s {
                out |= 1 << i;
            }
            carry = c;
        }
        Word::new(self.width, out)
    }

    /// Adds `a + b` (carry-in 0) under an optional fault.
    #[must_use]
    pub fn add(&self, a: Word, b: Word, fault: Option<RcaFault>) -> Word {
        self.add_cin(a, b, false, fault)
    }

    /// Subtracts `a - b` on the same cells: `a + !b` with carry-in 1.
    ///
    /// The 1's complement (*g*-function) is fault-free; the fault lives in
    /// the shared full-adder chain.
    #[must_use]
    pub fn sub(&self, a: Word, b: Word, fault: Option<RcaFault>) -> Word {
        self.add_cin(a, b.not(), true, fault)
    }

    /// Negates `b` on the adder: `0 + !b` with carry-in 1.
    #[must_use]
    pub fn neg(&self, b: Word, fault: Option<RcaFault>) -> Word {
        self.add_cin(Word::zero(self.width), b.not(), true, fault)
    }

    /// Enumerates the gate-level fault universe: `32 · n` stuck-at faults
    /// (16 sites × 2 polarities per full adder). This is the universe of
    /// the paper's Table 2.
    pub fn gate_faults(&self) -> impl Iterator<Item = RcaFault> + '_ {
        (0..self.width as usize).flat_map(|pos| {
            FaGateFault::enumerate().map(move |f| RcaFault::Gate {
                position: pos,
                fault: f,
            })
        })
    }

    /// Enumerates the truth-table fault universe (also `32 · n` faults,
    /// half of them latent).
    pub fn cell_faults(&self) -> impl Iterator<Item = RcaFault> + '_ {
        self.universe()
            .iter()
            .map(RcaFault::Cell)
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl FaultableUnit for RippleCarryAdder {
    fn width(&self) -> u32 {
        self.width
    }

    /// One [`CellKind::FullAdder`] site per bit: `32 · n` truth-table
    /// faults.
    fn universe(&self) -> FaultUniverse {
        FaultUniverse::homogeneous(CellKind::FullAdder, self.width as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_fault::FaSite;

    #[test]
    fn add_matches_golden_exhaustively() {
        let adder = RippleCarryAdder::new(4);
        for a in Word::all(4) {
            for b in Word::all(4) {
                assert_eq!(adder.add(a, b, None), a.wrapping_add(b), "{a:?}+{b:?}");
            }
        }
    }

    #[test]
    fn sub_matches_golden_exhaustively() {
        let adder = RippleCarryAdder::new(4);
        for a in Word::all(4) {
            for b in Word::all(4) {
                assert_eq!(adder.sub(a, b, None), a.wrapping_sub(b), "{a:?}-{b:?}");
            }
        }
    }

    #[test]
    fn neg_matches_golden() {
        let adder = RippleCarryAdder::new(6);
        for b in Word::all(6) {
            assert_eq!(adder.neg(b, None), b.wrapping_neg());
        }
    }

    #[test]
    fn universe_size_is_32n() {
        let adder = RippleCarryAdder::new(8);
        assert_eq!(adder.universe().fault_count(), 32 * 8);
        assert_eq!(adder.gate_faults().count(), 32 * 8);
        assert_eq!(adder.width(), 8);
    }

    #[test]
    fn latent_cell_faults_never_corrupt() {
        let adder = RippleCarryAdder::new(3);
        for uf in adder.universe().iter().filter(|f| f.fault().is_latent()) {
            let rf = RcaFault::from(uf);
            for a in Word::all(3) {
                for b in Word::all(3) {
                    assert_eq!(adder.add(a, b, Some(rf)), a.wrapping_add(b), "{uf}");
                    assert_eq!(adder.sub(a, b, Some(rf)), a.wrapping_sub(b), "{uf}");
                }
            }
        }
    }

    #[test]
    fn only_msb_carry_faults_are_unexcitable() {
        // Wrapping semantics drop the final carry-out, so faults whose
        // only effect is the MSB cell's carry output are structurally
        // unobservable; every other non-latent fault must be excitable by
        // some addition or subtraction. Both operations are needed: the
        // bit-0 cell only ever sees carry-in 0 during addition and
        // carry-in 1 during subtraction.
        let width = 3;
        let adder = RippleCarryAdder::new(width);
        let mut unexcitable = Vec::new();
        for uf in adder.universe().iter().filter(|f| !f.fault().is_latent()) {
            let rf = RcaFault::from(uf);
            let excitable = Word::all(width).any(|a| {
                Word::all(width).any(|b| {
                    adder.add(a, b, Some(rf)) != a.wrapping_add(b)
                        || adder.sub(a, b, Some(rf)) != a.wrapping_sub(b)
                })
            });
            if !excitable {
                unexcitable.push(uf);
            }
        }
        // Exactly the 8 non-latent carry-output faults of the MSB cell.
        assert_eq!(unexcitable.len(), 8, "{unexcitable:?}");
        for uf in unexcitable {
            assert_eq!(uf.position(), width as usize - 1);
            assert_eq!(uf.fault().output(), 1, "must be a cout fault: {uf}");
        }
    }

    #[test]
    fn only_msb_carry_gate_faults_are_unexcitable() {
        let width = 3;
        let adder = RippleCarryAdder::new(width);
        let mut unexcitable = Vec::new();
        for rf in adder.gate_faults() {
            let excitable = Word::all(width).any(|a| {
                Word::all(width).any(|b| {
                    adder.add(a, b, Some(rf)) != a.wrapping_add(b)
                        || adder.sub(a, b, Some(rf)) != a.wrapping_sub(b)
                })
            });
            if !excitable {
                unexcitable.push(rf);
            }
        }
        // The 7 carry-only sites (a>and, b>and, cin>and, p>and, g, t,
        // cout) × 2 polarities of the MSB cell.
        assert_eq!(unexcitable.len(), 14, "{unexcitable:?}");
        assert!(unexcitable
            .iter()
            .all(|rf| rf.position() == width as usize - 1));
    }

    #[test]
    fn fault_in_high_bit_does_not_touch_low_bits() {
        let adder = RippleCarryAdder::new(8);
        let rf = RcaFault::Gate {
            position: 7,
            fault: FaGateFault::new(FaSite::Sum, true),
        };
        let a = Word::from_i64(8, 5);
        let b = Word::from_i64(8, 9);
        let faulty = adder.add(a, b, Some(rf));
        let golden = a.wrapping_add(b);
        assert_eq!(faulty.bits() & 0x7F, golden.bits() & 0x7F);
    }

    #[test]
    fn inverse_identity_holds_fault_free() {
        // z = x + y  =>  z - y == x, including across overflow (wrapping).
        let adder = RippleCarryAdder::new(5);
        for x in Word::all(5) {
            for y in Word::all(5) {
                let z = adder.add(x, y, None);
                assert_eq!(adder.sub(z, y, None), x);
                assert_eq!(adder.sub(z, x, None), y);
            }
        }
    }

    #[test]
    fn gate_fault_masking_exists_at_width_1() {
        // The crux of Table 2: at width 1 some gate fault produces a wrong
        // sum AND a checking subtraction that still passes (Tech1:
        // op2' = ris - op1 compared against op2).
        let adder = RippleCarryAdder::new(1);
        let mut masked = 0;
        for rf in adder.gate_faults() {
            for a in Word::all(1) {
                for b in Word::all(1) {
                    let ris = adder.add(a, b, Some(rf));
                    if ris == a.wrapping_add(b) {
                        continue; // not observable
                    }
                    let op2p = adder.sub(ris, a, Some(rf));
                    if op2p == b {
                        masked += 1;
                    }
                }
            }
        }
        assert!(masked > 0, "expected masking situations at width 1");
    }
}
