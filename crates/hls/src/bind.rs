//! Functional-unit and register binding.

pub use crate::library::FuClass;

use crate::dfg::{Dfg, NodeId, Role};
use crate::library::ComponentLibrary;
use crate::sched::Schedule;

/// Binding options.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BindOptions {
    /// Reliability-aware binding: checker operations never share a
    /// functional unit with nominal operations (required for the paper's
    /// 100%-coverage allocation, §2.1). Within each role, sharing is
    /// still allowed.
    pub separate_checkers: bool,
    /// Disable sharing entirely: every operation gets its own unit.
    /// Models the template-expanded `SCK` code in which the behavioural
    /// synthesizer cannot share resources across class-operator
    /// instances.
    pub no_sharing: bool,
}

/// One bound functional unit: its class, role partition and the
/// operations it executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuInstance {
    /// Resource class.
    pub class: FuClass,
    /// Role of the operations bound here (mixed roles only when
    /// `separate_checkers` is off; reported as the first op's role).
    pub role: Role,
    /// Operations bound to this unit.
    pub ops: Vec<NodeId>,
}

/// The result of binding: functional units, registers, multiplexer legs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// Bound functional units.
    pub fus: Vec<FuInstance>,
    /// Number of word-wide registers after left-edge allocation.
    pub registers: usize,
    /// Word-wide multiplexer input legs in front of shared units and
    /// registers.
    pub mux_legs: usize,
}

impl Binding {
    /// Number of units of one class.
    #[must_use]
    pub fn fu_count(&self, class: FuClass) -> usize {
        self.fus.iter().filter(|f| f.class == class).count()
    }
}

/// Binds a scheduled DFG: greedy interval packing of operations onto
/// units, left-edge register allocation over value lifetimes, and mux
/// accounting.
#[must_use]
pub fn bind(dfg: &Dfg, schedule: &Schedule, lib: &ComponentLibrary, opts: BindOptions) -> Binding {
    let _ = lib;
    // --- functional units ---------------------------------------------
    // (class, role, busy intervals, bound nodes) per physical unit.
    type FuSlot = (FuClass, Role, Vec<(u32, u32)>, Vec<NodeId>);
    let mut fus: Vec<FuSlot> = Vec::new();
    let mut seq_nodes: Vec<NodeId> = dfg
        .iter()
        .filter(|(_, n)| !n.kind.is_virtual() && !n.kind.is_chained())
        .map(|(id, _)| id)
        .collect();
    seq_nodes.sort_by_key(|id| schedule.start(*id));
    for id in seq_nodes {
        let node = dfg.node(id);
        let class = ComponentLibrary::fu_class(&node.kind).expect("sequential node");
        let (s, e) = (schedule.start(id), schedule.avail(id));
        let mut placed = false;
        if !opts.no_sharing {
            for (fclass, frole, intervals, ops) in &mut fus {
                if *fclass != class {
                    continue;
                }
                if opts.separate_checkers && *frole != node.role {
                    continue;
                }
                let overlaps = intervals.iter().any(|&(is, ie)| s < ie && is < e);
                if !overlaps {
                    intervals.push((s, e));
                    ops.push(id);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            fus.push((class, node.role, vec![(s, e)], vec![id]));
        }
    }

    // --- registers (left-edge over lifetimes) --------------------------
    // A value needs storage from its avail cycle to the start of its last
    // sequential use (loop-carried inputs/outputs live across the whole
    // iteration).
    let users = dfg.users();
    let mut lifetimes: Vec<(u32, u32)> = Vec::new();
    for (id, node) in dfg.iter() {
        if matches!(node.kind, crate::dfg::OpKind::Output(_)) {
            continue;
        }
        let birth = schedule.avail(id);
        let mut death = birth;
        let mut carried = matches!(node.kind, crate::dfg::OpKind::Input(_));
        for u in &users[id.index()] {
            let un = dfg.node(*u);
            if matches!(un.kind, crate::dfg::OpKind::Output(_)) {
                carried = true;
            }
            death = death.max(schedule.start(*u));
        }
        if carried {
            // Live across the iteration boundary.
            lifetimes.push((0, schedule.length()));
        } else if death > birth {
            lifetimes.push((birth, death));
        }
    }
    lifetimes.sort();
    let mut reg_ends: Vec<u32> = Vec::new(); // last death per register
    let mut reg_writes: Vec<usize> = Vec::new();
    for (birth, death) in lifetimes {
        match reg_ends.iter().position(|&end| end <= birth) {
            Some(r) => {
                reg_ends[r] = death;
                reg_writes[r] += 1;
            }
            None => {
                reg_ends.push(death);
                reg_writes.push(1);
            }
        }
    }

    // --- multiplexers ---------------------------------------------------
    // Each shared unit with k > 1 ops needs (k - 1) extra legs per
    // operand port (2 ports); each register written k > 1 times needs
    // (k - 1) legs.
    let mut mux_legs = 0usize;
    for (_, _, _, ops) in &fus {
        if ops.len() > 1 {
            mux_legs += 2 * (ops.len() - 1);
        }
    }
    for w in &reg_writes {
        if *w > 1 {
            mux_legs += w - 1;
        }
    }

    Binding {
        fus: fus
            .into_iter()
            .map(|(class, role, _, ops)| FuInstance { class, role, ops })
            .collect(),
        registers: reg_ends.len(),
        mux_legs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::OpKind;
    use crate::library::ResourceSet;
    use crate::sched::list_schedule;

    fn lib() -> ComponentLibrary {
        ComponentLibrary::virtex16()
    }

    fn sched(d: &Dfg, r: &ResourceSet) -> Schedule {
        list_schedule(d, &lib(), r)
    }

    #[test]
    fn disjoint_ops_share_a_unit() {
        let mut d = Dfg::new("share");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[s1, b]); // later cycle, same ALU
        d.output("o", s2);
        let s = sched(&d, &ResourceSet::min_area());
        let bnd = bind(&d, &s, &lib(), BindOptions::default());
        assert_eq!(bnd.fu_count(FuClass::Alu), 1);
        assert!(bnd.mux_legs >= 2, "shared unit needs operand muxes");
    }

    #[test]
    fn concurrent_ops_need_two_units() {
        let mut d = Dfg::new("par");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Sub, &[a, b]);
        d.output("o1", s1);
        d.output("o2", s2);
        let r = ResourceSet {
            alus: 2,
            ..ResourceSet::min_area()
        };
        let s = sched(&d, &r);
        let bnd = bind(&d, &s, &lib(), BindOptions::default());
        assert_eq!(bnd.fu_count(FuClass::Alu), 2);
    }

    #[test]
    fn separate_checkers_forces_extra_unit() {
        let mut d = Dfg::new("sep");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let c1 = d.checker_op(OpKind::Sub, &[s1, a], s1);
        let ne = d.checker_op(OpKind::CmpNe, &[c1, b], s1);
        d.output("o", s1);
        d.output("e", ne);
        let s = sched(&d, &ResourceSet::min_area());
        let shared = bind(&d, &s, &lib(), BindOptions::default());
        let separated = bind(
            &d,
            &s,
            &lib(),
            BindOptions {
                separate_checkers: true,
                no_sharing: false,
            },
        );
        assert_eq!(shared.fu_count(FuClass::Alu), 1);
        assert_eq!(separated.fu_count(FuClass::Alu), 2);
    }

    #[test]
    fn no_sharing_gives_unit_per_op() {
        let mut d = Dfg::new("nos");
        let a = d.input("a");
        let b = d.input("b");
        let s1 = d.op(OpKind::Add, &[a, b]);
        let s2 = d.op(OpKind::Add, &[s1, b]);
        d.output("o", s2);
        let s = sched(&d, &ResourceSet::min_area());
        let bnd = bind(
            &d,
            &s,
            &lib(),
            BindOptions {
                separate_checkers: false,
                no_sharing: true,
            },
        );
        assert_eq!(bnd.fu_count(FuClass::Alu), 2);
    }

    #[test]
    fn loop_carried_values_get_registers() {
        let mut d = Dfg::new("acc");
        let acc = d.input("acc");
        let x = d.input("x");
        let s = d.op(OpKind::Add, &[acc, x]);
        d.output("acc", s);
        let sch = sched(&d, &ResourceSet::min_area());
        let bnd = bind(&d, &sch, &lib(), BindOptions::default());
        // acc and x live across the iteration; the sum feeds the output.
        assert!(bnd.registers >= 2, "registers = {}", bnd.registers);
    }
}
