//! Run-scoped observability: the one lifecycle/telemetry context
//! behind every campaign spec shape.
//!
//! [`RunCtx`] owns the run's root [`Span`], its [`Recorder`] and the
//! structured [`EventSink`]. The three spec shapes (`CampaignSpec`,
//! `DatapathCampaignSpec`, `SeqDatapathCampaignSpec`) used to duplicate
//! the same `Instant::now()` → emit `Started` → run → patch
//! `elapsed_ms` → emit `Finished` choreography; they now share it here,
//! which makes it impossible by construction for a report to escape
//! with the `elapsed_ms: 0` placeholder — the only writer of
//! `elapsed_ms` is [`RunCtx::finish`], deriving it from the root span.
//!
//! The deprecated `Progress` observer no longer flows through here: the
//! public shim in `spec.rs` wraps a legacy hook into an [`EventSink`]
//! ([`crate::CampaignSpec::observer`] et al.), so this context only
//! ever sees the structured stream.

use crate::report::CampaignReport;
use crate::scenario::{Backend, FaultModel};
use scdp_obs::{EventSink, ObsEvent, Recorder, Span};
use std::sync::Arc;

/// The observability context of one campaign run.
pub(crate) struct RunCtx {
    recorder: Arc<Recorder>,
    root: Option<Span>,
    sink: Option<EventSink>,
    /// Embed a [`scdp_obs::TelemetrySnapshot`] in the finished report.
    record: bool,
}

impl RunCtx {
    /// Opens the root span and emits `CampaignStarted`. Call *after*
    /// validation so failed configs never announce a run.
    pub(crate) fn start(
        backend: Backend,
        fault_model: FaultModel,
        sink: Option<EventSink>,
        record: bool,
    ) -> RunCtx {
        let recorder = Arc::new(Recorder::new());
        let root = recorder.span("campaign", sink.clone());
        let ctx = RunCtx {
            recorder,
            root: Some(root),
            sink,
            record,
        };
        ctx.emit(&ObsEvent::CampaignStarted {
            backend: backend.label().to_string(),
            fault_model: fault_model.label().to_string(),
        });
        ctx
    }

    /// The run's recorder, when the spec asked for a telemetry section
    /// (`None` keeps the engine hot loops instrumentation-free).
    pub(crate) fn recorder(&self) -> Option<Arc<Recorder>> {
        self.record.then(|| Arc::clone(&self.recorder))
    }

    /// Opens a child span of the root (`campaign/<name>`).
    pub(crate) fn span(&self, name: &str) -> Span {
        self.root
            .as_ref()
            .expect("root span open until finish")
            .child(name)
    }

    /// Emits `NetlistCompiled`.
    pub(crate) fn netlist_compiled(&self, name: &str, gates: usize, faults: usize) {
        self.emit(&ObsEvent::NetlistCompiled {
            name: name.to_string(),
            gates: gates as u64,
            faults: faults as u64,
        });
    }

    /// Emits an event to the structured sink.
    pub(crate) fn emit(&self, event: &ObsEvent) {
        if let Some(sink) = &self.sink {
            sink(event);
        }
    }

    /// Records the collapse counters when telemetry is on:
    /// `collapse.sites_before` (original fault-group universe),
    /// `collapse.sites_after` (representative groups actually
    /// simulated) and `collapse.classes`.
    pub(crate) fn record_collapse(&self, before: usize, after: usize, classes: usize) {
        let Some(rec) = self.recorder() else {
            return;
        };
        rec.add("collapse.sites_before", before as u64);
        rec.add("collapse.sites_after", after as u64);
        rec.add("collapse.classes", classes as u64);
    }

    /// Records the deductive-pruning counters when telemetry is on:
    /// `deduce.untestable` (engine groups settled by an untestability
    /// proof), `deduce.dominated` (settled by a silent dominator) and
    /// `deduce.simulated` (groups that still went to the engine).
    pub(crate) fn record_deduce(&self, untestable: u64, dominated: u64, simulated: u64) {
        let Some(rec) = self.recorder() else {
            return;
        };
        rec.add("deduce.untestable", untestable);
        rec.add("deduce.dominated", dominated);
        rec.add("deduce.simulated", simulated);
    }

    /// Ends the run: closes the root span, stamps `elapsed_ms` from it
    /// (the single place that writes the field), embeds the telemetry
    /// snapshot when recording, and emits `CampaignFinished`.
    pub(crate) fn finish(mut self, report: &mut CampaignReport) {
        let root = self.root.take().expect("finish runs once");
        report.elapsed_ms = root.close() / 1_000_000;
        if self.record {
            let snap = self.recorder.snapshot();
            if !snap.is_empty() {
                report.telemetry = Some(snap);
            }
        }
        self.emit(&ObsEvent::CampaignFinished {
            simulated: report.simulated,
            elapsed_ms: report.elapsed_ms,
        });
    }
}
