//! Bench for Table 3's software rows: wall-clock cost of the plain,
//! SCK-typed and embedded-check FIR implementations (the measured
//! counterpart of the paper's 6.83 / 10.02 / 7.90 seconds).

use scdp_bench::Bench;
use scdp_fir::{EmbeddedFir, PlainFir, SckFir};
use std::hint::black_box;

fn coeffs(taps: usize) -> Vec<i32> {
    (0..taps as i32).map(|i| (i * 7 % 23) - 11).collect()
}

fn samples(n: usize) -> Vec<i32> {
    (0..n as i64)
        .map(|i| ((i * 31) % 201 - 100) as i32)
        .collect()
}

fn main() {
    let taps = 64;
    let xs = samples(4096);
    let mut bench = Bench::new("fir_sw");
    let n = xs.len() as u64;
    bench.sample_elements("plain", 20, n, &mut || {
        let mut f = PlainFir::new(coeffs(taps));
        black_box(f.process_block(&xs))
    });
    bench.sample_elements("sck", 20, n, &mut || {
        let mut f: SckFir = SckFir::new(coeffs(taps));
        black_box(f.process_block(&xs))
    });
    bench.sample_elements("embedded", 20, n, &mut || {
        let mut f = EmbeddedFir::new(coeffs(taps));
        black_box(f.process_block(&xs))
    });
    bench.finish();
}
