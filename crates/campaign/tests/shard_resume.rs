//! Kill-then-resume integration: a sharded sequential FIR campaign is
//! checkpointed to disk, loses half its shard checkpoints ("the
//! machine died mid-sweep"), resumes from the survivors, and the
//! merged v4 checkpoints must reproduce a fresh unsharded run **bit
//! for bit** — tallies, per-fault outcomes and the detection-latency
//! histogram.

use scdp_campaign::{
    CampaignJob, CampaignReport, CampaignRunner, DatapathScenario, DfgSource, ExecPolicy,
    FaultDuration, InputSpace, ShardState,
};
use scdp_core::Technique;
use std::path::{Path, PathBuf};

fn seq_fir_job() -> CampaignJob {
    CampaignJob::Sequential(
        DatapathScenario::new(DfgSource::Fir, 3)
            .technique(Technique::Tech1)
            .seq_campaign()
            .duration(FaultDuration::Permanent)
            .input_space(InputSpace::Sampled {
                per_fault: 256,
                seed: 0xF1E,
            })
            .exec(ExecPolicy::new().threads(2)),
    )
}

/// A fresh, unique scratch directory (removed by `Scratch::drop`).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("scdp_shard_resume_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn canonical_json(report: &CampaignReport) -> String {
    let mut r = report.clone();
    r.elapsed_ms = 0;
    r.to_json()
}

#[test]
fn kill_then_resume_reproduces_the_unsharded_report_bit_for_bit() {
    let scratch = Scratch::new("kill");
    let dir = scratch.path();
    const SHARDS: u32 = 6;

    // Full sharded run, checkpointed.
    let first = CampaignRunner::new(seq_fir_job(), SHARDS)
        .checkpoint_dir(dir)
        .run()
        .expect("first run");
    assert!(first.completed());
    assert_eq!(first.counts(), (0, SHARDS as usize, 0));
    for i in 0..SHARDS {
        assert!(
            CampaignRunner::shard_path(dir, i).is_file(),
            "checkpoint {i} written"
        );
    }

    // The "kill": half the checkpoints vanish.
    for i in (0..SHARDS).step_by(2) {
        std::fs::remove_file(CampaignRunner::shard_path(dir, i)).expect("drop checkpoint");
    }

    // Resume: survivors are reused, the dropped half re-runs.
    let resumed = CampaignRunner::new(seq_fir_job(), SHARDS)
        .checkpoint_dir(dir)
        .run()
        .expect("resume");
    assert!(resumed.completed());
    assert_eq!(resumed.counts(), (3, 3, 0));
    assert_eq!(resumed.shards[0], ShardState::Ran);
    assert_eq!(resumed.shards[1], ShardState::Resumed);

    // Bit-identity against a fresh unsharded run.
    let merged = resumed.report.expect("complete");
    let fresh = seq_fir_job().run().expect("unsharded run");
    assert!(merged.same_results(&fresh));
    assert_eq!(canonical_json(&merged), canonical_json(&fresh));
    assert_eq!(merged.sequential, fresh.sequential, "latency histogram");
}

#[test]
fn interrupted_run_resumes_where_it_stopped() {
    let scratch = Scratch::new("interrupt");
    let dir = scratch.path();

    // "Interrupt after shard 2": the fresh-shard budget stops the
    // sweep deterministically mid-flight.
    let partial = CampaignRunner::new(seq_fir_job(), 4)
        .checkpoint_dir(dir)
        .max_shards(2)
        .run()
        .expect("interrupted run");
    assert!(!partial.completed());
    assert_eq!(partial.counts(), (0, 2, 2));
    assert!(CampaignRunner::shard_path(dir, 1).is_file());
    assert!(!CampaignRunner::shard_path(dir, 2).exists());

    // Resume without the budget: only the pending shards execute.
    let finished = CampaignRunner::new(seq_fir_job(), 4)
        .checkpoint_dir(dir)
        .run()
        .expect("resumed run");
    assert!(finished.completed());
    assert_eq!(finished.counts(), (2, 2, 0));
    let merged = finished.report.expect("complete");
    let fresh = seq_fir_job().run().expect("unsharded run");
    assert_eq!(canonical_json(&merged), canonical_json(&fresh));
}

#[test]
fn stale_or_corrupt_checkpoints_are_rerun_not_trusted() {
    let scratch = Scratch::new("stale");
    let dir = scratch.path();

    let first = CampaignRunner::new(seq_fir_job(), 3)
        .checkpoint_dir(dir)
        .run()
        .expect("first run");
    assert!(first.completed());

    // Corrupt one checkpoint and replace another with a checkpoint
    // from a *different* campaign (different seed → fingerprint).
    std::fs::write(CampaignRunner::shard_path(dir, 0), "{ not json").expect("corrupt");
    let alien_job = CampaignJob::Sequential(
        DatapathScenario::new(DfgSource::Fir, 3)
            .technique(Technique::Tech1)
            .seq_campaign()
            .input_space(InputSpace::Sampled {
                per_fault: 256,
                seed: 0xBAD,
            })
            .exec(ExecPolicy::new().threads(2)),
    );
    let alien = alien_job.run_shard(1, 3).expect("alien shard");
    std::fs::write(CampaignRunner::shard_path(dir, 1), alien.to_json()).expect("stale");

    let resumed = CampaignRunner::new(seq_fir_job(), 3)
        .checkpoint_dir(dir)
        .run()
        .expect("resume");
    assert!(resumed.completed());
    assert_eq!(
        resumed.shards,
        vec![ShardState::Ran, ShardState::Ran, ShardState::Resumed],
        "corrupt and alien checkpoints must be re-run"
    );
    let merged = resumed.report.expect("complete");
    let fresh = seq_fir_job().run().expect("unsharded run");
    assert_eq!(canonical_json(&merged), canonical_json(&fresh));
}
